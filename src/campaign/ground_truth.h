// Exhaustive ground truth: the outcome of every (site, bit) experiment.
// This is the expensive artefact the paper's method exists to avoid; the
// evaluation needs it to score the inferred boundary.  Tables are cached on
// disk keyed by the program configuration (see util/cache.h), because
// several bench binaries evaluate against the same table.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "campaign/campaign.h"
#include "fi/executor.h"
#include "fi/program.h"
#include "util/thread_pool.h"

namespace ftb::campaign {

class GroundTruth {
 public:
  GroundTruth() = default;
  GroundTruth(std::vector<fi::Outcome> outcomes, std::size_t sites);

  /// Runs the full 64 * sites campaign (or loads it from the cache; pass
  /// use_cache = false to force recomputation).
  static GroundTruth compute(const fi::Program& program,
                             const fi::GoldenRun& golden,
                             util::ThreadPool& pool, bool use_cache = true);

  std::size_t sites() const noexcept { return sites_; }
  std::uint64_t experiments() const noexcept { return outcomes_.size(); }

  fi::Outcome outcome(std::uint64_t site, int bit) const noexcept {
    return outcomes_[site * fi::kBitsPerValue + static_cast<std::uint64_t>(bit)];
  }
  fi::Outcome outcome(ExperimentId id) const noexcept { return outcomes_[id]; }

  std::span<const fi::Outcome> outcomes() const noexcept { return outcomes_; }

  double overall_sdc_ratio() const noexcept;
  std::vector<double> sdc_profile() const;
  OutcomeCounts counts() const noexcept;

 private:
  static std::string cache_key(const fi::Program& program);

  std::vector<fi::Outcome> outcomes_;
  std::size_t sites_ = 0;
};

/// Monte-Carlo estimate of the ground truth for problem sizes where the
/// exhaustive table is out of budget (our Table 4 substitution): `probes`
/// uniformly sampled experiments with known outcomes.
struct SampledGroundTruth {
  std::vector<ExperimentRecord> records;
  OutcomeCounts tallies;

  double sdc_ratio() const noexcept { return tallies.sdc_fraction(); }
};

SampledGroundTruth estimate_ground_truth(const fi::Program& program,
                                         const fi::GoldenRun& golden,
                                         std::uint64_t probes,
                                         std::uint64_t seed,
                                         util::ThreadPool& pool);

}  // namespace ftb::campaign
