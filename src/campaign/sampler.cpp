#include "campaign/sampler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace ftb::campaign {

std::vector<ExperimentId> sample_uniform(util::Rng& rng, std::uint64_t space,
                                         std::uint64_t k) {
  return util::sample_without_replacement(rng, space, std::min(k, space));
}

std::vector<ExperimentId> sample_biased(
    util::Rng& rng, std::span<const ExperimentId> candidates,
    std::span<const double> site_information, std::uint64_t k) {
  k = std::min<std::uint64_t>(k, candidates.size());
  if (k == 0) return {};
  if (k == candidates.size()) {
    // Full-pool round.  Callers rely on the sorted postcondition (see
    // sampler.h) -- infer_adaptive binary-searches the result -- and
    // `candidates` arrives in whatever order the caller built it, so this
    // fast path must sort just like the reservoir path below.
    std::vector<ExperimentId> all(candidates.begin(), candidates.end());
    std::sort(all.begin(), all.end());
    return all;
  }

  // Efraimidis-Spirakis: each candidate draws key u^(1/w); keep the k
  // largest keys.  Equivalent exponential form used here: key = -ln(u) / w,
  // keep the k *smallest* (max-heap of size k).
  using HeapEntry = std::pair<double, ExperimentId>;  // (key, id)
  std::priority_queue<HeapEntry> heap;                // max-heap on key

  for (const ExperimentId id : candidates) {
    const std::uint64_t site = site_of(id);
    assert(site < site_information.size());
    const double weight = 1.0 / (1.0 + site_information[site]);
    // next_double() can return 0; nudge into (0, 1] to keep -log finite.
    const double u = 1.0 - rng.next_double();
    const double key = -std::log(u) / weight;
    if (heap.size() < k) {
      heap.emplace(key, id);
    } else if (key < heap.top().first) {
      heap.pop();
      heap.emplace(key, id);
    }
  }

  std::vector<ExperimentId> picked;
  picked.reserve(k);
  while (!heap.empty()) {
    picked.push_back(heap.top().second);
    heap.pop();
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace ftb::campaign
