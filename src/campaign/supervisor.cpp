#include "campaign/supervisor.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>
#include <stdexcept>
#include <thread>

#include "telemetry/events.h"

namespace ftb::campaign {

namespace {

fi::ExperimentResult quarantine_result() {
  fi::ExperimentResult result;
  result.outcome = fi::Outcome::kCrash;
  result.crash_reason = fi::CrashReason::kQuarantined;
  result.injected_error = std::numeric_limits<double>::infinity();
  result.output_error = std::numeric_limits<double>::infinity();
  result.crash_site = 0;
  return result;
}

}  // namespace

CampaignSupervisor::CampaignSupervisor(const fi::Program& program,
                                       const fi::GoldenRun& golden,
                                       SupervisorOptions options)
    : program_(program),
      golden_(golden),
      options_(std::move(options)),
      pool_(program, golden,
            [&] {
              fi::WorkerPoolOptions pool_options = options_.pool;
              // A chunk must fit the worker-side slot arrays.
              pool_options.chunk_capacity = std::max(
                  pool_options.chunk_capacity, options_.chunk_size);
              // A supervised campaign must always carry a deadline: 0 would
              // disable hang detection and let one poisoned flip hang the
              // whole campaign (see SandboxOptions::timeout_ms).
              if (pool_options.heartbeat_timeout_ms == 0) {
                pool_options.heartbeat_timeout_ms = kFallbackDeadlineMs;
              }
              if (pool_options.telemetry == nullptr) {
                pool_options.telemetry = options_.telemetry;
              }
              return pool_options;
            }()) {
  if (options_.chunk_size == 0) options_.chunk_size = 1;
  if (options_.quarantine_after < 1) options_.quarantine_after = 1;
}

CampaignSupervisor::~CampaignSupervisor() = default;

int CampaignSupervisor::kill_count(ExperimentId id) const noexcept {
  const auto it = ledger_.find(id);
  return it != ledger_.end() ? it->second : 0;
}

SupervisorStats CampaignSupervisor::stats() const {
  SupervisorStats s = stats_;
  s.pool = pool_.stats();
  return s;
}

std::vector<ExperimentRecord> CampaignSupervisor::run(
    std::span<const ExperimentId> ids) {
  std::vector<ExperimentRecord> records(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) records[i].id = ids[i];
  if (ids.empty()) return records;

  telemetry::Telemetry* const tele = options_.telemetry;
  telemetry::SpanScope run_span(tele, "supervisor.run", "supervisor");
  run_span.arg("experiments", static_cast<double>(ids.size()));

  const int quarantine_after = options_.quarantine_after;

  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < ids.size(); ++i) pending.push_back(i);

  // Chunk entries dispatched to each worker slot, by position in `ids`.
  // Sized generously: slot indices are stable even after the pool shrinks.
  std::vector<std::vector<std::size_t>> assigned(
      static_cast<std::size_t>(std::max(options_.pool.workers, 1)));
  std::size_t outstanding = 0;  // dispatched, not yet resolved by an event

  const auto record_quarantined = [&](std::size_t index) {
    records[index].result = quarantine_result();
    ++stats_.quarantined;
    if (telemetry::active(tele)) {
      const ExperimentId id = ids[index];
      tele->instant("supervisor.quarantine", "supervisor",
                    {{"site", static_cast<double>(site_of(id))},
                     {"bit", static_cast<double>(bit_of(id))}});
      tele->metrics().counter("supervisor.quarantines").add();
    }
  };

  const auto note_requeue = [&](std::size_t index) {
    ++stats_.experiments_requeued;
    if (telemetry::active(tele)) {
      const ExperimentId id = ids[index];
      tele->instant("supervisor.requeue", "supervisor",
                    {{"site", static_cast<double>(site_of(id))},
                     {"bit", static_cast<double>(bit_of(id))}});
      tele->metrics().counter("supervisor.requeues").add();
    }
  };

  while (!pending.empty() || outstanding > 0) {
    // Degradation endpoint: every worker slot abandoned.  Deaths always
    // requeue their chunk before the count can drop, so nothing is
    // outstanding here.
    if (pool_.worker_count() == 0 && outstanding == 0) {
      if (!options_.allow_in_process_fallback) {
        throw std::runtime_error(
            "campaign supervisor: worker pool is empty and in-process "
            "fallback is disabled");
      }
      while (!pending.empty()) {
        const std::size_t index = pending.front();
        pending.pop_front();
        const ExperimentId id = ids[index];
        if (kill_count(id) > 0) {
          // This experiment has killed a worker before; running it without
          // isolation could take the whole campaign down.
          record_quarantined(index);
        } else {
          records[index].result =
              fi::run_injected(program_, golden_, injection_of(id));
          ++stats_.fallback_experiments;
          if (telemetry::active(tele)) {
            tele->metrics().counter("supervisor.fallback_experiments").add();
          }
        }
      }
      break;
    }

    // Dispatch chunks to every idle worker.
    bool dispatched = false;
    while (!pending.empty() && pool_.worker_count() > 0) {
      std::vector<std::size_t> chunk_indices;
      std::vector<fi::Injection> chunk;
      while (!pending.empty() && chunk_indices.size() < options_.chunk_size) {
        const std::size_t index = pending.front();
        if (kill_count(ids[index]) >= quarantine_after) {
          pending.pop_front();
          record_quarantined(index);
          continue;
        }
        pending.pop_front();
        chunk_indices.push_back(index);
        chunk.push_back(injection_of(ids[index]));
      }
      if (chunk_indices.empty()) break;
      const int worker = pool_.try_dispatch(chunk);
      if (worker < 0) {
        // All workers busy (or the pool just emptied): put the chunk back
        // in order and wait for events.
        for (auto it = chunk_indices.rbegin(); it != chunk_indices.rend();
             ++it) {
          pending.push_front(*it);
        }
        break;
      }
      assigned[static_cast<std::size_t>(worker)] = std::move(chunk_indices);
      outstanding += assigned[static_cast<std::size_t>(worker)].size();
      ++stats_.chunks_dispatched;
      dispatched = true;
    }

    const std::vector<fi::WorkerEvent> events = pool_.poll();
    for (const fi::WorkerEvent& event : events) {
      std::vector<std::size_t>& chunk =
          assigned[static_cast<std::size_t>(event.worker)];
      // Results the worker published before finishing/dying are valid
      // regardless of how it ended.
      for (std::size_t pos = 0; pos < event.done && pos < chunk.size();
           ++pos) {
        records[chunk[pos]].result = event.results[pos];
      }

      if (event.kind != fi::WorkerEvent::Kind::kChunkDone) {
        if (event.kind == fi::WorkerEvent::Kind::kWorkerDeath) {
          ++stats_.worker_deaths;
        } else {
          ++stats_.worker_hangs;
        }
        // The culprit (in-flight experiment, if any) is charged on the
        // ledger: quarantined at K kills, retried below that.  Everything
        // after it never ran and is requeued uncharged.
        std::size_t requeue_from = event.done;
        if (event.culprit != fi::WorkerEvent::kNoCulprit &&
            event.culprit < chunk.size()) {
          const std::size_t culprit_index = chunk[event.culprit];
          const int kills = ++ledger_[ids[culprit_index]];
          if (kills >= quarantine_after) {
            record_quarantined(culprit_index);
          } else {
            pending.push_back(culprit_index);
            note_requeue(culprit_index);
          }
          requeue_from = event.culprit + 1;
        }
        for (std::size_t pos = requeue_from; pos < chunk.size(); ++pos) {
          pending.push_back(chunk[pos]);
          note_requeue(chunk[pos]);
        }
      }

      outstanding -= chunk.size();
      chunk.clear();
    }

    if (telemetry::active(tele)) {
      auto& metrics = tele->metrics();
      metrics.gauge("supervisor.queue_depth")
          .set(static_cast<double>(pending.size() + outstanding));
      metrics.gauge("pool.workers")
          .set(static_cast<double>(pool_.worker_count()));
    }

    if (events.empty() && !dispatched && (!pending.empty() || outstanding > 0)) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.poll_interval_us));
    }
  }

  return records;
}

}  // namespace ftb::campaign
