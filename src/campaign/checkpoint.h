// Checkpointed campaign execution.
//
// A campaign over a hazard kernel can be killed at any moment -- by the
// sandbox watchdog's host-side twin (CI timeouts), by the machine, or by the
// user.  This runner makes that survivable: it executes experiments in
// chunks and flushes the accumulated CampaignLog journal to disk after each
// chunk (atomic tmp+rename, CRC-framed -- see campaign/log.h), so a
// re-invocation with the same journal path resumes from the last flush
// instead of starting over.  Already-logged experiment ids are skipped; the
// final log, after dedupe, is identical to what an uninterrupted run would
// have produced (experiment outcomes are deterministic).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "campaign/campaign.h"
#include "campaign/log.h"
#include "campaign/sample_space.h"
#include "campaign/supervisor.h"
#include "fi/program.h"
#include "fi/sandbox.h"
#include "util/thread_pool.h"

namespace ftb::campaign {

/// Snapshot handed to CheckpointOptions::on_progress after every journal
/// flush.  `chunk` is the batch of records appended by the chunk that just
/// finished (empty for the final dedupe flush); `supervisor` is non-null
/// only on the supervisor path and points at a stats copy valid for the
/// duration of the callback.
struct CheckpointProgress {
  std::uint64_t executed = 0;  ///< experiments run so far this invocation
  std::uint64_t total = 0;     ///< experiments owed this invocation
  std::uint64_t logged = 0;    ///< journal records after this flush
  std::span<const ExperimentRecord> chunk;
  const SupervisorStats* supervisor = nullptr;
};

struct CheckpointOptions {
  /// Journal file path.  Must be non-empty; if the file exists it is loaded
  /// and its experiments are skipped (resume).
  std::string path;
  /// Experiments per chunk; the journal is flushed after every chunk.
  std::size_t flush_every = 512;
  /// Run chunks through the process-isolation layer (fi/sandbox.h) so
  /// signal-crashes and hangs are classified instead of fatal.  Required for
  /// hazard kernels.
  bool use_sandbox = false;
  fi::SandboxOptions sandbox;
  /// Run chunks through one long-lived CampaignSupervisor instead: a
  /// persistent worker pool with heartbeats, respawn, and site quarantine
  /// (campaign/supervisor.h).  Takes precedence over use_sandbox.  The
  /// supervisor -- and with it the quarantine ledger and the workers --
  /// lives across all chunks of the invocation; a resumed invocation
  /// rebuilds the ledger and converges to the same journal bytes.
  bool use_supervisor = false;
  SupervisorOptions supervisor;
  /// Thread pool for the non-sandbox path; util::default_pool() when null.
  util::ThreadPool* pool = nullptr;

  /// Optional telemetry sink (telemetry/events.h): checkpoint.chunk and
  /// checkpoint.flush spans plus checkpoint.* counters; forwarded to the
  /// supervisor (and through it the pool) when supervisor.telemetry is
  /// unset.  Never owned; must outlive the call.
  telemetry::Telemetry* telemetry = nullptr;

  /// Invoked after every journal flush (so everything it reports is already
  /// durable on disk).  ftb_served streams these to the submitting client.
  std::function<void(const CheckpointProgress&)> on_progress;

  /// Polled before each chunk; returning true stops the run after the
  /// journal has been flushed, leaving a resumable journal and setting
  /// CheckpointRunResult::stopped.  ftb_served's drain path uses this.
  std::function<bool()> should_stop;
};

struct CheckpointRunResult {
  CampaignLog log;              ///< deduped, includes resumed records
  bool resumed = false;         ///< true if an existing journal was loaded
  std::uint64_t skipped = 0;    ///< experiments satisfied by the journal
  std::uint64_t executed = 0;   ///< experiments actually run this invocation
  std::uint64_t flushes = 0;    ///< journal writes (including the final one)
  bool stopped = false;         ///< should_stop fired; journal is resumable
  fi::SandboxStats sandbox_stats;  ///< populated when use_sandbox
  SupervisorStats supervisor_stats;  ///< populated when use_supervisor
};

/// Runs (or resumes) the listed experiments with periodic journal flushes.
/// Throws std::invalid_argument if options.path is empty or an existing
/// journal belongs to a different program configuration, and
/// std::runtime_error if the journal exists but is corrupt or a flush
/// cannot be written.
CheckpointRunResult run_campaign_checkpointed(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, const CheckpointOptions& options);

}  // namespace ftb::campaign
