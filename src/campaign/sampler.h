// Experiment sampling strategies.
//
//   * uniform: the paper's default Monte-Carlo selection over the whole
//     (site, bit) space;
//   * information-biased: Section 3.4's p_i proportional to 1 / S_i, where
//     S_i is the amount of injection + propagation information already
//     collected at site i.  Implemented as exact weighted sampling without
//     replacement (exponential-key reservoir, Efraimidis-Spirakis), so a
//     round never retests an experiment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "campaign/sample_space.h"
#include "util/rng.h"

namespace ftb::campaign {

/// k distinct experiments uniformly from [0, space); sorted ascending.
std::vector<ExperimentId> sample_uniform(util::Rng& rng, std::uint64_t space,
                                         std::uint64_t k);

/// k distinct experiments from `candidates`, where each candidate's weight
/// is 1 / (1 + S_site) with S taken from `site_information` (indexed by
/// site).  k is clamped to candidates.size().
///
/// Postcondition: the result is sorted ascending on every path, including
/// the k == candidates.size() full-pool round -- callers (infer_adaptive)
/// binary-search the returned vector, and `candidates` itself carries no
/// ordering guarantee.
std::vector<ExperimentId> sample_biased(util::Rng& rng,
                                        std::span<const ExperimentId> candidates,
                                        std::span<const double> site_information,
                                        std::uint64_t k);

}  // namespace ftb::campaign
