#include "campaign/campaign.h"

#include <mutex>

namespace ftb::campaign {

std::vector<ExperimentRecord> run_experiments(const fi::Program& program,
                                              const fi::GoldenRun& golden,
                                              std::span<const ExperimentId> ids,
                                              util::ThreadPool& pool) {
  std::vector<ExperimentRecord> records(ids.size());
  pool.parallel_for(0, ids.size(), [&](std::size_t i) {
    const ExperimentId id = ids[i];
    records[i].id = id;
    records[i].result = fi::run_injected(program, golden, injection_of(id));
  });
  return records;
}

std::vector<ExperimentRecord> run_experiments_compare(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, util::ThreadPool& pool,
    const CompareConsumer& consume) {
  std::vector<ExperimentRecord> records(ids.size());
  std::mutex consume_mutex;

  // One diff buffer per worker invocation block would be ideal; a
  // thread_local buffer gives the same effect without plumbing.
  pool.parallel_for(0, ids.size(), [&](std::size_t i) {
    thread_local std::vector<double> diffs;
    diffs.resize(golden.trace.size());
    const ExperimentId id = ids[i];
    records[i].id = id;
    records[i].result =
        fi::run_injected_compare(program, golden, injection_of(id), diffs);
    if (consume) {
      std::lock_guard lock(consume_mutex);
      consume(records[i], diffs);
    }
  });
  return records;
}

std::vector<ExperimentRecord> run_experiments_sandboxed(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, const fi::SandboxOptions& options,
    fi::SandboxStats* stats) {
  std::vector<fi::Injection> injections;
  injections.reserve(ids.size());
  for (const ExperimentId id : ids) injections.push_back(injection_of(id));

  const std::vector<fi::ExperimentResult> results =
      fi::run_injected_sandboxed(program, golden, injections, options, stats);

  std::vector<ExperimentRecord> records(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    records[i].id = ids[i];
    records[i].result = results[i];
  }
  return records;
}

OutcomeCounts count_outcomes(
    std::span<const ExperimentRecord> records) noexcept {
  OutcomeCounts counts;
  for (const ExperimentRecord& record : records) {
    switch (record.result.outcome) {
      case fi::Outcome::kMasked:
        ++counts.masked;
        break;
      case fi::Outcome::kSdc:
        ++counts.sdc;
        break;
      case fi::Outcome::kCrash:
        ++counts.crash;
        break;
      case fi::Outcome::kHang:
        ++counts.hang;
        break;
      case fi::Outcome::kDetected:
        ++counts.detected;
        break;
    }
  }
  return counts;
}

std::uint64_t CrashReasonCounts::isolation_crashes() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kReasons; ++i) {
    if (fi::is_isolation_reason(static_cast<fi::CrashReason>(i))) {
      total += by_reason[i];
    }
  }
  return total;
}

CrashReasonCounts count_crash_reasons(
    std::span<const ExperimentRecord> records) noexcept {
  CrashReasonCounts counts;
  for (const ExperimentRecord& record : records) {
    if (record.result.outcome != fi::Outcome::kCrash) continue;
    const auto index = static_cast<std::size_t>(record.result.crash_reason);
    if (index < CrashReasonCounts::kReasons) ++counts.by_reason[index];
  }
  return counts;
}

std::string describe_crash_reasons(const CrashReasonCounts& counts) {
  std::string out;
  for (std::size_t i = 0; i < CrashReasonCounts::kReasons; ++i) {
    if (counts.by_reason[i] == 0) continue;
    if (!out.empty()) out += " / ";
    out += fi::to_string(static_cast<fi::CrashReason>(i));
    out += ' ';
    out += std::to_string(counts.by_reason[i]);
  }
  return out;
}

}  // namespace ftb::campaign
