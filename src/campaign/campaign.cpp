#include "campaign/campaign.h"

#include <mutex>

namespace ftb::campaign {

std::vector<ExperimentRecord> run_experiments(const fi::Program& program,
                                              const fi::GoldenRun& golden,
                                              std::span<const ExperimentId> ids,
                                              util::ThreadPool& pool) {
  std::vector<ExperimentRecord> records(ids.size());
  pool.parallel_for(0, ids.size(), [&](std::size_t i) {
    const ExperimentId id = ids[i];
    records[i].id = id;
    records[i].result = fi::run_injected(program, golden, injection_of(id));
  });
  return records;
}

std::vector<ExperimentRecord> run_experiments_compare(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, util::ThreadPool& pool,
    const CompareConsumer& consume) {
  std::vector<ExperimentRecord> records(ids.size());
  std::mutex consume_mutex;

  // One diff buffer per worker invocation block would be ideal; a
  // thread_local buffer gives the same effect without plumbing.
  pool.parallel_for(0, ids.size(), [&](std::size_t i) {
    thread_local std::vector<double> diffs;
    diffs.resize(golden.trace.size());
    const ExperimentId id = ids[i];
    records[i].id = id;
    records[i].result =
        fi::run_injected_compare(program, golden, injection_of(id), diffs);
    if (consume) {
      std::lock_guard lock(consume_mutex);
      consume(records[i], diffs);
    }
  });
  return records;
}

OutcomeCounts count_outcomes(
    std::span<const ExperimentRecord> records) noexcept {
  OutcomeCounts counts;
  for (const ExperimentRecord& record : records) {
    switch (record.result.outcome) {
      case fi::Outcome::kMasked:
        ++counts.masked;
        break;
      case fi::Outcome::kSdc:
        ++counts.sdc;
        break;
      case fi::Outcome::kCrash:
        ++counts.crash;
        break;
    }
  }
  return counts;
}

}  // namespace ftb::campaign
