#include "campaign/ground_truth.h"

#include <cassert>

#include "boundary/metrics.h"
#include "util/cache.h"
#include "util/rng.h"

namespace ftb::campaign {

GroundTruth::GroundTruth(std::vector<fi::Outcome> outcomes, std::size_t sites)
    : outcomes_(std::move(outcomes)), sites_(sites) {
  assert(outcomes_.size() == sites_ * fi::kBitsPerValue);
}

std::string GroundTruth::cache_key(const fi::Program& program) {
  return "ground_truth:v1:" + program.config_key();
}

GroundTruth GroundTruth::compute(const fi::Program& program,
                                 const fi::GoldenRun& golden,
                                 util::ThreadPool& pool, bool use_cache) {
  const std::size_t sites = golden.trace.size();
  const std::uint64_t total = sites * fi::kBitsPerValue;
  const std::string key = cache_key(program);

  if (use_cache) {
    if (auto payload = util::cache_load(key)) {
      if (payload->size() == total) {
        std::vector<fi::Outcome> outcomes(total);
        for (std::uint64_t i = 0; i < total; ++i) {
          const std::uint8_t raw = (*payload)[i];
          if (raw > static_cast<std::uint8_t>(fi::Outcome::kHang)) {
            outcomes.clear();
            break;
          }
          outcomes[i] = static_cast<fi::Outcome>(raw);
        }
        if (!outcomes.empty()) return GroundTruth(std::move(outcomes), sites);
      }
    }
  }

  std::vector<fi::Outcome> outcomes(total, fi::Outcome::kMasked);
  pool.parallel_for(0, total, [&](std::size_t id) {
    const fi::ExperimentResult result =
        fi::run_injected(program, golden, injection_of(id));
    outcomes[id] = result.outcome;
  });

  if (use_cache) {
    std::vector<std::uint8_t> payload(total);
    for (std::uint64_t i = 0; i < total; ++i) {
      payload[i] = static_cast<std::uint8_t>(outcomes[i]);
    }
    util::cache_store(key, payload);
  }
  return GroundTruth(std::move(outcomes), sites);
}

double GroundTruth::overall_sdc_ratio() const noexcept {
  return boundary::overall_sdc_ratio(outcomes_);
}

std::vector<double> GroundTruth::sdc_profile() const {
  return boundary::true_sdc_profile(outcomes_, sites_);
}

OutcomeCounts GroundTruth::counts() const noexcept {
  OutcomeCounts counts;
  for (fi::Outcome o : outcomes_) {
    switch (o) {
      case fi::Outcome::kMasked:
        ++counts.masked;
        break;
      case fi::Outcome::kSdc:
        ++counts.sdc;
        break;
      case fi::Outcome::kCrash:
        ++counts.crash;
        break;
      case fi::Outcome::kHang:
        ++counts.hang;
        break;
      case fi::Outcome::kDetected:
        ++counts.detected;
        break;
    }
  }
  return counts;
}

SampledGroundTruth estimate_ground_truth(const fi::Program& program,
                                         const fi::GoldenRun& golden,
                                         std::uint64_t probes,
                                         std::uint64_t seed,
                                         util::ThreadPool& pool) {
  util::Rng rng(seed);
  const std::uint64_t space = golden.sample_space_size();
  std::vector<ExperimentId> ids =
      util::sample_without_replacement(rng, space, std::min(probes, space));
  SampledGroundTruth sampled;
  sampled.records = run_experiments(program, golden, ids, pool);
  sampled.tallies = count_outcomes(sampled.records);
  return sampled;
}

}  // namespace ftb::campaign
