// The end-to-end inference pipeline (paper Section 3.3): sample experiments,
// run them with propagation capture, feed masked propagation data into the
// boundary accumulator (Algorithm 1, optionally with the Section 3.5
// filter), and track the per-site information counts that drive both the
// Figure 4 "potential impact" row and the Section 3.4 adaptive bias.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "boundary/accumulator.h"
#include "boundary/boundary.h"
#include "campaign/campaign.h"
#include "campaign/supervisor.h"
#include "fi/executor.h"
#include "fi/program.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace ftb::campaign {

struct InferenceOptions {
  double sample_fraction = 0.01;       // the paper's default evaluation rate
  std::uint64_t seed = 1;
  bool filter = false;                 // Section 3.5 filter operation
  std::size_t prop_buffer_cap = 32;
  double significance_rel_error = 1e-8;  // Figure 4 row 2 significance cut

  /// Optional telemetry sink (telemetry/events.h): campaign.batch spans,
  /// campaign.experiments counter, experiments/s gauge, and the boundary
  /// accumulator health gauges.  Never owned; must outlive the call.
  telemetry::Telemetry* telemetry = nullptr;
};

struct InferenceResult {
  boundary::FaultToleranceBoundary boundary;
  std::vector<ExperimentId> sampled_ids;  // experiments actually run
  OutcomeCounts counts;                   // outcomes of those experiments
  std::vector<double> information;        // S_i per site (impact measure)
  std::vector<ExperimentRecord> records;  // per-experiment outcomes
  std::uint64_t nonfinite_skipped = 0;    // NaN/Inf propagation values dropped
};

/// Uniform Monte-Carlo sampling at options.sample_fraction of the space.
InferenceResult infer_uniform(const fi::Program& program,
                              const fi::GoldenRun& golden,
                              const InferenceOptions& options,
                              util::ThreadPool& pool);

/// Lower-level building block shared with the adaptive sampler: runs `ids`
/// in Compare mode, feeding `accumulator` (masked runs only) and adding to
/// `site_information` (significant injections and propagations, any
/// outcome).  Returns the experiment records in `ids` order.
std::vector<ExperimentRecord> run_and_accumulate(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, util::ThreadPool& pool,
    boundary::BoundaryAccumulator& accumulator,
    std::vector<double>& site_information, double significance_rel_error,
    telemetry::Telemetry* telemetry = nullptr);

/// Supervisor-backed variant for hazard programs whose corrupted runs can
/// kill or hang the process: outcomes come from the isolated worker pool
/// first; experiments that provably completed inside a worker (not Hang,
/// not an isolation-reason Crash) are then re-run in-process in Compare
/// mode to collect propagation and information -- identical evidence to
/// run_and_accumulate for those ids.  Worker-killing experiments
/// contribute their injection record and one unit of information at the
/// injection site, but are never re-run in this process.
std::vector<ExperimentRecord> run_and_accumulate_supervised(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, util::ThreadPool& pool,
    CampaignSupervisor& supervisor,
    boundary::BoundaryAccumulator& accumulator,
    std::vector<double>& site_information, double significance_rel_error,
    telemetry::Telemetry* telemetry = nullptr);

/// Publishes the accumulator's health counters (non-finite skips, filter
/// rejections, prop-buffer evictions) as boundary.* gauges.  No-op on a
/// null/disabled sink; safe to call repeatedly (gauges are set, not added).
void publish_accumulator_metrics(telemetry::Telemetry* telemetry,
                                 const boundary::BoundaryAccumulator& accumulator);

/// Confusion of boundary predictions against a batch of known-outcome
/// records (used when only a sampled ground truth exists, e.g. Table 4's
/// large input).
util::Confusion confusion_on_records(
    const boundary::FaultToleranceBoundary& boundary,
    std::span<const double> golden_trace,
    std::span<const ExperimentRecord> records);

}  // namespace ftb::campaign
