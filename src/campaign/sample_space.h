// The experiment sample space.  The paper's space is one experiment per
// (dynamic instruction, bit) pair, encoded as id = site * 64 + bit; Table
// 1's "Size" column is exactly the size of that space.
//
// Richer fault models (fi/memfault.h) are folded into the same 64-bit
// ExperimentId so campaigns over them journal, dedupe, and resume through
// the exact machinery trace campaigns use.  The top byte tags the mode:
//
//   mode 0 (classic) : bits [55:0]  = site * 64 + bit          -- unchanged,
//                      so every existing journal id stays valid;
//   mode 1 (burst)   : bits [55:48] = burst width (bits),
//                      bits [47:0]  = site * 64 + start_bit;
//   mode 2 (mem)     : bits [47:32] = touch_point,
//                      bits [31:0]  = word * 64 + bit;
//   mode 3 (memburst): bits [55:48] = burst width,
//                      bits [47:32] = touch_point,
//                      bits [31:0]  = word * 64 + start_bit.
//
// site_of()/bit_of() remain mode-0 accessors (boundary inference is defined
// over trace sites only); mode-aware consumers go through injection_of().
#pragma once

#include <cstdint>

#include "fi/fpbits.h"
#include "fi/memfault.h"
#include "fi/tracer.h"

namespace ftb::campaign {

using ExperimentId = std::uint64_t;

enum class FaultMode : std::uint8_t {
  kBitFlip = 0,   // the paper's single-bit trace flip
  kBurst = 1,     // k contiguous bits of one traced value
  kMem = 2,       // single bit of a touched memory word
  kMemBurst = 3,  // k contiguous bits of a touched memory word
};

inline ExperimentId encode(std::uint64_t site, int bit) noexcept {
  return site * fi::kBitsPerValue + static_cast<std::uint64_t>(bit);
}

inline FaultMode mode_of(ExperimentId id) noexcept {
  return static_cast<FaultMode>(id >> 56);
}

/// True for ids in the paper's (site, bit) space -- the only ids that feed
/// boundary accumulation and masked-propagation re-runs.
inline bool is_classic(ExperimentId id) noexcept {
  return mode_of(id) == FaultMode::kBitFlip;
}

/// Valid for mode 0 and mode 1 ids (both address the trace).
inline std::uint64_t site_of(ExperimentId id) noexcept {
  return (id & 0xffffffffffffull) / fi::kBitsPerValue;
}

inline int bit_of(ExperimentId id) noexcept {
  return static_cast<int>((id & 0xffffffffffffull) % fi::kBitsPerValue);
}

inline int burst_width_of(ExperimentId id) noexcept {
  return static_cast<int>((id >> 48) & 0xff);
}

inline ExperimentId encode_burst(std::uint64_t site, int start_bit,
                                 int width) noexcept {
  return (std::uint64_t{static_cast<std::uint8_t>(FaultMode::kBurst)} << 56) |
         (static_cast<std::uint64_t>(width & 0xff) << 48) |
         (encode(site, start_bit) & 0xffffffffffffull);
}

inline ExperimentId encode_mem(const fi::MemFault& fault) noexcept {
  const auto mode =
      fault.width > 1 ? FaultMode::kMemBurst : FaultMode::kMem;
  return (std::uint64_t{static_cast<std::uint8_t>(mode)} << 56) |
         (static_cast<std::uint64_t>(fault.width & 0xff) << 48) |
         (static_cast<std::uint64_t>(fault.touch_point & 0xffff) << 32) |
         ((fault.word * fi::kBitsPerValue +
           static_cast<std::uint64_t>(fault.start_bit)) &
          0xffffffffull);
}

inline fi::MemFault mem_fault_of(ExperimentId id) noexcept {
  fi::MemFault fault;
  fault.touch_point = static_cast<std::uint32_t>((id >> 32) & 0xffff);
  const std::uint64_t packed = id & 0xffffffffull;
  fault.word = packed / fi::kBitsPerValue;
  fault.start_bit = static_cast<int>(packed % fi::kBitsPerValue);
  fault.width = mode_of(id) == FaultMode::kMem
                    ? 1
                    : static_cast<int>((id >> 48) & 0xff);
  return fault;
}

inline fi::Injection injection_of(ExperimentId id) noexcept {
  switch (mode_of(id)) {
    case FaultMode::kBitFlip:
      return fi::Injection::bit_flip(site_of(id), bit_of(id));
    case FaultMode::kBurst:
      return fi::trace_burst(site_of(id), bit_of(id), burst_width_of(id));
    case FaultMode::kMem:
    case FaultMode::kMemBurst:
      return mem_fault_of(id).to_injection();
  }
  return fi::Injection::bit_flip(site_of(id), bit_of(id));
}

}  // namespace ftb::campaign
