// The experiment sample space: one experiment per (dynamic instruction,
// bit) pair, encoded as a single integer id = site * 64 + bit.  Table 1's
// "Size" column is exactly the size of this space.
#pragma once

#include <cstdint>

#include "fi/fpbits.h"
#include "fi/tracer.h"

namespace ftb::campaign {

using ExperimentId = std::uint64_t;

inline ExperimentId encode(std::uint64_t site, int bit) noexcept {
  return site * fi::kBitsPerValue + static_cast<std::uint64_t>(bit);
}

inline std::uint64_t site_of(ExperimentId id) noexcept {
  return id / fi::kBitsPerValue;
}

inline int bit_of(ExperimentId id) noexcept {
  return static_cast<int>(id % fi::kBitsPerValue);
}

inline fi::Injection injection_of(ExperimentId id) noexcept {
  return fi::Injection::bit_flip(site_of(id), bit_of(id));
}

}  // namespace ftb::campaign
