// Campaign logs: persistent records of executed experiments.
//
// Fault-injection experiments are the expensive resource; their outcomes
// are tiny.  A CampaignLog captures every (experiment id, outcome,
// injected error) pair keyed by the program configuration, so that
//
//   * long campaigns survive interruption (append + save, resume later),
//   * logs from independent machines/seeds can be merged,
//   * boundaries can be *rebuilt* from a log under different analysis
//     settings (e.g. filter on/off) by re-running only the masked
//     experiments in compare mode -- a small fraction of the original cost
//     and no re-classification.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "boundary/accumulator.h"
#include "boundary/boundary.h"
#include "campaign/campaign.h"
#include "fi/executor.h"
#include "fi/program.h"
#include "util/thread_pool.h"

namespace ftb::campaign {

class CampaignLog {
 public:
  CampaignLog() = default;
  explicit CampaignLog(std::string config_key)
      : config_key_(std::move(config_key)) {}

  const std::string& config_key() const noexcept { return config_key_; }
  const std::vector<ExperimentRecord>& records() const noexcept {
    return records_;
  }
  std::size_t size() const noexcept { return records_.size(); }

  /// Appends records; duplicates (same experiment id) are kept -- dedupe()
  /// removes them (outcomes are deterministic, so any copy is as good).
  void append(std::span<const ExperimentRecord> batch);

  /// Removes duplicate experiment ids and sorts by id.
  void dedupe();

  /// Merges another log for the same configuration (throws
  /// std::invalid_argument on key mismatch) and dedupes.
  void merge(const CampaignLog& other);

  /// Experiment ids in the log, sorted (after dedupe()).
  std::vector<ExperimentId> ids() const;

  /// Binary (de)serialisation.  Format v2 frames the payload with a magic
  /// number, a version word and a trailing CRC-32 of everything before it,
  /// so torn writes and bit rot are detected instead of silently yielding a
  /// short or garbled log.  On failure deserialize()/load() return nullopt
  /// and, when `error` is non-null, store a one-line diagnosis there
  /// (bad magic / unsupported version / CRC mismatch / truncated / ...).
  std::string serialize() const;
  static std::optional<CampaignLog> deserialize(const std::string& payload,
                                                std::string* error = nullptr);
  bool save(const std::string& path) const;
  static std::optional<CampaignLog> load(const std::string& path,
                                         std::string* error = nullptr);

 private:
  std::string config_key_;
  std::vector<ExperimentRecord> records_;
};

/// Rebuilds a boundary from a log: injected-error evidence comes straight
/// from the records; propagation evidence comes from re-running the masked
/// experiments in compare mode.  The program configuration must match the
/// log's key (checked).
boundary::FaultToleranceBoundary boundary_from_log(
    const fi::Program& program, const fi::GoldenRun& golden,
    const CampaignLog& log, const boundary::AccumulatorOptions& options,
    util::ThreadPool& pool);

}  // namespace ftb::campaign
