// Relyzer-style fault-site equivalence (Hari et al., ASPLOS'12 -- the
// paper's ref [13]), combined with the fault tolerance boundary exactly as
// the paper's Related Work proposes: "our analysis approach does not
// conflict with the previous heuristic approach, and the two approaches can
// be combined to further reduce the number of samples."
//
// Idea: many dynamic instructions are *equivalent* for fault-injection
// purposes -- same program phase, same magnitude regime -- so instead of
// sampling sites independently, pick one *pilot* per equivalence class, run
// its experiments, and spread the resulting threshold evidence to the whole
// class.  Here classes are keyed on
//
//   (phase segment, sign, floor(log2 |value|) bucket)
//
// which is a software analogue of Relyzer's "same control path + similar
// value" heuristic: two stores in the same loop nest holding values of the
// same scale react near-identically to the same bit flip.
//
// The pruned campaign spends its budget on class pilots (round-robin over
// classes, largest class first), then broadcasts each pilot's inferred
// threshold to every member of its class.  bench/ablation_equivalence
// scores the combination against plain uniform sampling at equal budget.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "boundary/boundary.h"
#include "campaign/inference.h"
#include "fi/executor.h"
#include "fi/phase_map.h"
#include "fi/program.h"
#include "util/thread_pool.h"

namespace ftb::campaign {

/// Partition of dynamic instructions into equivalence classes.
class EquivalenceClasses {
 public:
  /// Builds the (phase, sign, magnitude-bucket) partition.
  /// `magnitude_bits_per_bucket` widens the log2 buckets (1 = one bucket
  /// per power of two, 3 = buckets spanning 8x in magnitude, ...).
  EquivalenceClasses(const fi::GoldenRun& golden,
                     int magnitude_bits_per_bucket = 3);

  std::size_t class_count() const noexcept { return members_.size(); }
  std::size_t class_of(std::uint64_t site) const noexcept {
    return class_of_[site];
  }
  std::span<const std::uint64_t> members(std::size_t cls) const noexcept {
    return members_[cls];
  }

  /// Mean class size; Relyzer's savings are proportional to this.
  double mean_class_size() const noexcept;

 private:
  std::vector<std::size_t> class_of_;              // site -> class id
  std::vector<std::vector<std::uint64_t>> members_;  // class id -> sites
};

struct EquivalenceInferenceOptions {
  std::uint64_t budget = 0;     // total experiments to run (0 -> 1% of space)
  std::uint64_t seed = 1;
  bool filter = true;
  std::size_t prop_buffer_cap = 32;
  int magnitude_bits_per_bucket = 3;
};

struct EquivalenceInferenceResult {
  boundary::FaultToleranceBoundary boundary;  // pilot evidence broadcast
  std::vector<ExperimentId> sampled_ids;      // pilot experiments run
  OutcomeCounts counts;
  std::size_t classes = 0;
  double mean_class_size = 0.0;
};

/// Pilot-based inference: spend `budget` experiments on per-class pilots
/// (each pilot contributes its injected-error evidence and, when masked,
/// its propagation data), then broadcast each class's pilot threshold to
/// all members that have no direct evidence of their own.
EquivalenceInferenceResult infer_with_equivalence(
    const fi::Program& program, const fi::GoldenRun& golden,
    const EquivalenceInferenceOptions& options, util::ThreadPool& pool);

}  // namespace ftb::campaign
