// Batch experiment execution.  Campaigns are embarrassingly parallel; the
// runner pre-partitions the experiment list over the thread pool and writes
// results at fixed indices, so a campaign's output is identical regardless
// of thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "campaign/sample_space.h"
#include "fi/executor.h"
#include "fi/program.h"
#include "util/thread_pool.h"

namespace ftb::campaign {

struct ExperimentRecord {
  ExperimentId id = 0;
  fi::ExperimentResult result;
};

/// Runs each listed experiment once (outcome only, no propagation capture)
/// and returns records in the same order as `ids`.
std::vector<ExperimentRecord> run_experiments(const fi::Program& program,
                                              const fi::GoldenRun& golden,
                                              std::span<const ExperimentId> ids,
                                              util::ThreadPool& pool);

/// Runs each listed experiment in Compare mode and hands every result --
/// with its propagation diff vector -- to `consume`.  `consume` is called
/// from worker threads one-at-a-time (internally serialised), in arbitrary
/// order; the diffs span is only valid during the call.  Returns records in
/// `ids` order, like run_experiments.
using CompareConsumer =
    std::function<void(const ExperimentRecord&, std::span<const double> diffs)>;

std::vector<ExperimentRecord> run_experiments_compare(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, util::ThreadPool& pool,
    const CompareConsumer& consume);

/// Outcome tallies over a record batch.
struct OutcomeCounts {
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t crash = 0;

  std::uint64_t total() const noexcept { return masked + sdc + crash; }
  double sdc_fraction() const noexcept {
    return total() ? static_cast<double>(sdc) / static_cast<double>(total())
                   : 0.0;
  }
};

OutcomeCounts count_outcomes(std::span<const ExperimentRecord> records) noexcept;

}  // namespace ftb::campaign
