// Batch experiment execution.  Campaigns are embarrassingly parallel; the
// runner pre-partitions the experiment list over the thread pool and writes
// results at fixed indices, so a campaign's output is identical regardless
// of thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "campaign/sample_space.h"
#include "fi/executor.h"
#include "fi/program.h"
#include "fi/sandbox.h"
#include "util/thread_pool.h"

namespace ftb::campaign {

struct ExperimentRecord {
  ExperimentId id = 0;
  fi::ExperimentResult result;
};

/// Runs each listed experiment once (outcome only, no propagation capture)
/// and returns records in the same order as `ids`.
std::vector<ExperimentRecord> run_experiments(const fi::Program& program,
                                              const fi::GoldenRun& golden,
                                              std::span<const ExperimentId> ids,
                                              util::ThreadPool& pool);

/// Runs each listed experiment in Compare mode and hands every result --
/// with its propagation diff vector -- to `consume`.  `consume` is called
/// from worker threads one-at-a-time (internally serialised), in arbitrary
/// order; the diffs span is only valid during the call.  Returns records in
/// `ids` order, like run_experiments.
using CompareConsumer =
    std::function<void(const ExperimentRecord&, std::span<const double> diffs)>;

std::vector<ExperimentRecord> run_experiments_compare(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, util::ThreadPool& pool,
    const CompareConsumer& consume);

/// Runs each listed experiment inside the process-isolation layer
/// (fi/sandbox.h): experiments execute in forked child batches, so flips
/// that segfault, trap, or hang are classified (Crash with a signal-derived
/// CrashReason, or Hang via the watchdog) instead of taking down the
/// campaign.  Single-threaded by design -- fork() and worker threads mix
/// poorly; the per-experiment cost already dwarfs the lost parallelism for
/// the hazard workloads this exists for.  Records are in `ids` order.
std::vector<ExperimentRecord> run_experiments_sandboxed(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, const fi::SandboxOptions& options = {},
    fi::SandboxStats* stats = nullptr);

/// Outcome tallies over a record batch.
struct OutcomeCounts {
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t crash = 0;
  std::uint64_t hang = 0;
  std::uint64_t detected = 0;

  std::uint64_t total() const noexcept {
    return masked + sdc + crash + hang + detected;
  }
  double sdc_fraction() const noexcept {
    return total() ? static_cast<double>(sdc) / static_cast<double>(total())
                   : 0.0;
  }
  /// Detector coverage over wrong outputs: detected / (detected + sdc).
  double detected_coverage() const noexcept {
    const std::uint64_t wrong = detected + sdc;
    return wrong ? static_cast<double>(detected) / static_cast<double>(wrong)
                 : 0.0;
  }
};

OutcomeCounts count_outcomes(std::span<const ExperimentRecord> records) noexcept;

/// Crash-reason tallies over a record batch (Crash outcomes only; Hang
/// records carry CrashReason::kNone and are not counted here).  Indexed by
/// static_cast<size_t>(fi::CrashReason).
struct CrashReasonCounts {
  static constexpr std::size_t kReasons =
      static_cast<std::size_t>(fi::CrashReason::kQuarantined) + 1;
  std::uint64_t by_reason[kReasons] = {};

  std::uint64_t of(fi::CrashReason reason) const noexcept {
    return by_reason[static_cast<std::size_t>(reason)];
  }
  /// Crashes only the isolation layer can observe (signals, bad exits).
  std::uint64_t isolation_crashes() const noexcept;
};

CrashReasonCounts count_crash_reasons(
    std::span<const ExperimentRecord> records) noexcept;

/// One line per nonzero reason, e.g. "non-finite 12 / SIGSEGV 3"; empty
/// string when there are no crashes.
std::string describe_crash_reasons(const CrashReasonCounts& counts);

}  // namespace ftb::campaign
