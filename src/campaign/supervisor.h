// Resilient campaign supervision over a persistent worker pool.
//
// run_experiments_sandboxed() tolerates misbehaving experiments but pays a
// fork() per batch and per death, and a campaign process itself can still
// be lost to a CI timeout or an OOM kill.  CampaignSupervisor drives the
// pre-forked fi::WorkerPool with full work-queue accounting so that a
// campaign over hazard kernels survives arbitrary worker mortality:
//
//   * experiments are dispatched to idle workers in chunks; a worker death
//     (classified through the CrashReason taxonomy) or a hang (missed
//     heartbeats, SIGKILLed) loses nothing -- results the worker published
//     before dying are kept and every unfinished experiment of its chunk
//     is requeued exactly once per event, so the final record set has no
//     lost and no duplicated experiments;
//   * a per-experiment *quarantine ledger* counts how many workers each
//     (site, bit) pair has killed.  The in-flight culprit of a death or
//     hang is requeued and retried until it reaches
//     SupervisorOptions::quarantine_after kills, then recorded as Crash
//     with CrashReason::kQuarantined and never dispatched again.  An
//     experiment whose worker was killed *externally* (the culprit was
//     innocent) simply succeeds on retry, so non-quarantined experiments
//     end with outcomes identical to the per-batch sandbox baseline;
//   * under resource pressure the pool shrinks (spawn retries with
//     exponential backoff, then abandonment) and, once no worker is left,
//     the supervisor degrades to the in-process executor -- except for
//     experiments with a nonzero ledger entry, which are recorded
//     kQuarantined rather than risk running a known worker-killer without
//     isolation;
//   * outcomes are deterministic, so checkpointed campaigns
//     (campaign/checkpoint.h) that route chunks through one long-lived
//     supervisor resume byte-identically after the supervisor itself is
//     SIGKILLed: the ledger rebuilds from scratch and lethal experiments
//     re-earn their quarantine records.
//
// Single-threaded like the sandbox layer: construct, run(), and destroy
// from one thread while any worker threads are idle.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "campaign/campaign.h"
#include "campaign/sample_space.h"
#include "fi/program.h"
#include "fi/sandbox.h"

namespace ftb::campaign {

/// Deadline substituted by campaign-driven paths (the supervisor's pool
/// heartbeat, checkpoint.cpp's sandbox batches, service job runners) when a
/// caller passes timeout 0.  0 means "no watchdog", which is acceptable for
/// interactive one-off runs but hangs an unattended campaign on the first
/// runaway experiment, so campaign entry points never let it through.
inline constexpr std::uint32_t kFallbackDeadlineMs = 2000;

struct SupervisorOptions {
  /// Pool shape: worker count, per-worker chunk capacity, heartbeat
  /// timeout, spawn/respawn backoff, and the spawn-failure testing seam.
  fi::WorkerPoolOptions pool;

  /// Experiments per dispatched chunk (clamped to pool.chunk_capacity).
  /// Smaller chunks cost more pipe round-trips but lose less requeue work
  /// per death.
  std::size_t chunk_size = 16;

  /// K: a (site, bit) pair that kills (or hangs) workers this many times is
  /// quarantined -- recorded as Crash/kQuarantined and never retried.
  int quarantine_after = 3;

  /// Supervisor poll cadence while all workers are busy.
  std::uint32_t poll_interval_us = 200;

  /// Once the pool has shrunk to zero workers, run the remaining
  /// experiments in-process (quarantining anything with a kill on its
  /// ledger).  Disable to get a std::runtime_error instead.
  bool allow_in_process_fallback = true;

  /// Optional telemetry sink (telemetry/events.h), forwarded to the worker
  /// pool when pool.telemetry is unset.  Emits supervisor.run spans,
  /// requeue/quarantine instants, queue-depth gauge, and supervisor.*
  /// counters.  Never owned; must outlive the supervisor.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Observability counters over the supervisor's lifetime.
struct SupervisorStats {
  fi::WorkerPoolStats pool;                // pool-level counters (live copy)
  std::uint64_t chunks_dispatched = 0;
  std::uint64_t worker_deaths = 0;         // deaths observed mid-chunk
  std::uint64_t worker_hangs = 0;          // heartbeat stalls mid-chunk
  std::uint64_t experiments_requeued = 0;  // chunk entries put back in queue
  std::uint64_t quarantined = 0;           // experiments recorded kQuarantined
  std::uint64_t fallback_experiments = 0;  // run in-process after degradation
};

class CampaignSupervisor {
 public:
  /// Forks the worker pool immediately.  `program` and `golden` must
  /// outlive the supervisor.
  CampaignSupervisor(const fi::Program& program, const fi::GoldenRun& golden,
                     SupervisorOptions options = {});
  ~CampaignSupervisor();
  CampaignSupervisor(const CampaignSupervisor&) = delete;
  CampaignSupervisor& operator=(const CampaignSupervisor&) = delete;

  /// Runs every listed experiment once and returns records in `ids` order.
  /// Callable repeatedly; the quarantine ledger and the workers persist
  /// across calls (that is the point -- checkpointed campaigns feed chunks
  /// through one supervisor).  Throws std::runtime_error only when the pool
  /// is empty and in-process fallback is disabled.
  std::vector<ExperimentRecord> run(std::span<const ExperimentId> ids);

  /// Kills the ledger has charged to `id` so far (0 when never blamed).
  int kill_count(ExperimentId id) const noexcept;

  /// Counters; `pool` is refreshed from the worker pool on every call.
  SupervisorStats stats() const;

  /// The underlying pool, exposed so tests can look up worker pids and
  /// kill or stop them externally.
  fi::WorkerPool& pool() noexcept { return pool_; }

 private:
  const fi::Program& program_;
  const fi::GoldenRun& golden_;
  SupervisorOptions options_;
  fi::WorkerPool pool_;
  std::unordered_map<ExperimentId, int> ledger_;
  SupervisorStats stats_;
};

}  // namespace ftb::campaign
