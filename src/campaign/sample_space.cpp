#include "campaign/sample_space.h"

namespace ftb::campaign {}
