// Progressive adaptive sampling (paper Section 3.4).  Rounds of 0.1% of the
// sample space are drawn -- uniformly at first, then biased towards sites
// with little information (p_i proportional to 1 / S_i).  After every round
// the boundary is rebuilt and used to "filter out many masked samples and
// shrink the potential sample space": experiments the current boundary
// already predicts masked are dropped from the candidate pool.  Sampling
// stops when a round finds (almost) no new masked cases -- the paper uses
// "95% of the new samples are SDC" -- or the pool runs dry.
#pragma once

#include <cstdint>
#include <vector>

#include "boundary/boundary.h"
#include "campaign/campaign.h"
#include "campaign/inference.h"
#include "campaign/supervisor.h"
#include "fi/executor.h"
#include "fi/program.h"
#include "util/thread_pool.h"

namespace ftb::campaign {

struct AdaptiveOptions {
  double round_fraction = 0.001;      // 0.1% of the space per round
  double stop_sdc_fraction = 0.95;    // stop when masked share <= 1 - this
  std::uint64_t min_round_samples = 32;
  std::size_t max_rounds = 10000;     // hard safety bound only
  std::uint64_t seed = 1;
  bool filter = true;                 // Section 3.5 filter stays on here
  std::size_t prop_buffer_cap = 32;
  double significance_rel_error = 1e-8;
  /// Route each round's experiments through a persistent CampaignSupervisor
  /// (campaign/supervisor.h) so hazard programs cannot take down the
  /// sampler; see run_and_accumulate_supervised for the evidence rules.
  bool use_supervisor = false;
  SupervisorOptions supervisor;

  /// Optional telemetry sink (telemetry/events.h): adaptive.round spans
  /// (with outcome counts and pool shrinkage args), the campaign.* batch
  /// metrics, and -- when use_supervisor is set and supervisor.telemetry is
  /// unset -- the supervisor/pool instrumentation too.  Never owned.
  telemetry::Telemetry* telemetry = nullptr;
};

struct AdaptiveRound {
  std::uint64_t candidates_before = 0;  // pool size when the round started
  OutcomeCounts counts;                 // outcomes of this round's samples
};

struct AdaptiveResult {
  boundary::FaultToleranceBoundary boundary;
  std::vector<ExperimentId> sampled_ids;  // every experiment actually run
  std::vector<ExperimentRecord> records;  // in run order
  std::vector<AdaptiveRound> rounds;
  std::vector<double> information;        // final S_i per site
  std::uint64_t space = 0;
  SupervisorStats supervisor_stats;       // populated when use_supervisor
  std::uint64_t nonfinite_skipped = 0;    // NaN/Inf propagation values dropped

  double sample_fraction() const noexcept {
    return space ? static_cast<double>(sampled_ids.size()) /
                       static_cast<double>(space)
                 : 0.0;
  }
};

/// Section 3.4 stop rule: stop once masked samples are <= (1 - stop_sdc
/// fraction) of the round's *silent* outcomes (masked + SDC).  The paper's
/// "95% of the new samples are SDC" speaks about the masked/SDC split only;
/// crashes, hangs, and quarantined experiments are detectable outcomes that
/// say nothing about how much masked space is left, so they are excluded
/// from the denominator -- a crash-heavy round must not end sampling while
/// the masked share among silent outcomes is still high.  A round with no
/// silent outcomes at all never stops the loop.
bool adaptive_should_stop(const OutcomeCounts& counts,
                          double stop_sdc_fraction) noexcept;

AdaptiveResult infer_adaptive(const fi::Program& program,
                              const fi::GoldenRun& golden,
                              const AdaptiveOptions& options,
                              util::ThreadPool& pool);

}  // namespace ftb::campaign
