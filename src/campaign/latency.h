// Detection-latency analysis: when a fault *is* detectable (the Crash
// class), how many dynamic instructions pass between the injection and the
// first non-finite value?  And for silent faults, how quickly does the
// corruption spread?  These distances drive practical decisions the
// SDC literature cares about -- checkpoint intervals and detector
// placement (Hiller et al., the paper's ref [14]) -- and complement the
// boundary, which says nothing about *when* a fault becomes visible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "campaign/campaign.h"
#include "fi/executor.h"
#include "fi/program.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace ftb::campaign {

struct LatencyReport {
  /// Crash (trap) latency in dynamic instructions, over sampled crash
  /// experiments: crash_site - injection_site.
  util::RunningStats crash_latency;

  /// Spread-90 latency for SDC experiments: dynamic instructions until 90%
  /// of the sites the corruption will ever touch significantly have been
  /// touched (relative error > significance).
  util::RunningStats sdc_spread90;

  /// Fraction of all touched-site counts per experiment (how much of the
  /// remaining execution a corruption reaches), for SDC experiments.
  util::RunningStats sdc_touched_fraction;

  std::uint64_t experiments = 0;
  std::uint64_t crashes = 0;
  std::uint64_t sdcs = 0;

  /// Crash experiments excluded from crash_latency because they carry no
  /// valid trap site: control-flow divergence, sandboxed signal deaths,
  /// hang kills, and quarantined experiments all report crash_site = 0
  /// (no non-finite value ever hit the trace).  Charging those would
  /// compute crash_site - site on unrelated numbers -- in release builds
  /// that underflows to a huge uint64 and wrecks the latency table.
  std::uint64_t crashes_without_trap_site = 0;
};

/// Folds one experiment record (plus its propagation diffs, empty for
/// non-SDC outcomes) into `report`.  Exposed separately from
/// measure_latency so tests can feed synthetic records; only crash records
/// whose crash_reason is kNonFinite with crash_site >= injection site
/// contribute to crash_latency, everything else lands in
/// crashes_without_trap_site.
void accumulate_latency(LatencyReport& report, const fi::GoldenRun& golden,
                        const ExperimentRecord& record,
                        std::span<const double> diffs,
                        double significance_rel_error);

/// Runs `ids` with propagation capture and aggregates the latency report.
/// `significance_rel_error` matches the paper's 1e-8 significance cut.
LatencyReport measure_latency(const fi::Program& program,
                              const fi::GoldenRun& golden,
                              std::span<const ExperimentId> ids,
                              util::ThreadPool& pool,
                              double significance_rel_error = 1e-8);

}  // namespace ftb::campaign
