#include "campaign/latency.h"

#include <vector>

#include "fi/fpbits.h"

namespace ftb::campaign {

void accumulate_latency(LatencyReport& report, const fi::GoldenRun& golden,
                        const ExperimentRecord& record,
                        std::span<const double> diffs,
                        double significance_rel_error) {
  const std::uint64_t site = site_of(record.id);
  switch (record.result.outcome) {
    case fi::Outcome::kCrash: {
      ++report.crashes;
      // Only a non-finite trap pins a trap site.  Control-flow divergence,
      // sandboxed signal deaths, and quarantined experiments report
      // crash_site = 0; subtracting the injection site from that would
      // underflow to a huge uint64.  Skip and count them instead.
      if (record.result.crash_reason == fi::CrashReason::kNonFinite &&
          record.result.crash_site >= site) {
        report.crash_latency.add(
            static_cast<double>(record.result.crash_site - site));
      } else {
        ++report.crashes_without_trap_site;
      }
      break;
    }
    case fi::Outcome::kSdc: {
      ++report.sdcs;
      // Collect the significant touches in execution order.
      std::vector<std::uint64_t> touched;
      for (std::uint64_t j = site; j < diffs.size(); ++j) {
        if (diffs[j] <= 0.0) continue;
        const double rel = fi::relative_error(golden.trace[j] + diffs[j],
                                              golden.trace[j]);
        if (rel > significance_rel_error) touched.push_back(j);
      }
      if (touched.empty()) break;
      const std::size_t index90 = (touched.size() * 9) / 10;
      const std::uint64_t site90 =
          touched[index90 < touched.size() ? index90 : touched.size() - 1];
      report.sdc_spread90.add(static_cast<double>(site90 - site));
      const std::uint64_t remaining = diffs.size() - site;
      report.sdc_touched_fraction.add(static_cast<double>(touched.size()) /
                                      static_cast<double>(remaining));
      break;
    }
    case fi::Outcome::kMasked:
      break;
    case fi::Outcome::kDetected:
      // Caught at the output check, after the run completed; latency is the
      // whole remaining trace by construction, so there is nothing to add.
      break;
    case fi::Outcome::kHang:
      // Sandbox-only outcome; no trap site or propagation data exists.
      break;
  }
}

LatencyReport measure_latency(const fi::Program& program,
                              const fi::GoldenRun& golden,
                              std::span<const ExperimentId> ids,
                              util::ThreadPool& pool,
                              double significance_rel_error) {
  LatencyReport report;
  report.experiments = ids.size();

  const auto consume = [&](const ExperimentRecord& record,
                           std::span<const double> diffs) {
    accumulate_latency(report, golden, record, diffs, significance_rel_error);
  };

  (void)run_experiments_compare(program, golden, ids, pool, consume);
  return report;
}

}  // namespace ftb::campaign
