#include "campaign/equivalence.h"

#include <algorithm>
#include <climits>
#include <cmath>
#include <map>
#include <numeric>
#include <tuple>

#include "boundary/accumulator.h"
#include "util/rng.h"

namespace ftb::campaign {

EquivalenceClasses::EquivalenceClasses(const fi::GoldenRun& golden,
                                       int magnitude_bits_per_bucket) {
  const fi::PhaseMap phases(golden.phases, golden.trace.size());
  class_of_.resize(golden.trace.size());

  using Key = std::tuple<std::size_t, bool, int>;  // phase, sign, bucket
  std::map<Key, std::size_t> ids;
  for (std::uint64_t site = 0; site < golden.trace.size(); ++site) {
    const double value = golden.trace[site];
    const std::size_t phase = phases.segment_index_of(site);
    const bool negative = std::signbit(value);
    // Exact zeros (and denormal dust) get their own bucket: their bit-flip
    // error spectrum differs fundamentally from normal values.
    const int bucket =
        value == 0.0 ? INT_MIN
                     : std::ilogb(std::fabs(value)) /
                           std::max(1, magnitude_bits_per_bucket);
    const Key key{phase, negative, bucket};
    const auto [it, inserted] = ids.try_emplace(key, members_.size());
    if (inserted) members_.emplace_back();
    class_of_[site] = it->second;
    members_[it->second].push_back(site);
  }
}

double EquivalenceClasses::mean_class_size() const noexcept {
  if (members_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& cls : members_) total += cls.size();
  return static_cast<double>(total) / static_cast<double>(members_.size());
}

EquivalenceInferenceResult infer_with_equivalence(
    const fi::Program& program, const fi::GoldenRun& golden,
    const EquivalenceInferenceOptions& options, util::ThreadPool& pool) {
  const EquivalenceClasses classes(golden, options.magnitude_bits_per_bucket);
  util::Rng rng(options.seed);

  EquivalenceInferenceResult result;
  result.classes = classes.class_count();
  result.mean_class_size = classes.mean_class_size();

  const std::uint64_t budget =
      options.budget ? options.budget
                     : std::max<std::uint64_t>(
                           64, golden.sample_space_size() / 100);

  // One pilot per class (random member), tested bit by bit in a shuffled
  // order; classes are visited round-robin, largest first, until the budget
  // runs out or every pilot is exhausted.
  struct PilotState {
    std::uint64_t site = 0;
    std::vector<std::uint64_t> bit_order;
    std::size_t next_bit = 0;
  };
  std::vector<PilotState> pilots(classes.class_count());
  std::vector<std::size_t> class_order(classes.class_count());
  std::iota(class_order.begin(), class_order.end(), std::size_t{0});
  std::sort(class_order.begin(), class_order.end(),
            [&](std::size_t a, std::size_t b) {
              return classes.members(a).size() > classes.members(b).size();
            });
  for (std::size_t cls = 0; cls < classes.class_count(); ++cls) {
    const auto members = classes.members(cls);
    pilots[cls].site = members[rng.next_below(members.size())];
    pilots[cls].bit_order.resize(fi::kBitsPerValue);
    std::iota(pilots[cls].bit_order.begin(), pilots[cls].bit_order.end(),
              std::uint64_t{0});
    util::shuffle(rng, pilots[cls].bit_order);
  }

  std::vector<ExperimentId> schedule;
  schedule.reserve(budget);
  bool progressed = true;
  while (schedule.size() < budget && progressed) {
    progressed = false;
    for (const std::size_t cls : class_order) {
      if (schedule.size() >= budget) break;
      PilotState& pilot = pilots[cls];
      if (pilot.next_bit >= pilot.bit_order.size()) continue;
      schedule.push_back(encode(
          pilot.site, static_cast<int>(pilot.bit_order[pilot.next_bit++])));
      progressed = true;
    }
  }

  // Run the pilot experiments through the standard accumulation pipeline
  // (pilot propagation data spreads thresholds like any masked run).
  boundary::BoundaryAccumulator accumulator(
      golden.trace.size(), {options.filter, options.prop_buffer_cap});
  std::vector<double> information(golden.trace.size(), 0.0);
  const std::vector<ExperimentRecord> records = run_and_accumulate(
      program, golden, schedule, pool, accumulator, information, 1e-8);
  result.counts = count_outcomes(records);
  result.sampled_ids = schedule;
  std::sort(result.sampled_ids.begin(), result.sampled_ids.end());

  // Broadcast: members without evidence of their own inherit their class
  // pilot's threshold (Relyzer's "pilot represents the population" step).
  const boundary::FaultToleranceBoundary direct = accumulator.finalize();
  std::vector<double> thresholds(direct.thresholds().begin(),
                                 direct.thresholds().end());
  for (std::size_t cls = 0; cls < classes.class_count(); ++cls) {
    const double pilot_threshold = direct.threshold(pilots[cls].site);
    if (pilot_threshold <= 0.0) continue;
    for (const std::uint64_t site : classes.members(cls)) {
      if (thresholds[site] == 0.0) thresholds[site] = pilot_threshold;
    }
  }
  result.boundary = boundary::FaultToleranceBoundary(std::move(thresholds));
  return result;
}

}  // namespace ftb::campaign
