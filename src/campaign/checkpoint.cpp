#include "campaign/checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <unordered_set>

#include "telemetry/events.h"

namespace ftb::campaign {

CheckpointRunResult run_campaign_checkpointed(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, const CheckpointOptions& options) {
  if (options.path.empty()) {
    throw std::invalid_argument(
        "run_campaign_checkpointed: journal path is empty");
  }
  const std::size_t flush_every = std::max<std::size_t>(1, options.flush_every);
  const std::string config_key = program.config_key();

  CheckpointRunResult result;
  std::error_code ec;
  if (std::filesystem::exists(options.path, ec)) {
    std::string error;
    auto journal = CampaignLog::load(options.path, &error);
    if (!journal) {
      // A journal that exists but does not parse is not a resumable state;
      // refusing beats silently redoing (or worse, double-counting) work.
      throw std::runtime_error("run_campaign_checkpointed: " + error);
    }
    if (journal->config_key() != config_key) {
      throw std::invalid_argument(
          "run_campaign_checkpointed: journal '" + options.path +
          "' belongs to configuration '" + journal->config_key() +
          "', not '" + config_key + "'");
    }
    result.log = std::move(*journal);
    result.resumed = true;
  } else {
    result.log = CampaignLog(config_key);
  }

  // Set-difference: the ids still owed after what the journal already holds.
  std::unordered_set<ExperimentId> done;
  done.reserve(result.log.size());
  for (const ExperimentRecord& record : result.log.records()) {
    done.insert(record.id);
  }
  std::vector<ExperimentId> remaining;
  remaining.reserve(ids.size());
  for (ExperimentId id : ids) {
    if (done.count(id) == 0) remaining.push_back(id);
  }
  result.skipped = ids.size() - remaining.size();

  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::default_pool();

  // One supervisor for the whole invocation: the worker pool is forked
  // once, and the quarantine ledger accumulates across chunks.
  std::optional<CampaignSupervisor> supervisor;
  if (options.use_supervisor) {
    SupervisorOptions supervisor_options = options.supervisor;
    if (supervisor_options.telemetry == nullptr) {
      supervisor_options.telemetry = options.telemetry;
    }
    // Density hints for snapshot placement: the ids still owed are exactly
    // where this invocation will fork, so hand their sites to
    // plan_checkpoints (fi/snapshot.h).  Placement is a speed knob only --
    // journal bytes are identical wherever the checkpoints land.
    if (supervisor_options.pool.use_snapshots &&
        supervisor_options.pool.snapshot.site_hints.empty()) {
      auto& hints = supervisor_options.pool.snapshot.site_hints;
      hints.reserve(remaining.size());
      for (ExperimentId id : remaining) {
        if (is_classic(id)) hints.push_back(site_of(id));
      }
    }
    supervisor.emplace(program, golden, supervisor_options);
  }

  const auto flush = [&] {
    telemetry::SpanScope span(options.telemetry, "checkpoint.flush",
                              "checkpoint");
    span.arg("records", static_cast<double>(result.log.size()));
    if (!result.log.save(options.path)) {
      throw std::runtime_error(
          "run_campaign_checkpointed: cannot write journal '" + options.path +
          "'");
    }
    ++result.flushes;
    if (telemetry::active(options.telemetry)) {
      options.telemetry->metrics().counter("checkpoint.flushes").add();
    }
  };

  const auto report = [&](std::span<const ExperimentRecord> chunk) {
    if (!options.on_progress) return;
    CheckpointProgress progress;
    progress.executed = result.executed;
    progress.total = remaining.size();
    progress.logged = result.log.size();
    progress.chunk = chunk;
    SupervisorStats stats_copy;
    if (supervisor) {
      stats_copy = supervisor->stats();
      progress.supervisor = &stats_copy;
    }
    options.on_progress(progress);
  };

  for (std::size_t begin = 0; begin < remaining.size(); begin += flush_every) {
    if (options.should_stop && options.should_stop()) {
      result.stopped = true;
      break;
    }
    const std::size_t end = std::min(begin + flush_every, remaining.size());
    const std::span<const ExperimentId> chunk(remaining.data() + begin,
                                              end - begin);
    telemetry::SpanScope chunk_span(options.telemetry, "checkpoint.chunk",
                                    "checkpoint");
    chunk_span.arg("experiments", static_cast<double>(chunk.size()));
    std::vector<ExperimentRecord> batch;
    if (supervisor) {
      batch = supervisor->run(chunk);
    } else if (options.use_sandbox) {
      // run_injected_sandboxed resets its stats output per batch, so
      // accumulate chunk stats by hand.  timeout_ms = 0 would disable the
      // watchdog and let one runaway flip hang the whole campaign, so an
      // unattended checkpointed run substitutes a fallback deadline
      // (derived from the supervisor heartbeat when one is configured).
      fi::SandboxOptions sandbox_options = options.sandbox;
      if (sandbox_options.timeout_ms == 0) {
        sandbox_options.timeout_ms =
            options.supervisor.pool.heartbeat_timeout_ms != 0
                ? options.supervisor.pool.heartbeat_timeout_ms
                : kFallbackDeadlineMs;
      }
      fi::SandboxStats chunk_stats;
      batch = run_experiments_sandboxed(program, golden, chunk, sandbox_options,
                                        &chunk_stats);
      result.sandbox_stats.children_spawned += chunk_stats.children_spawned;
      result.sandbox_stats.signal_deaths += chunk_stats.signal_deaths;
      result.sandbox_stats.watchdog_kills += chunk_stats.watchdog_kills;
      result.sandbox_stats.abnormal_exits += chunk_stats.abnormal_exits;
      result.sandbox_stats.spawn_retries += chunk_stats.spawn_retries;
      result.sandbox_stats.fallback_experiments +=
          chunk_stats.fallback_experiments;
    } else {
      batch = run_experiments(program, golden, chunk, pool);
    }
    result.log.append(batch);
    result.executed += batch.size();
    if (telemetry::active(options.telemetry)) {
      options.telemetry->metrics()
          .counter("checkpoint.experiments")
          .add(batch.size());
    }
    flush();
    report(batch);
  }

  result.log.dedupe();
  flush();  // final flush persists the deduped journal (complete or drained)
  report({});
  if (supervisor) result.supervisor_stats = supervisor->stats();
  return result;
}

}  // namespace ftb::campaign
