#include "campaign/adaptive.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "boundary/accumulator.h"
#include "boundary/predictor.h"
#include "campaign/sampler.h"
#include "telemetry/events.h"
#include "util/rng.h"

namespace ftb::campaign {

bool adaptive_should_stop(const OutcomeCounts& counts,
                          double stop_sdc_fraction) noexcept {
  const std::uint64_t silent = counts.masked + counts.sdc;
  if (silent == 0) return false;  // no silent evidence -> keep sampling
  const double masked_share =
      static_cast<double>(counts.masked) / static_cast<double>(silent);
  return masked_share <= 1.0 - stop_sdc_fraction;
}

AdaptiveResult infer_adaptive(const fi::Program& program,
                              const fi::GoldenRun& golden,
                              const AdaptiveOptions& options,
                              util::ThreadPool& pool) {
  const std::uint64_t space = golden.sample_space_size();
  const std::uint64_t round_size = std::max<std::uint64_t>(
      options.min_round_samples,
      static_cast<std::uint64_t>(
          std::llround(options.round_fraction * static_cast<double>(space))));

  AdaptiveResult result;
  result.space = space;
  result.information.assign(golden.trace.size(), 0.0);

  boundary::BoundaryAccumulator accumulator(
      golden.trace.size(), {options.filter, options.prop_buffer_cap});

  // The candidate pool: everything not yet tested and not yet predicted
  // masked by the evolving boundary.
  std::vector<ExperimentId> candidates(space);
  for (std::uint64_t id = 0; id < space; ++id) candidates[id] = id;

  util::Rng rng(options.seed);

  // The supervisor (and its forked workers) persists across rounds, so the
  // quarantine ledger keeps protecting later rounds from lethal flips
  // rediscovered by the bias.
  std::optional<CampaignSupervisor> supervisor;
  if (options.use_supervisor) {
    SupervisorOptions supervisor_options = options.supervisor;
    if (supervisor_options.telemetry == nullptr) {
      supervisor_options.telemetry = options.telemetry;
    }
    supervisor.emplace(program, golden, supervisor_options);
  }

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    if (candidates.empty()) break;

    telemetry::SpanScope round_span(options.telemetry, "adaptive.round",
                                    "campaign");
    round_span.arg("round", static_cast<double>(round));

    AdaptiveRound round_stats;
    round_stats.candidates_before = candidates.size();

    // Round 0 has no information yet, so the bias reduces to uniform.
    const std::vector<ExperimentId> picked = sample_biased(
        rng, candidates, result.information, round_size);

    const std::vector<ExperimentRecord> records =
        supervisor ? run_and_accumulate_supervised(
                         program, golden, picked, pool, *supervisor,
                         accumulator, result.information,
                         options.significance_rel_error, options.telemetry)
                   : run_and_accumulate(program, golden, picked, pool,
                                        accumulator, result.information,
                                        options.significance_rel_error,
                                        options.telemetry);
    round_stats.counts = count_outcomes(records);
    result.rounds.push_back(round_stats);
    result.sampled_ids.insert(result.sampled_ids.end(), picked.begin(),
                              picked.end());
    result.records.insert(result.records.end(), records.begin(),
                          records.end());

    // Rebuild the boundary and shrink the pool: drop tested experiments and
    // everything the boundary now predicts masked.
    const boundary::FaultToleranceBoundary current = accumulator.finalize();
    std::vector<ExperimentId> next_pool;
    next_pool.reserve(candidates.size());
    for (const ExperimentId id : candidates) {
      if (std::binary_search(picked.begin(), picked.end(), id)) {
        continue;  // just tested (sample_biased returns sorted ids)
      }
      const std::uint64_t site = site_of(id);
      const fi::Outcome predicted = boundary::predict_flip(
          current, site, golden.trace[site], bit_of(id));
      if (predicted == fi::Outcome::kMasked) continue;  // filtered out
      next_pool.push_back(id);
    }
    candidates.swap(next_pool);

    if (telemetry::active(options.telemetry)) {
      round_span.arg("picked", static_cast<double>(picked.size()));
      round_span.arg("masked", static_cast<double>(round_stats.counts.masked));
      round_span.arg("sdc", static_cast<double>(round_stats.counts.sdc));
      round_span.arg("crash", static_cast<double>(round_stats.counts.crash));
      round_span.arg("hang", static_cast<double>(round_stats.counts.hang));
      round_span.arg("candidates_before",
                     static_cast<double>(round_stats.candidates_before));
      round_span.arg("candidates_after",
                     static_cast<double>(candidates.size()));
      options.telemetry->metrics()
          .gauge("adaptive.candidate_pool")
          .set(static_cast<double>(candidates.size()));
      options.telemetry->metrics().counter("adaptive.rounds").add();
    }

    // Stop once a round yields (almost) no new masked cases among its
    // silent outcomes (see adaptive_should_stop for the Section 3.4
    // alignment: crashes/hangs are excluded from the denominator).
    if (adaptive_should_stop(round_stats.counts, options.stop_sdc_fraction)) {
      break;
    }
  }

  result.boundary = accumulator.finalize();
  std::sort(result.sampled_ids.begin(), result.sampled_ids.end());
  if (supervisor) result.supervisor_stats = supervisor->stats();
  result.nonfinite_skipped = accumulator.nonfinite_skipped();
  publish_accumulator_metrics(options.telemetry, accumulator);
  return result;
}

}  // namespace ftb::campaign
