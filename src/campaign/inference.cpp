#include "campaign/inference.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "boundary/predictor.h"
#include "campaign/sampler.h"
#include "fi/fpbits.h"
#include "telemetry/events.h"
#include "util/rng.h"

namespace ftb::campaign {

void publish_accumulator_metrics(
    telemetry::Telemetry* telemetry,
    const boundary::BoundaryAccumulator& accumulator) {
  if (!telemetry::active(telemetry)) return;
  auto& metrics = telemetry->metrics();
  metrics.gauge("boundary.nonfinite_skipped")
      .set(static_cast<double>(accumulator.nonfinite_skipped()));
  metrics.gauge("boundary.filter_rejected")
      .set(static_cast<double>(accumulator.filter_rejected()));
  metrics.gauge("boundary.prop_evicted")
      .set(static_cast<double>(accumulator.prop_evicted()));
}

std::vector<ExperimentRecord> run_and_accumulate(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, util::ThreadPool& pool,
    boundary::BoundaryAccumulator& accumulator,
    std::vector<double>& site_information, double significance_rel_error,
    telemetry::Telemetry* telemetry) {
  assert(site_information.size() == golden.trace.size());

  telemetry::SpanScope span(telemetry, "campaign.batch", "campaign");
  span.arg("experiments", static_cast<double>(ids.size()));
  const std::uint64_t batch_start_ns =
      telemetry::active(telemetry) ? telemetry->now_ns() : 0;

  const auto consume = [&](const ExperimentRecord& record,
                           std::span<const double> diffs) {
    // Burst and memory-resident experiments (mode-tagged ids) are journaled
    // like any other but describe a different fault model than the (site,
    // bit) boundary -- their "site" field is a word index, not a trace
    // index.  They never feed Algorithm 1.
    if (!is_classic(record.id)) return;
    const std::uint64_t site = site_of(record.id);
    const int bit = bit_of(record.id);

    accumulator.record_injection(site, bit, record.result.outcome,
                                 record.result.injected_error);
    if (record.result.outcome == fi::Outcome::kMasked) {
      accumulator.record_masked_propagation(diffs);
    }

    // Information counts (paper Figure 4 row 2, Section 3.4 bias): how
    // often a site received a significant injection or significant
    // propagated corruption.  diffs[site] is the injected error itself, so
    // one pass covers both contributions.
    for (std::uint64_t j = site; j < diffs.size(); ++j) {
      if (diffs[j] <= 0.0) continue;
      const double rel = fi::relative_error(golden.trace[j] + diffs[j],
                                            golden.trace[j]);
      if (rel > significance_rel_error) site_information[j] += 1.0;
    }
  };

  std::vector<ExperimentRecord> records =
      run_experiments_compare(program, golden, ids, pool, consume);

  if (telemetry::active(telemetry)) {
    auto& metrics = telemetry->metrics();
    metrics.counter("campaign.experiments").add(ids.size());
    const std::uint64_t elapsed_ns = telemetry->now_ns() - batch_start_ns;
    metrics.histogram("campaign.batch_ns").record(elapsed_ns);
    if (elapsed_ns > 0) {
      metrics.gauge("campaign.experiments_per_s")
          .set(static_cast<double>(ids.size()) * 1e9 /
               static_cast<double>(elapsed_ns));
    }
    publish_accumulator_metrics(telemetry, accumulator);
  }
  return records;
}

std::vector<ExperimentRecord> run_and_accumulate_supervised(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, util::ThreadPool& pool,
    CampaignSupervisor& supervisor,
    boundary::BoundaryAccumulator& accumulator,
    std::vector<double>& site_information, double significance_rel_error,
    telemetry::Telemetry* telemetry) {
  assert(site_information.size() == golden.trace.size());

  // Pass 1, isolated: classify every experiment behind the worker pool.
  std::vector<ExperimentRecord> records = supervisor.run(ids);

  // Pass 2, in-process: experiments a worker ran to completion are safe to
  // repeat here (outcomes are deterministic), which is the only way to get
  // their propagation diffs.  Everything that killed or hung a worker --
  // or was quarantined -- must never execute in this process.
  std::vector<ExperimentId> safe;
  safe.reserve(records.size());
  for (const ExperimentRecord& record : records) {
    const bool unsafe =
        record.result.outcome == fi::Outcome::kHang ||
        fi::is_isolation_reason(record.result.crash_reason);
    if (!unsafe) {
      safe.push_back(record.id);
      continue;
    }
    if (!is_classic(record.id)) continue;  // not boundary evidence
    const std::uint64_t site = site_of(record.id);
    accumulator.record_injection(site, bit_of(record.id),
                                 record.result.outcome,
                                 record.result.injected_error);
    // A flip that takes down a process is self-evidently significant at
    // its injection site; its downstream propagation is unobservable.
    site_information[site] += 1.0;
  }
  run_and_accumulate(program, golden, safe, pool, accumulator,
                     site_information, significance_rel_error, telemetry);
  return records;
}

InferenceResult infer_uniform(const fi::Program& program,
                              const fi::GoldenRun& golden,
                              const InferenceOptions& options,
                              util::ThreadPool& pool) {
  const std::uint64_t space = golden.sample_space_size();
  const auto k = static_cast<std::uint64_t>(
      std::llround(options.sample_fraction * static_cast<double>(space)));

  util::Rng rng(options.seed);
  InferenceResult result;
  result.sampled_ids = sample_uniform(rng, space, std::max<std::uint64_t>(k, 1));
  result.information.assign(golden.trace.size(), 0.0);

  boundary::BoundaryAccumulator accumulator(
      golden.trace.size(), {options.filter, options.prop_buffer_cap});
  {
    telemetry::SpanScope span(options.telemetry, "infer.uniform", "campaign");
    span.arg("experiments", static_cast<double>(result.sampled_ids.size()));
    result.records =
        run_and_accumulate(program, golden, result.sampled_ids, pool,
                           accumulator, result.information,
                           options.significance_rel_error, options.telemetry);
  }
  result.counts = count_outcomes(result.records);
  result.boundary = accumulator.finalize();
  result.nonfinite_skipped = accumulator.nonfinite_skipped();
  publish_accumulator_metrics(options.telemetry, accumulator);
  return result;
}

util::Confusion confusion_on_records(
    const boundary::FaultToleranceBoundary& boundary,
    std::span<const double> golden_trace,
    std::span<const ExperimentRecord> records) {
  util::Confusion confusion;
  for (const ExperimentRecord& record : records) {
    const std::uint64_t site = site_of(record.id);
    const fi::Outcome predicted = boundary::predict_flip(
        boundary, site, golden_trace[site], bit_of(record.id));
    if (predicted == fi::Outcome::kCrash) continue;
    const bool predicted_masked = predicted == fi::Outcome::kMasked;
    const bool actually_masked = record.result.outcome == fi::Outcome::kMasked;
    if (predicted_masked && actually_masked) {
      ++confusion.true_positive;
    } else if (predicted_masked) {
      ++confusion.false_positive;
    } else if (actually_masked) {
      ++confusion.false_negative;
    } else {
      ++confusion.true_negative;
    }
  }
  return confusion;
}

}  // namespace ftb::campaign
