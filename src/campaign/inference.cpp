#include "campaign/inference.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "boundary/predictor.h"
#include "campaign/sampler.h"
#include "fi/fpbits.h"
#include "util/rng.h"

namespace ftb::campaign {

std::vector<ExperimentRecord> run_and_accumulate(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const ExperimentId> ids, util::ThreadPool& pool,
    boundary::BoundaryAccumulator& accumulator,
    std::vector<double>& site_information, double significance_rel_error) {
  assert(site_information.size() == golden.trace.size());

  const auto consume = [&](const ExperimentRecord& record,
                           std::span<const double> diffs) {
    const std::uint64_t site = site_of(record.id);
    const int bit = bit_of(record.id);

    accumulator.record_injection(site, bit, record.result.outcome,
                                 record.result.injected_error);
    if (record.result.outcome == fi::Outcome::kMasked) {
      accumulator.record_masked_propagation(diffs);
    }

    // Information counts (paper Figure 4 row 2, Section 3.4 bias): how
    // often a site received a significant injection or significant
    // propagated corruption.  diffs[site] is the injected error itself, so
    // one pass covers both contributions.
    for (std::uint64_t j = site; j < diffs.size(); ++j) {
      if (diffs[j] <= 0.0) continue;
      const double rel = fi::relative_error(golden.trace[j] + diffs[j],
                                            golden.trace[j]);
      if (rel > significance_rel_error) site_information[j] += 1.0;
    }
  };

  return run_experiments_compare(program, golden, ids, pool, consume);
}

InferenceResult infer_uniform(const fi::Program& program,
                              const fi::GoldenRun& golden,
                              const InferenceOptions& options,
                              util::ThreadPool& pool) {
  const std::uint64_t space = golden.sample_space_size();
  const auto k = static_cast<std::uint64_t>(
      std::llround(options.sample_fraction * static_cast<double>(space)));

  util::Rng rng(options.seed);
  InferenceResult result;
  result.sampled_ids = sample_uniform(rng, space, std::max<std::uint64_t>(k, 1));
  result.information.assign(golden.trace.size(), 0.0);

  boundary::BoundaryAccumulator accumulator(
      golden.trace.size(), {options.filter, options.prop_buffer_cap});
  result.records =
      run_and_accumulate(program, golden, result.sampled_ids, pool,
                         accumulator, result.information,
                         options.significance_rel_error);
  result.counts = count_outcomes(result.records);
  result.boundary = accumulator.finalize();
  return result;
}

util::Confusion confusion_on_records(
    const boundary::FaultToleranceBoundary& boundary,
    std::span<const double> golden_trace,
    std::span<const ExperimentRecord> records) {
  util::Confusion confusion;
  for (const ExperimentRecord& record : records) {
    const std::uint64_t site = site_of(record.id);
    const fi::Outcome predicted = boundary::predict_flip(
        boundary, site, golden_trace[site], bit_of(record.id));
    if (predicted == fi::Outcome::kCrash) continue;
    const bool predicted_masked = predicted == fi::Outcome::kMasked;
    const bool actually_masked = record.result.outcome == fi::Outcome::kMasked;
    if (predicted_masked && actually_masked) {
      ++confusion.true_positive;
    } else if (predicted_masked) {
      ++confusion.false_positive;
    } else if (actually_masked) {
      ++confusion.false_negative;
    } else {
      ++confusion.true_negative;
    }
  }
  return confusion;
}

}  // namespace ftb::campaign
