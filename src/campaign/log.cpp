#include "campaign/log.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/cache.h"

namespace ftb::campaign {

namespace {

constexpr std::uint64_t kMagic = 0x4654422d434c4f47ull;  // "FTB-CLOG"
constexpr std::uint64_t kVersion = 1;

}  // namespace

void CampaignLog::append(std::span<const ExperimentRecord> batch) {
  records_.insert(records_.end(), batch.begin(), batch.end());
}

void CampaignLog::dedupe() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const ExperimentRecord& a, const ExperimentRecord& b) {
                     return a.id < b.id;
                   });
  records_.erase(std::unique(records_.begin(), records_.end(),
                             [](const ExperimentRecord& a,
                                const ExperimentRecord& b) {
                               return a.id == b.id;
                             }),
                 records_.end());
}

void CampaignLog::merge(const CampaignLog& other) {
  if (other.config_key_ != config_key_) {
    throw std::invalid_argument("CampaignLog::merge: config key mismatch ('" +
                                config_key_ + "' vs '" + other.config_key_ +
                                "')");
  }
  append(other.records_);
  dedupe();
}

std::vector<ExperimentId> CampaignLog::ids() const {
  std::vector<ExperimentId> out;
  out.reserve(records_.size());
  for (const ExperimentRecord& record : records_) out.push_back(record.id);
  std::sort(out.begin(), out.end());
  return out;
}

std::string CampaignLog::serialize() const {
  util::BinaryWriter writer;
  writer.put_u64(kMagic);
  writer.put_u64(kVersion);
  writer.put_string(config_key_);
  writer.put_u64(records_.size());
  for (const ExperimentRecord& record : records_) {
    writer.put_u64(record.id);
    writer.put_u64(static_cast<std::uint64_t>(record.result.outcome));
    writer.put_f64(record.result.injected_error);
    writer.put_f64(record.result.output_error);
    writer.put_u64(record.result.crash_site);
  }
  return {writer.buffer().begin(), writer.buffer().end()};
}

std::optional<CampaignLog> CampaignLog::deserialize(
    const std::string& payload) {
  try {
    util::BinaryReader reader(
        std::vector<std::uint8_t>(payload.begin(), payload.end()));
    if (reader.get_u64() != kMagic) return std::nullopt;
    if (reader.get_u64() != kVersion) return std::nullopt;
    CampaignLog log(reader.get_string());
    const std::uint64_t count = reader.get_u64();
    log.records_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      ExperimentRecord record;
      record.id = reader.get_u64();
      const std::uint64_t raw = reader.get_u64();
      if (raw > static_cast<std::uint64_t>(fi::Outcome::kCrash)) {
        return std::nullopt;
      }
      record.result.outcome = static_cast<fi::Outcome>(raw);
      record.result.injected_error = reader.get_f64();
      record.result.output_error = reader.get_f64();
      record.result.crash_site = reader.get_u64();
      log.records_.push_back(record);
    }
    return log;
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

bool CampaignLog::save(const std::string& path) const {
  const std::string payload = serialize();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

std::optional<CampaignLog> CampaignLog::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  const std::string payload{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
  return deserialize(payload);
}

boundary::FaultToleranceBoundary boundary_from_log(
    const fi::Program& program, const fi::GoldenRun& golden,
    const CampaignLog& log, const boundary::AccumulatorOptions& options,
    util::ThreadPool& pool) {
  if (log.config_key() != program.config_key()) {
    throw std::invalid_argument(
        "boundary_from_log: log was recorded for a different configuration");
  }
  boundary::BoundaryAccumulator accumulator(golden.trace.size(), options);

  // Injected-error evidence straight from the records; collect the masked
  // ids for the propagation pass.
  std::vector<ExperimentId> masked_ids;
  for (const ExperimentRecord& record : log.records()) {
    accumulator.record_injection(site_of(record.id), bit_of(record.id),
                                 record.result.outcome,
                                 record.result.injected_error);
    if (record.result.outcome == fi::Outcome::kMasked) {
      masked_ids.push_back(record.id);
    }
  }

  const auto consume = [&](const ExperimentRecord&,
                           std::span<const double> diffs) {
    accumulator.record_masked_propagation(diffs);
  };
  (void)run_experiments_compare(program, golden, masked_ids, pool, consume);
  return accumulator.finalize();
}

}  // namespace ftb::campaign
