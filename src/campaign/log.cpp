#include "campaign/log.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "fi/outcome.h"
#include "util/cache.h"
#include "util/durable_file.h"

namespace ftb::campaign {

namespace {

constexpr std::uint64_t kMagic = 0x4654422d434c4f47ull;  // "FTB-CLOG"
// v2: adds a per-record crash_reason byte and a trailing CRC-32 frame check.
// v3: adds the kDetected outcome and a per-record flags word (bit 0 =
// detector_fired).  v2 logs still load (flags default to 0).
constexpr std::uint64_t kVersion = 3;
constexpr std::uint64_t kMinVersion = 2;

constexpr std::uint64_t kFlagDetectorFired = 1;

std::optional<CampaignLog> fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return std::nullopt;
}

}  // namespace

void CampaignLog::append(std::span<const ExperimentRecord> batch) {
  records_.insert(records_.end(), batch.begin(), batch.end());
}

void CampaignLog::dedupe() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const ExperimentRecord& a, const ExperimentRecord& b) {
                     return a.id < b.id;
                   });
  records_.erase(std::unique(records_.begin(), records_.end(),
                             [](const ExperimentRecord& a,
                                const ExperimentRecord& b) {
                               return a.id == b.id;
                             }),
                 records_.end());
}

void CampaignLog::merge(const CampaignLog& other) {
  if (other.config_key_ != config_key_) {
    throw std::invalid_argument("CampaignLog::merge: config key mismatch ('" +
                                config_key_ + "' vs '" + other.config_key_ +
                                "')");
  }
  append(other.records_);
  dedupe();
}

std::vector<ExperimentId> CampaignLog::ids() const {
  std::vector<ExperimentId> out;
  out.reserve(records_.size());
  for (const ExperimentRecord& record : records_) out.push_back(record.id);
  std::sort(out.begin(), out.end());
  return out;
}

std::string CampaignLog::serialize() const {
  util::BinaryWriter writer;
  writer.put_u64(kMagic);
  writer.put_u64(kVersion);
  writer.put_string(config_key_);
  writer.put_u64(records_.size());
  for (const ExperimentRecord& record : records_) {
    writer.put_u64(record.id);
    writer.put_u64(static_cast<std::uint64_t>(record.result.outcome));
    writer.put_u64(static_cast<std::uint64_t>(record.result.crash_reason));
    writer.put_f64(record.result.injected_error);
    writer.put_f64(record.result.output_error);
    writer.put_u64(record.result.crash_site);
    writer.put_u64(record.result.detector_fired ? kFlagDetectorFired : 0);
  }
  // Trailing CRC-32 of everything written so far, stored as a u64 so the
  // whole file stays 8-byte framed.
  const std::uint32_t crc =
      util::crc32(writer.buffer().data(), writer.buffer().size());
  writer.put_u64(crc);
  return {writer.buffer().begin(), writer.buffer().end()};
}

std::optional<CampaignLog> CampaignLog::deserialize(const std::string& payload,
                                                    std::string* error) {
  // The CRC is checked up front: a frame that fails it is corrupt, and any
  // decode error past this point would only describe a symptom of that.
  if (payload.size() < 4 * 8) {
    return fail(error, "campaign log truncated: " +
                           std::to_string(payload.size()) +
                           " bytes is smaller than the fixed header");
  }
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(payload.data());
  const std::size_t body = payload.size() - 8;
  std::uint64_t stored_crc = 0;
  for (int i = 0; i < 8; ++i) {
    stored_crc |= static_cast<std::uint64_t>(bytes[body + i]) << (8 * i);
  }
  const std::uint32_t actual_crc = util::crc32(bytes, body);
  try {
    util::BinaryReader reader(std::vector<std::uint8_t>(bytes, bytes + body));
    if (reader.get_u64() != kMagic) {
      return fail(error, "campaign log has bad magic (not an FTB-CLOG file)");
    }
    const std::uint64_t version = reader.get_u64();
    if (version < kMinVersion || version > kVersion) {
      return fail(error, "campaign log has unsupported version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kMinVersion) + ".." +
                             std::to_string(kVersion) + ")");
    }
    if (stored_crc != actual_crc) {
      return fail(error,
                  "campaign log CRC mismatch (file is corrupt or was "
                  "truncated mid-write)");
    }
    CampaignLog log(reader.get_string());
    const std::uint64_t count = reader.get_u64();
    log.records_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      ExperimentRecord record;
      record.id = reader.get_u64();
      const std::uint64_t raw = reader.get_u64();
      if (raw > static_cast<std::uint64_t>(fi::Outcome::kDetected)) {
        // Name the value so a v-next log fails readably on this binary.
        return fail(error, "campaign log record " + std::to_string(i) +
                               " has unsupported outcome " +
                               fi::outcome_name(raw) +
                               " (raw value " + std::to_string(raw) +
                               "; this binary knows outcomes up to " +
                               fi::outcome_name(static_cast<std::uint64_t>(
                                   fi::Outcome::kDetected)) +
                               ")");
      }
      record.result.outcome = static_cast<fi::Outcome>(raw);
      const std::uint64_t reason = reader.get_u64();
      if (reason > static_cast<std::uint64_t>(fi::CrashReason::kQuarantined)) {
        return fail(error, "campaign log record " + std::to_string(i) +
                               " has invalid crash reason " +
                               std::to_string(reason));
      }
      record.result.crash_reason = static_cast<fi::CrashReason>(reason);
      record.result.injected_error = reader.get_f64();
      record.result.output_error = reader.get_f64();
      record.result.crash_site = reader.get_u64();
      if (version >= 3) {
        const std::uint64_t flags = reader.get_u64();
        record.result.detector_fired = (flags & kFlagDetectorFired) != 0;
      }
      log.records_.push_back(record);
    }
    return log;
  } catch (const std::runtime_error& e) {
    return fail(error, std::string("campaign log truncated: ") + e.what());
  }
}

bool CampaignLog::save(const std::string& path) const {
  // Durable publish (tmp + fsync + rename + parent-dir fsync): a journal
  // flush is the checkpoint the resume path trusts, so it must survive a
  // crash, not just a concurrent reader.
  return util::write_file_durable(path, serialize());
}

std::optional<CampaignLog> CampaignLog::load(const std::string& path,
                                             std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(error, "cannot open campaign log '" + path + "'");
  const std::string payload{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
  std::string detail;
  auto log = deserialize(payload, &detail);
  if (!log) return fail(error, "'" + path + "': " + detail);
  return log;
}

boundary::FaultToleranceBoundary boundary_from_log(
    const fi::Program& program, const fi::GoldenRun& golden,
    const CampaignLog& log, const boundary::AccumulatorOptions& options,
    util::ThreadPool& pool) {
  if (log.config_key() != program.config_key()) {
    throw std::invalid_argument(
        "boundary_from_log: log was recorded for a different configuration");
  }
  boundary::BoundaryAccumulator accumulator(golden.trace.size(), options);

  // Injected-error evidence straight from the records; collect the masked
  // ids for the propagation pass.  Only classic (site, bit) experiments
  // feed the boundary: burst and memory-resident records (fi/memfault.h)
  // are journaled alongside but describe a different fault model than the
  // one the paper's boundary is defined over.
  std::vector<ExperimentId> masked_ids;
  for (const ExperimentRecord& record : log.records()) {
    if (!is_classic(record.id)) continue;
    accumulator.record_injection(site_of(record.id), bit_of(record.id),
                                 record.result.outcome,
                                 record.result.injected_error);
    if (record.result.outcome == fi::Outcome::kMasked) {
      masked_ids.push_back(record.id);
    }
  }

  const auto consume = [&](const ExperimentRecord&,
                           std::span<const double> diffs) {
    accumulator.record_masked_propagation(diffs);
  };
  (void)run_experiments_compare(program, golden, masked_ids, pool, consume);
  return accumulator.finalize();
}

}  // namespace ftb::campaign
