#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace ftb::net {

Client::Client(ClientOptions options)
    : options_(std::move(options)), decoder_({options_.max_frame_payload}) {}

Client::~Client() = default;

bool Client::connect(std::string* error) {
  if (fd_.valid()) return true;
  std::string last_error = "connect was never attempted";
  const bool ok = util::retry_with_backoff(options_.connect_retry, [&] {
    fd_ = connect_tcp(options_.host, options_.port, &last_error);
    return fd_.valid();
  });
  if (!ok && error != nullptr) *error = last_error;
  if (ok) decoder_ = FrameDecoder({options_.max_frame_payload});
  return ok;
}

void Client::close() {
  fd_.reset();
  decoder_ = FrameDecoder({options_.max_frame_payload});
}

bool Client::send(const Frame& frame, std::string* error) {
  if (!fd_.valid()) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  // Frames that carry no deadline of their own inherit the client-wide one.
  const Frame* to_send = &frame;
  Frame stamped;
  if (frame.deadline_ms == 0 && options_.deadline_ms != 0) {
    stamped = frame;
    stamped.deadline_ms = options_.deadline_ms;
    to_send = &stamped;
  }
  const std::vector<std::uint8_t> bytes = encode_frame(*to_send);
  if (!send_all(fd_.get(), bytes.data(), bytes.size(), error)) {
    close();
    return false;
  }
  return true;
}

std::optional<Frame> Client::recv(std::string* error,
                                  std::uint32_t timeout_ms) {
  if (!fd_.valid()) {
    if (error != nullptr) *error = "not connected";
    return std::nullopt;
  }
  if (timeout_ms == 0) timeout_ms = options_.recv_timeout_ms;
  Frame frame;
  for (;;) {
    std::string pop_error;
    switch (decoder_.pop(&frame, &pop_error)) {
      case FrameDecoder::Status::kFrame:
        return frame;
      case FrameDecoder::Status::kError:
        if (error != nullptr) *error = pop_error;
        close();
        return std::nullopt;
      case FrameDecoder::Status::kNeedMore:
        break;
    }
    std::uint8_t buf[16384];
    const long n = recv_some(fd_.get(), buf, sizeof(buf), timeout_ms, error);
    if (n < 0) return std::nullopt;  // timeout or error, diagnosed
    if (n == 0) {
      if (error != nullptr) *error = "server closed the connection";
      close();
      return std::nullopt;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

std::optional<Frame> Client::call(const Frame& request, std::string* error) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::string step_error;
    if (!connect(&step_error)) {
      if (error != nullptr) *error = step_error;
      return std::nullopt;
    }
    if (!send(request, &step_error)) {
      if (error != nullptr) *error = step_error;
      continue;  // connection was torn down; reconnect once
    }
    auto reply = recv(&step_error);
    if (reply.has_value()) return reply;
    if (error != nullptr) *error = step_error;
    if (connected()) return std::nullopt;  // timeout, not a lost connection
  }
  return std::nullopt;
}

std::optional<Frame> Client::call_backoff(
    const Frame& request,
    const std::function<std::optional<std::uint64_t>(const Frame&)>&
        retry_hint,
    const util::RetryOptions& retry, std::string* error) {
  std::optional<Frame> last = call(request, error);
  if (!last.has_value()) return std::nullopt;
  std::optional<std::uint64_t> hint = retry_hint(*last);
  if (!hint.has_value()) return last;

  // The server told us when to come back; honour the hint before the first
  // retry, then let it seed the (growing, jittered) backoff so a stampede
  // of shed clients does not return in lockstep.
  util::RetryOptions policy = retry;
  if (*hint > 0) {
    policy.initial_backoff_ms = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(*hint, 60'000));
  }
  std::this_thread::sleep_for(
      std::chrono::milliseconds(policy.initial_backoff_ms));
  bool transport_failed = false;
  util::retry_with_backoff(policy, [&] {
    std::string step_error;
    std::optional<Frame> reply = call(request, &step_error);
    if (!reply.has_value()) {
      if (error != nullptr) *error = step_error;
      transport_failed = true;
      return true;  // stop: transport is gone, backoff will not help
    }
    last = std::move(reply);
    return !retry_hint(*last).has_value();  // stop once the reply is final
  });
  if (transport_failed) return std::nullopt;
  return last;
}

}  // namespace ftb::net
