// Thin POSIX socket helpers shared by the epoll server and the blocking
// client: an RAII fd wrapper plus loopback TCP listen/connect.  Everything
// here reports failure through std::string diagnostics rather than errno
// spelunking at the call sites.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace ftb::net {

/// Owns a file descriptor; closes it on destruction.  -1 means "none".
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// True when this build/platform has the POSIX socket + epoll machinery the
/// service layer needs (Linux).  All other entry points below fail with a
/// diagnostic when this is false.
bool net_supported() noexcept;

/// Marks `fd` non-blocking (and close-on-exec).  Returns false on failure.
bool set_nonblocking(int fd) noexcept;

/// Binds and listens on `bind_addr:port` (TCP, SO_REUSEADDR).  `port` 0
/// picks an ephemeral port; `*actual_port` receives the bound port.  Returns
/// an invalid Fd and a diagnostic in `error` on failure.
Fd listen_tcp(const std::string& bind_addr, std::uint16_t port,
              std::uint16_t* actual_port, std::string* error);

/// Blocking TCP connect to `host:port`.  One attempt, no retry -- the
/// client layer wraps this in util::retry_with_backoff.
Fd connect_tcp(const std::string& host, std::uint16_t port,
               std::string* error);

/// Blocking send of the whole buffer (handles short writes / EINTR).
bool send_all(int fd, const std::uint8_t* data, std::size_t size,
              std::string* error);

/// Blocking recv of up to `size` bytes with a poll() timeout.  Returns the
/// byte count, 0 on orderly peer close, or -1 on error/timeout (with a
/// diagnostic).
long recv_some(int fd, std::uint8_t* data, std::size_t size,
               std::uint32_t timeout_ms, std::string* error);

}  // namespace ftb::net
