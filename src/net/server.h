// Non-blocking, epoll-based frame server.
//
// One thread runs run(): it accepts loopback TCP connections, reassembles
// CRC-framed messages (net/frame.h) per connection, and hands each complete
// frame to a Handler.  Design points:
//
//   * the event loop owns every socket; other threads talk to it only
//     through the thread-safe send()/close_connection()/wake() entry points
//     (a mutex-protected command queue drained after an eventfd wake), so a
//     campaign worker thread can stream progress frames to a client without
//     touching connection state;
//   * a corrupt frame poisons only its own connection: the decoder error is
//     surfaced (best-effort error frame, then close), the stream is dropped,
//     and every other connection is untouched;
//   * per-connection idle timeout: a peer that sends a partial frame and
//     stalls (slow loris) is closed after idle_timeout_ms, so half-open
//     connections cannot pin buffers forever;
//   * graceful drain: request_drain() stops accepting and lets in-flight
//     requests finish; request_stop_when_flushed() ends the loop once every
//     write buffer has been flushed; request_stop() ends it immediately.
//     The service layer sequences these around campaign checkpointing.
//
// wake() is async-signal-safe (one write() to an eventfd), so signal
// handlers may call it to get the loop's attention; the actual signal
// reaction runs in Handler::on_tick() on the loop thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/frame.h"

namespace ftb::telemetry {
class Telemetry;
}

namespace ftb::net {

struct ServerOptions {
  std::string bind_addr = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port().
  std::uint16_t port = 0;
  /// Connections with no complete frame activity for this long are closed
  /// (slow-loris defence).  0 disables the timeout.
  std::uint32_t idle_timeout_ms = 30000;
  /// Frame payload cap, enforced by the per-connection decoder.
  std::size_t max_frame_payload = 16u << 20;
  /// Accept backstop: beyond this many live connections, new accepts are
  /// closed immediately.
  std::size_t max_connections = 1024;
  /// Optional telemetry sink: server.accepts / server.disconnects /
  /// server.frames counters, server.connections gauge, accept/idle-close
  /// instants.  Never owned; must outlive the server.
  telemetry::Telemetry* telemetry = nullptr;
};

class Server {
 public:
  using ConnId = std::uint64_t;

  /// Frame sink.  All methods run on the loop thread.
  class Handler {
   public:
    virtual ~Handler() = default;
    /// A complete, CRC-verified frame arrived on `conn`.
    virtual void on_frame(ConnId conn, Frame frame) = 0;
    /// `conn` closed (peer hangup, decode error, idle timeout, or
    /// close_connection()).  Pending sends to it are dropped silently.
    virtual void on_disconnect(ConnId conn) { (void)conn; }
    /// `conn`'s byte stream failed frame decoding.  Called once with the
    /// decoder's diagnostic just before the connection is closed; the
    /// handler may queue a best-effort error frame (it is flushed first).
    virtual void on_decode_error(ConnId conn, const std::string& error) {
      (void)conn;
      (void)error;
    }
    /// Called once per loop iteration, after events are processed -- the
    /// hook where the service layer reacts to signals and drain progress.
    virtual void on_tick() {}
  };

  /// Binds and listens immediately; throws std::runtime_error with a
  /// diagnostic when the socket cannot be set up.
  Server(Handler& handler, ServerOptions options = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (useful with options.port = 0).
  std::uint16_t port() const noexcept;

  /// Runs the event loop until request_stop() (or a flushed drain).
  void run();

  /// Queues a frame for `conn`.  Thread-safe; frames to connections that no
  /// longer exist are counted (server.dropped_frames) and dropped --
  /// a client that disconnected mid-campaign must not fail the job.
  void send(ConnId conn, const Frame& frame);

  /// Closes `conn` after flushing anything already queued.  Thread-safe.
  void close_connection(ConnId conn);

  /// Stops accepting new connections.  Thread-safe and idempotent.
  void request_drain();
  bool draining() const noexcept;

  /// Ends run() once every connection's write buffer is flushed (implies
  /// request_drain()).  Thread-safe.
  void request_stop_when_flushed();

  /// Ends run() at the next loop iteration, flushed or not.  Thread-safe.
  void request_stop();

  /// Nudges the loop out of epoll_wait.  Async-signal-safe.
  void wake() noexcept;

  /// Live connection count (loop thread's view; racy from elsewhere).
  std::size_t connection_count() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftb::net
