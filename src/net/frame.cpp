#include "net/frame.h"

#include <cstring>

#include "util/cache.h"

namespace ftb::net {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(frame_wire_size(frame.payload.size()));
  put_u32(out, kFrameMagic);
  put_u32(out, kFrameVersion);
  put_u32(out, frame.type);
  put_u32(out, frame.deadline_ms);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  put_u32(out, util::crc32(out.data(), out.size()));
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (poisoned_) return;  // stream is already lost; don't buffer more
  // Compact the consumed prefix before appending, so a long-lived
  // connection's buffer does not grow without bound.
  if (pos_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

FrameDecoder::Status FrameDecoder::fail(std::string* error, std::string what) {
  poisoned_ = true;
  poison_reason_ = std::move(what);
  if (error != nullptr) *error = poison_reason_;
  return Status::kError;
}

FrameDecoder::Status FrameDecoder::pop(Frame* out, std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = poison_reason_;
    return Status::kError;
  }
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < kFrameHeaderSize) return Status::kNeedMore;
  const std::uint8_t* head = buffer_.data() + pos_;

  const std::uint32_t magic = read_u32(head);
  if (magic != kFrameMagic) {
    return fail(error, "frame has bad magic (not an FTBP stream)");
  }
  const std::uint32_t version = read_u32(head + 4);
  if (version != kFrameVersion) {
    return fail(error, "frame has unsupported protocol version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kFrameVersion) +
                           "; the peer is likely running an older build)");
  }
  const std::uint32_t payload_len = read_u32(head + 16);
  if (payload_len > limits_.max_payload) {
    return fail(error, "frame declares oversized payload (" +
                           std::to_string(payload_len) + " bytes > cap " +
                           std::to_string(limits_.max_payload) + ")");
  }
  const std::size_t total = frame_wire_size(payload_len);
  if (avail < total) return Status::kNeedMore;

  const std::size_t body = kFrameHeaderSize + payload_len;
  const std::uint32_t stored_crc = read_u32(head + body);
  const std::uint32_t actual_crc = util::crc32(head, body);
  if (stored_crc != actual_crc) {
    return fail(error,
                "frame CRC mismatch (stream is corrupt or was truncated)");
  }
  if (out != nullptr) {
    out->type = read_u32(head + 8);
    out->deadline_ms = read_u32(head + 12);
    out->payload.assign(head + kFrameHeaderSize, head + body);
  }
  pos_ += total;
  return Status::kFrame;
}

std::optional<Frame> decode_frame(const std::vector<std::uint8_t>& bytes,
                                  std::string* error, FrameLimits limits) {
  FrameDecoder decoder(limits);
  decoder.feed(bytes.data(), bytes.size());
  Frame frame;
  switch (decoder.pop(&frame, error)) {
    case FrameDecoder::Status::kFrame:
      break;
    case FrameDecoder::Status::kNeedMore:
      if (error != nullptr) {
        *error = "frame truncated: " + std::to_string(bytes.size()) +
                 " bytes do not hold a complete frame";
      }
      return std::nullopt;
    case FrameDecoder::Status::kError:
      return std::nullopt;
  }
  if (decoder.buffered() != 0) {
    if (error != nullptr) {
      *error = "trailing garbage after frame (" +
               std::to_string(decoder.buffered()) + " bytes)";
    }
    return std::nullopt;
  }
  return frame;
}

}  // namespace ftb::net
