// Wire framing for the ftb_served protocol.
//
// Every message on a connection travels inside one frame:
//
//   | magic u32 | version u32 | type u32 | deadline_ms u32 | payload_len u32 | payload ... | crc32 u32 |
//
// all little-endian.  `deadline_ms` (v2) is the requester's patience budget:
// how long, from submission, the reply is still worth computing.  Zero means
// "no deadline".  Carrying it in the header lets an overloaded server shed
// queued requests whose answer nobody is waiting for anymore, without
// decoding the payload.  The trailing CRC-32 covers the header and the payload,
// so the same corruption-rejection discipline as CampaignLog applies on the
// wire: a torn, truncated, or bit-flipped frame is rejected with a one-line
// diagnostic, never decoded into garbage.  The length prefix is capped
// (FrameLimits::max_payload) so a corrupted length cannot make a peer buffer
// unbounded input; anything past the cap is rejected before the payload is
// even read.
//
// FrameDecoder is incremental: feed() raw bytes as they arrive from a
// non-blocking socket, then pop() complete frames.  After the first error
// the decoder is poisoned -- framing is lost and the connection should be
// closed (the server does).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ftb::net {

inline constexpr std::uint32_t kFrameMagic = 0x50425446u;  // "FTBP"
// v1: magic, version, type, payload_len.
// v2: inserts deadline_ms between type and payload_len.
inline constexpr std::uint32_t kFrameVersion = 2;
/// Fixed bytes before the payload: magic, version, type, deadline_ms,
/// payload_len.
inline constexpr std::size_t kFrameHeaderSize = 20;
/// Trailing CRC-32.
inline constexpr std::size_t kFrameTrailerSize = 4;

/// One decoded message: a type tag plus an opaque payload (the service
/// layer, src/service/protocol.h, gives payloads meaning).
struct Frame {
  std::uint32_t type = 0;
  /// Requester's patience budget in milliseconds; 0 means no deadline.
  std::uint32_t deadline_ms = 0;
  std::vector<std::uint8_t> payload;

  bool operator==(const Frame&) const = default;
};

struct FrameLimits {
  /// Frames whose declared payload exceeds this are rejected outright.
  std::size_t max_payload = 16u << 20;
};

/// Encodes a frame, including header and trailing CRC.
std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Total wire size of a frame with `payload_len` payload bytes.
inline constexpr std::size_t frame_wire_size(std::size_t payload_len) {
  return kFrameHeaderSize + payload_len + kFrameTrailerSize;
}

/// Incremental decoder over a byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(FrameLimits limits = {}) : limits_(limits) {}

  enum class Status {
    kFrame,     ///< a complete, CRC-verified frame was produced
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< stream is corrupt; connection should be dropped
  };

  void feed(const std::uint8_t* data, std::size_t size);

  /// Pops the next complete frame.  On kError, `error` (when non-null)
  /// receives a one-line diagnostic; the decoder stays poisoned and every
  /// further pop() returns kError.
  Status pop(Frame* out, std::string* error = nullptr);

  /// Bytes buffered but not yet consumed by pop().
  std::size_t buffered() const noexcept { return buffer_.size() - pos_; }
  bool poisoned() const noexcept { return poisoned_; }

 private:
  Status fail(std::string* error, std::string what);

  FrameLimits limits_;
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
  std::string poison_reason_;
};

/// Decodes exactly one frame from a complete buffer (convenience for tests
/// and blocking clients).  Returns nullopt and a diagnostic on any
/// corruption, truncation, or trailing garbage.
std::optional<Frame> decode_frame(const std::vector<std::uint8_t>& bytes,
                                  std::string* error = nullptr,
                                  FrameLimits limits = {});

}  // namespace ftb::net
