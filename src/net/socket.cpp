#include "net/socket.h"

#include "chaos/chaos.h"

#if defined(__linux__)
#define FTB_NET_POSIX 1
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace ftb::net {

namespace {

#if FTB_NET_POSIX
std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}
#else
constexpr const char* kUnsupported =
    "networking is not supported on this platform (ftb_net requires Linux)";
#endif

void set_error(std::string* error, std::string what) {
  if (error != nullptr) *error = std::move(what);
}

}  // namespace

void Fd::reset(int fd) noexcept {
#if FTB_NET_POSIX
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = fd;
}

bool net_supported() noexcept {
#if FTB_NET_POSIX
  return true;
#else
  return false;
#endif
}

bool set_nonblocking(int fd) noexcept {
#if FTB_NET_POSIX
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  const int fdflags = ::fcntl(fd, F_GETFD, 0);
  return fdflags >= 0 && ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) >= 0;
#else
  (void)fd;
  return false;
#endif
}

Fd listen_tcp(const std::string& bind_addr, std::uint16_t port,
              std::uint16_t* actual_port, std::string* error) {
#if FTB_NET_POSIX
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, errno_string("socket"));
    return {};
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    set_error(error, "invalid bind address '" + bind_addr + "'");
    return {};
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    set_error(error, errno_string(("bind " + bind_addr + ":" +
                                   std::to_string(port)).c_str()));
    return {};
  }
  if (::listen(fd.get(), 128) < 0) {
    set_error(error, errno_string("listen"));
    return {};
  }
  if (actual_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) <
        0) {
      set_error(error, errno_string("getsockname"));
      return {};
    }
    *actual_port = ntohs(bound.sin_port);
  }
  return fd;
#else
  (void)bind_addr;
  (void)port;
  (void)actual_port;
  set_error(error, kUnsupported);
  return {};
#endif
}

Fd connect_tcp(const std::string& host, std::uint16_t port,
               std::string* error) {
#if FTB_NET_POSIX
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    set_error(error, errno_string("socket"));
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    set_error(error, "invalid host address '" + host +
                         "' (ftb_client takes a numeric IPv4 address)");
    return {};
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    set_error(error, errno_string(("connect " + host + ":" +
                                   std::to_string(port)).c_str()));
    return {};
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
#else
  (void)host;
  (void)port;
  set_error(error, kUnsupported);
  return {};
#endif
}

bool send_all(int fd, const std::uint8_t* data, std::size_t size,
              std::string* error) {
#if FTB_NET_POSIX
  std::size_t sent = 0;
  while (sent < size) {
    // chaos::send is a transparent passthrough unless fault injection is
    // armed; this loop already absorbs the short writes and EINTRs it cooks.
    const ssize_t n = chaos::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, errno_string("send"));
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
#else
  (void)fd;
  (void)data;
  (void)size;
  set_error(error, kUnsupported);
  return false;
#endif
}

long recv_some(int fd, std::uint8_t* data, std::size_t size,
               std::uint32_t timeout_ms, std::string* error) {
#if FTB_NET_POSIX
  pollfd pfd{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    set_error(error, errno_string("poll"));
    return -1;
  }
  if (rc == 0) {
    set_error(error, "timed out after " + std::to_string(timeout_ms) +
                         " ms waiting for the server");
    return -1;
  }
  ssize_t n;
  do {
    n = chaos::recv(fd, data, size, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    set_error(error, errno_string("recv"));
    return -1;
  }
  return static_cast<long>(n);
#else
  (void)fd;
  (void)data;
  (void)size;
  (void)timeout_ms;
  set_error(error, kUnsupported);
  return -1;
#endif
}

}  // namespace ftb::net
