#include "net/server.h"

#include <stdexcept>

#include "chaos/chaos.h"
#include "net/socket.h"
#include "telemetry/events.h"

#if defined(__linux__)
#define FTB_NET_POSIX 1
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <mutex>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <vector>
#endif

namespace ftb::net {

#if FTB_NET_POSIX

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct Server::Impl {
  struct Conn {
    ConnId id = 0;
    int fd = -1;
    FrameDecoder decoder;
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
    std::uint64_t last_activity_ns = 0;
    bool closing = false;       // flush pending bytes, then close
    bool want_write = false;    // EPOLLOUT currently armed

    std::size_t pending() const { return out.size() - out_pos; }
  };

  struct Command {
    enum class Kind { kSend, kClose };
    Kind kind = Kind::kSend;
    ConnId conn = 0;
    std::vector<std::uint8_t> bytes;
  };

  Handler& handler;
  ServerOptions options;
  Fd listen_fd;
  Fd epoll_fd;
  Fd wake_fd;
  std::uint16_t bound_port = 0;
  bool listening = true;

  std::unordered_map<int, Conn> conns;          // by socket fd
  std::unordered_map<ConnId, int> conn_fds;     // id -> fd
  ConnId next_id = 1;

  std::mutex queue_mutex;
  std::deque<Command> queue;

  std::atomic<bool> stop{false};
  std::atomic<bool> stop_when_flushed{false};
  std::atomic<bool> drain{false};
  std::atomic<bool> running{false};
  std::thread::id loop_thread;

  explicit Impl(Handler& h, ServerOptions opts)
      : handler(h), options(std::move(opts)) {}

  telemetry::Telemetry* tele() const {
    return telemetry::active(options.telemetry) ? options.telemetry : nullptr;
  }
  void count(const char* name, std::uint64_t delta = 1) {
    if (auto* t = tele()) t->metrics().counter(name).add(delta);
  }
  void set_gauge(const char* name, double value) {
    if (auto* t = tele()) t->metrics().gauge(name).set(value);
  }

  bool on_loop_thread() const {
    return running.load(std::memory_order_acquire) &&
           std::this_thread::get_id() == loop_thread;
  }

  void epoll_update(Conn& conn) {
    const bool want = conn.pending() > 0;
    if (want == conn.want_write) return;
    epoll_event ev{};
    ev.data.fd = conn.fd;
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    if (conn.closing) ev.events &= ~static_cast<std::uint32_t>(EPOLLIN);
    ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_MOD, conn.fd, &ev);
    conn.want_write = want;
  }

  void close_conn(int fd, const char* why) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    const ConnId id = it->second.id;
    ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conn_fds.erase(id);
    conns.erase(it);
    count("server.disconnects");
    set_gauge("server.connections", static_cast<double>(conns.size()));
    if (auto* t = tele()) {
      t->instant("server.disconnect", "net",
                 {{"conn", static_cast<double>(id)}});
    }
    (void)why;
    handler.on_disconnect(id);
  }

  void queue_bytes(Conn& conn, const std::uint8_t* data, std::size_t size) {
    // Compact the flushed prefix before growing the buffer.
    if (conn.out_pos > 0) {
      conn.out.erase(conn.out.begin(),
                     conn.out.begin() + static_cast<std::ptrdiff_t>(conn.out_pos));
      conn.out_pos = 0;
    }
    conn.out.insert(conn.out.end(), data, data + size);
  }

  /// Writes as much of conn.out as the socket accepts.  Returns false when
  /// the connection died (already closed here).
  bool flush_conn(Conn& conn) {
    while (conn.pending() > 0) {
      const ssize_t n =
          chaos::send(conn.fd, conn.out.data() + conn.out_pos, conn.pending(),
                      MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(conn.fd, "send error");
        return false;
      }
      conn.out_pos += static_cast<std::size_t>(n);
    }
    if (conn.pending() == 0 && conn.closing) {
      close_conn(conn.fd, "closed after flush");
      return false;
    }
    epoll_update(conn);
    return true;
  }

  void send_to(ConnId id, std::vector<std::uint8_t> bytes) {
    auto fd_it = conn_fds.find(id);
    if (fd_it == conn_fds.end()) {
      count("server.dropped_frames");
      return;
    }
    Conn& conn = conns.at(fd_it->second);
    if (conn.closing) {
      count("server.dropped_frames");
      return;
    }
    queue_bytes(conn, bytes.data(), bytes.size());
    count("server.frames_out");
    flush_conn(conn);
  }

  void begin_close(ConnId id) {
    auto fd_it = conn_fds.find(id);
    if (fd_it == conn_fds.end()) return;
    Conn& conn = conns.at(fd_it->second);
    conn.closing = true;
    if (conn.pending() == 0) {
      close_conn(conn.fd, "closed");
    } else {
      // Stop reading; keep EPOLLOUT armed until the buffer drains.
      epoll_event ev{};
      ev.data.fd = conn.fd;
      ev.events = EPOLLOUT;
      ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_MOD, conn.fd, &ev);
      conn.want_write = true;
    }
  }

  void drain_queue() {
    std::deque<Command> pending;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      pending.swap(queue);
    }
    for (Command& cmd : pending) {
      switch (cmd.kind) {
        case Command::Kind::kSend:
          send_to(cmd.conn, std::move(cmd.bytes));
          break;
        case Command::Kind::kClose:
          begin_close(cmd.conn);
          break;
      }
    }
  }

  void stop_accepting() {
    if (!listening) return;
    ::epoll_ctl(epoll_fd.get(), EPOLL_CTL_DEL, listen_fd.get(), nullptr);
    listening = false;
  }

  void accept_ready() {
    for (;;) {
      const int fd = ::accept4(listen_fd.get(), nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or a transient accept error: try again next wake
      }
      if (drain.load(std::memory_order_relaxed) ||
          conns.size() >= options.max_connections) {
        ::close(fd);
        count("server.rejected_accepts");
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Conn conn;
      conn.id = next_id++;
      conn.fd = fd;
      conn.decoder = FrameDecoder({options.max_frame_payload});
      conn.last_activity_ns = steady_now_ns();
      epoll_event ev{};
      ev.data.fd = fd;
      ev.events = EPOLLIN;
      if (::epoll_ctl(epoll_fd.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
        ::close(fd);
        continue;
      }
      conn_fds.emplace(conn.id, fd);
      count("server.accepts");
      if (auto* t = tele()) {
        t->instant("server.accept", "net",
                   {{"conn", static_cast<double>(conn.id)}});
      }
      conns.emplace(fd, std::move(conn));
      set_gauge("server.connections", static_cast<double>(conns.size()));
    }
  }

  void read_ready(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    std::uint8_t buf[16384];
    bool peer_closed = false;
    for (;;) {
      const ssize_t n = chaos::recv(fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(fd, "recv error");
        return;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      it->second.last_activity_ns = steady_now_ns();
      it->second.decoder.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
    }

    // Dispatch every complete frame buffered so far.
    const ConnId id = it->second.id;
    for (;;) {
      // Re-find each round: the handler may have closed this connection.
      auto conn_it = conns.find(fd);
      if (conn_it == conns.end() || conn_it->second.id != id ||
          conn_it->second.closing) {
        return;
      }
      Frame frame;
      std::string error;
      const FrameDecoder::Status status =
          conn_it->second.decoder.pop(&frame, &error);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kError) {
        count("server.decode_errors");
        if (auto* t = tele()) {
          t->instant("server.decode_error", "net",
                     {{"conn", static_cast<double>(id)}});
        }
        handler.on_decode_error(id, error);
        begin_close(id);
        return;
      }
      count("server.frames_in");
      handler.on_frame(id, std::move(frame));
    }

    if (peer_closed) close_conn(fd, "peer closed");
  }

  void sweep_idle(std::uint64_t now_ns) {
    if (options.idle_timeout_ms == 0) return;
    const std::uint64_t budget_ns =
        static_cast<std::uint64_t>(options.idle_timeout_ms) * 1'000'000ull;
    std::vector<int> idle;
    for (const auto& [fd, conn] : conns) {
      if (!conn.closing && now_ns - conn.last_activity_ns > budget_ns) {
        idle.push_back(fd);
      }
    }
    for (int fd : idle) {
      count("server.idle_closes");
      if (auto* t = tele()) {
        t->instant("server.idle_close", "net",
                   {{"conn", static_cast<double>(conns.at(fd).id)}});
      }
      close_conn(fd, "idle timeout");
    }
  }

  bool all_flushed() {
    std::lock_guard<std::mutex> lock(queue_mutex);
    if (!queue.empty()) return false;
    for (const auto& [fd, conn] : conns) {
      if (conn.pending() > 0) return false;
    }
    return true;
  }

  int wait_timeout_ms() const {
    int timeout = 500;  // on_tick cadence backstop
    if (options.idle_timeout_ms != 0 && !conns.empty()) {
      timeout = std::min<int>(
          timeout, static_cast<int>(std::min<std::uint32_t>(
                       options.idle_timeout_ms, 500)));
    }
    return timeout;
  }

  void run() {
    loop_thread = std::this_thread::get_id();
    running.store(true, std::memory_order_release);
    epoll_event events[64];
    while (!stop.load(std::memory_order_relaxed)) {
      if (drain.load(std::memory_order_relaxed)) stop_accepting();
      drain_queue();
      if (stop_when_flushed.load(std::memory_order_relaxed) && all_flushed()) {
        break;
      }

      const int n =
          ::epoll_wait(epoll_fd.get(), events, 64, wait_timeout_ms());
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < std::max(n, 0); ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_fd.get()) {
          std::uint64_t junk = 0;
          while (::read(wake_fd.get(), &junk, sizeof(junk)) > 0) {
          }
          continue;
        }
        if (fd == listen_fd.get()) {
          accept_ready();
          continue;
        }
        if (conns.find(fd) == conns.end()) continue;  // closed this batch
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          close_conn(fd, "hangup");
          continue;
        }
        if (events[i].events & EPOLLIN) read_ready(fd);
        if (conns.find(fd) == conns.end()) continue;
        if (events[i].events & EPOLLOUT) flush_conn(conns.at(fd));
      }

      sweep_idle(steady_now_ns());
      drain_queue();
      handler.on_tick();
    }
    running.store(false, std::memory_order_release);
  }
};

#else  // !FTB_NET_POSIX

struct Server::Impl {
  Handler& handler;
  ServerOptions options;
  std::uint16_t bound_port = 0;
  explicit Impl(Handler& h, ServerOptions opts)
      : handler(h), options(std::move(opts)) {}
};

#endif

Server::Server(Handler& handler, ServerOptions options)
    : impl_(std::make_unique<Impl>(handler, std::move(options))) {
#if FTB_NET_POSIX
  std::string error;
  impl_->listen_fd = listen_tcp(impl_->options.bind_addr, impl_->options.port,
                                &impl_->bound_port, &error);
  if (!impl_->listen_fd.valid()) {
    throw std::runtime_error("net::Server: " + error);
  }
  if (!set_nonblocking(impl_->listen_fd.get())) {
    throw std::runtime_error("net::Server: cannot make listen socket "
                             "non-blocking");
  }
  impl_->epoll_fd.reset(::epoll_create1(EPOLL_CLOEXEC));
  if (!impl_->epoll_fd.valid()) {
    throw std::runtime_error("net::Server: epoll_create1 failed");
  }
  impl_->wake_fd.reset(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!impl_->wake_fd.valid()) {
    throw std::runtime_error("net::Server: eventfd failed");
  }
  epoll_event ev{};
  ev.data.fd = impl_->listen_fd.get();
  ev.events = EPOLLIN;
  ::epoll_ctl(impl_->epoll_fd.get(), EPOLL_CTL_ADD, impl_->listen_fd.get(),
              &ev);
  ev.data.fd = impl_->wake_fd.get();
  ::epoll_ctl(impl_->epoll_fd.get(), EPOLL_CTL_ADD, impl_->wake_fd.get(), &ev);
#else
  throw std::runtime_error(
      "net::Server: networking is not supported on this platform");
#endif
}

Server::~Server() {
#if FTB_NET_POSIX
  for (auto& [fd, conn] : impl_->conns) {
    ::close(fd);
    (void)conn;
  }
#endif
}

std::uint16_t Server::port() const noexcept { return impl_->bound_port; }

void Server::run() {
#if FTB_NET_POSIX
  impl_->run();
#endif
}

void Server::send(ConnId conn, const Frame& frame) {
#if FTB_NET_POSIX
  std::vector<std::uint8_t> bytes = encode_frame(frame);
  if (impl_->on_loop_thread()) {
    impl_->send_to(conn, std::move(bytes));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    impl_->queue.push_back(
        {Impl::Command::Kind::kSend, conn, std::move(bytes)});
  }
  wake();
#else
  (void)conn;
  (void)frame;
#endif
}

void Server::close_connection(ConnId conn) {
#if FTB_NET_POSIX
  if (impl_->on_loop_thread()) {
    impl_->begin_close(conn);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    impl_->queue.push_back({Impl::Command::Kind::kClose, conn, {}});
  }
  wake();
#else
  (void)conn;
#endif
}

void Server::request_drain() {
#if FTB_NET_POSIX
  impl_->drain.store(true, std::memory_order_relaxed);
  wake();
#endif
}

bool Server::draining() const noexcept {
#if FTB_NET_POSIX
  return impl_->drain.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void Server::request_stop_when_flushed() {
#if FTB_NET_POSIX
  impl_->drain.store(true, std::memory_order_relaxed);
  impl_->stop_when_flushed.store(true, std::memory_order_relaxed);
  wake();
#endif
}

void Server::request_stop() {
#if FTB_NET_POSIX
  impl_->stop.store(true, std::memory_order_relaxed);
  wake();
#endif
}

void Server::wake() noexcept {
#if FTB_NET_POSIX
  const std::uint64_t one = 1;
  // Best-effort and async-signal-safe: a full eventfd counter already
  // guarantees the loop will wake.
  [[maybe_unused]] const ssize_t n =
      ::write(impl_->wake_fd.get(), &one, sizeof(one));
#endif
}

std::size_t Server::connection_count() const noexcept {
#if FTB_NET_POSIX
  return impl_->conns.size();
#else
  return 0;
#endif
}

}  // namespace ftb::net
