// Blocking frame client for ftb_served.
//
// Connections are established through util::retry_with_backoff (jittered
// exponential backoff with a deadline cap), so a client racing a server
// start -- the CI smoke test, a supervisor restarting the daemon -- settles
// without hand-rolled sleep loops.  call() adds one transparent
// reconnect-and-retry when the server dropped the connection between
// requests (e.g. it was restarted), which is safe for the service's
// idempotent query plane; campaign submissions stream many frames and use
// send()/recv() directly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "net/frame.h"
#include "net/socket.h"
#include "util/retry.h"

namespace ftb::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Receive timeout per recv() call.  Campaign submissions pass their own
  /// larger budget to recv(); this is the query-plane default.
  std::uint32_t recv_timeout_ms = 30000;
  /// Backoff policy for connect attempts (and call()'s one reconnect).
  util::RetryOptions connect_retry;
  std::size_t max_frame_payload = 16u << 20;
  /// Deadline stamped into the header of every outgoing frame whose own
  /// deadline_ms is 0.  The server sheds requests that outwait it.  0
  /// stamps nothing (no deadline).
  std::uint32_t deadline_ms = 0;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (with retry/backoff).  Idempotent; true when connected.
  bool connect(std::string* error = nullptr);
  bool connected() const noexcept { return fd_.valid(); }
  void close();

  /// Sends one frame.  False (with diagnostic) on I/O failure.
  bool send(const Frame& frame, std::string* error = nullptr);

  /// Receives the next frame; `timeout_ms` 0 uses options.recv_timeout_ms.
  /// nullopt on timeout, peer close, or a corrupt stream (diagnosed).
  std::optional<Frame> recv(std::string* error = nullptr,
                            std::uint32_t timeout_ms = 0);

  /// send + recv, with one reconnect-and-retry if the connection was lost.
  std::optional<Frame> call(const Frame& request,
                            std::string* error = nullptr);

  /// call() with retry-on-busy: after each reply, `retry_hint` inspects it
  /// and returns the server's retry-after hint in milliseconds when the
  /// reply says "try again later" (service::parse_busy), or nullopt when
  /// the reply is final.  Retries follow `retry` (jittered exponential
  /// backoff seeded from the first hint), and the last reply is returned
  /// even if it is still a Busy -- the caller decides how to report it.
  /// nullopt only on transport failure.
  std::optional<Frame> call_backoff(
      const Frame& request,
      const std::function<std::optional<std::uint64_t>(const Frame&)>&
          retry_hint,
      const util::RetryOptions& retry, std::string* error = nullptr);

 private:
  ClientOptions options_;
  Fd fd_;
  FrameDecoder decoder_;
};

}  // namespace ftb::net
