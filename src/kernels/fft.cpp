#include "kernels/fft.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <utility>

#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

namespace {

[[maybe_unused]] bool is_power_of_two(std::size_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// In-place radix-2 DIT FFT over one contiguous row of a split complex
/// array.  Every store is traced.  Twiddle angles are pure functions of the
/// loop indices (program constants, like literal coefficients), so they are
/// not injection sites themselves; the *results* of every butterfly are.
void fft_row(fi::Tracer& t, double* re, double* im, std::size_t m) {
  // Bit-reversal permutation (index-driven; the moved values are stores).
  for (std::size_t i = 1, j = 0; i < m; ++i) {
    std::size_t bit = m >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      const double tr = re[i];
      const double ti = im[i];
      re[i] = t.step(re[j]);
      im[i] = t.step(im[j]);
      re[j] = t.step(tr);
      im[j] = t.step(ti);
    }
  }

  for (std::size_t len = 2; len <= m; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::size_t half = len / 2;
    for (std::size_t base = 0; base < m; base += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const double c = std::cos(angle * static_cast<double>(k));
        const double s = std::sin(angle * static_cast<double>(k));
        const std::size_t lo = base + k;
        const std::size_t hi = lo + half;
        const double ur = re[lo];
        const double ui = im[lo];
        const double vr = re[hi] * c - im[hi] * s;
        const double vi = re[hi] * s + im[hi] * c;
        re[lo] = t.step(ur + vr);
        im[lo] = t.step(ui + vi);
        re[hi] = t.step(ur - vr);
        im[hi] = t.step(ui - vi);
      }
    }
  }
}

}  // namespace

std::string FftConfig::key() const {
  return util::format("fft:n1=%zu:n2=%zu:seed=%llu:atol=%g:rtol=%g", n1, n2,
                      static_cast<unsigned long long>(signal_seed), atol, rtol);
}

FftProgram::FftProgram(FftConfig config) : config_(config) {
  assert(is_power_of_two(config_.n1));
  assert(is_power_of_two(config_.n2));
}

std::vector<double> FftProgram::run(fi::Tracer& t) const {
  const std::size_t n1 = config_.n1;
  const std::size_t n2 = config_.n2;
  const std::size_t n = n1 * n2;

  // Input signal (traced fill), viewed as an n1 x n2 row-major matrix.
  t.phase("input");
  util::Rng rng(config_.signal_seed);
  std::vector<double> a_re(n), a_im(n);
  for (std::size_t i = 0; i < n; ++i) a_re[i] = t.step(rng.next_double(-1.0, 1.0));
  for (std::size_t i = 0; i < n; ++i) a_im[i] = t.step(rng.next_double(-1.0, 1.0));

  // Twiddle table w_n^m for m in [0, n) (traced; SPLASH-2 precomputes the
  // same "roots of unity" array).
  t.phase("twiddle-table");
  std::vector<double> tw_re(n), tw_im(n);
  for (std::size_t m = 0; m < n; ++m) {
    const double angle =
        -2.0 * std::numbers::pi * static_cast<double>(m) / static_cast<double>(n);
    tw_re[m] = t.step(std::cos(angle));
    tw_im[m] = t.step(std::sin(angle));
  }

  // Step 1: transpose a (n1 x n2) -> b (n2 x n1).
  t.phase("transpose-1");
  std::vector<double> b_re(n), b_im(n);
  for (std::size_t j2 = 0; j2 < n2; ++j2) {
    for (std::size_t j1 = 0; j1 < n1; ++j1) {
      b_re[j2 * n1 + j1] = t.step(a_re[j1 * n2 + j2]);
      b_im[j2 * n1 + j1] = t.step(a_im[j1 * n2 + j2]);
    }
  }

  // Step 2: n2 row FFTs of length n1.
  t.phase("row-ffts-1");
  for (std::size_t j2 = 0; j2 < n2; ++j2) {
    fft_row(t, b_re.data() + j2 * n1, b_im.data() + j2 * n1, n1);
  }

  // Step 3: twiddle -- b[j2][k1] *= w_n^(j2 * k1).
  t.phase("twiddle-multiply");
  for (std::size_t j2 = 0; j2 < n2; ++j2) {
    for (std::size_t k1 = 0; k1 < n1; ++k1) {
      const std::size_t m = (j2 * k1) % n;
      const double wr = tw_re[m];
      const double wi = tw_im[m];
      const std::size_t idx = j2 * n1 + k1;
      const double xr = b_re[idx];
      const double xi = b_im[idx];
      b_re[idx] = t.step(xr * wr - xi * wi);
      b_im[idx] = t.step(xr * wi + xi * wr);
    }
  }

  // Step 4: transpose b (n2 x n1) -> c (n1 x n2).
  t.phase("transpose-2");
  std::vector<double> c_re(n), c_im(n);
  for (std::size_t k1 = 0; k1 < n1; ++k1) {
    for (std::size_t j2 = 0; j2 < n2; ++j2) {
      c_re[k1 * n2 + j2] = t.step(b_re[j2 * n1 + k1]);
      c_im[k1 * n2 + j2] = t.step(b_im[j2 * n1 + k1]);
    }
  }

  // Step 5: n1 row FFTs of length n2.
  t.phase("row-ffts-2");
  for (std::size_t k1 = 0; k1 < n1; ++k1) {
    fft_row(t, c_re.data() + k1 * n2, c_im.data() + k1 * n2, n2);
  }

  // Step 6: transpose into the natural-order spectrum: out[k2*n1 + k1].
  t.phase("transpose-out");
  std::vector<double> out(2 * n);
  for (std::size_t k2 = 0; k2 < n2; ++k2) {
    for (std::size_t k1 = 0; k1 < n1; ++k1) {
      out[2 * (k2 * n1 + k1)] = t.step(c_re[k1 * n2 + k2]);
      out[2 * (k2 * n1 + k1) + 1] = t.step(c_im[k1 * n2 + k2]);
    }
  }
  return out;
}

}  // namespace ftb::kernels
