#include "kernels/cg.h"

#include <cmath>
#include <limits>
#include <memory>

#include "kernels/parallel.h"
#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

std::string CgConfig::key() const {
  std::string key = util::format(
      "cg:nx=%zu:ny=%zu:it=%zu:seed=%llu:atol=%g:rtol=%g", nx, ny, iterations,
      static_cast<unsigned long long>(rhs_seed), atol, rtol);
  // threads = 1 and detector off keep the historical key, so every golden
  // trace, journal, and boundary artifact recorded before these options
  // existed stays valid.
  if (threads > 1) key += util::format(":thr=%zu", threads);
  if (detector) key += ":det=1";
  return key;
}

namespace {

/// The deterministic right-hand side both run() and the residual detector
/// derive from the config seed.
std::vector<double> make_rhs(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> rhs(n);
  for (double& v : rhs) v = rng.next_double(-1.0, 1.0);
  return rhs;
}

}  // namespace

CgProgram::CgProgram(CgConfig config) : config_(config) {
  if (config_.detector) {
    // Recomputed residual ||b - A x||_2: the classic solver ABFT check.
    // The closure owns golden copies of the operator and rhs, so corrupted
    // program state can never perturb the check itself.
    auto structure = std::make_shared<linalg::CsrMatrix>(
        linalg::CsrMatrix::poisson5(config_.nx, config_.ny));
    auto rhs = std::make_shared<std::vector<double>>(
        make_rhs(unknowns(), config_.rhs_seed));
    detector_ = std::make_unique<fi::InvariantDetector>(
        "cg-residual",
        [structure, rhs](std::span<const double> x) {
          if (x.size() != rhs->size()) {
            return std::numeric_limits<double>::quiet_NaN();
          }
          const auto row_ptr = structure->row_ptr();
          const auto col_idx = structure->col_idx();
          const auto values = structure->values();
          double norm2 = 0.0;
          for (std::size_t row = 0; row < x.size(); ++row) {
            double sum = 0.0;
            for (std::size_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
              sum += values[k] * x[col_idx[k]];
            }
            const double r = (*rhs)[row] - sum;
            norm2 += r * r;
          }
          return std::sqrt(norm2);
        },
        // A single output error delta moves the residual by ~||A e_i|| *
        // delta (a factor of a few for the Poisson operator), so this
        // tolerance sits safely between the comparator's SDC threshold and
        // the fault-free residual's rounding noise.
        /*atol=*/1e-7, /*rtol=*/1e-3);
  }
}

std::vector<double> CgProgram::run(fi::Tracer& t) const {
  const std::size_t n = unknowns();
  const std::size_t threads = config_.threads > 0 ? config_.threads : 1;
  const linalg::CsrMatrix structure =
      linalg::CsrMatrix::poisson5(config_.nx, config_.ny);
  const auto row_ptr = structure.row_ptr();
  const auto col_idx = structure.col_idx();
  const auto ref_values = structure.values();

  // --- Phase 0: zero-initialisation of all work vectors (traced). ---------
  t.phase("zero-init");
  std::vector<double> x(n), r(n), p(n), ap(n);
  traced_parallel_for(t, n, threads,
                      [&](std::size_t i, auto& s) { x[i] = s.step(0.0); });
  traced_parallel_for(t, n, threads,
                      [&](std::size_t i, auto& s) { r[i] = s.step(0.0); });
  traced_parallel_for(t, n, threads,
                      [&](std::size_t i, auto& s) { p[i] = s.step(0.0); });
  traced_parallel_for(t, n, threads,
                      [&](std::size_t i, auto& s) { ap[i] = s.step(0.0); });

  // --- Phase 1: one-shot setup: right-hand side and operator assembly. ----
  t.phase("setup");
  const std::vector<double> rhs = make_rhs(n, config_.rhs_seed);
  std::vector<double> b(n);
  traced_parallel_for(t, n, threads,
                      [&](std::size_t i, auto& s) { b[i] = s.step(rhs[i]); });
  std::vector<double> a_values(ref_values.size());
  traced_parallel_for(t, ref_values.size(), threads,
                      [&](std::size_t k, auto& s) {
                        a_values[k] = s.step(ref_values[k]);
                      });
  // Assembled state is now live in memory: a resident fault flipped here is
  // read back by every later matvec (fi/memfault.h).
  t.touch(a_values);
  t.touch(b);

  const auto matvec_into = [&](const std::vector<double>& in,
                               std::vector<double>& out) {
    traced_parallel_for(t, n, threads, [&](std::size_t row, auto& s) {
      double sum = 0.0;
      for (std::size_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
        sum += a_values[k] * in[col_idx[k]];
      }
      out[row] = s.step(sum);
    });
  };
  const auto dot = [&](const std::vector<double>& u,
                       const std::vector<double>& v) {
    // Partial sums are untraced and folded in fixed thread order; only the
    // final value passes through the tracer, exactly like the serial path.
    const double sum = reduced_parallel_sum(
        n, threads, [&](std::size_t i) { return u[i] * v[i]; });
    return t.step(sum);
  };

  // r = b - A*x0, p = r, rr = <r, r>.
  matvec_into(x, ap);
  traced_parallel_for(t, n, threads, [&](std::size_t i, auto& s) {
    r[i] = s.step(b[i] - ap[i]);
  });
  traced_parallel_for(t, n, threads,
                      [&](std::size_t i, auto& s) { p[i] = s.step(r[i]); });
  double rr = dot(r, r);

  // --- Phase 2: fixed-count CG iterations. ---------------------------------
  t.phase("iterations");
  t.touch(r);
  t.touch(p);
  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    matvec_into(p, ap);
    const double p_ap = dot(p, ap);
    const double alpha = t.step(rr / p_ap);
    traced_parallel_for(t, n, threads, [&](std::size_t i, auto& s) {
      x[i] = s.step(x[i] + alpha * p[i]);
    });
    traced_parallel_for(t, n, threads, [&](std::size_t i, auto& s) {
      r[i] = s.step(r[i] - alpha * ap[i]);
    });
    const double rr_next = dot(r, r);
    const double beta = t.step(rr_next / rr);
    traced_parallel_for(t, n, threads, [&](std::size_t i, auto& s) {
      p[i] = s.step(r[i] + beta * p[i]);
    });
    rr = rr_next;
  }

  return x;
}

CgProgram::PhaseMarkers CgProgram::phase_markers() const {
  const std::uint64_t n = unknowns();
  const linalg::CsrMatrix structure =
      linalg::CsrMatrix::poisson5(config_.nx, config_.ny);
  PhaseMarkers markers;
  markers.zero_init = 0;
  markers.setup = 4 * n;
  // setup: b (n) + A values (nnz); then r/p/rr prologue: ap (n) + r (n) +
  // p (n) + rr (1) still belongs to setup for reporting purposes.
  markers.iterations = markers.setup + n + structure.nonzeros() + 3 * n + 1;
  return markers;
}

}  // namespace ftb::kernels
