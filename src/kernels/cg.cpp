#include "kernels/cg.h"

#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

std::string CgConfig::key() const {
  return util::format("cg:nx=%zu:ny=%zu:it=%zu:seed=%llu:atol=%g:rtol=%g", nx,
                      ny, iterations, static_cast<unsigned long long>(rhs_seed),
                      atol, rtol);
}

CgProgram::CgProgram(CgConfig config) : config_(config) {}

std::vector<double> CgProgram::run(fi::Tracer& t) const {
  const std::size_t n = unknowns();
  const linalg::CsrMatrix structure =
      linalg::CsrMatrix::poisson5(config_.nx, config_.ny);
  const auto row_ptr = structure.row_ptr();
  const auto col_idx = structure.col_idx();
  const auto ref_values = structure.values();

  // --- Phase 0: zero-initialisation of all work vectors (traced). ---------
  t.phase("zero-init");
  std::vector<double> x(n), r(n), p(n), ap(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = t.step(0.0);
  for (std::size_t i = 0; i < n; ++i) r[i] = t.step(0.0);
  for (std::size_t i = 0; i < n; ++i) p[i] = t.step(0.0);
  for (std::size_t i = 0; i < n; ++i) ap[i] = t.step(0.0);

  // --- Phase 1: one-shot setup: right-hand side and operator assembly. ----
  t.phase("setup");
  util::Rng rhs_rng(config_.rhs_seed);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = t.step(rhs_rng.next_double(-1.0, 1.0));
  }
  std::vector<double> a_values(ref_values.size());
  for (std::size_t k = 0; k < ref_values.size(); ++k) {
    a_values[k] = t.step(ref_values[k]);
  }

  const auto matvec_into = [&](const std::vector<double>& in,
                               std::vector<double>& out) {
    for (std::size_t row = 0; row < n; ++row) {
      double sum = 0.0;
      for (std::size_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
        sum += a_values[k] * in[col_idx[k]];
      }
      out[row] = t.step(sum);
    }
  };
  const auto dot = [&](const std::vector<double>& u,
                       const std::vector<double>& v) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += u[i] * v[i];
    return t.step(sum);
  };

  // r = b - A*x0, p = r, rr = <r, r>.
  matvec_into(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = t.step(b[i] - ap[i]);
  for (std::size_t i = 0; i < n; ++i) p[i] = t.step(r[i]);
  double rr = dot(r, r);

  // --- Phase 2: fixed-count CG iterations. ---------------------------------
  t.phase("iterations");
  for (std::size_t iter = 0; iter < config_.iterations; ++iter) {
    matvec_into(p, ap);
    const double p_ap = dot(p, ap);
    const double alpha = t.step(rr / p_ap);
    for (std::size_t i = 0; i < n; ++i) x[i] = t.step(x[i] + alpha * p[i]);
    for (std::size_t i = 0; i < n; ++i) r[i] = t.step(r[i] - alpha * ap[i]);
    const double rr_next = dot(r, r);
    const double beta = t.step(rr_next / rr);
    for (std::size_t i = 0; i < n; ++i) p[i] = t.step(r[i] + beta * p[i]);
    rr = rr_next;
  }

  return x;
}

CgProgram::PhaseMarkers CgProgram::phase_markers() const {
  const std::uint64_t n = unknowns();
  const linalg::CsrMatrix structure =
      linalg::CsrMatrix::poisson5(config_.nx, config_.ny);
  PhaseMarkers markers;
  markers.zero_init = 0;
  markers.setup = 4 * n;
  // setup: b (n) + A values (nnz); then r/p/rr prologue: ap (n) + r (n) +
  // p (n) + rr (1) still belongs to setup for reporting purposes.
  markers.iterations = markers.setup + n + structure.nonzeros() + 3 * n + 1;
  return markers;
}

}  // namespace ftb::kernels
