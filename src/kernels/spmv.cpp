#include "kernels/spmv.h"

#include "kernels/parallel.h"
#include "linalg/csr.h"
#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

std::string SpmvConfig::key() const {
  std::string key = util::format(
      "spmv:nx=%zu:ny=%zu:rep=%zu:seed=%llu:atol=%g:rtol=%g", nx, ny, repeats,
      static_cast<unsigned long long>(seed), atol, rtol);
  // threads = 1 and detector off keep the historical key (see CgConfig).
  if (threads > 1) key += util::format(":thr=%zu", threads);
  if (detector) key += ":det=1";
  return key;
}

SpmvProgram::SpmvProgram(SpmvConfig config) : config_(config) {
  if (config_.detector) {
    // The ABFT column-checksum equality sum(A y) = (c^T) y holds exactly in
    // the fault-free run, so comparing sum(output) against the golden sum
    // is precisely the check a checksum-augmented SpMV would maintain.
    detector_ = std::make_unique<fi::ChecksumDetector>(/*atol=*/1e-8,
                                                       /*rtol=*/1e-6);
  }
}

std::vector<double> SpmvProgram::run(fi::Tracer& t) const {
  const linalg::CsrMatrix structure =
      linalg::CsrMatrix::poisson5(config_.nx, config_.ny);
  const std::size_t n = structure.rows();
  const std::size_t threads = config_.threads > 0 ? config_.threads : 1;
  const auto row_ptr = structure.row_ptr();
  const auto col_idx = structure.col_idx();
  const auto ref_values = structure.values();

  // The Poisson operator has spectral radius < 8; scale by 1/8 so chained
  // products neither explode nor vanish.
  t.phase("matrix");
  std::vector<double> values(ref_values.size());
  traced_parallel_for(t, ref_values.size(), threads,
                      [&](std::size_t k, auto& s) {
                        values[k] = s.step(ref_values[k] / 8.0);
                      });

  t.phase("vector");
  util::Rng rng(config_.seed);
  std::vector<double> init(n);
  for (double& v : init) v = rng.next_double(-1.0, 1.0);
  std::vector<double> y(n), next(n);
  traced_parallel_for(t, n, threads,
                      [&](std::size_t i, auto& s) { y[i] = s.step(init[i]); });

  // Matrix and input vector are live between phases: memory-resident
  // faults land here and are read back by every product (fi/memfault.h).
  t.touch(values);
  t.touch(y);

  t.phase("products");
  for (std::size_t rep = 0; rep < config_.repeats; ++rep) {
    traced_parallel_for(t, n, threads, [&](std::size_t row, auto& s) {
      double sum = 0.0;
      for (std::size_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
        sum += values[k] * y[col_idx[k]];
      }
      next[row] = s.step(sum);
    });
    y.swap(next);
  }
  return y;
}

}  // namespace ftb::kernels
