#include "kernels/spmv.h"

#include "linalg/csr.h"
#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

std::string SpmvConfig::key() const {
  return util::format("spmv:nx=%zu:ny=%zu:rep=%zu:seed=%llu:atol=%g:rtol=%g",
                      nx, ny, repeats, static_cast<unsigned long long>(seed),
                      atol, rtol);
}

SpmvProgram::SpmvProgram(SpmvConfig config) : config_(config) {}

std::vector<double> SpmvProgram::run(fi::Tracer& t) const {
  const linalg::CsrMatrix structure =
      linalg::CsrMatrix::poisson5(config_.nx, config_.ny);
  const std::size_t n = structure.rows();
  const auto row_ptr = structure.row_ptr();
  const auto col_idx = structure.col_idx();
  const auto ref_values = structure.values();

  // The Poisson operator has spectral radius < 8; scale by 1/8 so chained
  // products neither explode nor vanish.
  t.phase("matrix");
  std::vector<double> values(ref_values.size());
  for (std::size_t k = 0; k < ref_values.size(); ++k) {
    values[k] = t.step(ref_values[k] / 8.0);
  }

  t.phase("vector");
  util::Rng rng(config_.seed);
  std::vector<double> y(n), next(n);
  for (double& v : y) v = t.step(rng.next_double(-1.0, 1.0));

  t.phase("products");
  for (std::size_t rep = 0; rep < config_.repeats; ++rep) {
    for (std::size_t row = 0; row < n; ++row) {
      double sum = 0.0;
      for (std::size_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
        sum += values[k] * y[col_idx[k]];
      }
      next[row] = t.step(sum);
    }
    y.swap(next);
  }
  return y;
}

}  // namespace ftb::kernels
