// Hazard kernels: workloads whose injected flips can genuinely corrupt
// control flow, built to exercise the process-isolation layer
// (fi/sandbox.h) with *real* misbehaviour instead of simulated crashes.
//
// Both kernels deliberately break the library-wide "no data-dependent
// control flow" contract: loop trip counts, array offsets, and integer
// divisors are derived from *traced* values, so a bit flip at those sites
// can
//
//   * spin a loop effectively forever              -> watchdog Hang,
//   * index far outside an array                   -> SIGSEGV in the child,
//   * drive an integer divisor to zero             -> SIGFPE in the child,
//   * shift the dynamic-instruction count          -> control-flow Crash.
//
// The fault-free run is still fully deterministic, so golden runs, config
// keys, and outcome classification work unchanged.  NEVER run injected
// experiments on these programs in-process: use run_injected_sandboxed (or
// campaign::run_experiments_sandboxed) so a poisoned flip cannot take down
// the campaign.  Control values are chosen with low mantissa bits clear
// (small integers / powers of two), so low-order-mantissa flips perturb
// them by less than one unit and leave control flow intact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fi/program.h"

namespace ftb::kernels {

/// Control-flow gauntlet: every round re-derives a loop trip count, a raw
/// array offset, and an integer divisor from traced values.
struct HazardConfig {
  std::size_t n = 16;       // working-set size; must be a power of two
  std::size_t rounds = 2;   // hazard rounds
  std::uint64_t seed = 77;
  double atol = 1e-9;
  double rtol = 1e-6;

  std::string key() const;
};

class HazardProgram final : public fi::Program {
 public:
  explicit HazardProgram(HazardConfig config);

  std::string name() const override { return "hazard"; }
  std::string config_key() const override { return config_.key(); }
  fi::OutputComparator comparator() const override {
    return {config_.atol, config_.rtol};
  }

  std::vector<double> run(fi::Tracer& tracer) const override;

  const HazardConfig& config() const noexcept { return config_; }

  /// Dynamic-instruction indices of the three hazard control values in
  /// round `r` -- the sites whose exponent-bit flips produce hangs
  /// (trip count), SIGSEGV (offset), and SIGFPE (divisor).
  std::uint64_t trip_site(std::size_t round) const noexcept;
  std::uint64_t offset_site(std::size_t round) const noexcept;
  std::uint64_t divisor_site(std::size_t round) const noexcept;

 private:
  HazardConfig config_;
};

/// Convergence-style spin loop: `residual *= decay` until it drops below
/// `target`.  Flipping the decay factor's exponent LSB turns it into
/// exactly 1.0 -- the residual then never shrinks and the run spins
/// forever on perfectly finite values, the purest possible hang.
struct HazardSpinConfig {
  std::size_t n = 8;             // output vector length
  double target = 1e-6;          // convergence threshold
  std::uint64_t spin_guard = std::uint64_t{1} << 50;  // effectively never
  double atol = 1e-9;
  double rtol = 1e-6;

  std::string key() const;
};

class HazardSpinProgram final : public fi::Program {
 public:
  explicit HazardSpinProgram(HazardSpinConfig config);

  std::string name() const override { return "hazard_spin"; }
  std::string config_key() const override { return config_.key(); }
  fi::OutputComparator comparator() const override {
    return {config_.atol, config_.rtol};
  }

  std::vector<double> run(fi::Tracer& tracer) const override;

  const HazardSpinConfig& config() const noexcept { return config_; }

  /// Site of the decay factor (site 1); flipping its exponent LSB (bit 52)
  /// yields decay == 1.0 and a guaranteed hang.
  static constexpr std::uint64_t kDecaySite = 1;

 private:
  HazardSpinConfig config_;
};

}  // namespace ftb::kernels
