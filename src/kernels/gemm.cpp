#include "kernels/gemm.h"

#include <cassert>

#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

std::string GemmConfig::key() const {
  std::string key =
      util::format("gemm:n=%zu:b=%zu:seed=%llu:atol=%g:rtol=%g", n, block,
                   static_cast<unsigned long long>(seed), atol, rtol);
  if (detector) key += ":det=1";  // detector off keeps the historical key
  return key;
}

GemmProgram::GemmProgram(GemmConfig config) : config_(config) {
  assert(config_.block > 0 && config_.n % config_.block == 0);
  if (config_.detector) {
    // Full-checksum GEMM (Huang & Abraham 1984): sum(C) equals the product
    // of the input checksum vectors in the fault-free run, so the golden
    // sum is the checksum the augmented kernel would carry.
    detector_ = std::make_unique<fi::ChecksumDetector>(/*atol=*/1e-8,
                                                       /*rtol=*/1e-6);
  }
}

std::vector<double> GemmProgram::run(fi::Tracer& t) const {
  const std::size_t n = config_.n;
  const std::size_t nb = config_.block;

  t.phase("fill-a");
  util::Rng rng(config_.seed);
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  for (double& v : a) v = t.step(rng.next_double(-1.0, 1.0));
  t.phase("fill-b");
  for (double& v : b) v = t.step(rng.next_double(-1.0, 1.0));

  t.phase("multiply");
  // Blocked i-k-j schedule: for each k tile, C tiles accumulate one rank-nb
  // update; the store after each update is the traced data element.
  for (std::size_t k0 = 0; k0 < n; k0 += nb) {
    for (std::size_t i0 = 0; i0 < n; i0 += nb) {
      for (std::size_t j0 = 0; j0 < n; j0 += nb) {
        for (std::size_t i = i0; i < i0 + nb; ++i) {
          for (std::size_t j = j0; j < j0 + nb; ++j) {
            double sum = c[i * n + j];
            for (std::size_t k = k0; k < k0 + nb; ++k) {
              sum += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = t.step(sum);
          }
        }
      }
    }
  }
  return c;
}

}  // namespace ftb::kernels
