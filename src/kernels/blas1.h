// Mini BLAS kernels (daxpy, dot, dense matvec) as tiny instrumented
// programs.  They serve three purposes: fast unit-test subjects for the
// executor and boundary machinery, the Section 5 monotonicity cases
// (matrix-vector products have f(eps) = C * eps), and quickstart examples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fi/program.h"

namespace ftb::kernels {

struct DaxpyConfig {
  std::size_t n = 64;
  double alpha = 1.5;
  std::uint64_t seed = 41;
  double atol = 1e-9;
  double rtol = 1e-6;

  std::string key() const;
};

/// y = alpha * x + y, elementwise; output y.  Dynamic instructions: the
/// traced fills of x and y and the n update stores.
class DaxpyProgram final : public fi::Program {
 public:
  explicit DaxpyProgram(DaxpyConfig config);

  std::string name() const override { return "daxpy"; }
  std::string config_key() const override { return config_.key(); }
  fi::OutputComparator comparator() const override {
    return {config_.atol, config_.rtol};
  }
  std::vector<double> run(fi::Tracer& tracer) const override;

  const DaxpyConfig& config() const noexcept { return config_; }

 private:
  DaxpyConfig config_;
};

struct MatvecConfig {
  std::size_t n = 16;            // square matrix dimension
  std::size_t repeats = 4;       // chained products y <- A*y (error growth)
  std::uint64_t seed = 43;
  double atol = 1e-9;
  double rtol = 1e-6;

  std::string key() const;
};

/// Repeated dense matrix-vector products -- the Section 5 example of a
/// monotonic kernel (output error is linear in the injected error).
class MatvecProgram final : public fi::Program {
 public:
  explicit MatvecProgram(MatvecConfig config);

  std::string name() const override { return "matvec"; }
  std::string config_key() const override { return config_.key(); }
  fi::OutputComparator comparator() const override {
    return {config_.atol, config_.rtol};
  }
  std::vector<double> run(fi::Tracer& tracer) const override;

  const MatvecConfig& config() const noexcept { return config_; }

 private:
  MatvecConfig config_;
};

}  // namespace ftb::kernels
