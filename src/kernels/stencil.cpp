#include "kernels/stencil.h"

#include "kernels/parallel.h"
#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

std::string StencilConfig::key() const {
  std::string key = util::format(
      "stencil:nx=%zu:ny=%zu:it=%zu:seed=%llu:atol=%g:rtol=%g", nx, ny,
      iterations, static_cast<unsigned long long>(init_seed), atol, rtol);
  // threads = 1 and detector off keep the historical key (see CgConfig).
  if (threads > 1) key += util::format(":thr=%zu", threads);
  if (detector) key += ":det=1";
  return key;
}

StencilProgram::StencilProgram(StencilConfig config) : config_(config) {
  if (config_.detector) {
    // Alternating-sign per-row sums: the smoothing sweep preserves interior
    // row sums almost exactly, and the sign fold keeps corruptions in
    // different rows from cancelling in the statistic.
    detector_ = std::make_unique<fi::RowSumDetector>(config_.nx,
                                                     /*atol=*/1e-8,
                                                     /*rtol=*/1e-6);
  }
}

std::vector<double> StencilProgram::run(fi::Tracer& t) const {
  const std::size_t nx = config_.nx;
  const std::size_t ny = config_.ny;
  const std::size_t threads = config_.threads > 0 ? config_.threads : 1;
  const std::size_t width = nx + 2;   // zero halo frame
  const std::size_t height = ny + 2;

  std::vector<double> grid(width * height, 0.0);
  std::vector<double> next(width * height, 0.0);
  const auto index = [width](std::size_t ix, std::size_t iy) {
    return iy * width + ix;
  };

  // Traced initial interior fill.
  t.phase("init");
  util::Rng rng(config_.init_seed);
  std::vector<double> init(nx * ny);
  for (double& v : init) v = rng.next_double(-1.0, 1.0);
  traced_parallel_for(t, nx * ny, threads, [&](std::size_t cell, auto& s) {
    const std::size_t ix = 1 + cell % nx;
    const std::size_t iy = 1 + cell / nx;
    grid[index(ix, iy)] = s.step(init[cell]);
  });

  // The whole field (halo included) is live between sweeps; a resident
  // fault flipped here is read back by the very next sweep (fi/memfault.h).
  t.touch(grid);

  for (std::size_t sweep = 0; sweep < config_.iterations; ++sweep) {
    t.phase("sweep " + std::to_string(sweep));
    traced_parallel_for(t, nx * ny, threads, [&](std::size_t cell, auto& s) {
      const std::size_t ix = 1 + cell % nx;
      const std::size_t iy = 1 + cell / nx;
      const double sum = grid[index(ix, iy)] + grid[index(ix + 1, iy)] +
                         grid[index(ix - 1, iy)] + grid[index(ix, iy + 1)] +
                         grid[index(ix, iy - 1)];
      next[index(ix, iy)] = s.step(0.2 * sum);
    });
    grid.swap(next);
  }

  // Output: the interior field.
  std::vector<double> out;
  out.reserve(nx * ny);
  for (std::size_t iy = 1; iy <= ny; ++iy) {
    for (std::size_t ix = 1; ix <= nx; ++ix) {
      out.push_back(grid[index(ix, iy)]);
    }
  }
  return out;
}

}  // namespace ftb::kernels
