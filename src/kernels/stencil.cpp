#include "kernels/stencil.h"

#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

std::string StencilConfig::key() const {
  return util::format("stencil:nx=%zu:ny=%zu:it=%zu:seed=%llu:atol=%g:rtol=%g",
                      nx, ny, iterations,
                      static_cast<unsigned long long>(init_seed), atol, rtol);
}

StencilProgram::StencilProgram(StencilConfig config) : config_(config) {}

std::vector<double> StencilProgram::run(fi::Tracer& t) const {
  const std::size_t nx = config_.nx;
  const std::size_t ny = config_.ny;
  const std::size_t width = nx + 2;   // zero halo frame
  const std::size_t height = ny + 2;

  std::vector<double> grid(width * height, 0.0);
  std::vector<double> next(width * height, 0.0);
  const auto index = [width](std::size_t ix, std::size_t iy) {
    return iy * width + ix;
  };

  // Traced initial interior fill.
  t.phase("init");
  util::Rng rng(config_.init_seed);
  for (std::size_t iy = 1; iy <= ny; ++iy) {
    for (std::size_t ix = 1; ix <= nx; ++ix) {
      grid[index(ix, iy)] = t.step(rng.next_double(-1.0, 1.0));
    }
  }

  for (std::size_t sweep = 0; sweep < config_.iterations; ++sweep) {
    t.phase("sweep " + std::to_string(sweep));
    for (std::size_t iy = 1; iy <= ny; ++iy) {
      for (std::size_t ix = 1; ix <= nx; ++ix) {
        const double sum = grid[index(ix, iy)] + grid[index(ix + 1, iy)] +
                           grid[index(ix - 1, iy)] + grid[index(ix, iy + 1)] +
                           grid[index(ix, iy - 1)];
        next[index(ix, iy)] = t.step(0.2 * sum);
      }
    }
    grid.swap(next);
  }

  // Output: the interior field.
  std::vector<double> out;
  out.reserve(nx * ny);
  for (std::size_t iy = 1; iy <= ny; ++iy) {
    for (std::size_t ix = 1; ix <= nx; ++ix) {
      out.push_back(grid[index(ix, iy)]);
    }
  }
  return out;
}

}  // namespace ftb::kernels
