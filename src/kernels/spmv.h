// Chained sparse matrix-vector products y <- A * y on the 2-D Poisson
// operator -- the "sparse ... matrix multiplication" case of the paper's
// Section 5 monotonicity analysis (f(eps) = C * eps), and the computational
// core of the iterative solvers whose resiliency the paper's Related Work
// studies (Shantharam et al.: error growth across a series of SpMVs).
//
// Traced data elements: the matrix-value array, the input vector, and every
// product element store per repetition.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fi/program.h"

namespace ftb::kernels {

struct SpmvConfig {
  std::size_t nx = 6;          // Poisson grid (matrix is (nx*ny)^2, 5-point)
  std::size_t ny = 6;
  std::size_t repeats = 8;     // chained products
  std::uint64_t seed = 71;
  double atol = 1e-9;
  double rtol = 1e-6;
  std::size_t threads = 1;     // >1: deterministic sharded row loops
  bool detector = false;       // ABFT sum-checksum on the output vector

  std::string key() const;
};

class SpmvProgram final : public fi::Program {
 public:
  explicit SpmvProgram(SpmvConfig config);

  std::string name() const override { return "spmv"; }
  std::string config_key() const override { return config_.key(); }
  fi::OutputComparator comparator() const override {
    return {config_.atol, config_.rtol};
  }

  /// Output: y after `repeats` products (scaled to keep magnitudes stable).
  std::vector<double> run(fi::Tracer& tracer) const override;

  /// Column-checksum detector (sum(y) against the golden sum) when
  /// SpmvConfig::detector is set; nullptr otherwise.
  const fi::Detector* detector() const noexcept override {
    return detector_.get();
  }

  const SpmvConfig& config() const noexcept { return config_; }

 private:
  SpmvConfig config_;
  fi::DetectorPtr detector_;
};

}  // namespace ftb::kernels
