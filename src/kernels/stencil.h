// 2-D five-point Jacobi stencil -- the paper's Section 5 example of a kernel
// whose output error is provably monotonic in the injected error
// (f(eps) = C * eps for the averaging stencil), used by the property tests
// and as a fourth analysis subject.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fi/program.h"

namespace ftb::kernels {

struct StencilConfig {
  std::size_t nx = 8;           // interior width
  std::size_t ny = 8;           // interior height
  std::size_t iterations = 6;   // Jacobi sweeps
  std::uint64_t init_seed = 31; // deterministic initial field
  double atol = 1e-9;
  double rtol = 1e-6;
  std::size_t threads = 1;      // >1: deterministic sharded sweep loops
  bool detector = false;        // ABFT row-sum invariant on the output

  std::string key() const;
};

/// Each sweep writes s(x_ij) = 0.2 * (c + n + s + e + w) into a second
/// buffer (Jacobi, not Gauss-Seidel, so the update order cannot leak
/// information).  Boundary values are a fixed frame of zeros.  Traced data
/// elements: the initial interior fill and every sweep's stores.
class StencilProgram final : public fi::Program {
 public:
  explicit StencilProgram(StencilConfig config);

  std::string name() const override { return "stencil2d"; }
  std::string config_key() const override { return config_.key(); }
  fi::OutputComparator comparator() const override {
    return {config_.atol, config_.rtol};
  }

  std::vector<double> run(fi::Tracer& tracer) const override;

  /// Alternating-sign row-sum invariant (stride nx) when
  /// StencilConfig::detector is set; nullptr otherwise.
  const fi::Detector* detector() const noexcept override {
    return detector_.get();
  }

  const StencilConfig& config() const noexcept { return config_; }

 private:
  StencilConfig config_;
  fi::DetectorPtr detector_;
};

}  // namespace ftb::kernels
