// Deterministic fork-join helpers for the threaded kernel variants
// (CG / SpMV / stencil with threads > 1).
//
// Parallel fault injection only stays reproducible if the work split is a
// pure function of the thread count: every traced store keeps the global
// dynamic-instruction index it would get under the serial interleaving
// thread 0, thread 1, ..., and every reduction folds its partial sums in
// thread order.  Scheduling can then reorder the *execution* freely without
// ever changing a produced value, an injection site, or a crash site --
// which is what lets a serial-vs-parallel boundary comparison attribute
// differences to the numerics (reduction grouping) instead of to races.
#pragma once

#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "fi/tracer.h"

namespace ftb::kernels {

/// Contiguous near-equal partition of [0, count) into `threads` ranges.
inline std::vector<std::pair<std::size_t, std::size_t>> split_ranges(
    std::size_t count, std::size_t threads) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(threads);
  const std::size_t base = count / threads;
  const std::size_t extra = count % threads;
  std::size_t begin = 0;
  for (std::size_t th = 0; th < threads; ++th) {
    const std::size_t length = base + (th < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + length);
    begin += length;
  }
  return ranges;
}

/// Runs `body(i, stepper)` for every i in [0, count), where `stepper` is
/// the Tracer itself (threads <= 1: the plain serial path, byte-identical
/// to an undecorated kernel) or a per-thread Tracer::Shard with a
/// pre-assigned global index range.  `body` must only write per-index
/// state; cross-index dependencies would race.
template <typename Body>
void traced_parallel_for(fi::Tracer& tracer, std::size_t count,
                         std::size_t threads, Body&& body) {
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i, tracer);
    return;
  }
  const auto ranges = split_ranges(count, threads);
  std::vector<fi::Tracer::Shard> shards;
  shards.reserve(threads);
  for (const auto& range : ranges) {
    shards.push_back(tracer.shard(range.second - range.first));
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t th = 0; th < threads; ++th) {
    workers.emplace_back([&ranges, &shards, &body, th] {
      const auto [begin, end] = ranges[th];
      for (std::size_t i = begin; i < end; ++i) body(i, shards[th]);
    });
  }
  for (std::thread& worker : workers) worker.join();
  tracer.join(shards);  // folds shard state; throws the minimum crash site
}

/// Fixed-order parallel reduction: partial sums over the contiguous ranges
/// run concurrently, then fold in thread order, so the grouping -- and
/// therefore the rounding -- depends only on `threads`, never on
/// scheduling.  Returns the *untraced* sum; callers trace the final value
/// through one Tracer::step, exactly like the serial reduction does.
template <typename Term>
double reduced_parallel_sum(std::size_t count, std::size_t threads,
                            Term&& term) {
  if (threads <= 1) {
    double sum = 0.0;
    for (std::size_t i = 0; i < count; ++i) sum += term(i);
    return sum;
  }
  const auto ranges = split_ranges(count, threads);
  std::vector<double> partial(threads, 0.0);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t th = 0; th < threads; ++th) {
    workers.emplace_back([&ranges, &partial, &term, th] {
      const auto [begin, end] = ranges[th];
      double sum = 0.0;
      for (std::size_t i = begin; i < end; ++i) sum += term(i);
      partial[th] = sum;
    });
  }
  for (std::thread& worker : workers) worker.join();
  double sum = 0.0;
  for (const double p : partial) sum += p;
  return sum;
}

}  // namespace ftb::kernels
