// Name-based kernel factory used by benches and examples, with three size
// presets: "tiny" (unit tests, sub-second exhaustive campaigns), "default"
// (the bench binaries' out-of-the-box size), and "paper" (the evaluation
// sizes from the PPoPP'21 paper, e.g. LU 32x32 with 16x16 blocks).
#pragma once

#include <string>
#include <vector>

#include "fi/program.h"

namespace ftb::kernels {

enum class Preset { kTiny, kDefault, kPaper };

Preset preset_from_string(const std::string& text);
const char* to_string(Preset preset) noexcept;

/// Names accepted by make_program: "cg", "lu", "fft", "stencil2d", "daxpy",
/// "matvec".  The paper's three evaluation kernels come first.
std::vector<std::string> program_names();

/// Creates a configured program; throws std::invalid_argument for unknown
/// names.  Names may carry decorations "<kernel>[+tN][+det]": "+tN" selects
/// the kernel's deterministic N-thread variant (cg, spmv, stencil2d) and
/// "+det" arms its ABFT detector (cg, spmv, stencil2d, gemm), e.g.
/// "cg+det", "spmv+t2+det".  Decorations a kernel does not support throw.
fi::ProgramPtr make_program(const std::string& name, Preset preset);

}  // namespace ftb::kernels
