// Blocked dense matrix-matrix multiply (C = A * B).  Section 5 of the paper
// derives that matrix products have a *monotonic* error function
// f(eps) = C * eps, which makes GEMM the cleanest large kernel for
// validating the boundary machinery -- and a realistic analysis subject
// (ABFT for matrix multiplication, Huang & Abraham 1984, is the classic
// related work the paper cites).
//
// Traced data elements: both input matrices' fills and every output tile
// store (one write per C element per k-block, as a blocked GEMM performs).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fi/program.h"

namespace ftb::kernels {

struct GemmConfig {
  std::size_t n = 12;       // square matrices, n x n
  std::size_t block = 4;    // tile size (must divide n)
  std::uint64_t seed = 57;
  double atol = 1e-9;
  double rtol = 1e-6;
  bool detector = false;    // ABFT sum-checksum over C (Huang & Abraham)

  std::string key() const;
};

class GemmProgram final : public fi::Program {
 public:
  explicit GemmProgram(GemmConfig config);

  std::string name() const override { return "gemm"; }
  std::string config_key() const override { return config_.key(); }
  fi::OutputComparator comparator() const override {
    return {config_.atol, config_.rtol};
  }

  /// Output: C, row-major.
  std::vector<double> run(fi::Tracer& tracer) const override;

  /// Sum-checksum over C (the Huang & Abraham 1984 full-checksum equality)
  /// when GemmConfig::detector is set; nullptr otherwise.
  const fi::Detector* detector() const noexcept override {
    return detector_.get();
  }

  const GemmConfig& config() const noexcept { return config_; }

 private:
  GemmConfig config_;
  fi::DetectorPtr detector_;
};

}  // namespace ftb::kernels
