// Jacobi iterative solver for the 2-D Poisson system A x = b.  A second
// iterative method alongside CG with a very different resiliency character:
// Jacobi is a *stationary* method whose error contracts by the iteration
// matrix every sweep regardless of history, so -- unlike CG with its
// recursive residual -- corruption anywhere in the state is self-healing as
// long as enough sweeps remain.  Comparing the two is exactly the
// iterative-methods discussion in the paper's Related Work (Bronevetsky &
// de Supinski; Chen's Online-ABFT).
//
// Traced data elements: b and x0 fills and every sweep's writes of x.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fi/program.h"

namespace ftb::kernels {

struct JacobiConfig {
  std::size_t nx = 6;           // grid width (unknowns = nx * ny)
  std::size_t ny = 6;
  std::size_t sweeps = 60;      // fixed sweep count
  std::uint64_t rhs_seed = 63;
  double atol = 1e-8;
  double rtol = 1e-6;

  std::string key() const;
};

class JacobiProgram final : public fi::Program {
 public:
  explicit JacobiProgram(JacobiConfig config);

  std::string name() const override { return "jacobi"; }
  std::string config_key() const override { return config_.key(); }
  fi::OutputComparator comparator() const override {
    return {config_.atol, config_.rtol};
  }

  /// Output: the solution estimate x after the fixed sweep count.
  std::vector<double> run(fi::Tracer& tracer) const override;

  const JacobiConfig& config() const noexcept { return config_; }
  std::size_t unknowns() const noexcept { return config_.nx * config_.ny; }

 private:
  JacobiConfig config_;
};

}  // namespace ftb::kernels
