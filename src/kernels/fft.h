// Six-step 1-D FFT -- the SPLASH-2 FFT stand-in.
//
// The length-n input (n = n1 * n2, both powers of two) is viewed as an
// n1-by-n2 matrix and transformed with the classic six-step algorithm:
//
//   1. transpose (n1 x n2 -> n2 x n1)
//   2. n2 independent n1-point FFTs (rows)
//   3. twiddle multiplication by w_n^(j2*k1)
//   4. transpose
//   5. n1 independent n2-point FFTs (rows)
//   6. transpose into the natural-order spectrum
//
// The paper's Figure 4 FFT discussion -- "the early dynamic instructions
// transpose an n1 x n2 matrix ... most of the data elements in the early
// region are accessed only a few times, so errors introduced there do not
// propagate readily" -- is a direct property of this structure.
//
// Traced data elements: the input signal fill, the twiddle-factor table,
// every transpose store, and every butterfly/twiddle store (re and im are
// separate doubles, as in the split-layout SPLASH-2 kernel).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fi/program.h"

namespace ftb::kernels {

struct FftConfig {
  std::size_t n1 = 8;             // rows (power of two)
  std::size_t n2 = 8;             // cols (power of two)
  std::uint64_t signal_seed = 23; // deterministic input signal
  double atol = 1e-8;
  double rtol = 1e-6;

  std::size_t n() const noexcept { return n1 * n2; }
  std::string key() const;
};

class FftProgram final : public fi::Program {
 public:
  explicit FftProgram(FftConfig config);

  std::string name() const override { return "fft"; }
  std::string config_key() const override { return config_.key(); }
  fi::OutputComparator comparator() const override {
    return {config_.atol, config_.rtol};
  }

  /// Output: the interleaved complex spectrum [re0, im0, re1, im1, ...] in
  /// natural frequency order.
  std::vector<double> run(fi::Tracer& tracer) const override;

  const FftConfig& config() const noexcept { return config_; }

 private:
  FftConfig config_;
};

}  // namespace ftb::kernels
