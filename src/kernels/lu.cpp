#include "kernels/lu.h"

#include <cassert>

#include "linalg/dense.h"
#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

std::string LuConfig::key() const {
  return util::format("lu:n=%zu:b=%zu:seed=%llu:atol=%g:rtol=%g", n, block,
                      static_cast<unsigned long long>(matrix_seed), atol, rtol);
}

LuProgram::LuProgram(LuConfig config) : config_(config) {
  assert(config_.block > 0 && config_.n % config_.block == 0);
}

std::vector<double> LuProgram::run(fi::Tracer& t) const {
  const std::size_t n = config_.n;
  const std::size_t nb = config_.block;

  // Initial fill (traced): diagonally dominant so pivots stay healthy.
  t.phase("init");
  util::Rng rng(config_.matrix_seed);
  const linalg::DenseMatrix source =
      linalg::DenseMatrix::random_diagonally_dominant(n, rng);
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n * n; ++i) a[i] = t.step(source.data()[i]);

  const auto at = [&a, n](std::size_t r, std::size_t c) -> double& {
    return a[r * n + c];
  };

  for (std::size_t k0 = 0; k0 < n; k0 += nb) {
    const std::size_t k1 = k0 + nb;  // one past the diagonal block
    t.phase("block " + std::to_string(k0 / nb));

    // (1) Factor the diagonal block in place (unblocked LU within it).
    for (std::size_t k = k0; k < k1; ++k) {
      const double pivot = at(k, k);
      for (std::size_t i = k + 1; i < k1; ++i) {
        const double factor = at(i, k) / pivot;
        at(i, k) = t.step(factor);
        for (std::size_t j = k + 1; j < k1; ++j) {
          at(i, j) = t.step(at(i, j) - factor * at(k, j));
        }
      }
    }

    // (2a) Column panel: compute L blocks below the diagonal block.
    for (std::size_t k = k0; k < k1; ++k) {
      const double pivot = at(k, k);
      for (std::size_t i = k1; i < n; ++i) {
        const double factor = at(i, k) / pivot;
        at(i, k) = t.step(factor);
        for (std::size_t j = k + 1; j < k1; ++j) {
          at(i, j) = t.step(at(i, j) - factor * at(k, j));
        }
      }
    }

    // (2b) Row panel: forward-substitute the unit-L diagonal block through
    // the blocks to the right.
    for (std::size_t k = k0; k < k1; ++k) {
      for (std::size_t i = k + 1; i < k1; ++i) {
        const double factor = at(i, k);
        for (std::size_t j = k1; j < n; ++j) {
          at(i, j) = t.step(at(i, j) - factor * at(k, j));
        }
      }
    }

    // (3) Trailing submatrix: rank-nb update, one traced write per element
    // per block step (the blocked GEMM's single store).
    for (std::size_t i = k1; i < n; ++i) {
      for (std::size_t j = k1; j < n; ++j) {
        double sum = at(i, j);
        for (std::size_t k = k0; k < k1; ++k) {
          sum -= at(i, k) * at(k, j);
        }
        at(i, j) = t.step(sum);
      }
    }
  }

  return a;
}

}  // namespace ftb::kernels
