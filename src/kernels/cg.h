// Conjugate gradient on a 2-D Poisson operator -- the MiniFE stand-in.
//
// The program structure deliberately mirrors the phases the paper's Figure 4
// discussion attributes to the CG/MiniFE benchmark:
//
//   phase 0: zero-initialisation of the solution and work vectors (the
//            paper's "first 80 dynamic instructions initialise floating
//            point variables to zero"),
//   phase 1: one-shot setup -- right-hand side and operator assembly (the
//            "initialization instructions ... executed only once", to which
//            later errors never propagate),
//   phase 2: the fixed-count CG iterations, whose values are repeatedly
//            overwritten and therefore receive lots of propagated error.
//
// Every stored floating-point data element (vector elements, matrix values,
// and the scalar alphas/betas/dot products) passes through the tracer.  The
// iteration count is fixed: no data-dependent control flow, so faulty runs
// execute the exact same dynamic-instruction sequence.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fi/program.h"
#include "linalg/csr.h"

namespace ftb::kernels {

struct CgConfig {
  std::size_t nx = 6;          // grid width  (unknowns = nx * ny)
  std::size_t ny = 6;          // grid height
  std::size_t iterations = 30; // fixed count, enough to converge at 6x6
  std::uint64_t rhs_seed = 7;  // deterministic right-hand side
  double atol = 1e-8;          // output acceptance (paper's user tolerance T)
  double rtol = 1e-6;
  std::size_t threads = 1;     // >1: deterministic sharded vector loops
  bool detector = false;       // ABFT residual-recompute check on the output

  std::string key() const;
};

class CgProgram final : public fi::Program {
 public:
  explicit CgProgram(CgConfig config);

  std::string name() const override { return "cg"; }
  std::string config_key() const override { return config_.key(); }
  fi::OutputComparator comparator() const override {
    return {config_.atol, config_.rtol};
  }

  std::vector<double> run(fi::Tracer& tracer) const override;

  /// Recomputed-residual ABFT check (||b - A x|| against the golden run's
  /// converged residual) when CgConfig::detector is set; nullptr otherwise.
  const fi::Detector* detector() const noexcept override {
    return detector_.get();
  }

  const CgConfig& config() const noexcept { return config_; }
  std::size_t unknowns() const noexcept { return config_.nx * config_.ny; }

  /// Dynamic-instruction index where each phase begins, for report labels:
  /// [0] zero-init start (always 0), [1] setup start, [2] iterations start.
  struct PhaseMarkers {
    std::uint64_t zero_init = 0;
    std::uint64_t setup = 0;
    std::uint64_t iterations = 0;
  };
  PhaseMarkers phase_markers() const;

 private:
  CgConfig config_;
  fi::DetectorPtr detector_;
};

}  // namespace ftb::kernels
