#include "kernels/jacobi.h"

#include "linalg/csr.h"
#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

std::string JacobiConfig::key() const {
  return util::format("jacobi:nx=%zu:ny=%zu:sweeps=%zu:seed=%llu:atol=%g:rtol=%g",
                      nx, ny, sweeps,
                      static_cast<unsigned long long>(rhs_seed), atol, rtol);
}

JacobiProgram::JacobiProgram(JacobiConfig config) : config_(config) {}

std::vector<double> JacobiProgram::run(fi::Tracer& t) const {
  const std::size_t n = unknowns();
  const linalg::CsrMatrix a =
      linalg::CsrMatrix::poisson5(config_.nx, config_.ny);
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();

  t.phase("setup");
  util::Rng rng(config_.rhs_seed);
  std::vector<double> b(n);
  for (double& v : b) v = t.step(rng.next_double(-1.0, 1.0));
  std::vector<double> x(n), next(n);
  for (double& v : x) v = t.step(0.0);

  t.phase("sweeps");
  for (std::size_t sweep = 0; sweep < config_.sweeps; ++sweep) {
    for (std::size_t row = 0; row < n; ++row) {
      double diag = 1.0;
      double off_sum = 0.0;
      for (std::size_t k = row_ptr[row]; k < row_ptr[row + 1]; ++k) {
        const std::size_t col = col_idx[k];
        if (col == row) {
          diag = values[k];
        } else {
          off_sum += values[k] * x[col];
        }
      }
      next[row] = t.step((b[row] - off_sum) / diag);
    }
    x.swap(next);
  }
  return x;
}

}  // namespace ftb::kernels
