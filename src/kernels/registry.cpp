#include "kernels/registry.h"

#include <memory>
#include <stdexcept>

#include "kernels/blas1.h"
#include "kernels/cg.h"
#include "kernels/fft.h"
#include "kernels/gemm.h"
#include "kernels/hazard.h"
#include "kernels/jacobi.h"
#include "kernels/lu.h"
#include "kernels/spmv.h"
#include "kernels/stencil.h"

namespace ftb::kernels {

Preset preset_from_string(const std::string& text) {
  if (text == "tiny") return Preset::kTiny;
  if (text == "default" || text.empty()) return Preset::kDefault;
  if (text == "paper") return Preset::kPaper;
  throw std::invalid_argument("unknown preset: " + text);
}

const char* to_string(Preset preset) noexcept {
  switch (preset) {
    case Preset::kTiny:
      return "tiny";
    case Preset::kDefault:
      return "default";
    case Preset::kPaper:
      return "paper";
  }
  return "?";
}

std::vector<std::string> program_names() {
  return {"cg",   "lu",     "fft",  "stencil2d", "gemm",   "jacobi",
          "spmv", "daxpy",  "matvec", "hazard",  "hazard_spin"};
}

fi::ProgramPtr make_program(const std::string& name, Preset preset) {
  if (name == "cg") {
    CgConfig config;
    // Iteration counts run the solver to (near) convergence: CG's
    // self-correction is what produces the paper's high masking rates and
    // the non-monotonic sites that motivate the Section 3.5 filter.
    switch (preset) {
      case Preset::kTiny:
        config.nx = config.ny = 4;
        config.iterations = 10;
        break;
      case Preset::kDefault:
        config.nx = config.ny = 6;
        config.iterations = 30;
        break;
      case Preset::kPaper:
        // Comparable to the paper's MiniFE run: a sample space in the
        // hundreds of thousands of experiments.
        config.nx = config.ny = 8;
        config.iterations = 50;
        break;
    }
    return std::make_unique<CgProgram>(config);
  }
  if (name == "lu") {
    LuConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 8;
        config.block = 4;
        break;
      case Preset::kDefault:
        config.n = 16;
        config.block = 8;
        break;
      case Preset::kPaper:
        config.n = 32;   // the paper's exact configuration:
        config.block = 16;  // 32x32 matrix, 16x16 blocks
        break;
    }
    return std::make_unique<LuProgram>(config);
  }
  if (name == "fft") {
    FftConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n1 = config.n2 = 4;
        break;
      case Preset::kDefault:
        config.n1 = config.n2 = 8;
        break;
      case Preset::kPaper:
        config.n1 = config.n2 = 16;  // n = 256, six-step
        break;
    }
    return std::make_unique<FftProgram>(config);
  }
  if (name == "stencil2d") {
    StencilConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.nx = config.ny = 4;
        config.iterations = 3;
        break;
      case Preset::kDefault:
        config.nx = config.ny = 8;
        config.iterations = 6;
        break;
      case Preset::kPaper:
        config.nx = config.ny = 16;
        config.iterations = 10;
        break;
    }
    return std::make_unique<StencilProgram>(config);
  }
  if (name == "gemm") {
    GemmConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 6;
        config.block = 2;
        break;
      case Preset::kDefault:
        config.n = 12;
        config.block = 4;
        break;
      case Preset::kPaper:
        config.n = 24;
        config.block = 8;
        break;
    }
    return std::make_unique<GemmProgram>(config);
  }
  if (name == "jacobi") {
    JacobiConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.nx = config.ny = 4;
        config.sweeps = 25;
        break;
      case Preset::kDefault:
        config.nx = config.ny = 6;
        config.sweeps = 60;
        break;
      case Preset::kPaper:
        config.nx = config.ny = 8;
        config.sweeps = 120;
        break;
    }
    return std::make_unique<JacobiProgram>(config);
  }
  if (name == "spmv") {
    SpmvConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.nx = config.ny = 4;
        config.repeats = 4;
        break;
      case Preset::kDefault:
        config.nx = config.ny = 6;
        config.repeats = 8;
        break;
      case Preset::kPaper:
        config.nx = config.ny = 10;
        config.repeats = 16;
        break;
    }
    return std::make_unique<SpmvProgram>(config);
  }
  if (name == "daxpy") {
    DaxpyConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 16;
        break;
      case Preset::kDefault:
        config.n = 64;
        break;
      case Preset::kPaper:
        config.n = 256;
        break;
    }
    return std::make_unique<DaxpyProgram>(config);
  }
  if (name == "matvec") {
    MatvecConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 6;
        config.repeats = 2;
        break;
      case Preset::kDefault:
        config.n = 16;
        config.repeats = 4;
        break;
      case Preset::kPaper:
        config.n = 32;
        config.repeats = 8;
        break;
    }
    return std::make_unique<MatvecProgram>(config);
  }
  if (name == "hazard") {
    HazardConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 8;
        config.rounds = 2;
        break;
      case Preset::kDefault:
        config.n = 16;
        config.rounds = 2;
        break;
      case Preset::kPaper:
        config.n = 32;
        config.rounds = 4;
        break;
    }
    return std::make_unique<HazardProgram>(config);
  }
  if (name == "hazard_spin") {
    HazardSpinConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 4;
        config.target = 1e-4;
        break;
      case Preset::kDefault:
        config.n = 8;
        config.target = 1e-6;
        break;
      case Preset::kPaper:
        config.n = 16;
        config.target = 1e-9;
        break;
    }
    return std::make_unique<HazardSpinProgram>(config);
  }
  throw std::invalid_argument("unknown program: " + name);
}

}  // namespace ftb::kernels
