#include "kernels/registry.h"

#include <memory>
#include <stdexcept>

#include "kernels/blas1.h"
#include "kernels/cg.h"
#include "kernels/fft.h"
#include "kernels/gemm.h"
#include "kernels/hazard.h"
#include "kernels/jacobi.h"
#include "kernels/lu.h"
#include "kernels/spmv.h"
#include "kernels/stencil.h"

namespace ftb::kernels {

Preset preset_from_string(const std::string& text) {
  if (text == "tiny") return Preset::kTiny;
  if (text == "default" || text.empty()) return Preset::kDefault;
  if (text == "paper") return Preset::kPaper;
  throw std::invalid_argument("unknown preset: " + text);
}

const char* to_string(Preset preset) noexcept {
  switch (preset) {
    case Preset::kTiny:
      return "tiny";
    case Preset::kDefault:
      return "default";
    case Preset::kPaper:
      return "paper";
  }
  return "?";
}

std::vector<std::string> program_names() {
  return {"cg",   "lu",     "fft",  "stencil2d", "gemm",   "jacobi",
          "spmv", "daxpy",  "matvec", "hazard",  "hazard_spin"};
}

fi::ProgramPtr make_program(const std::string& decorated, Preset preset) {
  // Decorations select the robustness variants: "<kernel>[+tN][+det]",
  // e.g. "cg+det", "spmv+t2+det", "stencil2d+t4".  "+tN" runs the kernel's
  // deterministic N-thread sharded loops; "+det" arms its ABFT detector.
  // Undecorated names build the exact historical configuration.
  std::string name = decorated;
  std::size_t threads = 1;
  bool detector = false;
  for (std::size_t plus = name.find('+'); plus != std::string::npos;
       plus = name.find('+')) {
    const std::string option = name.substr(plus + 1);
    const std::string token =
        option.substr(0, option.find('+'));  // first option only
    name = name.substr(0, plus) +
           (option.size() > token.size() ? option.substr(token.size()) : "");
    if (token == "det") {
      detector = true;
    } else if (token.size() > 1 && token[0] == 't') {
      threads = 0;
      for (std::size_t i = 1; i < token.size(); ++i) {
        if (token[i] < '0' || token[i] > '9') {
          throw std::invalid_argument("bad thread option '+" + token +
                                      "' in program name '" + decorated + "'");
        }
        threads = threads * 10 + static_cast<std::size_t>(token[i] - '0');
      }
      if (threads == 0 || threads > 64) {
        throw std::invalid_argument("bad thread count in program name '" +
                                    decorated + "'");
      }
    } else {
      throw std::invalid_argument("unknown option '+" + token +
                                  "' in program name '" + decorated + "'");
    }
  }
  const auto reject_unsupported = [&](const char* kernel, bool can_thread,
                                      bool can_detect) {
    if (threads > 1 && !can_thread) {
      throw std::invalid_argument(std::string("kernel '") + kernel +
                                  "' has no threaded variant");
    }
    if (detector && !can_detect) {
      throw std::invalid_argument(std::string("kernel '") + kernel +
                                  "' has no detector");
    }
  };

  if (name == "cg") {
    CgConfig config;
    // Iteration counts run the solver to (near) convergence: CG's
    // self-correction is what produces the paper's high masking rates and
    // the non-monotonic sites that motivate the Section 3.5 filter.
    switch (preset) {
      case Preset::kTiny:
        config.nx = config.ny = 4;
        config.iterations = 10;
        break;
      case Preset::kDefault:
        config.nx = config.ny = 6;
        config.iterations = 30;
        break;
      case Preset::kPaper:
        // Comparable to the paper's MiniFE run: a sample space in the
        // hundreds of thousands of experiments.
        config.nx = config.ny = 8;
        config.iterations = 50;
        break;
    }
    config.threads = threads;
    config.detector = detector;
    return std::make_unique<CgProgram>(config);
  }
  if (name == "lu") {
    reject_unsupported("lu", false, false);
    LuConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 8;
        config.block = 4;
        break;
      case Preset::kDefault:
        config.n = 16;
        config.block = 8;
        break;
      case Preset::kPaper:
        config.n = 32;   // the paper's exact configuration:
        config.block = 16;  // 32x32 matrix, 16x16 blocks
        break;
    }
    return std::make_unique<LuProgram>(config);
  }
  if (name == "fft") {
    reject_unsupported("fft", false, false);
    FftConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n1 = config.n2 = 4;
        break;
      case Preset::kDefault:
        config.n1 = config.n2 = 8;
        break;
      case Preset::kPaper:
        config.n1 = config.n2 = 16;  // n = 256, six-step
        break;
    }
    return std::make_unique<FftProgram>(config);
  }
  if (name == "stencil2d") {
    StencilConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.nx = config.ny = 4;
        config.iterations = 3;
        break;
      case Preset::kDefault:
        config.nx = config.ny = 8;
        config.iterations = 6;
        break;
      case Preset::kPaper:
        config.nx = config.ny = 16;
        config.iterations = 10;
        break;
    }
    config.threads = threads;
    config.detector = detector;
    return std::make_unique<StencilProgram>(config);
  }
  if (name == "gemm") {
    reject_unsupported("gemm", false, true);
    GemmConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 6;
        config.block = 2;
        break;
      case Preset::kDefault:
        config.n = 12;
        config.block = 4;
        break;
      case Preset::kPaper:
        config.n = 24;
        config.block = 8;
        break;
    }
    config.detector = detector;
    return std::make_unique<GemmProgram>(config);
  }
  if (name == "jacobi") {
    reject_unsupported("jacobi", false, false);
    JacobiConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.nx = config.ny = 4;
        config.sweeps = 25;
        break;
      case Preset::kDefault:
        config.nx = config.ny = 6;
        config.sweeps = 60;
        break;
      case Preset::kPaper:
        config.nx = config.ny = 8;
        config.sweeps = 120;
        break;
    }
    return std::make_unique<JacobiProgram>(config);
  }
  if (name == "spmv") {
    SpmvConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.nx = config.ny = 4;
        config.repeats = 4;
        break;
      case Preset::kDefault:
        config.nx = config.ny = 6;
        config.repeats = 8;
        break;
      case Preset::kPaper:
        config.nx = config.ny = 10;
        config.repeats = 16;
        break;
    }
    config.threads = threads;
    config.detector = detector;
    return std::make_unique<SpmvProgram>(config);
  }
  if (name == "daxpy") {
    reject_unsupported("daxpy", false, false);
    DaxpyConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 16;
        break;
      case Preset::kDefault:
        config.n = 64;
        break;
      case Preset::kPaper:
        config.n = 256;
        break;
    }
    return std::make_unique<DaxpyProgram>(config);
  }
  if (name == "matvec") {
    reject_unsupported("matvec", false, false);
    MatvecConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 6;
        config.repeats = 2;
        break;
      case Preset::kDefault:
        config.n = 16;
        config.repeats = 4;
        break;
      case Preset::kPaper:
        config.n = 32;
        config.repeats = 8;
        break;
    }
    return std::make_unique<MatvecProgram>(config);
  }
  if (name == "hazard") {
    reject_unsupported("hazard", false, false);
    HazardConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 8;
        config.rounds = 2;
        break;
      case Preset::kDefault:
        config.n = 16;
        config.rounds = 2;
        break;
      case Preset::kPaper:
        config.n = 32;
        config.rounds = 4;
        break;
    }
    return std::make_unique<HazardProgram>(config);
  }
  if (name == "hazard_spin") {
    reject_unsupported("hazard_spin", false, false);
    HazardSpinConfig config;
    switch (preset) {
      case Preset::kTiny:
        config.n = 4;
        config.target = 1e-4;
        break;
      case Preset::kDefault:
        config.n = 8;
        config.target = 1e-6;
        break;
      case Preset::kPaper:
        config.n = 16;
        config.target = 1e-9;
        break;
    }
    return std::make_unique<HazardSpinProgram>(config);
  }
  throw std::invalid_argument("unknown program: " + decorated);
}

}  // namespace ftb::kernels
