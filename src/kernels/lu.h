// Blocked, non-pivoting dense LU factorisation -- the SPLASH-2 LU stand-in.
//
// The algorithm follows the SPLASH-2 kernel: the matrix is processed in
// BxB blocks; for each diagonal block step the kernel (1) factors the
// diagonal block, (2) updates the column panel (L blocks) and row panel
// (U blocks), and (3) applies rank-B updates to the trailing interior
// blocks.  The paper's Figure 4 attributes the four low-propagation regions
// of its LU profile to these per-block loop starts, which this structure
// reproduces.  The input matrix is diagonally dominant so factoring without
// pivoting is numerically safe (same requirement as SPLASH-2).
//
// Every stored matrix element passes through the tracer: the initial fill
// and every write performed by the factorisation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fi/program.h"

namespace ftb::kernels {

struct LuConfig {
  std::size_t n = 16;          // matrix dimension
  std::size_t block = 8;       // block size (must divide n)
  std::uint64_t matrix_seed = 11;
  double atol = 1e-8;
  double rtol = 1e-6;

  std::string key() const;
};

class LuProgram final : public fi::Program {
 public:
  explicit LuProgram(LuConfig config);

  std::string name() const override { return "lu"; }
  std::string config_key() const override { return config_.key(); }
  fi::OutputComparator comparator() const override {
    return {config_.atol, config_.rtol};
  }

  /// Output: the packed LU factors, row-major (L strictly below the
  /// diagonal with implicit unit diagonal, U on/above it).
  std::vector<double> run(fi::Tracer& tracer) const override;

  const LuConfig& config() const noexcept { return config_; }

 private:
  LuConfig config_;
};

}  // namespace ftb::kernels
