#include "kernels/blas1.h"

#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

std::string DaxpyConfig::key() const {
  return util::format("daxpy:n=%zu:alpha=%g:seed=%llu:atol=%g:rtol=%g", n,
                      alpha, static_cast<unsigned long long>(seed), atol, rtol);
}

DaxpyProgram::DaxpyProgram(DaxpyConfig config) : config_(config) {}

std::vector<double> DaxpyProgram::run(fi::Tracer& t) const {
  const std::size_t n = config_.n;
  util::Rng rng(config_.seed);
  std::vector<double> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = t.step(rng.next_double(-1.0, 1.0));
  for (std::size_t i = 0; i < n; ++i) y[i] = t.step(rng.next_double(-1.0, 1.0));
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = t.step(config_.alpha * x[i] + y[i]);
  }
  return y;
}

std::string MatvecConfig::key() const {
  return util::format("matvec:n=%zu:rep=%zu:seed=%llu:atol=%g:rtol=%g", n,
                      repeats, static_cast<unsigned long long>(seed), atol,
                      rtol);
}

MatvecProgram::MatvecProgram(MatvecConfig config) : config_(config) {}

std::vector<double> MatvecProgram::run(fi::Tracer& t) const {
  const std::size_t n = config_.n;
  util::Rng rng(config_.seed);

  // Traced matrix fill; mildly scaled so repeated products neither explode
  // nor vanish (rows scaled to roughly unit 1-norm).
  std::vector<double> a(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    a[i] = t.step(rng.next_double(-1.0, 1.0) / static_cast<double>(n));
  }
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = t.step(rng.next_double(-1.0, 1.0));

  std::vector<double> next(n);
  for (std::size_t rep = 0; rep < config_.repeats; ++rep) {
    for (std::size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) sum += a[i * n + j] * y[j];
      next[i] = t.step(sum);
    }
    y.swap(next);
  }
  return y;
}

}  // namespace ftb::kernels
