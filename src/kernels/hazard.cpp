#include "kernels/hazard.h"

#include <cmath>
#include <limits>

#include "util/rng.h"
#include "util/table.h"

namespace ftb::kernels {

namespace {

// Defined double -> size_t conversion that preserves "hugeness": negatives
// and NaN collapse to 0, anything above ~9e18 clamps just below 2^63 so the
// cast stays in range.  A corrupted exponent therefore becomes an enormous
// (but well-defined) trip count or array offset.
std::size_t fold_index(double v) noexcept {
  if (!(v >= 0.0)) return 0;
  constexpr double kCap = 9.0e18;
  if (v >= kCap) return static_cast<std::size_t>(kCap);
  return static_cast<std::size_t>(v);
}

// Defined double -> long conversion for the divisor hazard; clamps to a
// safe range so LONG_MIN / -1 overflow cannot occur.  Values in (-1, 1)
// collapse to 0 -- the SIGFPE trigger.
long fold_long(double v) noexcept {
  if (std::isnan(v)) return 0;
  constexpr double kCap = 1.0e15;
  if (v >= kCap) return static_cast<long>(kCap);
  if (v <= -kCap) return static_cast<long>(-kCap);
  return static_cast<long>(v);
}

}  // namespace

std::string HazardConfig::key() const {
  return util::format("hazard:n=%zu:rounds=%zu:seed=%llu:atol=%g:rtol=%g", n,
                      rounds, static_cast<unsigned long long>(seed), atol,
                      rtol);
}

HazardProgram::HazardProgram(HazardConfig config) : config_(config) {}

// Dynamic-instruction layout per round r (after the n setup fills):
//   base(r) = n + r * (n + 4)
//   base + 0             trip count control value
//   base + 1 .. base + n traced accumulations inside the trip loop
//   base + n + 1         offset control value
//   base + n + 2         divisor control value
//   base + n + 3         round output write
std::uint64_t HazardProgram::trip_site(std::size_t round) const noexcept {
  return config_.n + round * (config_.n + 4);
}
std::uint64_t HazardProgram::offset_site(std::size_t round) const noexcept {
  return trip_site(round) + config_.n + 1;
}
std::uint64_t HazardProgram::divisor_site(std::size_t round) const noexcept {
  return trip_site(round) + config_.n + 2;
}

std::vector<double> HazardProgram::run(fi::Tracer& t) const {
  const std::size_t n = config_.n;
  const std::size_t mask = n - 1;  // n is a power of two
  util::Rng rng(config_.seed);

  t.phase("setup");
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = t.step(rng.next_double(0.5, 1.5));
  }

  t.phase("rounds");
  std::vector<double> out(n, 0.0);
  const double* raw = data.data();
  for (std::size_t r = 0; r < config_.rounds; ++r) {
    // Hazard 1: the loop trip count is a traced value.  Golden: exactly n
    // (a power of two, so low-mantissa flips cannot move the floor).  An
    // exponent-up flip makes ~9e18 trips -- a genuine hang; small shifts
    // change the dynamic-instruction count -- a control-flow crash.
    const double trips_f = t.step(static_cast<double>(n));
    const std::size_t trips = fold_index(trips_f);
    double acc = 0.0;
    for (std::size_t k = 0; k < trips; ++k) {
      acc = t.step(acc + raw[k & mask] * 0.25);
    }

    // Hazard 2: a raw, unchecked array offset from a traced value.  Golden:
    // a small in-range integer.  An exponent-up flip reads ~9e18 doubles
    // past the allocation -- SIGSEGV territory.
    const double offset_f =
        t.step(static_cast<double>((r * 5) & mask));
    const std::size_t offset = fold_index(offset_f);
    acc += raw[offset];

    // Hazard 3: an integer divisor from a traced value.  Golden: 8.0.  A
    // flip that shrinks the exponent collapses it into (-1, 1) -> 0 ->
    // integer division by zero -> SIGFPE.
    const double divisor_f = t.step(8.0);
    const long divisor = fold_long(divisor_f);
    const long quotient = static_cast<long>(1000003 + r) / divisor;

    out[r & mask] =
        t.step(acc + static_cast<double>(quotient) * 1.0e-7);
  }

  t.phase("output");
  std::vector<double> result(n);
  for (std::size_t i = 0; i < n; ++i) {
    result[i] = t.step(out[i] + data[i]);
  }
  return result;
}

std::string HazardSpinConfig::key() const {
  return util::format("hazard_spin:n=%zu:target=%g:guard=%llu:atol=%g:rtol=%g",
                      n, target, static_cast<unsigned long long>(spin_guard),
                      atol, rtol);
}

HazardSpinProgram::HazardSpinProgram(HazardSpinConfig config)
    : config_(config) {}

std::vector<double> HazardSpinProgram::run(fi::Tracer& t) const {
  t.phase("setup");
  double residual = t.step(1.0);        // site 0
  const double decay = t.step(0.5);     // site kDecaySite: exponent LSB flip
                                        // turns this into exactly 1.0

  t.phase("spin");
  std::uint64_t spins = 0;
  while (residual > config_.target) {
    residual = t.step(residual * decay);
    if (++spins > config_.spin_guard) {
      // Unreachable in practice (the guard is astronomically large); turns
      // an in-process fallback hang into a loud non-finite crash instead of
      // spinning until the heat death of the universe.
      residual = t.step(std::numeric_limits<double>::quiet_NaN());
    }
  }

  t.phase("output");
  std::vector<double> out(config_.n);
  for (std::size_t i = 0; i < config_.n; ++i) {
    out[i] = t.step(residual * static_cast<double>(i + 1));
  }
  return out;
}

}  // namespace ftb::kernels
