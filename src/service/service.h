// ftb_served's brain: the net::Server::Handler that wires the protocol to
// the boundary store and the campaign job runner.
//
// Two planes share one connection:
//
//   * query plane -- Ping, PredictFlip, PredictSite, PhaseReport,
//     ListBoundaries, Stats answer synchronously on the event-loop thread
//     from immutable store snapshots, so a long campaign never blocks a
//     predict;
//   * campaign plane -- SubmitCampaign enqueues a job with the runner; the
//     accept/progress/done frames flow back through the server's
//     thread-safe send(), which silently drops frames to connections that
//     disconnected mid-campaign (the job keeps running and still publishes
//     its boundary -- a client hangup must not waste the work).
//
// Shutdown: request_shutdown() (async-signal-safe flag + wake) or a
// Shutdown frame starts the drain -- stop accepting connections, stop
// accepting jobs, stop the running job at its next checkpoint -- and
// on_tick() ends the event loop once the job runner is idle and every
// write buffer has been flushed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/server.h"
#include "service/jobs.h"
#include "service/protocol.h"
#include "service/store.h"
#include "telemetry/events.h"

namespace ftb::service {

struct ServiceOptions {
  /// Directory of boundary artifacts and campaign journals.
  std::string store_dir = ".";
  /// Campaign jobs that may wait in the queue.
  std::size_t max_queue = 8;
  telemetry::Telemetry* telemetry = nullptr;
};

class Service : public net::Server::Handler {
 public:
  explicit Service(ServiceOptions options);
  ~Service() override;

  /// Loads the store directory; returns the number of boundaries loaded and
  /// appends one diagnostic per rejected artifact.
  std::size_t load_store(std::vector<std::string>* diagnostics = nullptr);

  /// The server must be attached before run(); the Service does not own it.
  void attach(net::Server* server) { server_ = server; }

  BoundaryStore& store() { return store_; }
  JobRunner& jobs() { return *jobs_; }

  /// Async-signal-safe shutdown trigger: flips a flag and wakes the loop;
  /// the drain itself runs in on_tick() on the loop thread.
  void request_shutdown() noexcept;

  /// Extra work run on every loop tick (after drain bookkeeping), on the
  /// loop thread.  ftb_served uses this for its SIGUSR1 metrics dump.
  void set_tick_hook(std::function<void()> hook) { tick_hook_ = std::move(hook); }

  // net::Server::Handler
  void on_frame(net::Server::ConnId conn, net::Frame frame) override;
  void on_decode_error(net::Server::ConnId conn,
                       const std::string& error) override;
  void on_tick() override;

 private:
  void reply(net::Server::ConnId conn, const net::Frame& frame);
  void begin_drain();

  void handle_predict_flip(net::Server::ConnId conn, const net::Frame& frame);
  void handle_predict_site(net::Server::ConnId conn, const net::Frame& frame);
  void handle_phase_report(net::Server::ConnId conn, const net::Frame& frame);
  void handle_list(net::Server::ConnId conn);
  void handle_stats(net::Server::ConnId conn);
  void handle_submit(net::Server::ConnId conn, const net::Frame& frame);

  ServiceOptions options_;
  BoundaryStore store_;
  std::unique_ptr<JobRunner> jobs_;
  net::Server* server_ = nullptr;
  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;
  std::function<void()> tick_hook_;
};

}  // namespace ftb::service
