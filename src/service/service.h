// ftb_served's brain: the net::Server::Handler that wires the protocol to
// the boundary store and the campaign job runner.
//
// Two planes share one connection:
//
//   * query plane -- Ping, PredictFlip, PredictSite, PhaseReport,
//     ListBoundaries, Stats answer synchronously on the event-loop thread
//     from immutable store snapshots, so a long campaign never blocks a
//     predict;
//   * campaign plane -- SubmitCampaign enqueues a job with the runner; the
//     accept/progress/done frames flow back through the server's
//     thread-safe send(), which silently drops frames to connections that
//     disconnected mid-campaign (the job keeps running and still publishes
//     its boundary -- a client hangup must not waste the work).
//
// Shutdown: request_shutdown() (async-signal-safe flag + wake) or a
// Shutdown frame starts the drain -- stop accepting connections, stop
// accepting jobs, stop the running job at its next checkpoint -- and
// on_tick() ends the event loop once the admission queue is empty, the job
// runner is idle, and every write buffer has been flushed.
//
// Overload protection: query-plane requests pass through a bounded
// admission queue drained on the loop tick.  When the queue is full, a
// connection exceeds its in-flight cap, or a request's deadline (frame
// header deadline_ms) expires while it waits, the server answers with a
// Busy frame carrying a retry-after hint instead of queueing unboundedly
// or silently stalling.  SubmitCampaign gets the same treatment when the
// job queue is full: Busy, because "try again" is the right answer.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/server.h"
#include "service/dispatch.h"
#include "service/jobs.h"
#include "service/protocol.h"
#include "service/store.h"
#include "telemetry/events.h"

namespace ftb::service {

struct ServiceOptions {
  /// Directory of boundary artifacts, campaign journals, and the job ledger.
  std::string store_dir = ".";
  /// Campaign jobs that may wait in the queue.
  std::size_t max_queue = 8;
  /// Query-plane requests that may wait for admission before Busy is shed.
  std::size_t admission_queue_max = 1024;
  /// Queued requests one connection may have before it is shed.
  std::size_t per_conn_inflight_max = 64;
  /// Queued requests answered per loop tick (bounds per-tick latency).
  std::size_t admission_batch = 256;
  /// Retry-after hint carried in Busy replies, in milliseconds.
  std::uint64_t busy_retry_ms = 50;
  /// Serve local campaign experiments from snapshot fork-servers
  /// (fi/snapshot.h); journals stay byte-identical to the classic path.
  bool snapshot_campaigns = false;
  /// Checkpoint cadence for the snapshot trees, in dynamic instructions.
  std::uint64_t snapshot_interval = 4096;
  /// Lease/heartbeat/quarantine policy for remote campaign workers.
  DispatchOptions dispatch;
  /// CPUs the campaign plane (runner thread + forked sandbox workers) is
  /// pinned to; empty leaves scheduling to the kernel.  Pinning the
  /// campaign off the epoll thread keeps query p99 flat under campaigns.
  std::vector<int> campaign_cpus;
  telemetry::Telemetry* telemetry = nullptr;
};

class Service : public net::Server::Handler {
 public:
  explicit Service(ServiceOptions options);
  ~Service() override;

  /// Loads the store directory; returns the number of boundaries loaded and
  /// appends one diagnostic per rejected artifact.
  std::size_t load_store(std::vector<std::string>* diagnostics = nullptr);

  /// The server must be attached before run(); the Service does not own it.
  /// (Atomic because recovered jobs' callbacks can fire from the runner
  /// thread before or while attach() runs; such early jobs see zero live
  /// workers and run locally.)  Also wires the dispatcher's frame output
  /// and wakeups to the server.
  void attach(net::Server* server);

  BoundaryStore& store() { return store_; }
  JobRunner& jobs() { return *jobs_; }
  ChunkDispatcher& dispatcher() { return *dispatcher_; }

  /// Async-signal-safe shutdown trigger: flips a flag and wakes the loop;
  /// the drain itself runs in on_tick() on the loop thread.
  void request_shutdown() noexcept;

  /// Extra work run on every loop tick (after drain bookkeeping), on the
  /// loop thread.  ftb_served uses this for its SIGUSR1 metrics dump.
  void set_tick_hook(std::function<void()> hook) { tick_hook_ = std::move(hook); }

  // net::Server::Handler
  void on_frame(net::Server::ConnId conn, net::Frame frame) override;
  void on_disconnect(net::Server::ConnId conn) override;
  void on_decode_error(net::Server::ConnId conn,
                       const std::string& error) override;
  void on_tick() override;

 private:
  /// A query waiting for admission; arrival_ns anchors its deadline.
  struct PendingQuery {
    net::Server::ConnId conn = 0;
    net::Frame frame;
    std::uint64_t arrival_ns = 0;
  };

  void reply(net::Server::ConnId conn, const net::Frame& frame);
  void busy(net::Server::ConnId conn, const std::string& message,
            const char* shed_counter);
  void begin_drain();
  void admit(net::Server::ConnId conn, net::Frame frame);
  void drain_admission();
  void dispatch_query(net::Server::ConnId conn, const net::Frame& frame);
  void publish_chaos_stats();

  void handle_predict_flip(net::Server::ConnId conn, const net::Frame& frame);
  void handle_predict_site(net::Server::ConnId conn, const net::Frame& frame);
  void handle_phase_report(net::Server::ConnId conn, const net::Frame& frame);
  void handle_list(net::Server::ConnId conn);
  void handle_stats(net::Server::ConnId conn);
  void handle_submit(net::Server::ConnId conn, const net::Frame& frame);
  void handle_submit_recompute(net::Server::ConnId conn,
                               const net::Frame& frame);

  void handle_worker_hello(net::Server::ConnId conn, const net::Frame& frame);
  void handle_worker_heartbeat(net::Server::ConnId conn,
                               const net::Frame& frame);
  void handle_worker_result(net::Server::ConnId conn, const net::Frame& frame);

  ServiceOptions options_;
  BoundaryStore store_;
  std::unique_ptr<ChunkDispatcher> dispatcher_;  ///< before jobs_: outlives it
  std::unique_ptr<JobRunner> jobs_;
  std::atomic<net::Server*> server_{nullptr};
  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;
  std::function<void()> tick_hook_;

  // Admission state; touched only on the event-loop thread.
  std::deque<PendingQuery> pending_;
  std::unordered_map<net::Server::ConnId, std::size_t> inflight_;
};

}  // namespace ftb::service
