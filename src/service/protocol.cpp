#include "service/protocol.h"

#include <stdexcept>

#include "util/cache.h"

namespace ftb::service {

namespace {

net::Frame finish(MsgType type, const util::BinaryWriter& writer) {
  net::Frame frame;
  frame.type = static_cast<std::uint32_t>(type);
  frame.payload = writer.buffer();
  return frame;
}

net::Frame empty_frame(MsgType type) {
  net::Frame frame;
  frame.type = static_cast<std::uint32_t>(type);
  return frame;
}

void put_bool(util::BinaryWriter& writer, bool value) {
  writer.put_u64(value ? 1 : 0);
}

bool get_bool(util::BinaryReader& reader) { return reader.get_u64() != 0; }

/// Reads an element count and validates it against the bytes actually left
/// in the payload (each element encodes to at least `min_bytes_each`).  A
/// forged count near 2^64 must fail here, as a diagnostic, instead of
/// reaching vector::reserve -- reserve throws length_error/bad_alloc, and
/// an exception that escapes the decoder kills the daemon's event loop.
std::uint64_t get_count(util::BinaryReader& reader,
                        std::size_t min_bytes_each, const char* what) {
  const std::uint64_t count = reader.get_u64();
  if (count > reader.remaining() / min_bytes_each) {
    throw std::runtime_error(std::string(what) + " count " +
                             std::to_string(count) +
                             " exceeds the payload");
  }
  return count;
}

/// Runs `decode` over the frame payload with the usual guards: the frame
/// must carry `expected`, the payload must parse to the end, and decoder
/// exceptions become diagnostics instead of escaping to the event loop.
template <typename T, typename Decode>
std::optional<T> parse(const net::Frame& frame, MsgType expected,
                       std::string* error, Decode decode) {
  if (frame.type != static_cast<std::uint32_t>(expected)) {
    if (error != nullptr) {
      *error = std::string("frame is not a ") + to_string(expected) +
               " message (type " + std::to_string(frame.type) + ")";
    }
    return std::nullopt;
  }
  try {
    util::BinaryReader reader(frame.payload);
    T value = decode(reader);
    if (!reader.exhausted()) {
      if (error != nullptr) {
        *error = std::string(to_string(expected)) +
                 " payload has trailing garbage";
      }
      return std::nullopt;
    }
    return value;
  } catch (const std::exception& e) {
    // std::exception, not just runtime_error: length_error (a logic_error)
    // and bad_alloc from a hostile payload must also become diagnostics.
    if (error != nullptr) {
      *error = std::string(to_string(expected)) +
               " payload truncated: " + e.what();
    }
    return std::nullopt;
  }
}

}  // namespace

const char* to_string(MsgType type) noexcept {
  switch (type) {
    case MsgType::kError: return "Error";
    case MsgType::kPing: return "Ping";
    case MsgType::kPong: return "Pong";
    case MsgType::kPredictFlip: return "PredictFlip";
    case MsgType::kPredictFlipOk: return "PredictFlipOk";
    case MsgType::kPredictSite: return "PredictSite";
    case MsgType::kPredictSiteOk: return "PredictSiteOk";
    case MsgType::kPhaseReport: return "PhaseReport";
    case MsgType::kPhaseReportOk: return "PhaseReportOk";
    case MsgType::kListBoundaries: return "ListBoundaries";
    case MsgType::kBoundaryListOk: return "BoundaryListOk";
    case MsgType::kStats: return "Stats";
    case MsgType::kStatsOk: return "StatsOk";
    case MsgType::kSubmitCampaign: return "SubmitCampaign";
    case MsgType::kCampaignAccepted: return "CampaignAccepted";
    case MsgType::kCampaignProgress: return "CampaignProgress";
    case MsgType::kCampaignDone: return "CampaignDone";
    case MsgType::kShutdown: return "Shutdown";
    case MsgType::kShutdownOk: return "ShutdownOk";
    case MsgType::kBusy: return "Busy";
    case MsgType::kWorkerHello: return "WorkerHello";
    case MsgType::kWorkerHelloOk: return "WorkerHelloOk";
    case MsgType::kWorkerChunk: return "WorkerChunk";
    case MsgType::kWorkerChunkResult: return "WorkerChunkResult";
    case MsgType::kWorkerHeartbeat: return "WorkerHeartbeat";
    case MsgType::kSubmitRecompute: return "SubmitRecompute";
    case MsgType::kRecomputeDone: return "RecomputeDone";
  }
  return "Unknown";
}

net::Frame make_error(const std::string& message) {
  util::BinaryWriter writer;
  writer.put_string(message);
  return finish(MsgType::kError, writer);
}

net::Frame make_busy(const std::string& message,
                     std::uint64_t retry_after_ms) {
  util::BinaryWriter writer;
  writer.put_string(message);
  writer.put_u64(retry_after_ms);
  return finish(MsgType::kBusy, writer);
}

net::Frame make_ping() { return empty_frame(MsgType::kPing); }
net::Frame make_pong() { return empty_frame(MsgType::kPong); }
net::Frame make_list_boundaries() {
  return empty_frame(MsgType::kListBoundaries);
}
net::Frame make_stats() { return empty_frame(MsgType::kStats); }
net::Frame make_shutdown() { return empty_frame(MsgType::kShutdown); }
net::Frame make_shutdown_ok() { return empty_frame(MsgType::kShutdownOk); }

net::Frame make_predict_flip(const PredictFlipReq& req) {
  util::BinaryWriter writer;
  writer.put_string(req.key);
  writer.put_u64(req.site);
  writer.put_u64(req.bit);
  return finish(MsgType::kPredictFlip, writer);
}

net::Frame make_predict_flip_ok(const PredictFlipOk& ok) {
  util::BinaryWriter writer;
  writer.put_u64(ok.outcome);
  writer.put_f64(ok.threshold);
  writer.put_f64(ok.injected_error);
  return finish(MsgType::kPredictFlipOk, writer);
}

net::Frame make_predict_site(const PredictSiteReq& req) {
  util::BinaryWriter writer;
  writer.put_string(req.key);
  writer.put_u64(req.site);
  return finish(MsgType::kPredictSite, writer);
}

net::Frame make_predict_site_ok(const PredictSiteOk& ok) {
  util::BinaryWriter writer;
  writer.put_u64(ok.masked);
  writer.put_u64(ok.sdc);
  writer.put_u64(ok.crash);
  writer.put_f64(ok.sdc_ratio);
  writer.put_f64(ok.threshold);
  writer.put_f64(ok.golden_value);
  return finish(MsgType::kPredictSiteOk, writer);
}

net::Frame make_phase_report(const PhaseReportReq& req) {
  util::BinaryWriter writer;
  writer.put_string(req.key);
  return finish(MsgType::kPhaseReport, writer);
}

net::Frame make_phase_report_ok(const PhaseReportOk& ok) {
  util::BinaryWriter writer;
  writer.put_u64(ok.rows.size());
  for (const boundary::PhaseReport& row : ok.rows) {
    writer.put_string(row.name);
    writer.put_u64(row.begin);
    writer.put_u64(row.end);
    writer.put_f64(row.mean_predicted_sdc);
    writer.put_f64(row.median_threshold);
    writer.put_f64(row.informed_fraction);
    put_bool(writer, row.mean_true_sdc.has_value());
    writer.put_f64(row.mean_true_sdc.value_or(0.0));
    put_bool(writer, row.mean_detected_coverage.has_value());
    writer.put_f64(row.mean_detected_coverage.value_or(0.0));
  }
  return finish(MsgType::kPhaseReportOk, writer);
}

net::Frame make_boundary_list_ok(const BoundaryListOk& ok) {
  util::BinaryWriter writer;
  writer.put_u64(ok.entries.size());
  for (const BoundaryInfo& info : ok.entries) {
    writer.put_string(info.key);
    writer.put_string(info.config_key);
    writer.put_u64(info.sites);
    writer.put_u64(info.informed_sites);
  }
  return finish(MsgType::kBoundaryListOk, writer);
}

net::Frame make_stats_ok(const StatsOk& ok) {
  util::BinaryWriter writer;
  writer.put_string(ok.metrics_json);
  return finish(MsgType::kStatsOk, writer);
}

net::Frame make_submit_campaign(const SubmitCampaignReq& req) {
  util::BinaryWriter writer;
  writer.put_string(req.kernel);
  writer.put_string(req.preset);
  writer.put_u64(req.seed);
  writer.put_u64(req.batch);
  writer.put_u64(req.workers);
  writer.put_u64(req.flush_every);
  writer.put_u64(req.timeout_ms);
  writer.put_u64(req.quarantine_after);
  return finish(MsgType::kSubmitCampaign, writer);
}

net::Frame make_submit_recompute(const SubmitRecomputeReq& req) {
  util::BinaryWriter writer;
  writer.put_string(req.kernel);
  writer.put_string(req.preset);
  writer.put_u64(req.seed);
  writer.put_u64(req.section_batch);
  writer.put_string(req.section_batches);
  put_bool(writer, req.force);
  writer.put_u64(req.workers);
  writer.put_u64(req.flush_every);
  writer.put_u64(req.timeout_ms);
  writer.put_u64(req.quarantine_after);
  return finish(MsgType::kSubmitRecompute, writer);
}

net::Frame make_recompute_done(const RecomputeDone& msg) {
  util::BinaryWriter writer;
  writer.put_u64(msg.job);
  put_bool(writer, msg.ok);
  put_bool(writer, msg.stopped);
  writer.put_string(msg.error);
  writer.put_string(msg.store_key);
  writer.put_u64(msg.executed);
  writer.put_u64(msg.sections);
  writer.put_u64(msg.dirty.size());
  for (const std::string& name : msg.dirty) writer.put_string(name);
  writer.put_u64(msg.reused.size());
  for (const std::string& name : msg.reused) writer.put_string(name);
  return finish(MsgType::kRecomputeDone, writer);
}

net::Frame make_campaign_accepted(const CampaignAccepted& msg) {
  util::BinaryWriter writer;
  writer.put_u64(msg.job);
  writer.put_u64(msg.queue_depth);
  return finish(MsgType::kCampaignAccepted, writer);
}

net::Frame make_campaign_progress(const CampaignProgress& msg) {
  util::BinaryWriter writer;
  writer.put_u64(msg.job);
  writer.put_u64(msg.done);
  writer.put_u64(msg.total);
  writer.put_u64(msg.logged);
  writer.put_u64(msg.masked);
  writer.put_u64(msg.sdc);
  writer.put_u64(msg.crash);
  writer.put_u64(msg.hang);
  writer.put_u64(msg.worker_deaths);
  writer.put_u64(msg.worker_hangs);
  writer.put_u64(msg.requeued);
  writer.put_u64(msg.quarantined);
  writer.put_u64(msg.detected);
  return finish(MsgType::kCampaignProgress, writer);
}

net::Frame make_campaign_done(const CampaignDone& msg) {
  util::BinaryWriter writer;
  writer.put_u64(msg.job);
  put_bool(writer, msg.ok);
  put_bool(writer, msg.stopped);
  writer.put_string(msg.error);
  writer.put_string(msg.store_key);
  writer.put_u64(msg.executed);
  writer.put_u64(msg.skipped);
  writer.put_u64(msg.flushes);
  writer.put_u64(msg.masked);
  writer.put_u64(msg.sdc);
  writer.put_u64(msg.crash);
  writer.put_u64(msg.hang);
  writer.put_u64(msg.worker_deaths);
  writer.put_u64(msg.worker_hangs);
  writer.put_u64(msg.quarantined);
  writer.put_u64(msg.detected);
  return finish(MsgType::kCampaignDone, writer);
}

net::Frame make_worker_hello(const WorkerHello& msg) {
  util::BinaryWriter writer;
  writer.put_string(msg.name);
  writer.put_u64(msg.capacity);
  writer.put_u64(msg.pool_workers);
  writer.put_string(msg.token);
  return finish(MsgType::kWorkerHello, writer);
}

net::Frame make_worker_hello_ok(const WorkerHelloOk& msg) {
  util::BinaryWriter writer;
  writer.put_u64(msg.worker);
  writer.put_u64(msg.heartbeat_interval_ms);
  writer.put_u64(msg.lease_timeout_ms);
  return finish(MsgType::kWorkerHelloOk, writer);
}

net::Frame make_worker_heartbeat(const WorkerHeartbeat& msg) {
  util::BinaryWriter writer;
  writer.put_u64(msg.worker);
  writer.put_u64(msg.seq);
  return finish(MsgType::kWorkerHeartbeat, writer);
}

net::Frame make_worker_chunk(const WorkerChunk& msg) {
  util::BinaryWriter writer;
  writer.put_u64(msg.job);
  writer.put_u64(msg.chunk);
  writer.put_string(msg.kernel);
  writer.put_string(msg.preset);
  writer.put_u64(msg.pool_workers);
  writer.put_u64(msg.timeout_ms);
  writer.put_u64(msg.quarantine_after);
  writer.put_u64(msg.ids.size());
  for (const campaign::ExperimentId id : msg.ids) writer.put_u64(id);
  return finish(MsgType::kWorkerChunk, writer);
}

net::Frame make_worker_chunk_result(const WorkerChunkResult& msg) {
  util::BinaryWriter writer;
  writer.put_u64(msg.job);
  writer.put_u64(msg.chunk);
  put_bool(writer, msg.ok);
  writer.put_string(msg.error);
  writer.put_u64(msg.records.size());
  // Same field set (and bit-exact doubles) as the CampaignLog journal, so
  // records merged from a remote worker serialize byte-identically to ones
  // the local supervisor produced.
  for (const campaign::ExperimentRecord& record : msg.records) {
    writer.put_u64(record.id);
    writer.put_u64(static_cast<std::uint64_t>(record.result.outcome));
    writer.put_u64(static_cast<std::uint64_t>(record.result.crash_reason));
    writer.put_f64(record.result.injected_error);
    writer.put_f64(record.result.output_error);
    writer.put_u64(record.result.crash_site);
    writer.put_u64(record.result.detector_fired ? 1 : 0);
  }
  writer.put_u64(msg.worker_deaths);
  writer.put_u64(msg.worker_hangs);
  writer.put_u64(msg.requeued);
  writer.put_u64(msg.quarantined);
  return finish(MsgType::kWorkerChunkResult, writer);
}

std::optional<ErrorMsg> parse_error(const net::Frame& frame,
                                    std::string* error) {
  return parse<ErrorMsg>(frame, MsgType::kError, error,
                         [](util::BinaryReader& reader) {
                           ErrorMsg msg;
                           msg.message = reader.get_string();
                           return msg;
                         });
}

std::optional<BusyMsg> parse_busy(const net::Frame& frame,
                                  std::string* error) {
  return parse<BusyMsg>(frame, MsgType::kBusy, error,
                        [](util::BinaryReader& reader) {
                          BusyMsg msg;
                          msg.message = reader.get_string();
                          msg.retry_after_ms = reader.get_u64();
                          return msg;
                        });
}

std::optional<PredictFlipReq> parse_predict_flip(const net::Frame& frame,
                                                 std::string* error) {
  auto req = parse<PredictFlipReq>(frame, MsgType::kPredictFlip, error,
                                   [](util::BinaryReader& reader) {
                                     PredictFlipReq msg;
                                     msg.key = reader.get_string();
                                     msg.site = reader.get_u64();
                                     msg.bit = static_cast<std::uint32_t>(
                                         reader.get_u64());
                                     return msg;
                                   });
  if (req.has_value() && req->bit >= 64) {
    if (error != nullptr) {
      *error = "PredictFlip bit " + std::to_string(req->bit) +
               " is out of range [0, 64)";
    }
    return std::nullopt;
  }
  return req;
}

std::optional<PredictFlipOk> parse_predict_flip_ok(const net::Frame& frame,
                                                   std::string* error) {
  return parse<PredictFlipOk>(
      frame, MsgType::kPredictFlipOk, error, [](util::BinaryReader& reader) {
        PredictFlipOk msg;
        msg.outcome = static_cast<std::uint32_t>(reader.get_u64());
        msg.threshold = reader.get_f64();
        msg.injected_error = reader.get_f64();
        return msg;
      });
}

std::optional<PredictSiteReq> parse_predict_site(const net::Frame& frame,
                                                 std::string* error) {
  return parse<PredictSiteReq>(frame, MsgType::kPredictSite, error,
                               [](util::BinaryReader& reader) {
                                 PredictSiteReq msg;
                                 msg.key = reader.get_string();
                                 msg.site = reader.get_u64();
                                 return msg;
                               });
}

std::optional<PredictSiteOk> parse_predict_site_ok(const net::Frame& frame,
                                                   std::string* error) {
  return parse<PredictSiteOk>(
      frame, MsgType::kPredictSiteOk, error, [](util::BinaryReader& reader) {
        PredictSiteOk msg;
        msg.masked = static_cast<std::uint32_t>(reader.get_u64());
        msg.sdc = static_cast<std::uint32_t>(reader.get_u64());
        msg.crash = static_cast<std::uint32_t>(reader.get_u64());
        msg.sdc_ratio = reader.get_f64();
        msg.threshold = reader.get_f64();
        msg.golden_value = reader.get_f64();
        return msg;
      });
}

std::optional<PhaseReportReq> parse_phase_report(const net::Frame& frame,
                                                 std::string* error) {
  return parse<PhaseReportReq>(frame, MsgType::kPhaseReport, error,
                               [](util::BinaryReader& reader) {
                                 PhaseReportReq msg;
                                 msg.key = reader.get_string();
                                 return msg;
                               });
}

std::optional<PhaseReportOk> parse_phase_report_ok(const net::Frame& frame,
                                                   std::string* error) {
  return parse<PhaseReportOk>(
      frame, MsgType::kPhaseReportOk, error, [](util::BinaryReader& reader) {
        PhaseReportOk msg;
        const std::uint64_t rows = get_count(reader, 80, "PhaseReportOk row");
        msg.rows.reserve(rows);
        for (std::uint64_t i = 0; i < rows; ++i) {
          boundary::PhaseReport row;
          row.name = reader.get_string();
          row.begin = reader.get_u64();
          row.end = reader.get_u64();
          row.mean_predicted_sdc = reader.get_f64();
          row.median_threshold = reader.get_f64();
          row.informed_fraction = reader.get_f64();
          const bool has_true = get_bool(reader);
          const double true_sdc = reader.get_f64();
          if (has_true) row.mean_true_sdc = true_sdc;
          const bool has_coverage = get_bool(reader);
          const double coverage = reader.get_f64();
          if (has_coverage) row.mean_detected_coverage = coverage;
          msg.rows.push_back(std::move(row));
        }
        return msg;
      });
}

std::optional<BoundaryListOk> parse_boundary_list_ok(const net::Frame& frame,
                                                     std::string* error) {
  return parse<BoundaryListOk>(
      frame, MsgType::kBoundaryListOk, error, [](util::BinaryReader& reader) {
        BoundaryListOk msg;
        const std::uint64_t count =
            get_count(reader, 32, "BoundaryListOk entry");
        msg.entries.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          BoundaryInfo info;
          info.key = reader.get_string();
          info.config_key = reader.get_string();
          info.sites = reader.get_u64();
          info.informed_sites = reader.get_u64();
          msg.entries.push_back(std::move(info));
        }
        return msg;
      });
}

std::optional<StatsOk> parse_stats_ok(const net::Frame& frame,
                                      std::string* error) {
  return parse<StatsOk>(frame, MsgType::kStatsOk, error,
                        [](util::BinaryReader& reader) {
                          StatsOk msg;
                          msg.metrics_json = reader.get_string();
                          return msg;
                        });
}

std::optional<SubmitCampaignReq> parse_submit_campaign(const net::Frame& frame,
                                                       std::string* error) {
  auto req = parse<SubmitCampaignReq>(
      frame, MsgType::kSubmitCampaign, error, [](util::BinaryReader& reader) {
        SubmitCampaignReq msg;
        msg.kernel = reader.get_string();
        msg.preset = reader.get_string();
        msg.seed = reader.get_u64();
        msg.batch = reader.get_u64();
        msg.workers = static_cast<std::uint32_t>(reader.get_u64());
        msg.flush_every = static_cast<std::uint32_t>(reader.get_u64());
        msg.timeout_ms = static_cast<std::uint32_t>(reader.get_u64());
        msg.quarantine_after = static_cast<std::uint32_t>(reader.get_u64());
        return msg;
      });
  if (req.has_value() && req->batch == 0) {
    if (error != nullptr) *error = "SubmitCampaign batch must be nonzero";
    return std::nullopt;
  }
  return req;
}

std::optional<SubmitRecomputeReq> parse_submit_recompute(
    const net::Frame& frame, std::string* error) {
  auto req = parse<SubmitRecomputeReq>(
      frame, MsgType::kSubmitRecompute, error, [](util::BinaryReader& reader) {
        SubmitRecomputeReq msg;
        msg.kernel = reader.get_string();
        msg.preset = reader.get_string();
        msg.seed = reader.get_u64();
        msg.section_batch = reader.get_u64();
        msg.section_batches = reader.get_string();
        msg.force = get_bool(reader);
        msg.workers = static_cast<std::uint32_t>(reader.get_u64());
        msg.flush_every = static_cast<std::uint32_t>(reader.get_u64());
        msg.timeout_ms = static_cast<std::uint32_t>(reader.get_u64());
        msg.quarantine_after = static_cast<std::uint32_t>(reader.get_u64());
        return msg;
      });
  if (req.has_value() && req->section_batch == 0) {
    if (error != nullptr) {
      *error = "SubmitRecompute section_batch must be nonzero";
    }
    return std::nullopt;
  }
  return req;
}

std::optional<RecomputeDone> parse_recompute_done(const net::Frame& frame,
                                                  std::string* error) {
  return parse<RecomputeDone>(
      frame, MsgType::kRecomputeDone, error, [](util::BinaryReader& reader) {
        RecomputeDone msg;
        msg.job = reader.get_u64();
        msg.ok = get_bool(reader);
        msg.stopped = get_bool(reader);
        msg.error = reader.get_string();
        msg.store_key = reader.get_string();
        msg.executed = reader.get_u64();
        msg.sections = reader.get_u64();
        const std::uint64_t dirty =
            get_count(reader, 8, "RecomputeDone dirty section");
        msg.dirty.reserve(dirty);
        for (std::uint64_t i = 0; i < dirty; ++i) {
          msg.dirty.push_back(reader.get_string());
        }
        const std::uint64_t reused =
            get_count(reader, 8, "RecomputeDone reused section");
        msg.reused.reserve(reused);
        for (std::uint64_t i = 0; i < reused; ++i) {
          msg.reused.push_back(reader.get_string());
        }
        return msg;
      });
}

std::optional<CampaignAccepted> parse_campaign_accepted(
    const net::Frame& frame, std::string* error) {
  return parse<CampaignAccepted>(
      frame, MsgType::kCampaignAccepted, error,
      [](util::BinaryReader& reader) {
        CampaignAccepted msg;
        msg.job = reader.get_u64();
        msg.queue_depth = static_cast<std::uint32_t>(reader.get_u64());
        return msg;
      });
}

std::optional<CampaignProgress> parse_campaign_progress(
    const net::Frame& frame, std::string* error) {
  return parse<CampaignProgress>(
      frame, MsgType::kCampaignProgress, error,
      [](util::BinaryReader& reader) {
        CampaignProgress msg;
        msg.job = reader.get_u64();
        msg.done = reader.get_u64();
        msg.total = reader.get_u64();
        msg.logged = reader.get_u64();
        msg.masked = reader.get_u64();
        msg.sdc = reader.get_u64();
        msg.crash = reader.get_u64();
        msg.hang = reader.get_u64();
        msg.worker_deaths = reader.get_u64();
        msg.worker_hangs = reader.get_u64();
        msg.requeued = reader.get_u64();
        msg.quarantined = reader.get_u64();
        msg.detected = reader.get_u64();
        return msg;
      });
}

std::optional<CampaignDone> parse_campaign_done(const net::Frame& frame,
                                                std::string* error) {
  return parse<CampaignDone>(
      frame, MsgType::kCampaignDone, error, [](util::BinaryReader& reader) {
        CampaignDone msg;
        msg.job = reader.get_u64();
        msg.ok = get_bool(reader);
        msg.stopped = get_bool(reader);
        msg.error = reader.get_string();
        msg.store_key = reader.get_string();
        msg.executed = reader.get_u64();
        msg.skipped = reader.get_u64();
        msg.flushes = reader.get_u64();
        msg.masked = reader.get_u64();
        msg.sdc = reader.get_u64();
        msg.crash = reader.get_u64();
        msg.hang = reader.get_u64();
        msg.worker_deaths = reader.get_u64();
        msg.worker_hangs = reader.get_u64();
        msg.quarantined = reader.get_u64();
        msg.detected = reader.get_u64();
        return msg;
      });
}

std::optional<WorkerHello> parse_worker_hello(const net::Frame& frame,
                                              std::string* error) {
  auto msg = parse<WorkerHello>(frame, MsgType::kWorkerHello, error,
                                [](util::BinaryReader& reader) {
                                  WorkerHello hello;
                                  hello.name = reader.get_string();
                                  hello.capacity = static_cast<std::uint32_t>(
                                      reader.get_u64());
                                  hello.pool_workers =
                                      static_cast<std::uint32_t>(
                                          reader.get_u64());
                                  hello.token = reader.get_string();
                                  return hello;
                                });
  if (msg.has_value() && msg->capacity == 0) {
    if (error != nullptr) *error = "WorkerHello capacity must be nonzero";
    return std::nullopt;
  }
  return msg;
}

std::optional<WorkerHelloOk> parse_worker_hello_ok(const net::Frame& frame,
                                                   std::string* error) {
  return parse<WorkerHelloOk>(
      frame, MsgType::kWorkerHelloOk, error, [](util::BinaryReader& reader) {
        WorkerHelloOk msg;
        msg.worker = reader.get_u64();
        msg.heartbeat_interval_ms =
            static_cast<std::uint32_t>(reader.get_u64());
        msg.lease_timeout_ms = static_cast<std::uint32_t>(reader.get_u64());
        return msg;
      });
}

std::optional<WorkerHeartbeat> parse_worker_heartbeat(const net::Frame& frame,
                                                      std::string* error) {
  return parse<WorkerHeartbeat>(frame, MsgType::kWorkerHeartbeat, error,
                                [](util::BinaryReader& reader) {
                                  WorkerHeartbeat msg;
                                  msg.worker = reader.get_u64();
                                  msg.seq = reader.get_u64();
                                  return msg;
                                });
}

std::optional<WorkerChunk> parse_worker_chunk(const net::Frame& frame,
                                              std::string* error) {
  return parse<WorkerChunk>(
      frame, MsgType::kWorkerChunk, error, [](util::BinaryReader& reader) {
        WorkerChunk msg;
        msg.job = reader.get_u64();
        msg.chunk = reader.get_u64();
        msg.kernel = reader.get_string();
        msg.preset = reader.get_string();
        msg.pool_workers = static_cast<std::uint32_t>(reader.get_u64());
        msg.timeout_ms = static_cast<std::uint32_t>(reader.get_u64());
        msg.quarantine_after = static_cast<std::uint32_t>(reader.get_u64());
        const std::uint64_t count = get_count(reader, 8, "WorkerChunk id");
        msg.ids.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          msg.ids.push_back(reader.get_u64());
        }
        return msg;
      });
}

std::optional<WorkerChunkResult> parse_worker_chunk_result(
    const net::Frame& frame, std::string* error) {
  return parse<WorkerChunkResult>(
      frame, MsgType::kWorkerChunkResult, error,
      [](util::BinaryReader& reader) {
        WorkerChunkResult msg;
        msg.job = reader.get_u64();
        msg.chunk = reader.get_u64();
        msg.ok = get_bool(reader);
        msg.error = reader.get_string();
        // 7 u64-sized fields per encoded record (see make_worker_chunk_result).
        const std::uint64_t count =
            get_count(reader, 56, "WorkerChunkResult record");
        msg.records.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
          campaign::ExperimentRecord record;
          record.id = reader.get_u64();
          const std::uint64_t outcome = reader.get_u64();
          if (outcome > static_cast<std::uint64_t>(fi::Outcome::kDetected)) {
            throw std::runtime_error("record " + std::to_string(i) +
                                     " has unsupported outcome " +
                                     std::to_string(outcome));
          }
          record.result.outcome = static_cast<fi::Outcome>(outcome);
          const std::uint64_t reason = reader.get_u64();
          if (reason >
              static_cast<std::uint64_t>(fi::CrashReason::kQuarantined)) {
            throw std::runtime_error("record " + std::to_string(i) +
                                     " has unsupported crash reason " +
                                     std::to_string(reason));
          }
          record.result.crash_reason = static_cast<fi::CrashReason>(reason);
          record.result.injected_error = reader.get_f64();
          record.result.output_error = reader.get_f64();
          record.result.crash_site = reader.get_u64();
          record.result.detector_fired = get_bool(reader);
          msg.records.push_back(record);
        }
        msg.worker_deaths = reader.get_u64();
        msg.worker_hangs = reader.get_u64();
        msg.requeued = reader.get_u64();
        msg.quarantined = reader.get_u64();
        return msg;
      });
}

}  // namespace ftb::service
