#include "service/worker.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "kernels/registry.h"
#include "util/retry.h"

namespace ftb::service {

WorkerAgent::WorkerAgent(WorkerAgentOptions options)
    : options_(std::move(options)) {}

WorkerAgent::~WorkerAgent() {
  request_stop();
  if (heartbeat_.joinable()) {
    heartbeat_stop_.store(true, std::memory_order_relaxed);
    heartbeat_.join();
  }
}

void WorkerAgent::request_stop() {
  stop_.store(true, std::memory_order_relaxed);
}

WorkerAgentStats WorkerAgent::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

bool WorkerAgent::send_frame(const net::Frame& frame, std::string* error) {
  const std::vector<std::uint8_t> bytes = net::encode_frame(frame);
  std::lock_guard<std::mutex> lock(send_mutex_);
  if (send_failed_.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "connection already failed";
    return false;
  }
  if (!net::send_all(fd_.get(), bytes.data(), bytes.size(), error)) {
    // Do not close the fd here: serve()'s recv loop owns it and will see
    // the failure through this flag (or the peer's RST) promptly.
    send_failed_.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void WorkerAgent::heartbeat_loop(std::uint32_t interval_ms) {
  std::uint64_t seq = 0;
  const auto interval = std::chrono::milliseconds(std::max(1u, interval_ms));
  while (!heartbeat_stop_.load(std::memory_order_relaxed) &&
         !send_failed_.load(std::memory_order_relaxed)) {
    WorkerHeartbeat beat;
    beat.worker = worker_id_.load(std::memory_order_relaxed);
    beat.seq = ++seq;
    if (!send_frame(make_worker_heartbeat(beat), nullptr)) break;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.heartbeats_sent;
    }
    // Sleep in small slices so request_stop() is honoured quickly even
    // with a long advertised interval.
    auto remaining = interval;
    while (remaining.count() > 0 &&
           !heartbeat_stop_.load(std::memory_order_relaxed)) {
      const auto slice = std::min(remaining, std::chrono::milliseconds(50));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }
}

WorkerChunkResult WorkerAgent::run_chunk(const WorkerChunk& chunk) {
  WorkerChunkResult result;
  result.job = chunk.job;
  result.chunk = chunk.chunk;
  const std::string key = chunk.kernel + "@" + chunk.preset;
  telemetry::SpanScope span(options_.telemetry, "workerd.chunk", "workerd");
  span.arg("experiments", static_cast<double>(chunk.ids.size()));
  try {
    auto it = sessions_.find(key);
    if (it == sessions_.end()) {
      Session session;
      session.program = kernels::make_program(
          chunk.kernel, kernels::preset_from_string(chunk.preset));
      session.golden = fi::run_golden(*session.program);
      it = sessions_.emplace(key, std::move(session)).first;
    }
    Session& session = it->second;
    const std::uint32_t pool_workers = std::clamp<std::uint32_t>(
        chunk.pool_workers != 0 ? chunk.pool_workers : options_.pool_workers,
        1, 16);
    if (session.supervisor &&
        (session.pool_workers != pool_workers ||
         session.timeout_ms != chunk.timeout_ms ||
         session.quarantine_after != chunk.quarantine_after)) {
      // The lease carries different pool settings than the cached
      // supervisor was forked with (a new job for the same kernel@preset):
      // refork rather than silently running under the old configuration.
      session.supervisor.reset();
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.sessions_rebuilt;
    }
    if (!session.supervisor) {
      campaign::SupervisorOptions supervisor;
      supervisor.pool.workers = static_cast<int>(pool_workers);
      supervisor.pool.heartbeat_timeout_ms = chunk.timeout_ms;
      supervisor.pool.use_snapshots = options_.use_snapshots;
      supervisor.pool.snapshot.interval = options_.snapshot_interval;
      supervisor.pool.snapshot.timeout_ms = chunk.timeout_ms;
      supervisor.quarantine_after = static_cast<int>(chunk.quarantine_after);
      supervisor.telemetry = options_.telemetry;
      // Same rule as the service's own job plane: hazard experiments never
      // run on the daemon's threads.  A pool that degrades to nothing
      // fails the chunk; the dispatcher requeues it elsewhere.
      supervisor.allow_in_process_fallback = false;
      session.supervisor = std::make_unique<campaign::CampaignSupervisor>(
          *session.program, session.golden, supervisor);
      session.last = session.supervisor->stats();
      session.pool_workers = pool_workers;
      session.timeout_ms = chunk.timeout_ms;
      session.quarantine_after = chunk.quarantine_after;
    }
    result.records = session.supervisor->run(chunk.ids);
    const campaign::SupervisorStats now = session.supervisor->stats();
    result.worker_deaths = now.worker_deaths - session.last.worker_deaths;
    result.worker_hangs = now.worker_hangs - session.last.worker_hangs;
    result.requeued =
        now.experiments_requeued - session.last.experiments_requeued;
    result.quarantined = now.quarantined - session.last.quarantined;
    session.last = now;
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
    result.records.clear();
    // The supervisor is in an unknown state (likely an empty pool); tear
    // it down so the next lease for this config reforks from scratch.
    sessions_.erase(key);
  }
  return result;
}

bool WorkerAgent::serve(std::string* error) {
  stop_.store(false, std::memory_order_relaxed);
  send_failed_.store(false, std::memory_order_relaxed);
  worker_id_.store(0, std::memory_order_relaxed);
  if (heartbeat_.joinable()) {
    heartbeat_stop_.store(true, std::memory_order_relaxed);
    heartbeat_.join();
  }
  heartbeat_stop_.store(false, std::memory_order_relaxed);

  std::string last_error = "connect was never attempted";
  const bool connected = util::retry_with_backoff(options_.connect_retry, [&] {
    if (stop_.load(std::memory_order_relaxed)) return true;  // give up early
    fd_ = net::connect_tcp(options_.host, options_.port, &last_error);
    return fd_.valid();
  });
  if (!connected || !fd_.valid()) {
    if (error != nullptr) *error = last_error;
    return stop_.load(std::memory_order_relaxed);
  }

  WorkerHello hello;
  hello.name = options_.name;
  hello.capacity = std::max<std::uint32_t>(1, options_.capacity);
  hello.pool_workers = options_.pool_workers;
  hello.token = options_.token;
  if (!send_frame(make_worker_hello(hello), error)) {
    fd_.reset();
    return false;
  }

  net::FrameDecoder decoder({options_.max_frame_payload});
  const auto recv_frame = [&](std::uint32_t timeout_ms, std::string* why)
      -> std::optional<net::Frame> {
    net::Frame frame;
    for (;;) {
      std::string pop_error;
      switch (decoder.pop(&frame, &pop_error)) {
        case net::FrameDecoder::Status::kFrame:
          return frame;
        case net::FrameDecoder::Status::kError:
          if (why != nullptr) *why = pop_error;
          fd_.reset();
          return std::nullopt;
        case net::FrameDecoder::Status::kNeedMore:
          break;
      }
      std::uint8_t buf[16384];
      const long n =
          net::recv_some(fd_.get(), buf, sizeof(buf), timeout_ms, why);
      if (n < 0) return std::nullopt;  // timeout or error, diagnosed
      if (n == 0) {
        if (why != nullptr) *why = "server closed the connection";
        fd_.reset();
        return std::nullopt;
      }
      decoder.feed(buf, static_cast<std::size_t>(n));
    }
  };

  std::string hello_error;
  const auto reply = recv_frame(options_.hello_timeout_ms, &hello_error);
  if (!reply.has_value()) {
    if (error != nullptr) *error = "registration failed: " + hello_error;
    fd_.reset();
    return false;
  }
  const auto ok = parse_worker_hello_ok(*reply, &hello_error);
  if (!ok.has_value()) {
    // A refusal (e.g. token mismatch) arrives as an Error frame; surface
    // its message instead of "frame is not a WorkerHelloOk".
    if (const auto refused = parse_error(*reply)) {
      hello_error = refused->message;
    }
    if (error != nullptr) *error = "registration failed: " + hello_error;
    fd_.reset();
    return false;
  }
  worker_id_.store(ok->worker, std::memory_order_relaxed);
  const std::uint32_t interval_ms = std::max(1u, ok->heartbeat_interval_ms);
  heartbeat_ = std::thread([this, interval_ms] { heartbeat_loop(interval_ms); });

  bool clean = true;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (send_failed_.load(std::memory_order_relaxed)) {
      if (error != nullptr) *error = "send failed (server gone?)";
      clean = false;
      break;
    }
    std::string recv_error;
    const auto frame = recv_frame(interval_ms, &recv_error);
    if (!frame.has_value()) {
      if (!fd_.valid()) {  // decode error or orderly close, not a timeout
        if (error != nullptr) *error = recv_error;
        clean = false;
        break;
      }
      continue;  // timeout: loop to re-check the stop flag
    }
    if (frame->type != static_cast<std::uint32_t>(MsgType::kWorkerChunk)) {
      continue;  // the worker plane ignores anything else
    }
    std::string parse_error;
    const auto chunk = parse_worker_chunk(*frame, &parse_error);
    if (!chunk.has_value()) {
      if (error != nullptr) *error = "bad chunk frame: " + parse_error;
      clean = false;
      break;
    }
    WorkerChunkResult result = run_chunk(*chunk);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.chunks_run;
      if (!result.ok) ++stats_.chunks_failed;
      stats_.records_sent += result.records.size();
    }
    std::string send_error;
    if (!send_frame(make_worker_chunk_result(result), &send_error)) {
      if (error != nullptr) *error = send_error;
      clean = false;
      break;
    }
  }

  heartbeat_stop_.store(true, std::memory_order_relaxed);
  if (heartbeat_.joinable()) heartbeat_.join();
  fd_.reset();
  return clean;
}

}  // namespace ftb::service
