#include "service/ledger.h"

#include <cstddef>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "util/cache.h"

namespace ftb::service {

namespace {

constexpr std::uint64_t kMagic = 0x4654422d4a4c4447ull;  // "FTB-JLDG"
constexpr std::uint64_t kVersion = 1;
constexpr std::size_t kPreambleSize = 16;
/// A submit record is a few hundred bytes; anything claiming more than this
/// is a torn length word, not a real record.
constexpr std::uint32_t kMaxRecordLen = 1u << 20;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::vector<std::uint8_t> encode_state_payload(std::uint64_t job,
                                               JobState state,
                                               const std::string& note) {
  util::BinaryWriter writer;
  writer.put_u64(job);
  writer.put_u64(static_cast<std::uint64_t>(state));
  writer.put_string(note);
  return writer.buffer();
}

/// kSubmitted payload.  Campaign jobs stop at the eighth request field --
/// byte-identical to ledgers written before recompute jobs existed --
/// while recompute jobs append their kind and extra fields after it.
std::vector<std::uint8_t> encode_submit_payload(
    std::uint64_t job, JobKind kind, const SubmitCampaignReq* campaign,
    const SubmitRecomputeReq* recompute) {
  util::BinaryWriter writer;
  writer.put_u64(job);
  writer.put_u64(static_cast<std::uint64_t>(JobState::kSubmitted));
  if (kind == JobKind::kRecompute) {
    writer.put_string(recompute->kernel);
    writer.put_string(recompute->preset);
    writer.put_u64(recompute->seed);
    writer.put_u64(recompute->section_batch);
    writer.put_u64(recompute->workers);
    writer.put_u64(recompute->flush_every);
    writer.put_u64(recompute->timeout_ms);
    writer.put_u64(recompute->quarantine_after);
    writer.put_u64(static_cast<std::uint64_t>(kind));
    writer.put_string(recompute->section_batches);
    writer.put_u64(recompute->force ? 1 : 0);
  } else {
    writer.put_string(campaign->kernel);
    writer.put_string(campaign->preset);
    writer.put_u64(campaign->seed);
    writer.put_u64(campaign->batch);
    writer.put_u64(campaign->workers);
    writer.put_u64(campaign->flush_every);
    writer.put_u64(campaign->timeout_ms);
    writer.put_u64(campaign->quarantine_after);
  }
  return writer.buffer();
}

std::vector<std::uint8_t> frame_record(
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(8 + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, util::crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kSubmitted: return "submitted";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

const char* to_string(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::kCampaign: return "campaign";
    case JobKind::kRecompute: return "recompute";
  }
  return "unknown";
}

JobLedger::ReplayResult JobLedger::replay_file(const std::string& path) {
  ReplayResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // missing ledger: fresh daemon, nothing pending
  std::vector<std::uint8_t> bytes;
  try {
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  } catch (const std::exception& e) {
    // e.g. the path is a directory; treat as unreadable, not fatal -- the
    // caller decides whether an unusable ledger blocks submissions.
    ++result.torn_records;
    result.diagnostics.push_back("ledger is unreadable (" +
                                 std::string(e.what()) + ")");
    return result;
  }
  if (bytes.empty()) return result;
  if (bytes.size() < kPreambleSize) {
    ++result.torn_records;
    result.diagnostics.push_back("ledger preamble is truncated (" +
                                 std::to_string(bytes.size()) + " bytes)");
    return result;
  }
  std::uint64_t magic = 0, version = 0;
  for (int i = 0; i < 8; ++i) {
    magic |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    version |= static_cast<std::uint64_t>(bytes[8 + i]) << (8 * i);
  }
  if (magic != kMagic) {
    ++result.torn_records;
    result.diagnostics.push_back(
        "ledger has bad magic (not an FTB-JLDG file); ignoring it");
    return result;
  }
  if (version != kVersion) {
    ++result.torn_records;
    result.diagnostics.push_back("ledger has unsupported version " +
                                 std::to_string(version) + " (expected " +
                                 std::to_string(kVersion) + "); ignoring it");
    return result;
  }

  // Jobs in submit order, updated in place as state records arrive.
  std::vector<LedgerJob> jobs;
  std::unordered_map<std::uint64_t, std::size_t> index;

  std::size_t pos = kPreambleSize;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      ++result.torn_records;
      result.diagnostics.push_back(
          "ledger tail is torn mid-record-header; dropping it");
      break;
    }
    const std::uint32_t len = read_u32(bytes.data() + pos);
    const std::uint32_t stored_crc = read_u32(bytes.data() + pos + 4);
    if (len > kMaxRecordLen) {
      ++result.torn_records;
      result.diagnostics.push_back(
          "ledger record at offset " + std::to_string(pos) +
          " declares an absurd length (" + std::to_string(len) +
          " bytes); dropping the tail");
      break;
    }
    if (bytes.size() - pos - 8 < len) {
      ++result.torn_records;
      result.diagnostics.push_back(
          "ledger tail is torn mid-record; dropping it");
      break;
    }
    const std::uint8_t* payload = bytes.data() + pos + 8;
    if (stored_crc != util::crc32(payload, len)) {
      ++result.torn_records;
      result.diagnostics.push_back(
          "ledger record at offset " + std::to_string(pos) +
          " fails its CRC; dropping the tail");
      break;
    }
    try {
      util::BinaryReader reader(
          std::vector<std::uint8_t>(payload, payload + len));
      const std::uint64_t job = reader.get_u64();
      const std::uint64_t raw_state = reader.get_u64();
      if (raw_state > static_cast<std::uint64_t>(JobState::kFailed)) {
        throw std::runtime_error("invalid state " + std::to_string(raw_state));
      }
      const JobState state = static_cast<JobState>(raw_state);
      if (state == JobState::kSubmitted) {
        LedgerJob entry;
        entry.id = job;
        entry.state = state;
        entry.req.kernel = reader.get_string();
        entry.req.preset = reader.get_string();
        entry.req.seed = reader.get_u64();
        entry.req.batch = reader.get_u64();
        entry.req.workers = static_cast<std::uint32_t>(reader.get_u64());
        entry.req.flush_every = static_cast<std::uint32_t>(reader.get_u64());
        entry.req.timeout_ms = static_cast<std::uint32_t>(reader.get_u64());
        entry.req.quarantine_after =
            static_cast<std::uint32_t>(reader.get_u64());
        if (!reader.exhausted()) {
          // Trailing kind fields: only recompute jobs write them, so a
          // pre-recompute ledger (exhausted here) replays as a campaign.
          const std::uint64_t raw_kind = reader.get_u64();
          if (raw_kind != static_cast<std::uint64_t>(JobKind::kRecompute)) {
            throw std::runtime_error("invalid submit kind " +
                                     std::to_string(raw_kind));
          }
          entry.kind = JobKind::kRecompute;
          entry.recompute.kernel = entry.req.kernel;
          entry.recompute.preset = entry.req.preset;
          entry.recompute.seed = entry.req.seed;
          entry.recompute.section_batch = entry.req.batch;
          entry.recompute.workers = entry.req.workers;
          entry.recompute.flush_every = entry.req.flush_every;
          entry.recompute.timeout_ms = entry.req.timeout_ms;
          entry.recompute.quarantine_after = entry.req.quarantine_after;
          entry.recompute.section_batches = reader.get_string();
          entry.recompute.force = reader.get_u64() != 0;
          if (!reader.exhausted()) {
            throw std::runtime_error("trailing garbage in submit record");
          }
        }
        index[job] = jobs.size();
        jobs.push_back(std::move(entry));
      } else {
        const std::string note = reader.get_string();
        if (!reader.exhausted()) {
          throw std::runtime_error("trailing garbage in state record");
        }
        auto it = index.find(job);
        if (it == index.end()) {
          result.diagnostics.push_back(
              "ledger has a " + std::string(to_string(state)) +
              " record for unknown job " + std::to_string(job) +
              " (its submit record was compacted away?); ignoring it");
        } else {
          jobs[it->second].state = state;
          jobs[it->second].note = note;
        }
      }
      if (job >= result.next_job_id) result.next_job_id = job + 1;
      ++result.records;
    } catch (const std::runtime_error& e) {
      ++result.torn_records;
      result.diagnostics.push_back("ledger record at offset " +
                                   std::to_string(pos) +
                                   " is malformed (" + e.what() +
                                   "); dropping the tail");
      break;
    }
    pos += 8 + len;
  }

  for (LedgerJob& job : jobs) {
    if (job.state == JobState::kDone || job.state == JobState::kFailed) {
      ++result.terminal;
      result.terminal_jobs.push_back(std::move(job));
    } else {
      result.pending.push_back(std::move(job));
    }
  }
  return result;
}

bool JobLedger::open(const std::string& path, ReplayResult* replay,
                     std::string* error) {
  path_ = path;
  ReplayResult local = replay_file(path);

  // Compact: rewrite the file with only the pending jobs, durably, so
  // terminal history and any torn tail are gone before we start appending.
  // A pending job that was already kRunning gets both its submit record and
  // a running record back, preserving what replay would report.
  std::vector<std::uint8_t> compacted;
  {
    util::BinaryWriter preamble;
    preamble.put_u64(kMagic);
    preamble.put_u64(kVersion);
    compacted = preamble.buffer();
  }
  for (const LedgerJob& job : local.pending) {
    const auto submit = frame_record(encode_submit_payload(
        job.id, job.kind, &job.req, &job.recompute));
    compacted.insert(compacted.end(), submit.begin(), submit.end());
    if (job.state == JobState::kRunning) {
      const auto running = frame_record(
          encode_state_payload(job.id, JobState::kRunning, job.note));
      compacted.insert(compacted.end(), running.begin(), running.end());
    }
  }
  if (replay != nullptr) *replay = std::move(local);

  if (!util::write_file_durable(path_, compacted, error)) {
    if (error != nullptr) *error = "ledger compaction failed: " + *error;
    return false;
  }
  return log_.open(path_, error);
}

bool JobLedger::append_submitted(std::uint64_t job,
                                 const SubmitCampaignReq& req,
                                 std::string* error) {
  const auto record = frame_record(
      encode_submit_payload(job, JobKind::kCampaign, &req, nullptr));
  return log_.append(record.data(), record.size(), error);
}

bool JobLedger::append_submitted_recompute(std::uint64_t job,
                                           const SubmitRecomputeReq& req,
                                           std::string* error) {
  const auto record = frame_record(
      encode_submit_payload(job, JobKind::kRecompute, nullptr, &req));
  return log_.append(record.data(), record.size(), error);
}

bool JobLedger::append_state(std::uint64_t job, JobState state,
                             const std::string& note, std::string* error) {
  const auto record = frame_record(encode_state_payload(job, state, note));
  return log_.append(record.data(), record.size(), error);
}

}  // namespace ftb::service
