// WorkerAgent: the library behind tools/ftb_workerd.
//
// One agent owns one connection to ftb_served's worker plane
// (service/dispatch.h).  serve() registers with WorkerHello, then answers
// WorkerChunk leases by running the chunk's experiment ids through a
// sandboxed campaign::CampaignSupervisor and streaming the records back in
// a WorkerChunkResult.  A background thread sends monotonically-numbered
// WorkerHeartbeat frames at the cadence the server advertised, so the lease
// stays alive even while a long chunk is executing -- and stops advancing
// the moment the process is SIGSTOPped, which is exactly how the dispatcher
// detects a wedged worker.
//
// Execution discipline mirrors the service's own job plane: experiments
// never run on the agent's threads (allow_in_process_fallback stays off);
// if the worker pool degrades to nothing the chunk is answered ok=false and
// the supervisor is torn down so the next lease starts from a fresh pool.
// Supervisors are cached per (kernel, preset) across chunks -- the fork
// cost is paid once per campaign, not once per chunk.
//
// serve() returns when the connection drops or request_stop() is called;
// reconnect policy (backoff, retry forever) belongs to the caller.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "campaign/supervisor.h"
#include "fi/executor.h"
#include "fi/program.h"
#include "net/frame.h"
#include "net/socket.h"
#include "service/protocol.h"
#include "telemetry/events.h"
#include "util/retry.h"

namespace ftb::service {

struct WorkerAgentOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Human-readable worker name reported in WorkerHello.
  std::string name = "workerd";
  /// Chunks the agent is willing to hold at once (leases queue in the
  /// socket while one executes).
  std::uint32_t capacity = 1;
  /// Default sandbox pool size when a chunk does not specify one.
  std::uint32_t pool_workers = 2;
  /// Serve leased experiments from per-worker snapshot fork-servers
  /// (fi/snapshot.h).  A local execution strategy only -- nothing on the
  /// wire changes, and chunk results stay byte-identical to classic runs.
  bool use_snapshots = false;
  /// Checkpoint cadence for the snapshot trees, in dynamic instructions.
  std::uint64_t snapshot_interval = 4096;
  /// Shared secret sent in WorkerHello; must match the server's
  /// --worker-token (empty for a token-less server).
  std::string token;
  /// Backoff for the TCP connect inside serve().
  util::RetryOptions connect_retry;
  /// Budget for the WorkerHelloOk reply.
  std::uint32_t hello_timeout_ms = 5000;
  std::size_t max_frame_payload = 16u << 20;
  telemetry::Telemetry* telemetry = nullptr;
};

struct WorkerAgentStats {
  std::uint64_t chunks_run = 0;
  std::uint64_t chunks_failed = 0;
  std::uint64_t records_sent = 0;
  std::uint64_t heartbeats_sent = 0;
  /// Supervisors torn down because a lease arrived with different pool
  /// settings than the cached one was forked with.
  std::uint64_t sessions_rebuilt = 0;
};

class WorkerAgent {
 public:
  explicit WorkerAgent(WorkerAgentOptions options);
  ~WorkerAgent();
  WorkerAgent(const WorkerAgent&) = delete;
  WorkerAgent& operator=(const WorkerAgent&) = delete;

  /// Connects, registers, and serves chunk leases until the server goes
  /// away or request_stop().  Returns false with a diagnostic on any
  /// transport or registration failure (the caller decides whether to
  /// reconnect); true on a clean stop.
  bool serve(std::string* error = nullptr);

  /// Makes serve() return soon (bounded by one heartbeat interval).  Safe
  /// from signal-handling threads.
  void request_stop();

  /// Server-assigned id after registration (0 before).
  std::uint64_t worker_id() const noexcept {
    return worker_id_.load(std::memory_order_relaxed);
  }

  WorkerAgentStats stats() const;

 private:
  /// Cached execution state for one campaign configuration.  The program
  /// and golden run depend only on kernel@preset, but the supervisor is
  /// also parameterised by the lease's pool settings -- run_chunk tears it
  /// down and reforks when those change, so a job submitted with different
  /// settings never runs under a stale pool.
  struct Session {
    fi::ProgramPtr program;
    fi::GoldenRun golden;
    std::unique_ptr<campaign::CampaignSupervisor> supervisor;
    campaign::SupervisorStats last;  ///< snapshot for per-chunk deltas
    std::uint32_t pool_workers = 0;  ///< settings the supervisor was built with
    std::uint32_t timeout_ms = 0;
    std::uint32_t quarantine_after = 0;
  };

  bool send_frame(const net::Frame& frame, std::string* error);
  void heartbeat_loop(std::uint32_t interval_ms);
  WorkerChunkResult run_chunk(const WorkerChunk& chunk);

  WorkerAgentOptions options_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> worker_id_{0};
  net::Fd fd_;
  std::mutex send_mutex_;  ///< heartbeat thread vs. result/hello sends
  std::atomic<bool> send_failed_{false};
  std::thread heartbeat_;
  std::atomic<bool> heartbeat_stop_{false};
  std::map<std::string, Session> sessions_;  // by kernel@preset
  mutable std::mutex stats_mutex_;
  WorkerAgentStats stats_;
};

}  // namespace ftb::service
