// Lease-based chunk dispatcher: the campaign plane's distributed executor.
//
// ftb_workerd daemons connect to ftb_served on the ordinary wire protocol
// and register with WorkerHello.  While a campaign job is active the
// dispatcher splits the job's remaining experiment ids into journal-sized
// chunks and hands them to workers under a TTL lease:
//
//   * leases are renewed only by an *advance* of the worker's monotonic
//     WorkerHeartbeat counter -- a SIGSTOPped worker whose kernel keeps the
//     TCP socket open still goes stale, its leases expire, and its chunks
//     requeue exactly once (chunks are disjoint id sets and a chunk has one
//     winner, so the journal never sees a duplicate experiment record);
//   * a dead connection expires the worker's leases immediately;
//   * a chunk leased longer than straggler_timeout_ms is speculatively
//     re-dispatched to a second worker (or stolen by the local runner);
//     the first WorkerChunkResult wins and later twins are dropped;
//   * a worker that answers a chunk with ok=false is charged a
//     per-(worker,chunk) grudge with jittered exponential backoff before it
//     may be offered that chunk again; repeated kills quarantine the whole
//     worker for a jittered backoff window (re-admission is automatic);
//   * with zero live workers the runner degrades to plain local execution:
//     the job-runner thread itself claims pending chunks and runs them
//     through the same CampaignSupervisor the non-distributed path uses, so
//     ftb_served alone still completes every job.
//
// Results merge into the same CRC-framed .clog journal as the local path,
// flushed after every completed chunk on the runner thread (file I/O never
// runs on the event loop).  Experiment outcomes are deterministic and the
// final dedupe() sorts by id, so the finished journal -- and the boundary
// inferred from it -- is byte-identical to a local-only run no matter which
// worker executed what, how many leases expired, or where a kill -9 landed.
//
// Threading: WorkerHello/Heartbeat/ChunkResult/disconnect/tick arrive on
// the server's event-loop thread; run_job() executes on the job-runner
// thread.  One mutex guards all shared state; the runner blocks on a
// condition variable while remote chunks are in flight.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "campaign/checkpoint.h"
#include "campaign/log.h"
#include "campaign/sample_space.h"
#include "campaign/supervisor.h"
#include "fi/executor.h"
#include "fi/program.h"
#include "net/frame.h"
#include "service/protocol.h"
#include "telemetry/events.h"
#include "util/rng.h"

namespace ftb::service {

struct DispatchOptions {
  /// Heartbeat cadence advertised to workers in WorkerHelloOk.
  std::uint32_t heartbeat_interval_ms = 250;
  /// A worker whose heartbeat counter has not advanced for this long is
  /// stale: its leases expire and requeue, and it gets no new chunks until
  /// a heartbeat advance re-admits it.
  std::uint32_t lease_timeout_ms = 3000;
  /// A remote chunk leased longer than this is a straggler and becomes
  /// eligible for speculative re-dispatch (second holder, first result
  /// wins).
  std::uint32_t straggler_timeout_ms = 20000;
  /// Chunk kills (ok=false results) a worker may accumulate before the
  /// whole worker is quarantined for a backoff window.
  std::uint32_t worker_quarantine_after = 3;
  /// Base backoff for per-(worker,chunk) grudges and worker quarantine;
  /// doubles per repeat and is jittered +/-25% so re-admissions do not
  /// stampede.
  std::uint32_t quarantine_backoff_ms = 1000;
  /// Seed for the deterministic jitter stream.
  std::uint64_t jitter_seed = 0x77ab5eedu;
  /// Shared secret a WorkerHello must carry to register; empty admits any
  /// worker (loopback / trusted-network deployments).  Worker-plane frames
  /// from connections that never registered are dropped regardless.
  std::string worker_token;
  telemetry::Telemetry* telemetry = nullptr;
  /// Test seam: monotonic clock in nanoseconds (steady_clock when unset).
  std::function<std::uint64_t()> now_ns;
};

/// Per-job distributed-execution counters (dispatcher's view).
struct DispatchStats {
  std::uint64_t leases_granted = 0;
  std::uint64_t leases_expired = 0;
  std::uint64_t chunks_requeued = 0;     ///< chunk-level requeues (expiry/kill)
  std::uint64_t chunks_speculated = 0;   ///< straggler re-dispatches
  std::uint64_t experiments_requeued = 0;///< ids put back by those requeues
  std::uint64_t duplicate_results = 0;   ///< losers of first-writer-wins
  std::uint64_t stale_results = 0;       ///< results for no-longer-active jobs
  std::uint64_t chunk_failures = 0;      ///< ok=false results
  std::uint64_t worker_quarantines = 0;  ///< whole-worker backoff windows
  std::uint64_t workers_lost = 0;        ///< disconnects while job active
  std::uint64_t remote_chunks = 0;       ///< chunks won by a remote worker
  std::uint64_t local_chunks = 0;        ///< chunks won by the local runner
  // Folded from winning WorkerChunkResult frames:
  std::uint64_t remote_worker_deaths = 0;
  std::uint64_t remote_worker_hangs = 0;
  std::uint64_t remote_requeued = 0;
  std::uint64_t remote_quarantined = 0;
};

/// Config + hooks for one distributed job run; mirrors CheckpointOptions.
struct DistributedJobOptions {
  std::string path;              ///< journal file (same as the local path)
  std::size_t flush_every = 512; ///< chunk size == flush cadence
  std::string kernel;            ///< campaign config shipped to workers
  std::string preset;
  std::uint32_t pool_workers = 2;
  std::uint32_t timeout_ms = 2000;
  std::uint32_t quarantine_after = 3;
  /// Local co-execution supervisor (zero-worker degradation and chunk
  /// stealing run through this).
  campaign::SupervisorOptions supervisor;
  telemetry::Telemetry* telemetry = nullptr;
  std::function<void(const campaign::CheckpointProgress&)> on_progress;
  std::function<bool()> should_stop;
};

struct DistributedRunResult {
  campaign::CampaignLog log;
  bool resumed = false;
  std::uint64_t skipped = 0;
  std::uint64_t executed = 0;
  std::uint64_t flushes = 0;
  bool stopped = false;
  campaign::SupervisorStats supervisor_stats;  ///< local co-exec + remote deltas
  DispatchStats dispatch;
};

class ChunkDispatcher {
 public:
  explicit ChunkDispatcher(DispatchOptions options = {});

  /// Wires frame output and loop wakeups; both must be thread-safe (the
  /// Service points them at net::Server::send / wake).  Call before the
  /// event loop starts handing frames in.
  void attach(std::function<void(std::uint64_t, const net::Frame&)> sender,
              std::function<void()> waker);

  // --- event-loop thread --------------------------------------------------
  void handle_hello(std::uint64_t conn, const WorkerHello& hello);
  void handle_heartbeat(std::uint64_t conn, const WorkerHeartbeat& heartbeat);
  void handle_result(std::uint64_t conn, WorkerChunkResult result);
  void handle_disconnect(std::uint64_t conn);
  /// Lease sweep + straggler detection + chunk dispatch.
  void on_tick();

  /// Workers currently admissible for leases (registered, heartbeat fresh).
  std::size_t live_workers() const;

  // --- job-runner thread --------------------------------------------------
  /// Runs (or resumes) the listed experiments across the connected workers
  /// plus the calling thread, with per-chunk journal flushes.  Exactly one
  /// job may be active at a time (the JobRunner is serial).  Throws like
  /// run_campaign_checkpointed on journal problems.
  DistributedRunResult run_job(const fi::Program& program,
                               const fi::GoldenRun& golden,
                               std::span<const campaign::ExperimentId> ids,
                               const DistributedJobOptions& options);

 private:
  struct Chunk {
    enum class State { kPending, kLeased, kDone };
    std::uint64_t seq = 0;
    std::vector<campaign::ExperimentId> ids;
    State state = State::kPending;
    std::vector<std::uint64_t> holders;  ///< worker ids; 0 == local runner
    std::uint64_t first_leased_ns = 0;
    bool speculated = false;
    std::vector<campaign::ExperimentRecord> records;  ///< winner's output
  };

  struct Grudge {
    std::uint32_t failures = 0;
    std::uint64_t not_before_ns = 0;
  };

  struct Worker {
    std::uint64_t id = 0;
    std::uint64_t conn = 0;
    std::string name;
    std::uint32_t capacity = 1;
    std::uint64_t heartbeat_seq = 0;
    std::uint64_t last_advance_ns = 0;
    bool stale = false;
    std::uint32_t kills = 0;  ///< consecutive chunk failures
    std::uint64_t quarantined_until_ns = 0;
    std::vector<std::uint64_t> leased;            ///< chunk seqs
    std::map<std::uint64_t, Grudge> grudges;      ///< per-(worker,chunk)
  };

  struct Job {
    bool active = false;
    std::uint64_t id = 0;
    std::string kernel, preset;
    std::uint32_t pool_workers = 2;
    std::uint32_t timeout_ms = 2000;
    std::uint32_t quarantine_after = 3;
    std::vector<Chunk> chunks;
    std::size_t done = 0;
    std::deque<std::size_t> completed;  ///< chunk indexes awaiting merge
    DispatchStats stats;
  };

  std::uint64_t now() const;
  std::uint64_t jittered_backoff_locked(std::uint32_t failures);
  void count(const char* name, std::uint64_t delta = 1);
  Worker* worker_by_conn_locked(std::uint64_t conn);
  void release_holders_locked(Chunk& chunk);
  void requeue_chunk_locked(Chunk& chunk, std::uint64_t loser);
  void expire_worker_locked(Worker& worker);
  void dispatch_locked(std::uint64_t now_ns);
  bool worker_may_take_locked(const Worker& worker, const Chunk& chunk,
                              std::uint64_t now_ns) const;

  // Runner-side helpers (each takes the mutex).
  std::optional<std::pair<std::uint64_t, std::vector<campaign::ExperimentId>>>
  claim_local_chunk();
  bool complete_local_chunk(std::uint64_t seq,
                            std::vector<campaign::ExperimentRecord> records);
  std::optional<std::pair<std::uint64_t,
                          std::vector<campaign::ExperimentRecord>>>
  pop_completed();

  DispatchOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::function<void(std::uint64_t, const net::Frame&)> sender_;
  std::function<void()> waker_;
  std::map<std::uint64_t, Worker> workers_;        // by worker id
  std::map<std::uint64_t, std::uint64_t> by_conn_; // conn -> worker id
  std::uint64_t next_worker_id_ = 1;
  std::uint64_t job_counter_ = 0;
  Job job_;
  util::Rng jitter_;
};

}  // namespace ftb::service
