#include "service/store.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "boundary/serialize.h"
#include "kernels/registry.h"

namespace ftb::service {

namespace {

namespace fs = std::filesystem;

/// Builds the golden-run half of an entry.  Throws std::invalid_argument
/// for unknown kernel/preset names (kernels::make_program's contract).
std::shared_ptr<StoreEntry> build_entry(
    const StoreKey& key, boundary::FaultToleranceBoundary boundary,
    const std::string& expect_config, std::string* error) {
  const fi::ProgramPtr program =
      kernels::make_program(key.kernel, kernels::preset_from_string(key.preset));
  if (!expect_config.empty() && program->config_key() != expect_config) {
    if (error != nullptr) {
      *error = "artifact was built for config '" + expect_config +
               "' but " + key.kernel + "@" + key.preset + " is '" +
               program->config_key() + "'";
    }
    return nullptr;
  }
  auto entry = std::make_shared<StoreEntry>();
  entry->key = key;
  entry->config_key = program->config_key();
  entry->boundary = std::move(boundary);
  entry->golden = fi::run_golden(*program);
  entry->phases = fi::PhaseMap(entry->golden.phases,
                               entry->golden.dynamic_instructions());
  if (entry->boundary.sites() != entry->golden.dynamic_instructions()) {
    if (error != nullptr) {
      *error = "artifact has " + std::to_string(entry->boundary.sites()) +
               " sites but " + key.str() + " executes " +
               std::to_string(entry->golden.dynamic_instructions()) +
               " dynamic instructions";
    }
    return nullptr;
  }
  return entry;
}

}  // namespace

std::string StoreKey::str() const {
  return kernel + "@" + preset + "@" + std::to_string(seed);
}

std::optional<StoreKey> parse_store_key(const std::string& text,
                                        std::string* error) {
  const auto fail = [&](const std::string& what) -> std::optional<StoreKey> {
    if (error != nullptr) {
      *error = "bad store key '" + text + "': " + what +
               " (want <kernel>@<preset>@<seed>)";
    }
    return std::nullopt;
  };
  const std::size_t first = text.find('@');
  if (first == std::string::npos) return fail("no '@' separator");
  const std::size_t second = text.find('@', first + 1);
  if (second == std::string::npos) return fail("only one '@' separator");
  StoreKey key;
  key.kernel = text.substr(0, first);
  key.preset = text.substr(first + 1, second - first - 1);
  const std::string seed = text.substr(second + 1);
  if (key.kernel.empty() || key.preset.empty() || seed.empty()) {
    return fail("empty component");
  }
  try {
    std::size_t used = 0;
    key.seed = std::stoull(seed, &used);
    if (used != seed.size()) return fail("seed is not a number");
  } catch (const std::exception&) {
    return fail("seed is not a number");
  }
  return key;
}

std::size_t BoundaryStore::load_directory(
    const std::string& dir, std::vector<std::string>* diagnostics) {
  const auto diagnose = [&](const std::string& line) {
    if (diagnostics != nullptr) diagnostics->push_back(line);
    if (telemetry::active(telemetry_)) {
      telemetry_->metrics().counter("store.load_rejects").add();
      telemetry_->instant("store.load_reject", "service");
    }
  };
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    diagnose("store directory '" + dir + "' does not exist; starting empty");
    return 0;
  }
  std::size_t loaded = 0;
  std::vector<fs::path> files;
  for (const auto& dirent : fs::directory_iterator(dir, ec)) {
    if (dirent.path().extension() == ".boundary") files.push_back(dirent.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    const std::string name = path.filename().string();
    std::string error;
    const auto key = parse_store_key(path.stem().string(), &error);
    if (!key.has_value()) {
      diagnose("rejected " + name + ": " + error);
      continue;
    }
    auto artifact = boundary::load_artifact_from_file(path.string(), {}, &error);
    if (!artifact.has_value()) {
      diagnose("rejected " + name + ": " + error);
      continue;
    }
    try {
      auto entry = build_entry(*key, std::move(artifact->boundary),
                               artifact->config_key, &error);
      if (entry == nullptr) {
        diagnose("rejected " + name + ": " + error);
        continue;
      }
      insert(std::move(entry));
      ++loaded;
    } catch (const std::invalid_argument& e) {
      diagnose("rejected " + name + ": " + std::string(e.what()));
    }
  }
  if (telemetry::active(telemetry_)) {
    telemetry_->metrics().counter("store.loads").add(loaded);
  }
  return loaded;
}

bool BoundaryStore::publish(const StoreKey& key,
                            const boundary::FaultToleranceBoundary& boundary,
                            std::string* error,
                            std::vector<double> coverage_profile) {
  try {
    auto entry = build_entry(key, boundary, {}, error);
    if (entry == nullptr) return false;
    if (coverage_profile.size() == entry->boundary.sites()) {
      entry->coverage_profile = std::move(coverage_profile);
    }
    insert(std::move(entry));
  } catch (const std::invalid_argument& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  if (telemetry::active(telemetry_)) {
    telemetry_->metrics().counter("store.publishes").add();
    telemetry_->instant("store.publish", "service");
  }
  return true;
}

std::shared_ptr<const StoreEntry> BoundaryStore::find(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const StoreEntry>> BoundaryStore::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const StoreEntry>> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry);
  return out;
}

std::size_t BoundaryStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void BoundaryStore::insert(std::shared_ptr<const StoreEntry> entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[entry->key.str()] = std::move(entry);
  if (telemetry::active(telemetry_)) {
    telemetry_->metrics().gauge("store.entries").set(
        static_cast<double>(entries_.size()));
  }
}

}  // namespace ftb::service
