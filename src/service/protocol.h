// Message catalogue for the ftb_served protocol.
//
// Frames (net/frame.h) carry a type tag and an opaque payload; this header
// gives both meaning.  Payloads are encoded with util::BinaryWriter /
// BinaryReader (the same little-endian primitives as the CampaignLog and
// boundary artifacts), and every decode returns nullopt with a one-line
// diagnostic instead of throwing across the network boundary.
//
// The protocol has two planes:
//
//   * query plane (request -> single response): Ping, PredictFlip,
//     PredictSite, PhaseReport, ListBoundaries, Stats, Shutdown;
//   * campaign plane (request -> response stream): SubmitCampaign is
//     answered by CampaignAccepted, then zero or more CampaignProgress
//     frames as checkpoint chunks land, then exactly one CampaignDone.
//
// A third, inward-facing plane carries distributed campaign execution
// (service/dispatch.h): an ftb_workerd daemon registers with WorkerHello,
// keeps its chunk leases alive with monotonically-numbered WorkerHeartbeat
// frames, receives WorkerChunk assignments, and answers each with exactly
// one WorkerChunkResult whose experiment records merge into the campaign
// journal.  Worker frames share the connection, framing, and CRC discipline
// of the client planes.
//
// Any request can instead be answered by an Error frame carrying a
// human-readable message.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "boundary/report.h"
#include "campaign/campaign.h"
#include "net/frame.h"

namespace ftb::service {

enum class MsgType : std::uint32_t {
  kError = 0,
  kPing = 1,
  kPong = 2,
  kPredictFlip = 3,
  kPredictFlipOk = 4,
  kPredictSite = 5,
  kPredictSiteOk = 6,
  kPhaseReport = 7,
  kPhaseReportOk = 8,
  kListBoundaries = 9,
  kBoundaryListOk = 10,
  kStats = 11,
  kStatsOk = 12,
  kSubmitCampaign = 13,
  kCampaignAccepted = 14,
  kCampaignProgress = 15,
  kCampaignDone = 16,
  kShutdown = 17,
  kShutdownOk = 18,
  kBusy = 19,
  kWorkerHello = 20,
  kWorkerHelloOk = 21,
  kWorkerChunk = 22,
  kWorkerChunkResult = 23,
  kWorkerHeartbeat = 24,
  kSubmitRecompute = 25,
  kRecomputeDone = 26,
};

/// The largest type value the dispatcher accepts; anything above is an
/// unknown message.
inline constexpr std::uint32_t kMaxMsgType =
    static_cast<std::uint32_t>(MsgType::kRecomputeDone);

const char* to_string(MsgType type) noexcept;

struct ErrorMsg {
  std::string message;
};

/// Load-shed reply: the server is healthy but refuses this request right
/// now (admission queue full, per-connection cap hit, or the request's
/// deadline expired while it waited).  Unlike Error, Busy is retryable;
/// `retry_after_ms` is the server's backoff hint.
struct BusyMsg {
  std::string message;
  std::uint64_t retry_after_ms = 0;
};

struct PredictFlipReq {
  std::string key;  // boundary store key, e.g. "cg@tiny@1"
  std::uint64_t site = 0;
  std::uint32_t bit = 0;
};

struct PredictFlipOk {
  std::uint32_t outcome = 0;  // fi::Outcome
  double threshold = 0.0;
  double injected_error = 0.0;
};

struct PredictSiteReq {
  std::string key;
  std::uint64_t site = 0;
};

struct PredictSiteOk {
  std::uint32_t masked = 0;
  std::uint32_t sdc = 0;
  std::uint32_t crash = 0;
  double sdc_ratio = 0.0;
  double threshold = 0.0;
  double golden_value = 0.0;
};

struct PhaseReportReq {
  std::string key;
};

struct PhaseReportOk {
  std::vector<boundary::PhaseReport> rows;
};

struct BoundaryInfo {
  std::string key;
  std::string config_key;
  std::uint64_t sites = 0;
  std::uint64_t informed_sites = 0;
};

struct BoundaryListOk {
  std::vector<BoundaryInfo> entries;
};

struct StatsOk {
  std::string metrics_json;  // schema ftb.telemetry.metrics/1
};

struct SubmitCampaignReq {
  std::string kernel;
  std::string preset = "tiny";
  std::uint64_t seed = 1;
  std::uint64_t batch = 1000;
  std::uint32_t workers = 2;        // supervisor pool size
  std::uint32_t flush_every = 512;  // checkpoint chunk / journal flush cadence
  std::uint32_t timeout_ms = 2000;  // worker heartbeat budget
  std::uint32_t quarantine_after = 3;
};

struct CampaignAccepted {
  std::uint64_t job = 0;
  std::uint32_t queue_depth = 0;  // jobs ahead of this one, including running
};

struct CampaignProgress {
  std::uint64_t job = 0;
  std::uint64_t done = 0;   // executed this invocation
  std::uint64_t total = 0;  // owed this invocation (after resume skip)
  std::uint64_t logged = 0; // journal records so far
  std::uint64_t masked = 0, sdc = 0, crash = 0, hang = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t worker_hangs = 0;
  std::uint64_t requeued = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t detected = 0;  // detector-caught corruptions (kDetected)
};

struct CampaignDone {
  std::uint64_t job = 0;
  bool ok = false;
  bool stopped = false;  // drained mid-flight; journal is resumable
  std::string error;     // when !ok (or a drain note when stopped)
  std::string store_key; // published boundary key when ok
  std::uint64_t executed = 0;
  std::uint64_t skipped = 0;
  std::uint64_t flushes = 0;
  std::uint64_t masked = 0, sdc = 0, crash = 0, hang = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t worker_hangs = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t detected = 0;  // detector-caught corruptions (kDetected)
};

/// Compositional (section-graph) campaign submission.  Accepted with
/// CampaignAccepted, streams CampaignProgress as per-section checkpoint
/// chunks land, and finishes with exactly one RecomputeDone.  The job
/// diffs section fingerprints against the store's previous composed
/// artifact ("<key>.compose") and re-campaigns only the dirty sections.
struct SubmitRecomputeReq {
  std::string kernel;
  std::string preset = "tiny";
  std::uint64_t seed = 1;
  std::uint64_t section_batch = 256;  // experiments per section
  std::string section_batches;        // "name=N,..." per-section overrides
  bool force = false;                 // recompute all sections
  std::uint32_t workers = 2;
  std::uint32_t flush_every = 256;
  std::uint32_t timeout_ms = 2000;
  std::uint32_t quarantine_after = 3;
};

/// Terminal frame for a recompute job: the campaign tallies plus which
/// sections actually re-ran and which were spliced from the previous
/// artifact unchanged.
struct RecomputeDone {
  std::uint64_t job = 0;
  bool ok = false;
  bool stopped = false;  // drained mid-flight; section journals resumable
  std::string error;
  std::string store_key;  // published boundary key when ok
  std::uint64_t executed = 0;
  std::uint64_t sections = 0;  // sections in the composed artifact
  std::vector<std::string> dirty;   // sections (re-)campaigned
  std::vector<std::string> reused;  // sections spliced unchanged
};

// --- worker plane (ftb_workerd <-> ftb_served) ----------------------------

/// First frame a worker daemon sends after connecting.  `capacity` is the
/// number of chunks the worker is willing to hold at once (its exec queue
/// depth); `pool_workers` is the sandbox pool it runs each chunk through
/// (informational, for stats).  `token` must match the server's
/// --worker-token or registration is refused with an Error frame; frames
/// on the worker plane from connections that never registered are dropped,
/// so the token gates the whole plane, not just the hello.
struct WorkerHello {
  std::string name;
  std::uint32_t capacity = 1;
  std::uint32_t pool_workers = 2;
  std::string token;  ///< shared secret; empty matches a token-less server
};

/// Registration reply: the server-assigned worker id and the heartbeat
/// cadence the dispatcher expects.  A worker that stays silent longer than
/// `lease_timeout_ms` forfeits its leases.
struct WorkerHelloOk {
  std::uint64_t worker = 0;
  std::uint32_t heartbeat_interval_ms = 500;
  std::uint32_t lease_timeout_ms = 5000;
};

/// Liveness beacon.  `seq` must increase monotonically; the dispatcher only
/// renews leases when it observes an *advance* (a SIGSTOPped worker whose
/// kernel keeps the socket open still goes stale).
struct WorkerHeartbeat {
  std::uint64_t worker = 0;
  std::uint64_t seq = 0;
};

/// A chunk lease: run `ids` of job `job` under the given campaign config
/// and answer with a WorkerChunkResult carrying the same (job, chunk) pair.
struct WorkerChunk {
  std::uint64_t job = 0;
  std::uint64_t chunk = 0;  ///< chunk sequence number within the job
  std::string kernel;
  std::string preset;
  std::uint32_t pool_workers = 2;
  std::uint32_t timeout_ms = 2000;
  std::uint32_t quarantine_after = 3;
  std::vector<campaign::ExperimentId> ids;
};

/// Chunk completion (or failure).  `records` carry full experiment results
/// -- doubles round-trip bit-exactly so the merged journal stays
/// byte-identical to a local-only run.  The supervisor counters are this
/// chunk's deltas, folded into the job's campaign stats.
struct WorkerChunkResult {
  std::uint64_t job = 0;
  std::uint64_t chunk = 0;
  bool ok = false;
  std::string error;  ///< when !ok: why the worker killed the chunk
  std::vector<campaign::ExperimentRecord> records;
  std::uint64_t worker_deaths = 0;
  std::uint64_t worker_hangs = 0;
  std::uint64_t requeued = 0;
  std::uint64_t quarantined = 0;
};

// --- frame builders -------------------------------------------------------

net::Frame make_error(const std::string& message);
net::Frame make_busy(const std::string& message, std::uint64_t retry_after_ms);
net::Frame make_ping();
net::Frame make_pong();
net::Frame make_predict_flip(const PredictFlipReq& req);
net::Frame make_predict_flip_ok(const PredictFlipOk& ok);
net::Frame make_predict_site(const PredictSiteReq& req);
net::Frame make_predict_site_ok(const PredictSiteOk& ok);
net::Frame make_phase_report(const PhaseReportReq& req);
net::Frame make_phase_report_ok(const PhaseReportOk& ok);
net::Frame make_list_boundaries();
net::Frame make_boundary_list_ok(const BoundaryListOk& ok);
net::Frame make_stats();
net::Frame make_stats_ok(const StatsOk& ok);
net::Frame make_submit_campaign(const SubmitCampaignReq& req);
net::Frame make_submit_recompute(const SubmitRecomputeReq& req);
net::Frame make_recompute_done(const RecomputeDone& msg);
net::Frame make_campaign_accepted(const CampaignAccepted& msg);
net::Frame make_campaign_progress(const CampaignProgress& msg);
net::Frame make_campaign_done(const CampaignDone& msg);
net::Frame make_shutdown();
net::Frame make_shutdown_ok();
net::Frame make_worker_hello(const WorkerHello& msg);
net::Frame make_worker_hello_ok(const WorkerHelloOk& msg);
net::Frame make_worker_heartbeat(const WorkerHeartbeat& msg);
net::Frame make_worker_chunk(const WorkerChunk& msg);
net::Frame make_worker_chunk_result(const WorkerChunkResult& msg);

// --- payload decoders -----------------------------------------------------
//
// Each returns nullopt (with a diagnostic in `error`) when the payload is
// truncated, has trailing garbage, or carries out-of-range values.

std::optional<ErrorMsg> parse_error(const net::Frame& frame,
                                    std::string* error = nullptr);
std::optional<BusyMsg> parse_busy(const net::Frame& frame,
                                  std::string* error = nullptr);
std::optional<PredictFlipReq> parse_predict_flip(const net::Frame& frame,
                                                 std::string* error = nullptr);
std::optional<PredictFlipOk> parse_predict_flip_ok(
    const net::Frame& frame, std::string* error = nullptr);
std::optional<PredictSiteReq> parse_predict_site(const net::Frame& frame,
                                                 std::string* error = nullptr);
std::optional<PredictSiteOk> parse_predict_site_ok(
    const net::Frame& frame, std::string* error = nullptr);
std::optional<PhaseReportReq> parse_phase_report(const net::Frame& frame,
                                                 std::string* error = nullptr);
std::optional<PhaseReportOk> parse_phase_report_ok(
    const net::Frame& frame, std::string* error = nullptr);
std::optional<BoundaryListOk> parse_boundary_list_ok(
    const net::Frame& frame, std::string* error = nullptr);
std::optional<StatsOk> parse_stats_ok(const net::Frame& frame,
                                      std::string* error = nullptr);
std::optional<SubmitCampaignReq> parse_submit_campaign(
    const net::Frame& frame, std::string* error = nullptr);
std::optional<SubmitRecomputeReq> parse_submit_recompute(
    const net::Frame& frame, std::string* error = nullptr);
std::optional<RecomputeDone> parse_recompute_done(
    const net::Frame& frame, std::string* error = nullptr);
std::optional<CampaignAccepted> parse_campaign_accepted(
    const net::Frame& frame, std::string* error = nullptr);
std::optional<CampaignProgress> parse_campaign_progress(
    const net::Frame& frame, std::string* error = nullptr);
std::optional<CampaignDone> parse_campaign_done(const net::Frame& frame,
                                                std::string* error = nullptr);
std::optional<WorkerHello> parse_worker_hello(const net::Frame& frame,
                                              std::string* error = nullptr);
std::optional<WorkerHelloOk> parse_worker_hello_ok(
    const net::Frame& frame, std::string* error = nullptr);
std::optional<WorkerHeartbeat> parse_worker_heartbeat(
    const net::Frame& frame, std::string* error = nullptr);
std::optional<WorkerChunk> parse_worker_chunk(const net::Frame& frame,
                                              std::string* error = nullptr);
std::optional<WorkerChunkResult> parse_worker_chunk_result(
    const net::Frame& frame, std::string* error = nullptr);

}  // namespace ftb::service
