// Write-ahead job ledger for the ftb_served campaign plane.
//
// Every job the daemon acks durably exists here first: submit appends a
// kSubmitted record and fsyncs BEFORE the CampaignAccepted frame leaves the
// process, so "the server said yes" implies "a restart will still know about
// the job".  State transitions (kRunning, kDone, kFailed) are appended as the
// job progresses; a job whose last record is kSubmitted or kRunning when the
// process dies is *pending* and is re-enqueued on the next startup, where the
// chunk-edge checkpoint journal resumes it exactly like the CLI --resume
// path.
//
// On-disk format (little-endian), reusing the CampaignLog framing
// discipline:
//
//   | magic u64 "FTB-JLDG" | version u64 |
//   | len u32 | crc32(payload) u32 | payload ... |   (repeated)
//
// payload:
//   u64 job id, u64 state,
//   then for kSubmitted: the SubmitCampaignReq fields in wire order
//   (kernel, preset, seed, batch, workers, flush_every, timeout_ms,
//   quarantine_after); for other states: a free-form note string.
//   A recompute submission appends, after those eight fields (batch
//   carrying section_batch): u64 kind (1), string section_batches,
//   u64 force.  Campaign records stop at the eighth field, so ledgers
//   written before recompute jobs existed replay unchanged -- the reader
//   treats "payload exhausted after eight fields" as kind == campaign.
//
// Replay stops at the first torn or corrupt record (the tail a crash can
// leave behind) and reports it; everything before the tear is trusted
// because each record carries its own CRC.  open() compacts: the file is
// rewritten (durably) with only the still-pending jobs, so the ledger stays
// proportional to the backlog, not the daemon's lifetime history.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "util/durable_file.h"

namespace ftb::service {

enum class JobState : std::uint8_t {
  kSubmitted = 0,
  kRunning = 1,
  kDone = 2,
  kFailed = 3,
};

const char* to_string(JobState state) noexcept;

/// What a ledgered job runs: a classic uniform campaign or a compositional
/// section-graph recompute (sections/driver.h).
enum class JobKind : std::uint8_t {
  kCampaign = 0,
  kRecompute = 1,
};

const char* to_string(JobKind kind) noexcept;

/// One pending job recovered from the ledger.  `req` is meaningful when
/// kind == kCampaign, `recompute` when kind == kRecompute.
struct LedgerJob {
  std::uint64_t id = 0;
  JobState state = JobState::kSubmitted;
  JobKind kind = JobKind::kCampaign;
  SubmitCampaignReq req;
  SubmitRecomputeReq recompute;
  std::string note;
};

class JobLedger {
 public:
  struct ReplayResult {
    /// Jobs whose last record was kSubmitted or kRunning, in submit order.
    std::vector<LedgerJob> pending;
    /// Jobs that reached kDone/kFailed since the last compaction (their
    /// records are dropped at the next open()); the chaos harness uses
    /// these to audit that every acked job is accounted for.
    std::vector<LedgerJob> terminal_jobs;
    /// One above the highest job id ever seen (1 for a fresh ledger), so
    /// re-acked ids never collide with pre-crash ones.
    std::uint64_t next_job_id = 1;
    std::uint64_t records = 0;        ///< well-formed records read
    std::uint64_t terminal = 0;       ///< jobs that reached kDone/kFailed
    std::uint64_t torn_records = 0;   ///< records rejected at the tail
    std::vector<std::string> diagnostics;
  };

  JobLedger() = default;
  JobLedger(const JobLedger&) = delete;
  JobLedger& operator=(const JobLedger&) = delete;

  /// Replays `path` (missing file == empty ledger), compacts it down to the
  /// pending jobs, and opens it for appending.  Returns false (with a
  /// diagnostic) when the compaction or the append-mode open fails; replay
  /// results are still delivered so the caller can report what was found.
  bool open(const std::string& path, ReplayResult* replay,
            std::string* error = nullptr);

  /// Appends a kSubmitted record and fsyncs.  Must succeed before the
  /// submission is acked to the client.
  bool append_submitted(std::uint64_t job, const SubmitCampaignReq& req,
                        std::string* error = nullptr);

  /// kSubmitted record for a recompute job (trailing kind fields).
  bool append_submitted_recompute(std::uint64_t job,
                                  const SubmitRecomputeReq& req,
                                  std::string* error = nullptr);

  /// Appends a state-transition record (kRunning/kDone/kFailed) and fsyncs.
  bool append_state(std::uint64_t job, JobState state, const std::string& note,
                    std::string* error = nullptr);

  bool valid() const noexcept { return log_.valid(); }
  const std::string& path() const noexcept { return path_; }
  void close() { log_.close(); }

  /// Read-only replay of a ledger file, for tests and external validators
  /// (the chaos harness uses this to audit a killed daemon's store).
  static ReplayResult replay_file(const std::string& path);

 private:
  std::string path_;
  util::AppendLog log_;
};

}  // namespace ftb::service
