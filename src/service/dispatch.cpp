#include "service/dispatch.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace ftb::service {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Holder id of the job-runner thread's own claims.  Worker ids start at 1,
/// so 0 is free to mean "local".
constexpr std::uint64_t kLocalHolder = 0;

constexpr std::uint64_t kMsPerNs = 1'000'000ull;

bool contains(const std::vector<std::uint64_t>& v, std::uint64_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

void erase_value(std::vector<std::uint64_t>& v, std::uint64_t x) {
  v.erase(std::remove(v.begin(), v.end(), x), v.end());
}

}  // namespace

ChunkDispatcher::ChunkDispatcher(DispatchOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {}

void ChunkDispatcher::attach(
    std::function<void(std::uint64_t, const net::Frame&)> sender,
    std::function<void()> waker) {
  std::lock_guard<std::mutex> lock(mutex_);
  sender_ = std::move(sender);
  waker_ = std::move(waker);
}

std::uint64_t ChunkDispatcher::now() const {
  return options_.now_ns ? options_.now_ns() : steady_ns();
}

void ChunkDispatcher::count(const char* name, std::uint64_t delta) {
  if (telemetry::active(options_.telemetry) && delta > 0) {
    options_.telemetry->metrics().counter(name).add(delta);
  }
}

std::uint64_t ChunkDispatcher::jittered_backoff_locked(
    std::uint32_t failures) {
  const std::uint32_t shift = std::min(failures > 0 ? failures - 1 : 0u, 6u);
  double ms = static_cast<double>(options_.quarantine_backoff_ms) *
              static_cast<double>(1u << shift);
  ms *= jitter_.next_double(0.75, 1.25);
  return static_cast<std::uint64_t>(ms) * kMsPerNs;
}

ChunkDispatcher::Worker* ChunkDispatcher::worker_by_conn_locked(
    std::uint64_t conn) {
  const auto it = by_conn_.find(conn);
  if (it == by_conn_.end()) return nullptr;
  const auto worker = workers_.find(it->second);
  return worker == workers_.end() ? nullptr : &worker->second;
}

void ChunkDispatcher::release_holders_locked(Chunk& chunk) {
  for (const std::uint64_t holder : chunk.holders) {
    if (holder == kLocalHolder) continue;
    const auto it = workers_.find(holder);
    if (it != workers_.end()) erase_value(it->second.leased, chunk.seq);
  }
  chunk.holders.clear();
}

/// Removes `loser` from the chunk's holders and requeues the chunk when no
/// other holder remains.  The straggler timer restarts on the next lease.
void ChunkDispatcher::requeue_chunk_locked(Chunk& chunk, std::uint64_t loser) {
  erase_value(chunk.holders, loser);
  if (chunk.state != Chunk::State::kLeased || !chunk.holders.empty()) return;
  chunk.state = Chunk::State::kPending;
  chunk.first_leased_ns = 0;
  chunk.speculated = false;
  if (job_.active) {
    ++job_.stats.chunks_requeued;
    job_.stats.experiments_requeued += chunk.ids.size();
  }
  count("dispatch.chunks_requeued");
}

void ChunkDispatcher::expire_worker_locked(Worker& worker) {
  const std::vector<std::uint64_t> leased = worker.leased;
  worker.leased.clear();
  for (const std::uint64_t seq : leased) {
    if (!job_.active || seq >= job_.chunks.size()) continue;
    if (job_.active) ++job_.stats.leases_expired;
    count("dispatch.leases_expired");
    requeue_chunk_locked(job_.chunks[seq], worker.id);
  }
}

bool ChunkDispatcher::worker_may_take_locked(const Worker& worker,
                                             const Chunk& chunk,
                                             std::uint64_t now_ns) const {
  if (chunk.state == Chunk::State::kDone) return false;
  if (chunk.state == Chunk::State::kLeased &&
      !(chunk.speculated && chunk.holders.size() < 2)) {
    return false;
  }
  if (contains(chunk.holders, worker.id)) return false;
  const auto grudge = worker.grudges.find(chunk.seq);
  if (grudge != worker.grudges.end() &&
      grudge->second.not_before_ns > now_ns) {
    return false;
  }
  return true;
}

void ChunkDispatcher::dispatch_locked(std::uint64_t now_ns) {
  if (!job_.active || !sender_) return;
  for (auto& [id, worker] : workers_) {
    if (worker.stale || worker.quarantined_until_ns > now_ns) continue;
    while (worker.leased.size() < worker.capacity) {
      Chunk* pick = nullptr;
      for (Chunk& chunk : job_.chunks) {
        if (worker_may_take_locked(worker, chunk, now_ns)) {
          pick = &chunk;
          break;
        }
      }
      if (pick == nullptr) break;
      pick->holders.push_back(worker.id);
      if (pick->state == Chunk::State::kPending) {
        pick->state = Chunk::State::kLeased;
        pick->first_leased_ns = now_ns;
      }
      worker.leased.push_back(pick->seq);
      ++job_.stats.leases_granted;
      count("dispatch.leases_granted");
      WorkerChunk msg;
      msg.job = job_.id;
      msg.chunk = pick->seq;
      msg.kernel = job_.kernel;
      msg.preset = job_.preset;
      msg.pool_workers = job_.pool_workers;
      msg.timeout_ms = job_.timeout_ms;
      msg.quarantine_after = job_.quarantine_after;
      msg.ids = pick->ids;
      sender_(worker.conn, make_worker_chunk(msg));
    }
  }
}

void ChunkDispatcher::handle_hello(std::uint64_t conn,
                                   const WorkerHello& hello) {
  WorkerHelloOk ok;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (hello.token != options_.worker_token) {
      count("dispatch.workers_rejected");
      if (sender_) {
        sender_(conn, make_error("worker token mismatch"));
      }
      return;
    }
    // A conn can only carry one worker; a second hello replaces the first
    // (its leases requeue exactly like a disconnect).
    if (Worker* old = worker_by_conn_locked(conn)) {
      expire_worker_locked(*old);
      workers_.erase(old->id);
    }
    Worker worker;
    worker.id = next_worker_id_++;
    worker.conn = conn;
    worker.name = hello.name;
    worker.capacity = std::max<std::uint32_t>(1, hello.capacity);
    worker.last_advance_ns = now();
    ok.worker = worker.id;
    ok.heartbeat_interval_ms = options_.heartbeat_interval_ms;
    ok.lease_timeout_ms = options_.lease_timeout_ms;
    by_conn_[conn] = worker.id;
    workers_.emplace(worker.id, std::move(worker));
    count("dispatch.workers_connected");
    if (telemetry::active(options_.telemetry)) {
      options_.telemetry->metrics().gauge("dispatch.workers").set(
          static_cast<double>(workers_.size()));
    }
    if (sender_) sender_(conn, make_worker_hello_ok(ok));
    dispatch_locked(now());  // a job may already be waiting for capacity
  }
  cv_.notify_all();
}

void ChunkDispatcher::handle_heartbeat(std::uint64_t conn,
                                       const WorkerHeartbeat& heartbeat) {
  std::lock_guard<std::mutex> lock(mutex_);
  Worker* worker = worker_by_conn_locked(conn);
  if (worker == nullptr) return;
  // Only an *advance* of the monotonic counter proves the process is alive;
  // replays and reordered duplicates renew nothing.
  if (heartbeat.seq <= worker->heartbeat_seq) return;
  worker->heartbeat_seq = heartbeat.seq;
  worker->last_advance_ns = now();
  if (worker->stale) {
    worker->stale = false;
    count("dispatch.workers_readmitted");
  }
}

void ChunkDispatcher::handle_result(std::uint64_t conn,
                                    WorkerChunkResult result) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Worker* worker = worker_by_conn_locked(conn);
    if (worker == nullptr) {
      // The conn never registered (or its hello was replaced): the result
      // maps onto no holder, and falling back to the local holder id would
      // let a forged ok=false erase the runner's claim on a chunk it is
      // executing.  Nothing from an unregistered conn may merge or requeue.
      count("dispatch.unregistered_results");
      return;
    }
    erase_value(worker->leased, result.chunk);
    if (!job_.active || job_.id != result.job ||
        result.chunk >= job_.chunks.size()) {
      // The job drained, finished, or never existed; the work is wasted but
      // harmless -- nothing merges.
      if (job_.active) ++job_.stats.stale_results;
      count("dispatch.stale_results");
      return;
    }
    Chunk& chunk = job_.chunks[result.chunk];
    if (!result.ok) {
      ++job_.stats.chunk_failures;
      count("dispatch.chunk_failures");
      const std::uint64_t t = now();
      // Per-(worker,chunk) grudge: this worker must sit out a jittered
      // backoff before it may lease this chunk again; other workers and
      // the local runner can take it immediately.
      Grudge& grudge = worker->grudges[result.chunk];
      ++grudge.failures;
      grudge.not_before_ns = t + jittered_backoff_locked(grudge.failures);
      ++worker->kills;
      if (worker->kills >= options_.worker_quarantine_after) {
        worker->quarantined_until_ns =
            t + jittered_backoff_locked(worker->kills -
                                        options_.worker_quarantine_after +
                                        1);
        ++job_.stats.worker_quarantines;
        count("dispatch.worker_quarantines");
      }
      requeue_chunk_locked(chunk, worker->id);
      dispatch_locked(t);
    } else {
      if (chunk.state == Chunk::State::kDone) {
        // A speculative twin (or a SIGCONTed straggler) lost the race.
        ++job_.stats.duplicate_results;
        count("dispatch.duplicate_results");
        return;
      }
      // Exactly-once guard: the result must answer exactly this chunk's id
      // set, else it cannot be merged without risking duplicates.
      bool coherent = result.records.size() == chunk.ids.size();
      if (coherent) {
        std::unordered_set<campaign::ExperimentId> expected(chunk.ids.begin(),
                                                            chunk.ids.end());
        for (const campaign::ExperimentRecord& record : result.records) {
          if (expected.erase(record.id) == 0) {
            coherent = false;
            break;
          }
        }
      }
      if (!coherent) {
        ++job_.stats.chunk_failures;
        count("dispatch.incoherent_results");
        requeue_chunk_locked(chunk, worker->id);
        dispatch_locked(now());
      } else {
        chunk.records = std::move(result.records);
        chunk.state = Chunk::State::kDone;
        release_holders_locked(chunk);
        ++job_.done;
        job_.completed.push_back(result.chunk);
        ++job_.stats.remote_chunks;
        job_.stats.remote_worker_deaths += result.worker_deaths;
        job_.stats.remote_worker_hangs += result.worker_hangs;
        job_.stats.remote_requeued += result.requeued;
        job_.stats.remote_quarantined += result.quarantined;
        count("dispatch.chunks_remote");
        worker->kills = 0;
        dispatch_locked(now());
      }
    }
  }
  cv_.notify_all();
}

void ChunkDispatcher::handle_disconnect(std::uint64_t conn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_conn_.find(conn);
    if (it == by_conn_.end()) return;
    const auto worker = workers_.find(it->second);
    if (worker != workers_.end()) {
      expire_worker_locked(worker->second);
      workers_.erase(worker);
    }
    by_conn_.erase(it);
    if (job_.active) ++job_.stats.workers_lost;
    count("dispatch.workers_lost");
    if (telemetry::active(options_.telemetry)) {
      options_.telemetry->metrics().gauge("dispatch.workers").set(
          static_cast<double>(workers_.size()));
    }
  }
  cv_.notify_all();
}

void ChunkDispatcher::on_tick() {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t t = now();
    const std::uint64_t lease_ns =
        std::uint64_t{options_.lease_timeout_ms} * kMsPerNs;
    for (auto& [id, worker] : workers_) {
      if (!worker.stale && t - worker.last_advance_ns > lease_ns) {
        // No heartbeat advance inside the TTL: the process is stopped, dead
        // behind a live socket, or partitioned.  Its leases requeue now; a
        // later heartbeat advance re-admits it.
        worker.stale = true;
        count("dispatch.workers_stale");
        expire_worker_locked(worker);
        notify = true;
      }
    }
    if (job_.active) {
      const std::uint64_t straggler_ns =
          std::uint64_t{options_.straggler_timeout_ms} * kMsPerNs;
      for (Chunk& chunk : job_.chunks) {
        if (chunk.state == Chunk::State::kLeased && !chunk.speculated &&
            !contains(chunk.holders, kLocalHolder) &&
            chunk.first_leased_ns != 0 &&
            t - chunk.first_leased_ns > straggler_ns) {
          chunk.speculated = true;
          ++job_.stats.chunks_speculated;
          count("dispatch.chunks_speculated");
          notify = true;  // the local runner may steal it
        }
      }
    }
    dispatch_locked(t);
  }
  if (notify) cv_.notify_all();
}

std::size_t ChunkDispatcher::live_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t live = 0;
  for (const auto& [id, worker] : workers_) {
    if (!worker.stale) ++live;
  }
  return live;
}

std::optional<std::pair<std::uint64_t, std::vector<campaign::ExperimentId>>>
ChunkDispatcher::claim_local_chunk() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!job_.active) return std::nullopt;
  Chunk* pick = nullptr;
  for (Chunk& chunk : job_.chunks) {
    if (chunk.state == Chunk::State::kPending) {
      pick = &chunk;
      break;
    }
  }
  if (pick == nullptr) {
    // No pending work: steal a remote straggler (first result will win).
    for (Chunk& chunk : job_.chunks) {
      if (chunk.state == Chunk::State::kLeased && chunk.speculated &&
          chunk.holders.size() < 2 &&
          !contains(chunk.holders, kLocalHolder)) {
        pick = &chunk;
        break;
      }
    }
  }
  if (pick == nullptr) return std::nullopt;
  pick->holders.push_back(kLocalHolder);
  if (pick->state == Chunk::State::kPending) {
    pick->state = Chunk::State::kLeased;
    pick->first_leased_ns = now();
  }
  return std::make_pair(pick->seq, pick->ids);
}

bool ChunkDispatcher::complete_local_chunk(
    std::uint64_t seq, std::vector<campaign::ExperimentRecord> records) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!job_.active || seq >= job_.chunks.size()) return false;
  Chunk& chunk = job_.chunks[seq];
  if (chunk.state == Chunk::State::kDone) {
    ++job_.stats.duplicate_results;
    count("dispatch.duplicate_results");
    return false;
  }
  chunk.records = std::move(records);
  chunk.state = Chunk::State::kDone;
  release_holders_locked(chunk);
  ++job_.done;
  job_.completed.push_back(seq);
  ++job_.stats.local_chunks;
  count("dispatch.chunks_local");
  return true;
}

std::optional<std::pair<std::uint64_t, std::vector<campaign::ExperimentRecord>>>
ChunkDispatcher::pop_completed() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!job_.active || job_.completed.empty()) return std::nullopt;
  const std::size_t index = job_.completed.front();
  job_.completed.pop_front();
  return std::make_pair(static_cast<std::uint64_t>(index),
                        std::move(job_.chunks[index].records));
}

DistributedRunResult ChunkDispatcher::run_job(
    const fi::Program& program, const fi::GoldenRun& golden,
    std::span<const campaign::ExperimentId> ids,
    const DistributedJobOptions& options) {
  if (options.path.empty()) {
    throw std::invalid_argument("run_job: journal path is empty");
  }
  const std::size_t flush_every =
      std::max<std::size_t>(1, options.flush_every);
  const std::string config_key = program.config_key();

  DistributedRunResult result;
  std::error_code ec;
  if (std::filesystem::exists(options.path, ec)) {
    std::string error;
    auto journal = campaign::CampaignLog::load(options.path, &error);
    if (!journal) {
      throw std::runtime_error("run_job: " + error);
    }
    if (journal->config_key() != config_key) {
      throw std::invalid_argument("run_job: journal '" + options.path +
                                  "' belongs to configuration '" +
                                  journal->config_key() + "', not '" +
                                  config_key + "'");
    }
    result.log = std::move(*journal);
    result.resumed = true;
  } else {
    result.log = campaign::CampaignLog(config_key);
  }

  std::unordered_set<campaign::ExperimentId> done_ids;
  done_ids.reserve(result.log.size());
  for (const campaign::ExperimentRecord& record : result.log.records()) {
    done_ids.insert(record.id);
  }
  std::vector<campaign::ExperimentId> remaining;
  remaining.reserve(ids.size());
  for (const campaign::ExperimentId id : ids) {
    if (done_ids.count(id) == 0) remaining.push_back(id);
  }
  result.skipped = ids.size() - remaining.size();

  telemetry::SpanScope span(options.telemetry, "dispatch.job", "dispatch");
  span.arg("chunks", static_cast<double>(
                         (remaining.size() + flush_every - 1) / flush_every));

  std::function<void()> waker;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job_.active) {
      throw std::logic_error("run_job: a distributed job is already active");
    }
    job_ = Job{};
    job_.active = true;
    job_.id = ++job_counter_;
    job_.kernel = options.kernel;
    job_.preset = options.preset;
    job_.pool_workers = options.pool_workers;
    job_.timeout_ms = options.timeout_ms;
    job_.quarantine_after = options.quarantine_after;
    for (std::size_t begin = 0; begin < remaining.size();
         begin += flush_every) {
      const std::size_t end =
          std::min(begin + flush_every, remaining.size());
      Chunk chunk;
      chunk.seq = job_.chunks.size();
      chunk.ids.assign(remaining.begin() + static_cast<std::ptrdiff_t>(begin),
                       remaining.begin() + static_cast<std::ptrdiff_t>(end));
      job_.chunks.push_back(std::move(chunk));
    }
    // Grudges and kill streaks are job-scoped (chunk seqs restart at 0).
    for (auto& [id, worker] : workers_) {
      worker.grudges.clear();
      worker.kills = 0;
    }
    waker = waker_;
  }
  if (waker) waker();  // let the event loop start dispatching immediately

  // Local co-execution: the runner thread doubles as one more worker, so
  // zero live workers degrades to exactly the local supervisor path.  The
  // supervisor forks lazily -- a fully-remote job never pays for a pool.
  std::optional<campaign::CampaignSupervisor> local;
  const auto local_supervisor = [&]() -> campaign::CampaignSupervisor& {
    if (!local) {
      campaign::SupervisorOptions supervisor = options.supervisor;
      if (supervisor.telemetry == nullptr) {
        supervisor.telemetry = options.telemetry;
      }
      local.emplace(program, golden, supervisor);
    }
    return *local;
  };

  const auto flush = [&] {
    telemetry::SpanScope flush_span(options.telemetry, "checkpoint.flush",
                                    "checkpoint");
    flush_span.arg("records", static_cast<double>(result.log.size()));
    if (!result.log.save(options.path)) {
      throw std::runtime_error("run_job: cannot write journal '" +
                               options.path + "'");
    }
    ++result.flushes;
    if (telemetry::active(options.telemetry)) {
      options.telemetry->metrics().counter("checkpoint.flushes").add();
    }
  };

  const auto combined_stats = [&] {
    campaign::SupervisorStats stats;
    if (local) stats = local->stats();
    std::lock_guard<std::mutex> lock(mutex_);
    stats.worker_deaths += job_.stats.remote_worker_deaths;
    stats.worker_hangs += job_.stats.remote_worker_hangs;
    stats.experiments_requeued +=
        job_.stats.remote_requeued + job_.stats.experiments_requeued;
    stats.quarantined += job_.stats.remote_quarantined;
    return stats;
  };

  const auto report = [&](std::span<const campaign::ExperimentRecord> chunk) {
    if (!options.on_progress) return;
    campaign::CheckpointProgress progress;
    progress.executed = result.executed;
    progress.total = remaining.size();
    progress.logged = result.log.size();
    progress.chunk = chunk;
    const campaign::SupervisorStats stats_copy = combined_stats();
    progress.supervisor = &stats_copy;
    options.on_progress(progress);
  };

  bool stop_requested = false;
  try {
    for (;;) {
      if (!stop_requested && options.should_stop && options.should_stop()) {
        stop_requested = true;
      }
      // Merge every finished chunk -- even on the way out: completed work
      // is durable work.
      bool all_done = false;
      while (auto completed = pop_completed()) {
        std::vector<campaign::ExperimentRecord> fresh;
        fresh.reserve(completed->second.size());
        for (campaign::ExperimentRecord& record : completed->second) {
          // Belt and braces: chunks are disjoint and have one winner, so
          // this filter should never drop anything -- but a duplicate id
          // must not reach the journal even if that invariant breaks.
          if (done_ids.insert(record.id).second) {
            fresh.push_back(std::move(record));
          }
        }
        if (fresh.size() != completed->second.size()) {
          count("dispatch.duplicate_records",
                completed->second.size() - fresh.size());
        }
        result.executed += fresh.size();
        if (telemetry::active(options.telemetry)) {
          options.telemetry->metrics()
              .counter("checkpoint.experiments")
              .add(fresh.size());
        }
        result.log.append(fresh);
        flush();
        report(fresh);
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        all_done = job_.done == job_.chunks.size() && job_.completed.empty();
      }
      if (stop_requested || all_done) break;
      if (auto claim = claim_local_chunk()) {
        std::vector<campaign::ExperimentRecord> records =
            local_supervisor().run(claim->second);
        complete_local_chunk(claim->first, std::move(records));
        continue;  // merge + flush on the next loop pass
      }
      // Every chunk is leased remotely; wait for completions, requeues, or
      // the drain flag (the timeout bounds should_stop latency).
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_for(lock, std::chrono::milliseconds(50), [&] {
        if (!job_.active) return true;
        if (!job_.completed.empty()) return true;
        if (job_.done == job_.chunks.size()) return true;
        for (const Chunk& chunk : job_.chunks) {
          if (chunk.state == Chunk::State::kPending) return true;
        }
        return false;
      });
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    job_.active = false;
    job_.chunks.clear();
    job_.completed.clear();
    for (auto& [id, worker] : workers_) worker.leased.clear();
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    result.stopped = job_.done != job_.chunks.size();
    result.dispatch = job_.stats;
    job_.active = false;
    job_.chunks.clear();
    job_.completed.clear();
    // Outstanding remote leases die with the job; late results become
    // stale_results and never merge.
    for (auto& [id, worker] : workers_) worker.leased.clear();
  }

  result.log.dedupe();
  flush();
  report({});
  if (local) result.supervisor_stats = local->stats();
  result.supervisor_stats.worker_deaths += result.dispatch.remote_worker_deaths;
  result.supervisor_stats.worker_hangs += result.dispatch.remote_worker_hangs;
  result.supervisor_stats.experiments_requeued +=
      result.dispatch.remote_requeued + result.dispatch.experiments_requeued;
  result.supervisor_stats.quarantined += result.dispatch.remote_quarantined;
  return result;
}

}  // namespace ftb::service
