#include "service/service.h"

#include <chrono>
#include <limits>
#include <utility>

#include "boundary/predictor.h"
#include "boundary/report.h"
#include "chaos/chaos.h"
#include "fi/fpbits.h"
#include "telemetry/export.h"

namespace ftb::service {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Records one query-plane request latency under "service.<name>_ns".
class RequestTimer {
 public:
  RequestTimer(telemetry::Telemetry* telemetry, const char* name)
      : telemetry_(telemetry::active(telemetry) ? telemetry : nullptr),
        name_(name) {
    if (telemetry_ != nullptr) start_ns_ = telemetry_->now_ns();
  }
  ~RequestTimer() {
    if (telemetry_ == nullptr) return;
    telemetry_->metrics()
        .histogram(std::string("service.") + name_ + "_ns")
        .record(telemetry_->now_ns() - start_ns_);
  }

 private:
  telemetry::Telemetry* telemetry_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)), store_(options_.telemetry) {
  DispatchOptions dispatch = options_.dispatch;
  if (dispatch.telemetry == nullptr) dispatch.telemetry = options_.telemetry;
  dispatcher_ = std::make_unique<ChunkDispatcher>(std::move(dispatch));
  JobRunnerOptions job_options;
  job_options.store_dir = options_.store_dir;
  job_options.max_queue = options_.max_queue;
  job_options.campaign_cpus = options_.campaign_cpus;
  job_options.use_snapshots = options_.snapshot_campaigns;
  job_options.snapshot_interval = options_.snapshot_interval;
  job_options.dispatcher = dispatcher_.get();
  job_options.telemetry = options_.telemetry;
  JobCallbacks callbacks;
  callbacks.on_progress = [this](const CampaignJob& job,
                                 const CampaignProgress& progress) {
    // job.client == 0 marks a ledger-recovered job: its submitter died with
    // the previous process, so there is no connection to stream to.
    net::Server* server = server_.load(std::memory_order_acquire);
    if (server != nullptr && job.client != 0) {
      server->send(job.client, make_campaign_progress(progress));
    }
  };
  callbacks.on_done = [this](const CampaignJob& job, const CampaignDone& done) {
    net::Server* server = server_.load(std::memory_order_acquire);
    if (server != nullptr) {
      if (job.client != 0) server->send(job.client, make_campaign_done(done));
      server->wake();  // drain progress may now be complete
    }
  };
  callbacks.on_recompute_done = [this](const CampaignJob& job,
                                       const RecomputeDone& done) {
    net::Server* server = server_.load(std::memory_order_acquire);
    if (server != nullptr) {
      if (job.client != 0) server->send(job.client, make_recompute_done(done));
      server->wake();
    }
  };
  jobs_ = std::make_unique<JobRunner>(&store_, std::move(job_options),
                                      std::move(callbacks));
}

Service::~Service() = default;

void Service::attach(net::Server* server) {
  server_.store(server, std::memory_order_release);
  if (server != nullptr) {
    // Server::send/wake are thread-safe, so the dispatcher may call these
    // from the runner thread while leases move on the loop thread.
    dispatcher_->attach(
        [server](std::uint64_t conn, const net::Frame& frame) {
          server->send(conn, frame);
        },
        [server] { server->wake(); });
  }
}

std::size_t Service::load_store(std::vector<std::string>* diagnostics) {
  return store_.load_directory(options_.store_dir, diagnostics);
}

void Service::request_shutdown() noexcept {
  shutdown_requested_.store(true, std::memory_order_relaxed);
  net::Server* server = server_.load(std::memory_order_acquire);
  if (server != nullptr) server->wake();
}

void Service::reply(net::Server::ConnId conn, const net::Frame& frame) {
  net::Server* server = server_.load(std::memory_order_acquire);
  if (server != nullptr) server->send(conn, frame);
}

void Service::busy(net::Server::ConnId conn, const std::string& message,
                   const char* shed_counter) {
  if (telemetry::active(options_.telemetry)) {
    options_.telemetry->metrics().counter("service.busy_sent").add();
    options_.telemetry->metrics().counter(shed_counter).add();
  }
  reply(conn, make_busy(message, options_.busy_retry_ms));
}

void Service::on_frame(net::Server::ConnId conn, net::Frame frame) {
  switch (static_cast<MsgType>(frame.type)) {
    // Query plane: through the bounded admission queue, drained on the
    // tick that follows (the loop drains its queue before sleeping, so an
    // uncontended request still answers in the same iteration).
    case MsgType::kPing:
    case MsgType::kPredictFlip:
    case MsgType::kPredictSite:
    case MsgType::kPhaseReport:
    case MsgType::kListBoundaries:
    case MsgType::kStats:
      admit(conn, std::move(frame));
      return;
    case MsgType::kSubmitCampaign:
      handle_submit(conn, frame);
      return;
    case MsgType::kSubmitRecompute:
      handle_submit_recompute(conn, frame);
      return;
    // Worker plane: straight to the dispatcher, bypassing the admission
    // queue -- a full query queue must not delay heartbeats, or healthy
    // workers would look dead exactly when the service is busiest.
    case MsgType::kWorkerHello:
      handle_worker_hello(conn, frame);
      return;
    case MsgType::kWorkerHeartbeat:
      handle_worker_heartbeat(conn, frame);
      return;
    case MsgType::kWorkerChunkResult:
      handle_worker_result(conn, frame);
      return;
    case MsgType::kShutdown:
      reply(conn, make_shutdown_ok());
      shutdown_requested_.store(true, std::memory_order_relaxed);
      return;
    default:
      reply(conn, make_error("unexpected message type " +
                             std::to_string(frame.type) + " (" +
                             to_string(static_cast<MsgType>(frame.type)) +
                             ")"));
      return;
  }
}

void Service::on_disconnect(net::Server::ConnId conn) {
  // Forget the connection's in-flight count; its queued requests still
  // drain (replies to a dead connection are silently dropped), and the
  // erase here keeps a reconnecting client from inheriting a stale cap.
  inflight_.erase(conn);
  // If the connection carried a worker, its leases expire and requeue now.
  dispatcher_->handle_disconnect(conn);
}

void Service::handle_worker_hello(net::Server::ConnId conn,
                                  const net::Frame& frame) {
  std::string error;
  const auto hello = parse_worker_hello(frame, &error);
  if (!hello.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  dispatcher_->handle_hello(conn, *hello);
}

void Service::handle_worker_heartbeat(net::Server::ConnId conn,
                                      const net::Frame& frame) {
  std::string error;
  const auto beat = parse_worker_heartbeat(frame, &error);
  if (!beat.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  dispatcher_->handle_heartbeat(conn, *beat);
}

void Service::handle_worker_result(net::Server::ConnId conn,
                                   const net::Frame& frame) {
  std::string error;
  auto result = parse_worker_chunk_result(frame, &error);
  if (!result.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  dispatcher_->handle_result(conn, std::move(*result));
}

void Service::admit(net::Server::ConnId conn, net::Frame frame) {
  if (pending_.size() >= options_.admission_queue_max) {
    busy(conn,
         "admission queue is full (" + std::to_string(pending_.size()) +
             " requests waiting)",
         "service.shed_queue_full");
    return;
  }
  std::size_t& inflight = inflight_[conn];
  if (inflight >= options_.per_conn_inflight_max) {
    busy(conn,
         "connection has " + std::to_string(inflight) +
             " requests in flight (cap " +
             std::to_string(options_.per_conn_inflight_max) + ")",
         "service.shed_conn_cap");
    return;
  }
  ++inflight;
  PendingQuery entry;
  entry.conn = conn;
  entry.frame = std::move(frame);
  entry.arrival_ns = steady_now_ns();
  pending_.push_back(std::move(entry));
  if (telemetry::active(options_.telemetry)) {
    options_.telemetry->metrics().gauge("service.admission_depth").set(
        static_cast<double>(pending_.size()));
  }
}

void Service::drain_admission() {
  if (pending_.empty()) return;
  const std::uint64_t now = steady_now_ns();
  std::size_t budget = options_.admission_batch;
  while (budget-- > 0 && !pending_.empty()) {
    PendingQuery entry = std::move(pending_.front());
    pending_.pop_front();
    auto it = inflight_.find(entry.conn);
    if (it != inflight_.end() && it->second > 0) {
      if (--it->second == 0) inflight_.erase(it);
    }
    const std::uint64_t waited = now - entry.arrival_ns;
    if (entry.frame.deadline_ms > 0 &&
        waited > std::uint64_t{entry.frame.deadline_ms} * 1'000'000ull) {
      // Nobody is waiting for this answer anymore; shed it instead of
      // burning the tick on dead work.
      busy(entry.conn,
           "request waited " + std::to_string(waited / 1'000'000ull) +
               " ms, past its " + std::to_string(entry.frame.deadline_ms) +
               " ms deadline",
           "service.shed_deadline");
      continue;
    }
    if (telemetry::active(options_.telemetry)) {
      options_.telemetry->metrics().histogram("service.queue_wait_ns")
          .record(waited);
    }
    dispatch_query(entry.conn, entry.frame);
  }
  if (telemetry::active(options_.telemetry)) {
    options_.telemetry->metrics().gauge("service.admission_depth").set(
        static_cast<double>(pending_.size()));
  }
  if (!pending_.empty()) {
    // Out of batch budget: wake the loop so the next tick runs promptly
    // instead of waiting out the epoll timeout.
    net::Server* server = server_.load(std::memory_order_acquire);
    if (server != nullptr) server->wake();
  }
}

void Service::dispatch_query(net::Server::ConnId conn,
                             const net::Frame& frame) {
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::kPing:
      reply(conn, make_pong());
      return;
    case MsgType::kPredictFlip:
      handle_predict_flip(conn, frame);
      return;
    case MsgType::kPredictSite:
      handle_predict_site(conn, frame);
      return;
    case MsgType::kPhaseReport:
      handle_phase_report(conn, frame);
      return;
    case MsgType::kListBoundaries:
      handle_list(conn);
      return;
    case MsgType::kStats:
      handle_stats(conn);
      return;
    default:
      return;  // unreachable: admit() only queues the cases above
  }
}

void Service::on_decode_error(net::Server::ConnId conn,
                              const std::string& error) {
  // Best-effort: the server flushes this before closing the poisoned
  // connection, so a well-behaved client learns why it was dropped.
  reply(conn, make_error(error));
}

void Service::on_tick() {
  if (tick_hook_) tick_hook_();
  dispatcher_->on_tick();  // lease sweep, straggler detection, dispatch
  drain_admission();
  if (shutdown_requested_.load(std::memory_order_relaxed) && !draining_) {
    begin_drain();
  }
  if (draining_ && pending_.empty() && jobs_->idle()) {
    net::Server* server = server_.load(std::memory_order_acquire);
    if (server != nullptr) server->request_stop_when_flushed();
  }
}

void Service::begin_drain() {
  draining_ = true;
  net::Server* server = server_.load(std::memory_order_acquire);
  if (server != nullptr) server->request_drain();
  // Fails queued jobs and stops the running one at its next checkpoint;
  // its CampaignDone (stopped=true) frame still reaches the client.
  jobs_->request_drain();
  if (telemetry::active(options_.telemetry)) {
    options_.telemetry->instant("service.drain", "service");
  }
}

void Service::handle_predict_flip(net::Server::ConnId conn,
                                  const net::Frame& frame) {
  RequestTimer timer(options_.telemetry, "predict_flip");
  std::string error;
  const auto req = parse_predict_flip(frame, &error);
  if (!req.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  const auto entry = store_.find(req->key);
  if (entry == nullptr) {
    reply(conn, make_error("no boundary for key '" + req->key + "'"));
    return;
  }
  if (req->site >= entry->boundary.sites()) {
    reply(conn, make_error("site " + std::to_string(req->site) +
                           " is out of range; '" + req->key + "' has " +
                           std::to_string(entry->boundary.sites()) +
                           " sites"));
    return;
  }
  const double golden = entry->golden.trace[req->site];
  PredictFlipOk ok;
  ok.outcome = static_cast<std::uint32_t>(
      boundary::predict_flip(entry->boundary, req->site, golden,
                             static_cast<int>(req->bit)));
  ok.threshold = entry->boundary.threshold(req->site);
  ok.injected_error = fi::flip_is_nonfinite(golden, static_cast<int>(req->bit))
                          ? std::numeric_limits<double>::infinity()
                          : fi::bit_flip_error(golden, static_cast<int>(req->bit));
  reply(conn, make_predict_flip_ok(ok));
}

void Service::handle_predict_site(net::Server::ConnId conn,
                                  const net::Frame& frame) {
  RequestTimer timer(options_.telemetry, "predict_site");
  std::string error;
  const auto req = parse_predict_site(frame, &error);
  if (!req.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  const auto entry = store_.find(req->key);
  if (entry == nullptr) {
    reply(conn, make_error("no boundary for key '" + req->key + "'"));
    return;
  }
  if (req->site >= entry->boundary.sites()) {
    reply(conn, make_error("site " + std::to_string(req->site) +
                           " is out of range; '" + req->key + "' has " +
                           std::to_string(entry->boundary.sites()) +
                           " sites"));
    return;
  }
  const double golden = entry->golden.trace[req->site];
  const boundary::SitePrediction prediction =
      boundary::predict_site(entry->boundary, req->site, golden);
  PredictSiteOk ok;
  ok.masked = prediction.masked;
  ok.sdc = prediction.sdc;
  ok.crash = prediction.crash;
  ok.sdc_ratio = prediction.sdc_ratio();
  ok.threshold = entry->boundary.threshold(req->site);
  ok.golden_value = golden;
  reply(conn, make_predict_site_ok(ok));
}

void Service::handle_phase_report(net::Server::ConnId conn,
                                  const net::Frame& frame) {
  RequestTimer timer(options_.telemetry, "phase_report");
  std::string error;
  const auto req = parse_phase_report(frame, &error);
  if (!req.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  const auto entry = store_.find(req->key);
  if (entry == nullptr) {
    reply(conn, make_error("no boundary for key '" + req->key + "'"));
    return;
  }
  PhaseReportOk ok;
  ok.rows = boundary::phase_report(entry->phases, entry->boundary,
                                   entry->golden.trace, {},
                                   entry->coverage_profile);
  reply(conn, make_phase_report_ok(ok));
}

void Service::handle_list(net::Server::ConnId conn) {
  RequestTimer timer(options_.telemetry, "list");
  BoundaryListOk ok;
  for (const auto& entry : store_.list()) {
    BoundaryInfo info;
    info.key = entry->key.str();
    info.config_key = entry->config_key;
    info.sites = entry->boundary.sites();
    info.informed_sites = entry->boundary.informed_sites();
    ok.entries.push_back(std::move(info));
  }
  reply(conn, make_boundary_list_ok(ok));
}

void Service::publish_chaos_stats() {
  if (!chaos::enabled() || !telemetry::active(options_.telemetry)) return;
  const chaos::ChaosStats stats = chaos::stats();
  auto& metrics = options_.telemetry->metrics();
  metrics.gauge("chaos.short_reads").set(static_cast<double>(stats.short_reads));
  metrics.gauge("chaos.short_writes")
      .set(static_cast<double>(stats.short_writes));
  metrics.gauge("chaos.eintr_faults")
      .set(static_cast<double>(stats.eintr_faults));
  metrics.gauge("chaos.write_errors")
      .set(static_cast<double>(stats.write_errors));
  metrics.gauge("chaos.fsync_errors")
      .set(static_cast<double>(stats.fsync_errors));
}

void Service::handle_stats(net::Server::ConnId conn) {
  RequestTimer timer(options_.telemetry, "stats");
  publish_chaos_stats();
  StatsOk ok;
  if (options_.telemetry != nullptr) {
    ok.metrics_json =
        telemetry::metrics_to_json(options_.telemetry->metrics().snapshot());
  } else {
    ok.metrics_json = "{\"schema\":\"ftb.telemetry.metrics/1\",\"counters\":{},"
                      "\"gauges\":{},\"histograms\":{}}";
  }
  reply(conn, make_stats_ok(ok));
}

void Service::handle_submit(net::Server::ConnId conn, const net::Frame& frame) {
  RequestTimer timer(options_.telemetry, "submit");
  std::string error;
  const auto req = parse_submit_campaign(frame, &error);
  if (!req.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  std::uint64_t job_id = 0;
  std::uint32_t queue_depth = 0;
  switch (jobs_->submit(conn, *req, &job_id, &queue_depth, &error)) {
    case JobRunner::Submit::kAccepted:
      break;
    case JobRunner::Submit::kQueueFull:
      // Retryable by definition: the queue drains as jobs finish.
      busy(conn, error, "service.shed_queue_full");
      return;
    case JobRunner::Submit::kRejected:
      reply(conn, make_error(error));
      return;
  }
  CampaignAccepted accepted;
  accepted.job = job_id;
  accepted.queue_depth = queue_depth;
  reply(conn, make_campaign_accepted(accepted));
}

void Service::handle_submit_recompute(net::Server::ConnId conn,
                                      const net::Frame& frame) {
  RequestTimer timer(options_.telemetry, "submit_recompute");
  std::string error;
  const auto req = parse_submit_recompute(frame, &error);
  if (!req.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  std::uint64_t job_id = 0;
  std::uint32_t queue_depth = 0;
  switch (jobs_->submit_recompute(conn, *req, &job_id, &queue_depth, &error)) {
    case JobRunner::Submit::kAccepted:
      break;
    case JobRunner::Submit::kQueueFull:
      busy(conn, error, "service.shed_queue_full");
      return;
    case JobRunner::Submit::kRejected:
      reply(conn, make_error(error));
      return;
  }
  CampaignAccepted accepted;
  accepted.job = job_id;
  accepted.queue_depth = queue_depth;
  reply(conn, make_campaign_accepted(accepted));
}

}  // namespace ftb::service
