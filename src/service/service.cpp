#include "service/service.h"

#include <limits>
#include <utility>

#include "boundary/predictor.h"
#include "boundary/report.h"
#include "fi/fpbits.h"
#include "telemetry/export.h"

namespace ftb::service {

namespace {

/// Records one query-plane request latency under "service.<name>_ns".
class RequestTimer {
 public:
  RequestTimer(telemetry::Telemetry* telemetry, const char* name)
      : telemetry_(telemetry::active(telemetry) ? telemetry : nullptr),
        name_(name) {
    if (telemetry_ != nullptr) start_ns_ = telemetry_->now_ns();
  }
  ~RequestTimer() {
    if (telemetry_ == nullptr) return;
    telemetry_->metrics()
        .histogram(std::string("service.") + name_ + "_ns")
        .record(telemetry_->now_ns() - start_ns_);
  }

 private:
  telemetry::Telemetry* telemetry_;
  const char* name_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace

Service::Service(ServiceOptions options)
    : options_(std::move(options)), store_(options_.telemetry) {
  JobRunnerOptions job_options;
  job_options.store_dir = options_.store_dir;
  job_options.max_queue = options_.max_queue;
  job_options.telemetry = options_.telemetry;
  JobCallbacks callbacks;
  callbacks.on_progress = [this](const CampaignJob& job,
                                 const CampaignProgress& progress) {
    if (server_ != nullptr) {
      server_->send(job.client, make_campaign_progress(progress));
    }
  };
  callbacks.on_done = [this](const CampaignJob& job, const CampaignDone& done) {
    if (server_ != nullptr) {
      server_->send(job.client, make_campaign_done(done));
      server_->wake();  // drain progress may now be complete
    }
  };
  jobs_ = std::make_unique<JobRunner>(&store_, std::move(job_options),
                                      std::move(callbacks));
}

Service::~Service() = default;

std::size_t Service::load_store(std::vector<std::string>* diagnostics) {
  return store_.load_directory(options_.store_dir, diagnostics);
}

void Service::request_shutdown() noexcept {
  shutdown_requested_.store(true, std::memory_order_relaxed);
  if (server_ != nullptr) server_->wake();
}

void Service::reply(net::Server::ConnId conn, const net::Frame& frame) {
  if (server_ != nullptr) server_->send(conn, frame);
}

void Service::on_frame(net::Server::ConnId conn, net::Frame frame) {
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::kPing:
      reply(conn, make_pong());
      return;
    case MsgType::kPredictFlip:
      handle_predict_flip(conn, frame);
      return;
    case MsgType::kPredictSite:
      handle_predict_site(conn, frame);
      return;
    case MsgType::kPhaseReport:
      handle_phase_report(conn, frame);
      return;
    case MsgType::kListBoundaries:
      handle_list(conn);
      return;
    case MsgType::kStats:
      handle_stats(conn);
      return;
    case MsgType::kSubmitCampaign:
      handle_submit(conn, frame);
      return;
    case MsgType::kShutdown:
      reply(conn, make_shutdown_ok());
      shutdown_requested_.store(true, std::memory_order_relaxed);
      return;
    default:
      reply(conn, make_error("unexpected message type " +
                             std::to_string(frame.type) + " (" +
                             to_string(static_cast<MsgType>(frame.type)) +
                             ")"));
      return;
  }
}

void Service::on_decode_error(net::Server::ConnId conn,
                              const std::string& error) {
  // Best-effort: the server flushes this before closing the poisoned
  // connection, so a well-behaved client learns why it was dropped.
  reply(conn, make_error(error));
}

void Service::on_tick() {
  if (tick_hook_) tick_hook_();
  if (shutdown_requested_.load(std::memory_order_relaxed) && !draining_) {
    begin_drain();
  }
  if (draining_ && jobs_->idle()) {
    server_->request_stop_when_flushed();
  }
}

void Service::begin_drain() {
  draining_ = true;
  if (server_ != nullptr) server_->request_drain();
  // Fails queued jobs and stops the running one at its next checkpoint;
  // its CampaignDone (stopped=true) frame still reaches the client.
  jobs_->request_drain();
  if (telemetry::active(options_.telemetry)) {
    options_.telemetry->instant("service.drain", "service");
  }
}

void Service::handle_predict_flip(net::Server::ConnId conn,
                                  const net::Frame& frame) {
  RequestTimer timer(options_.telemetry, "predict_flip");
  std::string error;
  const auto req = parse_predict_flip(frame, &error);
  if (!req.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  const auto entry = store_.find(req->key);
  if (entry == nullptr) {
    reply(conn, make_error("no boundary for key '" + req->key + "'"));
    return;
  }
  if (req->site >= entry->boundary.sites()) {
    reply(conn, make_error("site " + std::to_string(req->site) +
                           " is out of range; '" + req->key + "' has " +
                           std::to_string(entry->boundary.sites()) +
                           " sites"));
    return;
  }
  const double golden = entry->golden.trace[req->site];
  PredictFlipOk ok;
  ok.outcome = static_cast<std::uint32_t>(
      boundary::predict_flip(entry->boundary, req->site, golden,
                             static_cast<int>(req->bit)));
  ok.threshold = entry->boundary.threshold(req->site);
  ok.injected_error = fi::flip_is_nonfinite(golden, static_cast<int>(req->bit))
                          ? std::numeric_limits<double>::infinity()
                          : fi::bit_flip_error(golden, static_cast<int>(req->bit));
  reply(conn, make_predict_flip_ok(ok));
}

void Service::handle_predict_site(net::Server::ConnId conn,
                                  const net::Frame& frame) {
  RequestTimer timer(options_.telemetry, "predict_site");
  std::string error;
  const auto req = parse_predict_site(frame, &error);
  if (!req.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  const auto entry = store_.find(req->key);
  if (entry == nullptr) {
    reply(conn, make_error("no boundary for key '" + req->key + "'"));
    return;
  }
  if (req->site >= entry->boundary.sites()) {
    reply(conn, make_error("site " + std::to_string(req->site) +
                           " is out of range; '" + req->key + "' has " +
                           std::to_string(entry->boundary.sites()) +
                           " sites"));
    return;
  }
  const double golden = entry->golden.trace[req->site];
  const boundary::SitePrediction prediction =
      boundary::predict_site(entry->boundary, req->site, golden);
  PredictSiteOk ok;
  ok.masked = prediction.masked;
  ok.sdc = prediction.sdc;
  ok.crash = prediction.crash;
  ok.sdc_ratio = prediction.sdc_ratio();
  ok.threshold = entry->boundary.threshold(req->site);
  ok.golden_value = golden;
  reply(conn, make_predict_site_ok(ok));
}

void Service::handle_phase_report(net::Server::ConnId conn,
                                  const net::Frame& frame) {
  RequestTimer timer(options_.telemetry, "phase_report");
  std::string error;
  const auto req = parse_phase_report(frame, &error);
  if (!req.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  const auto entry = store_.find(req->key);
  if (entry == nullptr) {
    reply(conn, make_error("no boundary for key '" + req->key + "'"));
    return;
  }
  PhaseReportOk ok;
  ok.rows = boundary::phase_report(entry->phases, entry->boundary,
                                   entry->golden.trace);
  reply(conn, make_phase_report_ok(ok));
}

void Service::handle_list(net::Server::ConnId conn) {
  RequestTimer timer(options_.telemetry, "list");
  BoundaryListOk ok;
  for (const auto& entry : store_.list()) {
    BoundaryInfo info;
    info.key = entry->key.str();
    info.config_key = entry->config_key;
    info.sites = entry->boundary.sites();
    info.informed_sites = entry->boundary.informed_sites();
    ok.entries.push_back(std::move(info));
  }
  reply(conn, make_boundary_list_ok(ok));
}

void Service::handle_stats(net::Server::ConnId conn) {
  RequestTimer timer(options_.telemetry, "stats");
  StatsOk ok;
  if (options_.telemetry != nullptr) {
    ok.metrics_json =
        telemetry::metrics_to_json(options_.telemetry->metrics().snapshot());
  } else {
    ok.metrics_json = "{\"schema\":\"ftb.telemetry.metrics/1\",\"counters\":{},"
                      "\"gauges\":{},\"histograms\":{}}";
  }
  reply(conn, make_stats_ok(ok));
}

void Service::handle_submit(net::Server::ConnId conn, const net::Frame& frame) {
  RequestTimer timer(options_.telemetry, "submit");
  std::string error;
  const auto req = parse_submit_campaign(frame, &error);
  if (!req.has_value()) {
    reply(conn, make_error(error));
    return;
  }
  static std::atomic<std::uint64_t> next_job{1};
  CampaignJob job;
  job.id = next_job.fetch_add(1, std::memory_order_relaxed);
  job.client = conn;
  job.req = *req;
  std::uint32_t queue_depth = 0;
  if (!jobs_->submit(job, &queue_depth, &error)) {
    reply(conn, make_error(error));
    return;
  }
  CampaignAccepted accepted;
  accepted.job = job.id;
  accepted.queue_depth = queue_depth;
  reply(conn, make_campaign_accepted(accepted));
}

}  // namespace ftb::service
