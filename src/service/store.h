// In-memory boundary store for the ftb_served query plane.
//
// An entry bundles a deserialized FaultToleranceBoundary with the golden
// run of the program it was built for (prediction queries need the golden
// value at each site).  Entries are immutable once built and handed out as
// shared_ptr snapshots: a query thread keeps its snapshot alive for the
// duration of one request while loads and campaign publications swap the
// map under a brief mutex, so queries never block on a directory scan or a
// finishing campaign.
//
// Keys are "<kernel>@<preset>@<seed>" and double as file stems: the store
// directory holds "<key>.boundary" artifacts (boundary/serialize framing)
// and the campaign plane writes resumable journals next to them as
// "<key>.clog".
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "boundary/boundary.h"
#include "fi/executor.h"
#include "fi/phase_map.h"
#include "telemetry/events.h"

namespace ftb::service {

struct StoreKey {
  std::string kernel;
  std::string preset;
  std::uint64_t seed = 1;

  std::string str() const;
};

/// Parses "<kernel>@<preset>@<seed>"; nullopt (with diagnostic) on
/// malformed input.
std::optional<StoreKey> parse_store_key(const std::string& text,
                                        std::string* error = nullptr);

struct StoreEntry {
  StoreKey key;
  std::string config_key;
  boundary::FaultToleranceBoundary boundary;
  fi::GoldenRun golden;
  fi::PhaseMap phases;
  /// Per-site detector coverage (detected / (detected + SDC)), present only
  /// for entries published by a detector-armed campaign in this process;
  /// boundary artifacts on disk do not persist it.  Empty = unknown, and
  /// the phase report omits its coverage column.
  std::vector<double> coverage_profile;
};

class BoundaryStore {
 public:
  explicit BoundaryStore(telemetry::Telemetry* telemetry = nullptr)
      : telemetry_(telemetry) {}

  /// Loads every "*.boundary" file in `dir` (non-recursive).  Corrupt
  /// artifacts, unparsable file stems, unknown kernels, and config-key
  /// mismatches are rejected with one diagnostic line each appended to
  /// `diagnostics`; good entries replace same-key entries already present.
  /// Returns the number of entries loaded.  A missing directory is not an
  /// error (zero entries, one diagnostic).
  std::size_t load_directory(const std::string& dir,
                             std::vector<std::string>* diagnostics = nullptr);

  /// Builds an entry for `key` from a freshly inferred boundary (the
  /// campaign plane calls this when a job finishes) and publishes it.
  /// `coverage_profile`, when non-empty, must have one value per site and
  /// is attached to the entry for phase-report queries.  False (with
  /// diagnostic) when the kernel/preset cannot be constructed.
  bool publish(const StoreKey& key,
               const boundary::FaultToleranceBoundary& boundary,
               std::string* error = nullptr,
               std::vector<double> coverage_profile = {});

  /// Snapshot lookup; nullptr when absent.
  std::shared_ptr<const StoreEntry> find(const std::string& key) const;

  /// Snapshot of all entries, key-sorted.
  std::vector<std::shared_ptr<const StoreEntry>> list() const;

  std::size_t size() const;

 private:
  void insert(std::shared_ptr<const StoreEntry> entry);

  telemetry::Telemetry* telemetry_ = nullptr;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const StoreEntry>> entries_;
};

}  // namespace ftb::service
