#include "service/jobs.h"

#include <algorithm>
#include <exception>

#ifdef __linux__
#include <sched.h>
#endif

#include "boundary/serialize.h"
#include "campaign/checkpoint.h"
#include "campaign/log.h"
#include "campaign/sampler.h"
#include "kernels/registry.h"
#include "sections/compose.h"
#include "sections/driver.h"
#include "sections/section.h"
#include "service/dispatch.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftb::service {

namespace {

/// Pins the calling thread to `cpus`.  Sandbox workers are forked from this
/// thread and inherit the mask, so one call covers the whole campaign
/// plane.  Invalid CPU numbers make the syscall fail; campaign work then
/// runs unpinned rather than not at all.
bool pin_to_cpus(const std::vector<int>& cpus) {
#ifdef __linux__
  if (cpus.empty()) return true;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  return CPU_COUNT(&set) > 0 && sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  return cpus.empty();
#endif
}

}  // namespace

JobRunner::JobRunner(BoundaryStore* store, JobRunnerOptions options,
                     JobCallbacks callbacks)
    : store_(store),
      options_(std::move(options)),
      callbacks_(std::move(callbacks)) {
  // Replay the write-ahead ledger BEFORE the runner thread exists: every
  // job acked before the last crash that never reached done/failed comes
  // back as if it had just been submitted, and resumes from its journal.
  if (!ledger_.open(options_.store_dir + "/jobs.ledger", &replay_,
                    &ledger_error_)) {
    // The daemon still serves queries; submissions are rejected until the
    // store directory is writable again (we cannot ack what we cannot log).
  }
  next_job_id_ = replay_.next_job_id;
  for (const LedgerJob& pending : replay_.pending) {
    CampaignJob job;
    job.id = pending.id;
    job.client = 0;  // the submitter's connection died with the old process
    job.kind = pending.kind;
    job.req = pending.req;
    job.recompute = pending.recompute;
    queue_.push_back(std::move(job));
  }
  if (telemetry::active(options_.telemetry)) {
    options_.telemetry->metrics().counter("jobs.replayed")
        .add(replay_.pending.size());
    options_.telemetry->metrics().counter("ledger.records_replayed")
        .add(replay_.records);
    options_.telemetry->metrics().counter("ledger.torn_records")
        .add(replay_.torn_records);
  }
  thread_ = std::thread([this] { run_loop(); });
}

JobRunner::~JobRunner() {
  request_drain();
  join();
}

JobRunner::Submit JobRunner::enqueue(CampaignJob job, std::uint64_t* job_id,
                                     std::uint32_t* queue_depth,
                                     std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_ || stop_) {
    if (error != nullptr) *error = "server is draining; try again later";
    return Submit::kRejected;
  }
  if (!ledger_.valid()) {
    if (error != nullptr) {
      *error = "job ledger is unavailable (" + ledger_error_ +
               "); refusing to ack a submission the server could not make "
               "durable";
    }
    return Submit::kRejected;
  }
  if (queue_.size() >= options_.max_queue) {
    if (error != nullptr) {
      *error = "campaign queue is full (" + std::to_string(queue_.size()) +
               " jobs waiting)";
    }
    return Submit::kQueueFull;
  }
  job.id = next_job_id_++;
  {
    // fsync-before-ack: the submit record must be on disk before the
    // CampaignAccepted frame is even constructed.
    std::lock_guard<std::mutex> ledger_lock(ledger_mutex_);
    std::string ledger_error;
    const bool logged =
        job.kind == JobKind::kRecompute
            ? ledger_.append_submitted_recompute(job.id, job.recompute,
                                                 &ledger_error)
            : ledger_.append_submitted(job.id, job.req, &ledger_error);
    if (!logged) {
      if (telemetry::active(options_.telemetry)) {
        options_.telemetry->metrics().counter("ledger.append_failures").add();
      }
      if (error != nullptr) {
        *error = "cannot write-ahead log the submission (" + ledger_error +
                 "); job not accepted";
      }
      return Submit::kRejected;
    }
  }
  if (job_id != nullptr) *job_id = job.id;
  queue_.push_back(std::move(job));
  if (queue_depth != nullptr) {
    *queue_depth =
        static_cast<std::uint32_t>(queue_.size() - 1 + (running_ ? 1 : 0));
  }
  if (telemetry::active(options_.telemetry)) {
    options_.telemetry->metrics().counter("jobs.submitted").add();
    options_.telemetry->metrics().gauge("jobs.queue_depth").set(
        static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  return Submit::kAccepted;
}

JobRunner::Submit JobRunner::submit(std::uint64_t client,
                                    const SubmitCampaignReq& req,
                                    std::uint64_t* job_id,
                                    std::uint32_t* queue_depth,
                                    std::string* error) {
  CampaignJob job;
  job.client = client;
  job.kind = JobKind::kCampaign;
  job.req = req;
  return enqueue(std::move(job), job_id, queue_depth, error);
}

JobRunner::Submit JobRunner::submit_recompute(std::uint64_t client,
                                              const SubmitRecomputeReq& req,
                                              std::uint64_t* job_id,
                                              std::uint32_t* queue_depth,
                                              std::string* error) {
  CampaignJob job;
  job.client = client;
  job.kind = JobKind::kRecompute;
  job.recompute = req;
  return enqueue(std::move(job), job_id, queue_depth, error);
}

void JobRunner::ledger_transition(std::uint64_t job, JobState state,
                                  const std::string& note) {
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  if (!ledger_.valid()) return;
  std::string error;
  if (!ledger_.append_state(job, state, note, &error)) {
    // A failed transition record degrades durability, not correctness: on
    // restart the job replays as pending and runs again (idempotent -- the
    // journal dedupes), so count it and carry on.
    if (telemetry::active(options_.telemetry)) {
      options_.telemetry->metrics().counter("ledger.append_failures").add();
    }
  }
}

void JobRunner::request_drain() {
  std::deque<CampaignJob> abandoned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) return;
    draining_ = true;
    stop_ = true;
    abandoned.swap(queue_);
    cv_.notify_all();
  }
  // Queued-but-never-started jobs are failed here, on the caller's thread;
  // the running job (if any) finishes its chunk, flushes, and reports a
  // stopped CampaignDone from the runner thread.  Neither gets a terminal
  // ledger record: they stay pending and replay when the daemon restarts.
  for (const CampaignJob& job : abandoned) {
    const std::string note =
        "server drained before the job started; it remains "
        "journalled and will resume when the daemon restarts";
    if (job.kind == JobKind::kRecompute) {
      RecomputeDone done;
      done.job = job.id;
      done.ok = false;
      done.stopped = true;
      done.error = note;
      if (callbacks_.on_recompute_done) callbacks_.on_recompute_done(job, done);
    } else {
      CampaignDone done;
      done.job = job.id;
      done.ok = false;
      done.stopped = true;
      done.error = note;
      if (callbacks_.on_done) callbacks_.on_done(job, done);
    }
  }
}

void JobRunner::join() {
  if (thread_.joinable()) thread_.join();
}

bool JobRunner::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty() && !running_;
}

std::size_t JobRunner::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + (running_ ? 1 : 0);
}

void JobRunner::run_loop() {
  if (!options_.campaign_cpus.empty()) {
    const bool pinned = pin_to_cpus(options_.campaign_cpus);
    if (telemetry::active(options_.telemetry)) {
      options_.telemetry->metrics()
          .counter(pinned ? "jobs.affinity_pinned" : "jobs.affinity_failed")
          .add();
    }
  }
  for (;;) {
    CampaignJob job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      running_ = true;
      if (telemetry::active(options_.telemetry)) {
        options_.telemetry->metrics().gauge("jobs.queue_depth").set(
            static_cast<double>(queue_.size()));
      }
    }
    execute(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      running_ = false;
    }
  }
}

void JobRunner::execute(const CampaignJob& job) {
  if (job.kind == JobKind::kRecompute) {
    execute_recompute(job);
  } else {
    execute_campaign(job);
  }
}

void JobRunner::execute_campaign(const CampaignJob& job) {
  telemetry::SpanScope span(options_.telemetry, "jobs.run", "service");
  span.arg("job", static_cast<double>(job.id));
  ledger_transition(job.id, JobState::kRunning, {});
  const StoreKey key{job.req.kernel, job.req.preset, job.req.seed};
  CampaignDone done;
  done.job = job.id;
  try {
    const fi::ProgramPtr program = kernels::make_program(
        job.req.kernel, kernels::preset_from_string(job.req.preset));
    const fi::GoldenRun golden = fi::run_golden(*program);

    // Same id set as `ftb_analyze campaign --resume --seed N --batch K`:
    // the journal this job leaves behind must be finishable by the CLI.
    util::Rng rng(job.req.seed);
    const std::vector<campaign::ExperimentId> ids =
        campaign::sample_uniform(rng, golden.sample_space_size(), job.req.batch);

    campaign::CheckpointOptions options;
    options.telemetry = options_.telemetry;
    options.path = options_.store_dir + "/" + key.str() + ".clog";
    options.flush_every = std::max<std::uint32_t>(1, job.req.flush_every);
    options.use_supervisor = true;
    options.supervisor.pool.workers =
        static_cast<int>(std::clamp<std::uint32_t>(job.req.workers, 1, 16));
    // timeout 0 from a client request must not disable hang detection on
    // the daemon: substitute the campaign fallback deadline instead.
    options.supervisor.pool.heartbeat_timeout_ms =
        job.req.timeout_ms != 0 ? job.req.timeout_ms
                                : campaign::kFallbackDeadlineMs;
    options.supervisor.pool.use_snapshots = options_.use_snapshots;
    options.supervisor.pool.snapshot.interval = options_.snapshot_interval;
    options.supervisor.pool.snapshot.timeout_ms =
        options.supervisor.pool.heartbeat_timeout_ms;
    options.supervisor.quarantine_after =
        static_cast<int>(job.req.quarantine_after);
    options.supervisor.telemetry = options_.telemetry;
    // Never run injected experiments on the daemon's own thread: a hazard
    // flip that escapes isolation could hang or kill the whole service.  If
    // the pool degrades to nothing, fail this one job instead.
    options.supervisor.allow_in_process_fallback = false;

    campaign::OutcomeCounts tally;
    campaign::SupervisorStats last_stats;
    options.on_progress = [&](const campaign::CheckpointProgress& p) {
      const campaign::OutcomeCounts chunk = campaign::count_outcomes(p.chunk);
      tally.masked += chunk.masked;
      tally.sdc += chunk.sdc;
      tally.crash += chunk.crash;
      tally.hang += chunk.hang;
      tally.detected += chunk.detected;
      if (p.supervisor != nullptr) last_stats = *p.supervisor;
      if (p.chunk.empty()) return;  // final dedupe flush; CampaignDone covers it
      CampaignProgress progress;
      progress.job = job.id;
      progress.done = p.executed;
      progress.total = p.total;
      progress.logged = p.logged;
      progress.masked = tally.masked;
      progress.sdc = tally.sdc;
      progress.crash = tally.crash;
      progress.hang = tally.hang;
      progress.detected = tally.detected;
      progress.worker_deaths = last_stats.worker_deaths;
      progress.worker_hangs = last_stats.worker_hangs;
      progress.requeued = last_stats.experiments_requeued;
      progress.quarantined = last_stats.quarantined;
      if (callbacks_.on_progress) callbacks_.on_progress(job, progress);
    };
    options.should_stop = [this] {
      std::lock_guard<std::mutex> lock(mutex_);
      return stop_;
    };

    campaign::CheckpointRunResult run;
    const bool distributed = options_.dispatcher != nullptr &&
                             options_.dispatcher->live_workers() > 0;
    if (distributed) {
      // At least one remote worker is live: fan chunks out through the
      // dispatcher (the runner thread co-executes, so losing every worker
      // mid-job still finishes it).  Chunk outcomes are deterministic and
      // the journal dedupe sorts by id, so this path and the local one
      // below leave byte-identical journals and boundaries.
      DistributedJobOptions dist;
      dist.path = options.path;
      dist.flush_every = options.flush_every;
      dist.kernel = job.req.kernel;
      dist.preset = job.req.preset;
      dist.pool_workers = std::clamp<std::uint32_t>(job.req.workers, 1, 16);
      dist.timeout_ms = job.req.timeout_ms != 0 ? job.req.timeout_ms
                                                : campaign::kFallbackDeadlineMs;
      dist.quarantine_after = job.req.quarantine_after;
      dist.supervisor = options.supervisor;
      dist.telemetry = options_.telemetry;
      dist.on_progress = options.on_progress;
      dist.should_stop = options.should_stop;
      DistributedRunResult dres =
          options_.dispatcher->run_job(*program, golden, ids, dist);
      run.log = std::move(dres.log);
      run.resumed = dres.resumed;
      run.skipped = dres.skipped;
      run.executed = dres.executed;
      run.flushes = dres.flushes;
      run.stopped = dres.stopped;
      run.supervisor_stats = dres.supervisor_stats;
      if (telemetry::active(options_.telemetry)) {
        options_.telemetry->metrics().counter("jobs.distributed").add();
      }
    } else {
      run = campaign::run_campaign_checkpointed(*program, golden, ids, options);
    }
    done.executed = run.executed;
    done.skipped = run.skipped;
    done.flushes = run.flushes;
    const campaign::OutcomeCounts counts =
        campaign::count_outcomes(run.log.records());
    done.masked = counts.masked;
    done.sdc = counts.sdc;
    done.crash = counts.crash;
    done.hang = counts.hang;
    done.detected = counts.detected;
    done.worker_deaths = run.supervisor_stats.worker_deaths;
    done.worker_hangs = run.supervisor_stats.worker_hangs;
    done.quarantined = run.supervisor_stats.quarantined;

    if (run.stopped) {
      done.stopped = true;
      done.error = "server drained; journal '" + options.path +
                   "' holds " + std::to_string(run.log.size()) +
                   " experiments and is resumable";
    } else {
      const boundary::FaultToleranceBoundary built = campaign::boundary_from_log(
          *program, golden, run.log, {true, 32}, util::default_pool());
      const std::string artifact =
          options_.store_dir + "/" + key.str() + ".boundary";
      if (!boundary::save_to_file(built, program->config_key(), artifact)) {
        throw std::runtime_error("cannot write boundary artifact '" +
                                 artifact + "'");
      }
      // Per-site detector coverage from the journal, so phase-report
      // queries against this entry can show which phases the detector
      // protects.  Only detector-armed campaigns produce one.
      std::vector<double> coverage;
      if (counts.detected > 0) {
        std::vector<std::uint64_t> caught(golden.trace.size(), 0);
        std::vector<std::uint64_t> wrong(golden.trace.size(), 0);
        for (const campaign::ExperimentRecord& record : run.log.records()) {
          if (!campaign::is_classic(record.id)) continue;
          const fi::Outcome outcome = record.result.outcome;
          if (outcome != fi::Outcome::kSdc && outcome != fi::Outcome::kDetected)
            continue;
          const std::uint64_t site = campaign::site_of(record.id);
          if (site >= wrong.size()) continue;
          ++wrong[site];
          if (outcome == fi::Outcome::kDetected) ++caught[site];
        }
        coverage.assign(golden.trace.size(), 0.0);
        for (std::size_t i = 0; i < coverage.size(); ++i) {
          if (wrong[i] > 0) {
            coverage[i] = static_cast<double>(caught[i]) /
                          static_cast<double>(wrong[i]);
          }
        }
      }
      std::string publish_error;
      if (!store_->publish(key, built, &publish_error, std::move(coverage))) {
        throw std::runtime_error("cannot publish boundary: " + publish_error);
      }
      done.ok = true;
      done.store_key = key.str();
    }
  } catch (const std::exception& e) {
    done.ok = false;
    done.error = e.what();
  }
  // Terminal states are recorded; a stopped (drained) job is NOT terminal
  // -- it stays pending in the ledger so the next startup resumes it.
  if (done.ok) {
    ledger_transition(job.id, JobState::kDone, done.store_key);
  } else if (!done.stopped) {
    ledger_transition(job.id, JobState::kFailed, done.error);
  }
  if (telemetry::active(options_.telemetry)) {
    const char* counter = done.ok ? "jobs.completed"
                         : done.stopped ? "jobs.stopped"
                                        : "jobs.failed";
    options_.telemetry->metrics().counter(counter).add();
    if (done.detected > 0) {
      options_.telemetry->metrics()
          .counter("jobs.detected")
          .add(done.detected);
    }
  }
  if (callbacks_.on_done) callbacks_.on_done(job, done);
}

void JobRunner::execute_recompute(const CampaignJob& job) {
  telemetry::SpanScope span(options_.telemetry, "jobs.recompute", "service");
  span.arg("job", static_cast<double>(job.id));
  ledger_transition(job.id, JobState::kRunning, {});
  const SubmitRecomputeReq& req = job.recompute;
  const StoreKey key{req.kernel, req.preset, req.seed};
  RecomputeDone done;
  done.job = job.id;
  try {
    const fi::ProgramPtr program = kernels::make_program(
        req.kernel, kernels::preset_from_string(req.preset));
    const fi::GoldenRun golden = fi::run_golden(*program);

    sections::SectionCampaignOptions sopts;
    sopts.store_dir = options_.store_dir;
    sopts.stem = key.str();
    sopts.kernel = req.kernel;
    sopts.preset = req.preset;
    sopts.carve.seed = req.seed;
    sopts.carve.batch_per_section = req.section_batch;
    sopts.carve.batch_overrides = req.section_batches;
    sopts.flush_every = std::max<std::uint32_t>(1, req.flush_every);
    sopts.force = req.force;
    sopts.telemetry = options_.telemetry;
    // Same isolation posture as a campaign job: supervisor always on, no
    // in-process fallback (an escaped flip must not take the daemon down),
    // timeout 0 substituted with the campaign fallback deadline.
    sopts.use_supervisor = true;
    sopts.supervisor.pool.workers =
        static_cast<int>(std::clamp<std::uint32_t>(req.workers, 1, 16));
    sopts.supervisor.pool.heartbeat_timeout_ms =
        req.timeout_ms != 0 ? req.timeout_ms : campaign::kFallbackDeadlineMs;
    sopts.supervisor.pool.use_snapshots = options_.use_snapshots;
    sopts.supervisor.pool.snapshot.interval = options_.snapshot_interval;
    sopts.supervisor.pool.snapshot.timeout_ms =
        sopts.supervisor.pool.heartbeat_timeout_ms;
    sopts.supervisor.quarantine_after =
        static_cast<int>(req.quarantine_after);
    sopts.supervisor.telemetry = options_.telemetry;
    sopts.supervisor.allow_in_process_fallback = false;
    sopts.should_stop = [this] {
      std::lock_guard<std::mutex> lock(mutex_);
      return stop_;
    };

    campaign::OutcomeCounts tally;
    const auto progress_sink = [&](const campaign::CheckpointProgress& p) {
      const campaign::OutcomeCounts chunk = campaign::count_outcomes(p.chunk);
      tally.masked += chunk.masked;
      tally.sdc += chunk.sdc;
      tally.crash += chunk.crash;
      tally.hang += chunk.hang;
      tally.detected += chunk.detected;
      if (p.chunk.empty()) return;  // final dedupe flush
      CampaignProgress progress;
      progress.job = job.id;
      progress.done = p.executed;   // within the running section
      progress.total = p.total;
      progress.logged = p.logged;
      progress.masked = tally.masked;
      progress.sdc = tally.sdc;
      progress.crash = tally.crash;
      progress.hang = tally.hang;
      progress.detected = tally.detected;
      if (p.supervisor != nullptr) {
        progress.worker_deaths = p.supervisor->worker_deaths;
        progress.worker_hangs = p.supervisor->worker_hangs;
        progress.requeued = p.supervisor->experiments_requeued;
        progress.quarantined = p.supervisor->quarantined;
      }
      if (callbacks_.on_progress) callbacks_.on_progress(job, progress);
    };
    sopts.on_progress = [&](const std::string&,
                            const campaign::CheckpointProgress& p) {
      progress_sink(p);
    };

    // With live remote workers, each dirty section fans out through the
    // chunk dispatcher; the journal it leaves is byte-identical to the
    // local path's, so resume and splice semantics are unchanged.
    if (options_.dispatcher != nullptr &&
        options_.dispatcher->live_workers() > 0) {
      sopts.section_runner =
          [&](const sections::SectionSpec&,
              std::span<const campaign::ExperimentId> ids,
              const std::string& journal) {
            DistributedJobOptions dist;
            dist.path = journal;
            dist.flush_every = sopts.flush_every;
            dist.kernel = req.kernel;
            dist.preset = req.preset;
            dist.pool_workers = std::clamp<std::uint32_t>(req.workers, 1, 16);
            dist.timeout_ms = sopts.supervisor.pool.heartbeat_timeout_ms;
            dist.quarantine_after = req.quarantine_after;
            dist.supervisor = sopts.supervisor;
            dist.telemetry = options_.telemetry;
            dist.on_progress = progress_sink;
            dist.should_stop = sopts.should_stop;
            DistributedRunResult dres =
                options_.dispatcher->run_job(*program, golden, ids, dist);
            if (telemetry::active(options_.telemetry)) {
              options_.telemetry->metrics()
                  .counter("jobs.distributed_sections")
                  .add();
            }
            sections::SectionRunOutcome out;
            out.log = std::move(dres.log);
            out.executed = dres.executed;
            out.stopped = dres.stopped;
            return out;
          };
    }

    // Previous composed artifact seeds the fingerprint diff.  Missing ==
    // full compose; unusable == recompute everything (counted) rather than
    // failing the job, since a fresh compose overwrites it anyway.
    const std::string compose_path =
        options_.store_dir + "/" + key.str() + ".compose";
    std::optional<sections::ComposedArtifact> previous;
    {
      std::string diag;
      previous = sections::load_composed(compose_path, program->config_key(),
                                         &diag);
      if (!previous && diag.find("cannot open") == std::string::npos &&
          telemetry::active(options_.telemetry)) {
        options_.telemetry->metrics()
            .counter("jobs.compose_previous_unusable")
            .add();
      }
    }

    const sections::SectionCampaignResult run = sections::run_section_campaigns(
        *program, golden, previous ? &*previous : nullptr, sopts);
    done.executed = run.executed;
    done.dirty = run.dirty;
    done.reused = run.reused;
    if (run.stopped) {
      done.stopped = true;
      done.error = "server drained; per-section journals under '" +
                   options_.store_dir + "' hold the finished chunks and are "
                   "resumable";
    } else {
      done.sections = run.artifact.sections.size();
      if (!sections::save_composed(run.artifact, compose_path)) {
        throw std::runtime_error("cannot write composed artifact '" +
                                 compose_path + "'");
      }
      const boundary::FaultToleranceBoundary built = run.artifact.compose();
      const std::string artifact =
          options_.store_dir + "/" + key.str() + ".boundary";
      if (!boundary::save_to_file(built, program->config_key(), artifact)) {
        throw std::runtime_error("cannot write boundary artifact '" +
                                 artifact + "'");
      }
      std::string publish_error;
      if (!store_->publish(key, built, &publish_error)) {
        throw std::runtime_error("cannot publish boundary: " + publish_error);
      }
      done.ok = true;
      done.store_key = key.str();
    }
  } catch (const std::exception& e) {
    done.ok = false;
    done.error = e.what();
  }
  // Same terminal-state discipline as campaigns: a drained recompute is NOT
  // terminal -- it stays pending and resumes from its section journals.
  if (done.ok) {
    ledger_transition(job.id, JobState::kDone, done.store_key);
  } else if (!done.stopped) {
    ledger_transition(job.id, JobState::kFailed, done.error);
  }
  if (telemetry::active(options_.telemetry)) {
    const char* counter = done.ok ? "jobs.recompute_completed"
                         : done.stopped ? "jobs.recompute_stopped"
                                        : "jobs.recompute_failed";
    options_.telemetry->metrics().counter(counter).add();
  }
  if (callbacks_.on_recompute_done) callbacks_.on_recompute_done(job, done);
}

}  // namespace ftb::service
