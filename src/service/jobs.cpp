#include "service/jobs.h"

#include <algorithm>
#include <exception>

#ifdef __linux__
#include <sched.h>
#endif

#include "boundary/serialize.h"
#include "campaign/checkpoint.h"
#include "campaign/log.h"
#include "campaign/sampler.h"
#include "kernels/registry.h"
#include "service/dispatch.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftb::service {

namespace {

/// Pins the calling thread to `cpus`.  Sandbox workers are forked from this
/// thread and inherit the mask, so one call covers the whole campaign
/// plane.  Invalid CPU numbers make the syscall fail; campaign work then
/// runs unpinned rather than not at all.
bool pin_to_cpus(const std::vector<int>& cpus) {
#ifdef __linux__
  if (cpus.empty()) return true;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  return CPU_COUNT(&set) > 0 && sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  return cpus.empty();
#endif
}

}  // namespace

JobRunner::JobRunner(BoundaryStore* store, JobRunnerOptions options,
                     JobCallbacks callbacks)
    : store_(store),
      options_(std::move(options)),
      callbacks_(std::move(callbacks)) {
  // Replay the write-ahead ledger BEFORE the runner thread exists: every
  // job acked before the last crash that never reached done/failed comes
  // back as if it had just been submitted, and resumes from its journal.
  if (!ledger_.open(options_.store_dir + "/jobs.ledger", &replay_,
                    &ledger_error_)) {
    // The daemon still serves queries; submissions are rejected until the
    // store directory is writable again (we cannot ack what we cannot log).
  }
  next_job_id_ = replay_.next_job_id;
  for (const LedgerJob& pending : replay_.pending) {
    CampaignJob job;
    job.id = pending.id;
    job.client = 0;  // the submitter's connection died with the old process
    job.req = pending.req;
    queue_.push_back(std::move(job));
  }
  if (telemetry::active(options_.telemetry)) {
    options_.telemetry->metrics().counter("jobs.replayed")
        .add(replay_.pending.size());
    options_.telemetry->metrics().counter("ledger.records_replayed")
        .add(replay_.records);
    options_.telemetry->metrics().counter("ledger.torn_records")
        .add(replay_.torn_records);
  }
  thread_ = std::thread([this] { run_loop(); });
}

JobRunner::~JobRunner() {
  request_drain();
  join();
}

JobRunner::Submit JobRunner::submit(std::uint64_t client,
                                    const SubmitCampaignReq& req,
                                    std::uint64_t* job_id,
                                    std::uint32_t* queue_depth,
                                    std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_ || stop_) {
    if (error != nullptr) *error = "server is draining; try again later";
    return Submit::kRejected;
  }
  if (!ledger_.valid()) {
    if (error != nullptr) {
      *error = "job ledger is unavailable (" + ledger_error_ +
               "); refusing to ack a submission the server could not make "
               "durable";
    }
    return Submit::kRejected;
  }
  if (queue_.size() >= options_.max_queue) {
    if (error != nullptr) {
      *error = "campaign queue is full (" + std::to_string(queue_.size()) +
               " jobs waiting)";
    }
    return Submit::kQueueFull;
  }
  CampaignJob job;
  job.id = next_job_id_++;
  job.client = client;
  job.req = req;
  {
    // fsync-before-ack: the submit record must be on disk before the
    // CampaignAccepted frame is even constructed.
    std::lock_guard<std::mutex> ledger_lock(ledger_mutex_);
    std::string ledger_error;
    if (!ledger_.append_submitted(job.id, job.req, &ledger_error)) {
      if (telemetry::active(options_.telemetry)) {
        options_.telemetry->metrics().counter("ledger.append_failures").add();
      }
      if (error != nullptr) {
        *error = "cannot write-ahead log the submission (" + ledger_error +
                 "); job not accepted";
      }
      return Submit::kRejected;
    }
  }
  if (job_id != nullptr) *job_id = job.id;
  queue_.push_back(std::move(job));
  if (queue_depth != nullptr) {
    *queue_depth =
        static_cast<std::uint32_t>(queue_.size() - 1 + (running_ ? 1 : 0));
  }
  if (telemetry::active(options_.telemetry)) {
    options_.telemetry->metrics().counter("jobs.submitted").add();
    options_.telemetry->metrics().gauge("jobs.queue_depth").set(
        static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  return Submit::kAccepted;
}

void JobRunner::ledger_transition(std::uint64_t job, JobState state,
                                  const std::string& note) {
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  if (!ledger_.valid()) return;
  std::string error;
  if (!ledger_.append_state(job, state, note, &error)) {
    // A failed transition record degrades durability, not correctness: on
    // restart the job replays as pending and runs again (idempotent -- the
    // journal dedupes), so count it and carry on.
    if (telemetry::active(options_.telemetry)) {
      options_.telemetry->metrics().counter("ledger.append_failures").add();
    }
  }
}

void JobRunner::request_drain() {
  std::deque<CampaignJob> abandoned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) return;
    draining_ = true;
    stop_ = true;
    abandoned.swap(queue_);
    cv_.notify_all();
  }
  // Queued-but-never-started jobs are failed here, on the caller's thread;
  // the running job (if any) finishes its chunk, flushes, and reports a
  // stopped CampaignDone from the runner thread.  Neither gets a terminal
  // ledger record: they stay pending and replay when the daemon restarts.
  for (const CampaignJob& job : abandoned) {
    CampaignDone done;
    done.job = job.id;
    done.ok = false;
    done.stopped = true;
    done.error = "server drained before the job started; it remains "
                 "journalled and will resume when the daemon restarts";
    if (callbacks_.on_done) callbacks_.on_done(job, done);
  }
}

void JobRunner::join() {
  if (thread_.joinable()) thread_.join();
}

bool JobRunner::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty() && !running_;
}

std::size_t JobRunner::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + (running_ ? 1 : 0);
}

void JobRunner::run_loop() {
  if (!options_.campaign_cpus.empty()) {
    const bool pinned = pin_to_cpus(options_.campaign_cpus);
    if (telemetry::active(options_.telemetry)) {
      options_.telemetry->metrics()
          .counter(pinned ? "jobs.affinity_pinned" : "jobs.affinity_failed")
          .add();
    }
  }
  for (;;) {
    CampaignJob job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      running_ = true;
      if (telemetry::active(options_.telemetry)) {
        options_.telemetry->metrics().gauge("jobs.queue_depth").set(
            static_cast<double>(queue_.size()));
      }
    }
    execute(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      running_ = false;
    }
  }
}

void JobRunner::execute(const CampaignJob& job) {
  telemetry::SpanScope span(options_.telemetry, "jobs.run", "service");
  span.arg("job", static_cast<double>(job.id));
  ledger_transition(job.id, JobState::kRunning, {});
  const StoreKey key{job.req.kernel, job.req.preset, job.req.seed};
  CampaignDone done;
  done.job = job.id;
  try {
    const fi::ProgramPtr program = kernels::make_program(
        job.req.kernel, kernels::preset_from_string(job.req.preset));
    const fi::GoldenRun golden = fi::run_golden(*program);

    // Same id set as `ftb_analyze campaign --resume --seed N --batch K`:
    // the journal this job leaves behind must be finishable by the CLI.
    util::Rng rng(job.req.seed);
    const std::vector<campaign::ExperimentId> ids =
        campaign::sample_uniform(rng, golden.sample_space_size(), job.req.batch);

    campaign::CheckpointOptions options;
    options.telemetry = options_.telemetry;
    options.path = options_.store_dir + "/" + key.str() + ".clog";
    options.flush_every = std::max<std::uint32_t>(1, job.req.flush_every);
    options.use_supervisor = true;
    options.supervisor.pool.workers =
        static_cast<int>(std::clamp<std::uint32_t>(job.req.workers, 1, 16));
    // timeout 0 from a client request must not disable hang detection on
    // the daemon: substitute the campaign fallback deadline instead.
    options.supervisor.pool.heartbeat_timeout_ms =
        job.req.timeout_ms != 0 ? job.req.timeout_ms
                                : campaign::kFallbackDeadlineMs;
    options.supervisor.pool.use_snapshots = options_.use_snapshots;
    options.supervisor.pool.snapshot.interval = options_.snapshot_interval;
    options.supervisor.pool.snapshot.timeout_ms =
        options.supervisor.pool.heartbeat_timeout_ms;
    options.supervisor.quarantine_after =
        static_cast<int>(job.req.quarantine_after);
    options.supervisor.telemetry = options_.telemetry;
    // Never run injected experiments on the daemon's own thread: a hazard
    // flip that escapes isolation could hang or kill the whole service.  If
    // the pool degrades to nothing, fail this one job instead.
    options.supervisor.allow_in_process_fallback = false;

    campaign::OutcomeCounts tally;
    campaign::SupervisorStats last_stats;
    options.on_progress = [&](const campaign::CheckpointProgress& p) {
      const campaign::OutcomeCounts chunk = campaign::count_outcomes(p.chunk);
      tally.masked += chunk.masked;
      tally.sdc += chunk.sdc;
      tally.crash += chunk.crash;
      tally.hang += chunk.hang;
      tally.detected += chunk.detected;
      if (p.supervisor != nullptr) last_stats = *p.supervisor;
      if (p.chunk.empty()) return;  // final dedupe flush; CampaignDone covers it
      CampaignProgress progress;
      progress.job = job.id;
      progress.done = p.executed;
      progress.total = p.total;
      progress.logged = p.logged;
      progress.masked = tally.masked;
      progress.sdc = tally.sdc;
      progress.crash = tally.crash;
      progress.hang = tally.hang;
      progress.detected = tally.detected;
      progress.worker_deaths = last_stats.worker_deaths;
      progress.worker_hangs = last_stats.worker_hangs;
      progress.requeued = last_stats.experiments_requeued;
      progress.quarantined = last_stats.quarantined;
      if (callbacks_.on_progress) callbacks_.on_progress(job, progress);
    };
    options.should_stop = [this] {
      std::lock_guard<std::mutex> lock(mutex_);
      return stop_;
    };

    campaign::CheckpointRunResult run;
    const bool distributed = options_.dispatcher != nullptr &&
                             options_.dispatcher->live_workers() > 0;
    if (distributed) {
      // At least one remote worker is live: fan chunks out through the
      // dispatcher (the runner thread co-executes, so losing every worker
      // mid-job still finishes it).  Chunk outcomes are deterministic and
      // the journal dedupe sorts by id, so this path and the local one
      // below leave byte-identical journals and boundaries.
      DistributedJobOptions dist;
      dist.path = options.path;
      dist.flush_every = options.flush_every;
      dist.kernel = job.req.kernel;
      dist.preset = job.req.preset;
      dist.pool_workers = std::clamp<std::uint32_t>(job.req.workers, 1, 16);
      dist.timeout_ms = job.req.timeout_ms != 0 ? job.req.timeout_ms
                                                : campaign::kFallbackDeadlineMs;
      dist.quarantine_after = job.req.quarantine_after;
      dist.supervisor = options.supervisor;
      dist.telemetry = options_.telemetry;
      dist.on_progress = options.on_progress;
      dist.should_stop = options.should_stop;
      DistributedRunResult dres =
          options_.dispatcher->run_job(*program, golden, ids, dist);
      run.log = std::move(dres.log);
      run.resumed = dres.resumed;
      run.skipped = dres.skipped;
      run.executed = dres.executed;
      run.flushes = dres.flushes;
      run.stopped = dres.stopped;
      run.supervisor_stats = dres.supervisor_stats;
      if (telemetry::active(options_.telemetry)) {
        options_.telemetry->metrics().counter("jobs.distributed").add();
      }
    } else {
      run = campaign::run_campaign_checkpointed(*program, golden, ids, options);
    }
    done.executed = run.executed;
    done.skipped = run.skipped;
    done.flushes = run.flushes;
    const campaign::OutcomeCounts counts =
        campaign::count_outcomes(run.log.records());
    done.masked = counts.masked;
    done.sdc = counts.sdc;
    done.crash = counts.crash;
    done.hang = counts.hang;
    done.detected = counts.detected;
    done.worker_deaths = run.supervisor_stats.worker_deaths;
    done.worker_hangs = run.supervisor_stats.worker_hangs;
    done.quarantined = run.supervisor_stats.quarantined;

    if (run.stopped) {
      done.stopped = true;
      done.error = "server drained; journal '" + options.path +
                   "' holds " + std::to_string(run.log.size()) +
                   " experiments and is resumable";
    } else {
      const boundary::FaultToleranceBoundary built = campaign::boundary_from_log(
          *program, golden, run.log, {true, 32}, util::default_pool());
      const std::string artifact =
          options_.store_dir + "/" + key.str() + ".boundary";
      if (!boundary::save_to_file(built, program->config_key(), artifact)) {
        throw std::runtime_error("cannot write boundary artifact '" +
                                 artifact + "'");
      }
      // Per-site detector coverage from the journal, so phase-report
      // queries against this entry can show which phases the detector
      // protects.  Only detector-armed campaigns produce one.
      std::vector<double> coverage;
      if (counts.detected > 0) {
        std::vector<std::uint64_t> caught(golden.trace.size(), 0);
        std::vector<std::uint64_t> wrong(golden.trace.size(), 0);
        for (const campaign::ExperimentRecord& record : run.log.records()) {
          if (!campaign::is_classic(record.id)) continue;
          const fi::Outcome outcome = record.result.outcome;
          if (outcome != fi::Outcome::kSdc && outcome != fi::Outcome::kDetected)
            continue;
          const std::uint64_t site = campaign::site_of(record.id);
          if (site >= wrong.size()) continue;
          ++wrong[site];
          if (outcome == fi::Outcome::kDetected) ++caught[site];
        }
        coverage.assign(golden.trace.size(), 0.0);
        for (std::size_t i = 0; i < coverage.size(); ++i) {
          if (wrong[i] > 0) {
            coverage[i] = static_cast<double>(caught[i]) /
                          static_cast<double>(wrong[i]);
          }
        }
      }
      std::string publish_error;
      if (!store_->publish(key, built, &publish_error, std::move(coverage))) {
        throw std::runtime_error("cannot publish boundary: " + publish_error);
      }
      done.ok = true;
      done.store_key = key.str();
    }
  } catch (const std::exception& e) {
    done.ok = false;
    done.error = e.what();
  }
  // Terminal states are recorded; a stopped (drained) job is NOT terminal
  // -- it stays pending in the ledger so the next startup resumes it.
  if (done.ok) {
    ledger_transition(job.id, JobState::kDone, done.store_key);
  } else if (!done.stopped) {
    ledger_transition(job.id, JobState::kFailed, done.error);
  }
  if (telemetry::active(options_.telemetry)) {
    const char* counter = done.ok ? "jobs.completed"
                         : done.stopped ? "jobs.stopped"
                                        : "jobs.failed";
    options_.telemetry->metrics().counter(counter).add();
    if (done.detected > 0) {
      options_.telemetry->metrics()
          .counter("jobs.detected")
          .add(done.detected);
    }
  }
  if (callbacks_.on_done) callbacks_.on_done(job, done);
}

}  // namespace ftb::service
