// Campaign plane for ftb_served: a bounded FIFO of campaign jobs drained by
// one runner thread.
//
// Each job runs the checkpointed campaign pipeline (campaign/checkpoint.h)
// through the resilient supervisor (persistent worker pool, heartbeats,
// quarantine), journalling to "<store-dir>/<key>.clog".  Progress snapshots
// are emitted after every journal flush -- so everything a client sees is
// already durable -- and a finished job infers the boundary from the full
// journal, writes "<key>.boundary" next to it, and publishes the entry into
// the BoundaryStore, where the query plane can see it immediately.
//
// Jobs sample their experiment ids exactly like `ftb_analyze campaign
// --resume` does (Rng(seed), sample_uniform over the golden sample space),
// so a journal left behind by a drained daemon can be finished -- byte for
// byte -- by the CLI, and vice versa.
//
// Drain semantics: request_drain() stops accepting new jobs, asks the
// running job to stop at the next chunk edge (after its flush), and fails
// queued jobs with a "draining" CampaignDone.  The runner thread exits once
// the running job has checkpointed.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "service/protocol.h"
#include "service/store.h"
#include "telemetry/events.h"

namespace ftb::service {

struct CampaignJob {
  std::uint64_t id = 0;
  std::uint64_t client = 0;  ///< net::ConnId of the submitting connection
  SubmitCampaignReq req;
};

struct JobRunnerOptions {
  /// Directory for journals ("<key>.clog") and artifacts ("<key>.boundary").
  std::string store_dir = ".";
  /// Jobs waiting in the queue (the running job is not counted).
  std::size_t max_queue = 8;
  telemetry::Telemetry* telemetry = nullptr;
};

/// Event sinks, invoked from the runner thread (never concurrently).
struct JobCallbacks {
  std::function<void(const CampaignJob&, const CampaignProgress&)> on_progress;
  std::function<void(const CampaignJob&, const CampaignDone&)> on_done;
};

class JobRunner {
 public:
  JobRunner(BoundaryStore* store, JobRunnerOptions options,
            JobCallbacks callbacks);
  ~JobRunner();
  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  /// Enqueues a job.  On success fills `queue_depth` with the number of
  /// jobs ahead of it (including the running one).  False when the queue
  /// is full or the runner is draining (diagnostic in `error`).
  bool submit(CampaignJob job, std::uint32_t* queue_depth = nullptr,
              std::string* error = nullptr);

  /// Stops accepting jobs, stops the running job at its next chunk edge
  /// (journal stays resumable), and fails queued jobs.  Does not block.
  void request_drain();

  /// Blocks until the runner thread has exited (call request_drain first,
  /// or wait for natural idleness forever).
  void join();

  /// True when no job is running and the queue is empty.
  bool idle() const;

  /// Queued plus running.
  std::size_t depth() const;

 private:
  void run_loop();
  void execute(const CampaignJob& job);

  BoundaryStore* store_;
  JobRunnerOptions options_;
  JobCallbacks callbacks_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<CampaignJob> queue_;
  bool running_ = false;   ///< a job is executing right now
  bool draining_ = false;
  bool stop_ = false;      ///< runner thread should exit when idle
  std::thread thread_;
};

}  // namespace ftb::service
