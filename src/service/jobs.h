// Campaign plane for ftb_served: a crash-durable FIFO of campaign jobs
// drained by one runner thread.
//
// Submissions are write-ahead logged to "<store-dir>/jobs.ledger"
// (service/ledger.h) and fsynced BEFORE they are acked, so an acked job
// survives kill -9.  On construction the runner replays the ledger and
// re-enqueues every job that never reached a terminal state; those jobs
// resume from their chunk-edge checkpoint journals exactly like the CLI
// --resume path, so a crash mid-campaign loses at most one unflushed chunk.
//
// Each job runs the checkpointed campaign pipeline (campaign/checkpoint.h)
// through the resilient supervisor (persistent worker pool, heartbeats,
// quarantine), journalling to "<store-dir>/<key>.clog".  Progress snapshots
// are emitted after every journal flush -- so everything a client sees is
// already durable -- and a finished job infers the boundary from the full
// journal, writes "<key>.boundary" next to it, and publishes the entry into
// the BoundaryStore, where the query plane can see it immediately.
//
// Jobs sample their experiment ids exactly like `ftb_analyze campaign
// --resume` does (Rng(seed), sample_uniform over the golden sample space),
// so a journal left behind by a drained daemon can be finished -- byte for
// byte -- by the CLI, and vice versa.
//
// Drain semantics: request_drain() stops accepting new jobs, asks the
// running job to stop at the next chunk edge (after its flush), and fails
// queued jobs with a "draining" CampaignDone.  Neither the stopped job nor
// the abandoned ones get a terminal ledger record, so they all come back as
// pending when the daemon restarts.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/ledger.h"
#include "service/protocol.h"
#include "service/store.h"
#include "telemetry/events.h"

namespace ftb::service {

class ChunkDispatcher;

struct CampaignJob {
  std::uint64_t id = 0;
  std::uint64_t client = 0;  ///< net::ConnId of the submitter; 0 == recovered
  JobKind kind = JobKind::kCampaign;
  SubmitCampaignReq req;        ///< meaningful when kind == kCampaign
  SubmitRecomputeReq recompute; ///< meaningful when kind == kRecompute
};

struct JobRunnerOptions {
  /// Directory for journals ("<key>.clog"), artifacts ("<key>.boundary"),
  /// and the write-ahead job ledger ("jobs.ledger").
  std::string store_dir = ".";
  /// Jobs waiting in the queue (the running job is not counted).
  std::size_t max_queue = 8;
  /// When non-empty, the runner thread (and, by fork inheritance, every
  /// sandbox worker it spawns) is pinned to these CPUs so campaign load
  /// stops stealing cycles from the epoll I/O thread.
  std::vector<int> campaign_cpus;
  /// Serve local campaign experiments from per-worker snapshot fork-servers
  /// (fi/snapshot.h) instead of replaying each one from instruction 0.
  /// Journals and boundary artifacts stay byte-identical to the classic
  /// path; kernels that are not snapshot_safe() fall back automatically.
  bool use_snapshots = false;
  /// Checkpoint cadence for the snapshot trees, in dynamic instructions.
  std::uint64_t snapshot_interval = 4096;
  /// Distributed execution plane (service/dispatch.h).  When set and at
  /// least one remote worker is live at job start, chunks fan out to the
  /// workers; otherwise the local checkpointed path runs unchanged.  Never
  /// owned; must outlive the runner.
  ChunkDispatcher* dispatcher = nullptr;
  telemetry::Telemetry* telemetry = nullptr;
};

/// Event sinks, invoked from the runner thread (never concurrently), except
/// that request_drain fails queued jobs on the caller's thread.  Progress
/// frames are shared by both job kinds; the terminal frame depends on the
/// kind (CampaignDone for campaigns, RecomputeDone for recomputes).
struct JobCallbacks {
  std::function<void(const CampaignJob&, const CampaignProgress&)> on_progress;
  std::function<void(const CampaignJob&, const CampaignDone&)> on_done;
  std::function<void(const CampaignJob&, const RecomputeDone&)>
      on_recompute_done;
};

class JobRunner {
 public:
  /// Why a submission was not accepted.  kQueueFull is the retryable case
  /// (the service answers it with Busy); kRejected is terminal for this
  /// request (draining, or the ledger cannot ack durably).
  enum class Submit { kAccepted, kQueueFull, kRejected };

  JobRunner(BoundaryStore* store, JobRunnerOptions options,
            JobCallbacks callbacks);
  ~JobRunner();
  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  /// Allocates a job id, write-ahead logs the submission (fsynced), and
  /// enqueues it.  On kAccepted fills `job_id` and `queue_depth` (jobs
  /// ahead of this one, including the running one); otherwise leaves a
  /// diagnostic in `error`.
  Submit submit(std::uint64_t client, const SubmitCampaignReq& req,
                std::uint64_t* job_id = nullptr,
                std::uint32_t* queue_depth = nullptr,
                std::string* error = nullptr);

  /// Same contract for a compositional recompute job (sections/driver.h):
  /// only the fingerprint-dirty sections re-campaign, the composed artifact
  /// is spliced and saved as "<key>.compose", and the materialized boundary
  /// publishes under the same store key a campaign would use.
  Submit submit_recompute(std::uint64_t client, const SubmitRecomputeReq& req,
                          std::uint64_t* job_id = nullptr,
                          std::uint32_t* queue_depth = nullptr,
                          std::string* error = nullptr);

  /// Stops accepting jobs, stops the running job at its next chunk edge
  /// (journal stays resumable), and fails queued jobs.  Does not block.
  void request_drain();

  /// Blocks until the runner thread has exited (call request_drain first,
  /// or wait for natural idleness forever).
  void join();

  /// True when no job is running and the queue is empty.
  bool idle() const;

  /// Queued plus running.
  std::size_t depth() const;

  /// What the ledger replay found at construction time.
  const JobLedger::ReplayResult& replay() const noexcept { return replay_; }

  /// False when the ledger could not be opened; submissions are rejected.
  bool ledger_ok() const noexcept { return ledger_.valid(); }

 private:
  void run_loop();
  void execute(const CampaignJob& job);
  void execute_campaign(const CampaignJob& job);
  void execute_recompute(const CampaignJob& job);
  Submit enqueue(CampaignJob job, std::uint64_t* job_id,
                 std::uint32_t* queue_depth, std::string* error);
  void ledger_transition(std::uint64_t job, JobState state,
                         const std::string& note);

  BoundaryStore* store_;
  JobRunnerOptions options_;
  JobCallbacks callbacks_;

  /// Serialises ledger appends (submit runs on the event-loop thread,
  /// state transitions on the runner thread).  Always acquired after
  /// mutex_ when both are held.
  std::mutex ledger_mutex_;
  JobLedger ledger_;
  JobLedger::ReplayResult replay_;
  std::string ledger_error_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<CampaignJob> queue_;
  std::uint64_t next_job_id_ = 1;
  bool running_ = false;   ///< a job is executing right now
  bool draining_ = false;
  bool stop_ = false;      ///< runner thread should exit when idle
  std::thread thread_;
};

}  // namespace ftb::service
