// Cheap ABFT-style output detectors (Elliott/Hoemmen/Mueller's "detector
// assumptions matter" direction).  A Detector summarises a program output
// into one scalar statistic -- a checksum, a row-sum invariant, a recomputed
// residual -- and *fires* when the faulty run's statistic deviates from the
// fault-free reference beyond a tolerance.  The executor consults the
// program's detector after the ordinary Masked/SDC comparison:
//
//   * SDC  + detector fired  -> Outcome::kDetected (the corruption would
//     have been reported to the user, so it is no longer *silent*);
//   * Masked + detector fired -> stays Masked, recorded as a false positive
//     via ExperimentResult::detector_fired;
//   * Crash/Hang -> the detector never runs (the program already failed
//     loudly).
//
// Detectors are deliberately lossy: a one-scalar checksum cannot see every
// corruption (cancellation, below-tolerance flips), so detected coverage =
// detected / (detected + SDC) lands strictly between 0 and 1 on real
// kernels -- exactly the quantity the boundary reports track per site.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>

namespace ftb::fi {

class Detector {
 public:
  /// `atol`/`rtol` govern the acceptance test on the statistic:
  /// |s(output) - s(reference)| <= atol + rtol * |s(reference)|.
  Detector(std::string name, double atol, double rtol) noexcept
      : name_(std::move(name)), atol_(atol), rtol_(rtol) {}
  virtual ~Detector() = default;

  std::string_view name() const noexcept { return name_; }
  double atol() const noexcept { return atol_; }
  double rtol() const noexcept { return rtol_; }

  /// The check the instrumented program would run on its own output.
  virtual double statistic(std::span<const double> output) const = 0;

  /// True when `output`'s statistic is non-finite or deviates from
  /// `reference`'s beyond the tolerance -- i.e. the detector reports a fault.
  bool fires(std::span<const double> output,
             std::span<const double> reference) const;

 private:
  std::string name_;
  double atol_;
  double rtol_;
};

using DetectorPtr = std::unique_ptr<Detector>;

/// Sum checksum over the whole output vector: the classic ABFT column-
/// checksum equality for SpMV/GEMM-shaped kernels (sum(y) == c^T x holds
/// exactly in the fault-free run, so the golden statistic *is* the checksum
/// the augmented kernel would maintain).
class ChecksumDetector final : public Detector {
 public:
  explicit ChecksumDetector(double atol = 1e-7, double rtol = 1e-7)
      : Detector("checksum", atol, rtol) {}

  double statistic(std::span<const double> output) const override;
};

/// Strided row-sum invariant: sums every `stride`-th window of the output
/// and folds the per-row sums with alternating signs, so corruptions that a
/// plain total-sum checksum cancels out still move the statistic.  Used by
/// the stencil kernels, whose smoothing preserves interior row sums almost
/// exactly.
class RowSumDetector final : public Detector {
 public:
  explicit RowSumDetector(std::size_t stride, double atol = 1e-7,
                          double rtol = 1e-7)
      : Detector("row-sum", atol, rtol), stride_(stride) {}

  double statistic(std::span<const double> output) const override;

 private:
  std::size_t stride_;
};

/// Kernel-specific invariant supplied as a closure: CG's recomputed
/// residual ||b - A x||, LU's reconstruction error, ... The kernel builds
/// the closure over its own immutable problem data (matrix, rhs); the
/// fault-injection layer stays ignorant of kernel structure.
class InvariantDetector final : public Detector {
 public:
  using Statistic = std::function<double(std::span<const double>)>;

  InvariantDetector(std::string name, Statistic statistic, double atol,
                    double rtol)
      : Detector(std::move(name), atol, rtol),
        statistic_(std::move(statistic)) {}

  double statistic(std::span<const double> output) const override {
    return statistic_(output);
  }

 private:
  Statistic statistic_;
};

}  // namespace ftb::fi
