// The Program interface: a deterministic, instrumented computation whose
// resiliency the library analyses.  Implementations (src/kernels) route
// every produced floating-point data element through the Tracer and must
// have no data-dependent control flow, so the dynamic-instruction sequence
// is identical across fault-free and fault-injected runs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fi/detector.h"
#include "fi/outcome.h"
#include "fi/tracer.h"

namespace ftb::fi {

class Program {
 public:
  virtual ~Program() = default;

  /// Human-readable kernel name ("cg", "lu", "fft", ...).
  virtual std::string name() const = 0;

  /// Executes the computation, routing every produced FP data element
  /// through `tracer`, and returns the final output vector that outcome
  /// classification compares against the golden output.  May throw
  /// CrashSignal (from the tracer) on simulated abnormal termination.
  virtual std::vector<double> run(Tracer& tracer) const = 0;

  /// The acceptance tolerance for this program's output (paper: the
  /// "acceptable tolerance level defined by the domain user").
  virtual OutputComparator comparator() const { return {}; }

  /// A short string identifying the exact configuration (matrix size,
  /// iterations, seeds...).  Used as part of ground-truth cache keys, so it
  /// must change whenever run() behaviour changes *or* classification
  /// behaviour changes (e.g. a detector is enabled).
  virtual std::string config_key() const = 0;

  /// The program's ABFT output detector, or nullptr when it runs without
  /// one (the default).  When present, the executor reclassifies SDC
  /// outcomes the detector catches as Outcome::kDetected.  The returned
  /// pointer must stay valid for the program's lifetime.
  virtual const Detector* detector() const noexcept { return nullptr; }
};

using ProgramPtr = std::unique_ptr<Program>;

}  // namespace ftb::fi
