// The dynamic-instruction tracer: this library's stand-in for the paper's
// compiler-level instrumentation.  Kernels thread a Tracer through their
// computation and pass every produced floating-point *data element* through
// Tracer::step(), which
//
//   * numbers dynamic instructions 0, 1, 2, ... (the paper's injection
//     sites),
//   * in Record mode captures the golden trace,
//   * in Inject mode applies a fault (bit flip or additive perturbation) at
//     one chosen site,
//   * in Compare mode additionally streams |x_i' - x_i| against a golden
//     trace (the error-propagation data of paper Section 2.2),
//   * simulates a "crash" by throwing CrashSignal the moment any produced
//     value is non-finite (the NaN-exception termination of Section 2.1).
//
// Kernels must be deterministic and free of data-dependent control flow so
// fault-free and faulty runs execute identical dynamic-instruction
// sequences; the executor verifies the step counts match.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fi/fpbits.h"

namespace ftb::fi {

/// A named program phase starting at a dynamic-instruction index.  Kernels
/// announce phases through Tracer::phase(); the golden run records them so
/// reports can aggregate per source-level region ("setup", "iterations",
/// ...) -- the paper's Figure 4 discussion is phrased entirely in these
/// terms.
struct PhaseMark {
  std::uint64_t begin = 0;
  std::string name;

  friend bool operator==(const PhaseMark&, const PhaseMark&) = default;
};

/// Thrown by Tracer::step to abort an experiment run that produced a
/// non-finite value, simulating an abnormal termination.  Executors catch
/// it; it never escapes the library.
struct CrashSignal {
  std::uint64_t site = 0;  // dynamic instruction where the run "trapped"
};

/// Describes the fault applied at one dynamic instruction (Target::kTrace)
/// or one word of live program state (Target::kMemory; see Tracer::touch).
struct Injection {
  enum class Kind : std::uint8_t {
    kBitFlip,   // flip `bit` of the produced value (the paper's fault model)
    kAddDelta,  // add `operand` (used by the Section 5 monotonicity studies)
    kSetValue,  // replace with `operand` (tests)
    kXorMask,   // XOR the bit pattern with `mask` (multi-bit fault models)
  };

  enum class Target : std::uint8_t {
    kTrace,   // fault the value produced at dynamic instruction `site`
    kMemory,  // fault word `site` of the `touch_point`-th Tracer::touch()
              // span: a memory-resident fault between program phases
  };

  std::uint64_t site = 0;
  Kind kind = Kind::kBitFlip;
  int bit = 0;
  double operand = 0.0;
  std::uint64_t mask = 0;
  Target target = Target::kTrace;
  std::uint32_t touch_point = 0;  // kMemory only: which touch() call

  static Injection bit_flip(std::uint64_t site, int bit) noexcept {
    return {site, Kind::kBitFlip, bit, 0.0, 0};
  }
  static Injection add_delta(std::uint64_t site, double delta) noexcept {
    return {site, Kind::kAddDelta, 0, delta, 0};
  }
  static Injection set_value(std::uint64_t site, double value) noexcept {
    return {site, Kind::kSetValue, 0, value, 0};
  }
  /// Generalised bit fault: flips every set bit of `mask` at once.  A
  /// single-bit mask is identical to bit_flip; two set bits model the
  /// double-bit upsets that ECC scrubbing can miss.
  static Injection xor_mask(std::uint64_t site, std::uint64_t mask) noexcept {
    return {site, Kind::kXorMask, 0, 0.0, mask};
  }
  static Injection double_bit_flip(std::uint64_t site, int bit_a,
                                   int bit_b) noexcept {
    return xor_mask(site, (std::uint64_t{1} << bit_a) |
                              (std::uint64_t{1} << bit_b));
  }
  /// Memory-resident fault: XOR every set bit of `mask` into word `word` of
  /// the span passed to the `touch_point`-th Tracer::touch() call.  A
  /// single-bit mask models a DRAM flip the kernel reads back later; a
  /// contiguous multi-bit mask models a burst upset (fi/memfault.h).
  static Injection mem_xor(std::uint32_t touch_point, std::uint64_t word,
                           std::uint64_t mask) noexcept {
    Injection injection{word, Kind::kXorMask, 0, 0.0, mask};
    injection.target = Target::kMemory;
    injection.touch_point = touch_point;
    return injection;
  }

  bool is_memory_fault() const noexcept { return target == Target::kMemory; }

  double apply(double v) const noexcept {
    switch (kind) {
      case Kind::kBitFlip:
        return flip_bit(v, bit);
      case Kind::kAddDelta:
        return v + operand;
      case Kind::kSetValue:
        return operand;
      case Kind::kXorMask:
        return from_bits(to_bits(v) ^ mask);
    }
    return v;
  }
};

class Tracer {
 public:
  /// Sentinel for "no checkpoint armed" (see arm_checkpoint_hook).
  static constexpr std::uint64_t kNoCheckpoint = ~std::uint64_t{0};

  /// Callback armed by the snapshot fork-server (fi/snapshot.h).  `reached`
  /// is invoked from step() the first time the dynamic-instruction index
  /// reaches the armed checkpoint and returns the next index to arm (or
  /// kNoCheckpoint to disarm).  The hook may fork(): in the child it may
  /// rearm() the tracer before returning, which is how a snapshot
  /// experiment resumes the paused execution with a real fault armed.  Raw
  /// function pointers keep std::function off the hot path, mirroring
  /// StreamHooks.
  struct CheckpointHook {
    void* ctx = nullptr;
    std::uint64_t (*reached)(void* ctx, Tracer& tracer,
                             std::uint64_t index) = nullptr;
  };

  /// Counts dynamic instructions only (used to size golden structures).
  static Tracer counter() noexcept { return Tracer(Mode::kCount); }

  /// Appends every produced value to `trace` (golden run).  When `phases`
  /// is given, Tracer::phase() announcements are recorded into it; when
  /// `touch_sizes` is given, the span length of every Tracer::touch() call
  /// is recorded (sizing the memory-resident fault space, fi/memfault.h).
  static Tracer recorder(std::vector<double>& trace,
                         std::vector<PhaseMark>* phases = nullptr,
                         std::vector<std::uint64_t>* touch_sizes = nullptr) noexcept {
    Tracer t(Mode::kRecord);
    t.trace_out_ = &trace;
    t.phases_out_ = phases;
    t.touch_sizes_out_ = touch_sizes;
    return t;
  }

  /// Applies `injection` at its site; throws CrashSignal on non-finite
  /// values from the injection site onward.
  static Tracer injector(const Injection& injection) noexcept {
    Tracer t(Mode::kInject);
    t.injection_ = injection;
    return t;
  }

  /// Like injector(), and additionally writes the propagated absolute error
  /// |x_i' - x_i| into diffs[i] for every site i >= injection.site.  `diffs`
  /// must have golden.size() elements and be zero-initialised by the caller.
  static Tracer comparator(const Injection& injection,
                           std::span<const double> golden,
                           std::span<double> diffs) noexcept {
    assert(diffs.size() == golden.size());
    Tracer t(Mode::kCompare);
    t.injection_ = injection;
    t.golden_ = golden;
    t.diffs_ = diffs;
    return t;
  }

  /// Low-memory comparison (the paper's Section 5 "Overhead" direction):
  /// instead of holding the golden trace in memory, the golden value for
  /// each step is pulled from a sequential source and the propagated error
  /// streamed to an observer, so no O(D) buffers exist.
  ///
  ///   next_golden(ctx) -> the golden value for the current step,
  ///   observe(ctx, site, propagated_abs_error) for every site >= the
  ///   injection site.
  ///
  /// Raw function pointers keep std::function off the hot path.
  struct StreamHooks {
    void* ctx = nullptr;
    double (*next_golden)(void* ctx) = nullptr;
    void (*observe)(void* ctx, std::uint64_t site, double error) = nullptr;
  };

  static Tracer stream_comparator(const Injection& injection,
                                  StreamHooks hooks) noexcept {
    assert(hooks.next_golden != nullptr);
    Tracer t(Mode::kCompareStream);
    t.injection_ = injection;
    t.hooks_ = hooks;
    return t;
  }

  /// The hot path: every kernel FP production flows through here.
  /// Trace-target injections fire when the dynamic-instruction index hits
  /// the injection site; once any fault has fired (trace or memory), a
  /// non-finite produced value simulates a trap via CrashSignal.
  double step(double v) {
    const std::uint64_t idx = index_++;
    if (idx >= next_checkpoint_) [[unlikely]] {
      // Before the injection check on purpose: a hook that rearms this
      // tracer with a fault at exactly this index must still fire it below.
      next_checkpoint_ = checkpoint_.reached(checkpoint_.ctx, *this, idx);
    }
    switch (mode_) {
      case Mode::kCount:
        return v;
      case Mode::kRecord:
        trace_out_->push_back(v);
        return v;
      case Mode::kInject:
        if (!injection_.is_memory_fault() && idx == injection_.site) {
          v = fire(v, idx);
        } else if (fired_ && !std::isfinite(v)) {
          throw CrashSignal{idx};
        }
        return v;
      case Mode::kCompare:
        if (!injection_.is_memory_fault() && idx == injection_.site) {
          v = fire(v, idx);
        } else if (fired_ && !std::isfinite(v)) {
          throw CrashSignal{idx};
        }
        if (fired_ && idx < diffs_.size()) {
          diffs_[idx] = std::fabs(v - golden_[idx]);
        }
        return v;
      case Mode::kCompareStream: {
        const double golden_value = hooks_.next_golden(hooks_.ctx);
        if (!injection_.is_memory_fault() && idx == injection_.site) {
          v = fire(v, idx);
        } else if (fired_ && !std::isfinite(v)) {
          throw CrashSignal{idx};
        }
        if (fired_ && hooks_.observe != nullptr) {
          hooks_.observe(hooks_.ctx, idx, std::fabs(v - golden_value));
        }
        return v;
      }
    }
    return v;  // unreachable
  }

  /// Announces live program state (a matrix/vector span) at a phase
  /// boundary.  Consumes no dynamic-instruction index.  In Record mode the
  /// span's length is captured (when the recorder asked for touch sizes);
  /// when armed with a memory-target injection whose touch_point matches,
  /// the fault is applied to the named word *in place*.  A corrupted word
  /// that becomes non-finite does not trap here -- state is data, not a
  /// produced value -- the crash happens at the first non-finite value the
  /// kernel later *produces* from it.
  void touch(std::span<double> data) {
    const std::uint32_t point = touch_index_++;
    if (mode_ == Mode::kCount || mode_ == Mode::kRecord) {
      if (touch_sizes_out_ != nullptr) touch_sizes_out_->push_back(data.size());
      return;
    }
    if (injection_.is_memory_fault() && !fired_ &&
        point == injection_.touch_point && injection_.site < data.size()) {
      double& word = data[injection_.site];
      fired_ = true;
      original_value_ = word;
      const double corrupted = injection_.apply(word);
      injected_error_ = std::isfinite(corrupted)
                            ? std::fabs(corrupted - word)
                            : std::numeric_limits<double>::infinity();
      word = corrupted;
    }
  }

  // ---- Deterministic parallel tracing --------------------------------------
  // A threaded kernel partitions each parallel region into per-thread shards
  // with *precomputed* step counts (the region's work split is fixed by the
  // thread count, never by data).  Shard creation pre-assigns each shard the
  // global index range [begin, begin + steps), so the merged numbering is
  // identical to the serial interleaving thread 0, thread 1, ... regardless
  // of actual thread scheduling.  Shards never touch shared tracer state
  // while threads run: records, fire bookkeeping, and crash sites stay
  // shard-local (Compare-mode diff writes go to disjoint indices) and are
  // folded back -- in shard order -- by join(), which throws the *minimum*
  // crash site so crashes are as deterministic as the serial path.

  class Shard {
   public:
    Shard() = default;

    /// Per-thread hot path; safe to call concurrently with other shards.
    double step(double v) {
      const std::uint64_t idx = begin_ + local_++;
      assert(local_ <= length_);
      switch (parent_->mode_) {
        case Mode::kCount:
          return v;
        case Mode::kRecord:
          recorded_.push_back(v);
          return v;
        case Mode::kInject:
        case Mode::kCompare: {
          const Injection& injection = parent_->injection_;
          const bool trace_target = !injection.is_memory_fault();
          if (trace_target && idx == injection.site) {
            fired_ = true;
            original_value_ = v;
            const double corrupted = injection.apply(v);
            if (!std::isfinite(corrupted)) {
              injected_error_ = std::numeric_limits<double>::infinity();
              crash_site_ = idx;
            } else {
              injected_error_ = std::fabs(corrupted - v);
            }
            v = corrupted;
          } else if (!std::isfinite(v) && crash_site_ > idx &&
                     ((trace_target && idx > injection.site) ||
                      parent_->fired_)) {
            crash_site_ = idx;
          }
          if (parent_->mode_ == Mode::kCompare && crash_site_ == kNoCrash &&
              (fired_ || parent_->fired_ ||
               (trace_target && idx >= injection.site)) &&
              idx < parent_->diffs_.size()) {
            parent_->diffs_[idx] = std::fabs(v - parent_->golden_[idx]);
          }
          return v;
        }
        case Mode::kCompareStream:
          assert(false && "stream comparison cannot be sharded");
          return v;
      }
      return v;  // unreachable
    }

   private:
    friend class Tracer;
    static constexpr std::uint64_t kNoCrash = ~std::uint64_t{0};

    Tracer* parent_ = nullptr;
    std::uint64_t begin_ = 0;
    std::uint64_t length_ = 0;
    std::uint64_t local_ = 0;
    std::uint64_t crash_site_ = kNoCrash;  // min non-finite site seen
    bool fired_ = false;
    double injected_error_ = 0.0;
    double original_value_ = 0.0;
    std::vector<double> recorded_;  // Record mode: this shard's trace slice
  };

  /// Reserves the next `steps` global dynamic-instruction indices for one
  /// shard.  Call once per thread, in thread order, before the parallel
  /// region runs; then run each shard on its thread and join() all shards
  /// (again in thread order) after the threads complete.
  Shard shard(std::uint64_t steps) {
    assert(mode_ != Mode::kCompareStream &&
           "stream comparison cannot be sharded");
    if (index_ >= next_checkpoint_) [[unlikely]] {
      // Sharded regions reserve index ranges in bulk, so a checkpoint that
      // lands inside one fires here, at the region edge, on the calling
      // thread (never on a worker thread -- fork() inside a threaded region
      // would be unsafe).  The hook registers the *actual* index it ran at.
      next_checkpoint_ = checkpoint_.reached(checkpoint_.ctx, *this, index_);
    }
    Shard s;
    s.parent_ = this;
    s.begin_ = index_;
    s.length_ = steps;
    if (mode_ == Mode::kRecord) s.recorded_.reserve(steps);
    index_ += steps;
    return s;
  }

  /// Folds shard-local state back into the tracer, in shard order, and
  /// throws CrashSignal at the minimum crashing site (matching what the
  /// serial interleaving would have trapped on first).  Each shard must
  /// have produced exactly the step count it declared.
  void join(std::span<Shard> shards) {
    std::uint64_t crash_site = Shard::kNoCrash;
    for (Shard& s : shards) {
      assert(s.local_ == s.length_ &&
             "shard produced a different step count than declared");
      if (mode_ == Mode::kRecord && trace_out_ != nullptr) {
        trace_out_->insert(trace_out_->end(), s.recorded_.begin(),
                           s.recorded_.end());
      }
      if (s.fired_) {
        fired_ = true;
        injected_error_ = s.injected_error_;
        original_value_ = s.original_value_;
      }
      crash_site = std::min(crash_site, s.crash_site_);
    }
    if (crash_site != Shard::kNoCrash) throw CrashSignal{crash_site};
  }

  /// Announces that the instructions from the current index onward belong
  /// to the named program phase.  Free outside the recording golden run;
  /// kernels may call it unconditionally.
  void phase(std::string_view name) {
    if (phases_out_ != nullptr) {
      phases_out_->push_back({index_, std::string(name)});
    }
  }

  /// Arms `hook` to fire the first time the dynamic-instruction index
  /// reaches `first`.  Pass kNoCheckpoint (the construction default) to
  /// leave the hot path a single always-false comparison.
  void arm_checkpoint_hook(CheckpointHook hook, std::uint64_t first) noexcept {
    checkpoint_ = hook;
    next_checkpoint_ = hook.reached != nullptr ? first : kNoCheckpoint;
  }

  /// Swaps in a different injection mid-run, clearing the fired state.  Only
  /// meaningful from a checkpoint hook in a freshly forked experiment child:
  /// the new fault must not already be behind the execution point (a trace
  /// site below the current index, or a memory fault whose touch point has
  /// already been passed, can never fire).
  void rearm(const Injection& injection) noexcept {
    injection_ = injection;
    fired_ = false;
    injected_error_ = 0.0;
    original_value_ = 0.0;
  }

  /// Number of dynamic instructions seen so far.
  std::uint64_t steps() const noexcept { return index_; }

  /// True once the injection site has been reached.
  bool fired() const noexcept { return fired_; }

  /// |corrupted - original| at the injection site; +inf when the corrupted
  /// value was non-finite.  Only meaningful after fired().
  double injected_error() const noexcept { return injected_error_; }

  /// Value originally produced at the injection site (pre-corruption).
  double original_value() const noexcept { return original_value_; }

 private:
  enum class Mode : std::uint8_t {
    kCount,
    kRecord,
    kInject,
    kCompare,
    kCompareStream,
  };

  explicit Tracer(Mode mode) noexcept : mode_(mode) {}

  double fire(double v, std::uint64_t idx) {
    fired_ = true;
    original_value_ = v;
    const double corrupted = injection_.apply(v);
    if (!std::isfinite(corrupted)) {
      injected_error_ = std::numeric_limits<double>::infinity();
      throw CrashSignal{idx};
    }
    injected_error_ = std::fabs(corrupted - v);
    return corrupted;
  }

  Mode mode_;
  std::uint64_t index_ = 0;
  std::uint64_t next_checkpoint_ = kNoCheckpoint;
  CheckpointHook checkpoint_{};
  std::uint32_t touch_index_ = 0;
  Injection injection_{};
  bool fired_ = false;
  double injected_error_ = 0.0;
  double original_value_ = 0.0;
  std::vector<double>* trace_out_ = nullptr;
  std::vector<PhaseMark>* phases_out_ = nullptr;
  std::vector<std::uint64_t>* touch_sizes_out_ = nullptr;
  std::span<const double> golden_{};
  std::span<double> diffs_{};
  StreamHooks hooks_{};
};

}  // namespace ftb::fi
