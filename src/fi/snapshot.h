// Snapshot fork-server: O(distance-to-snapshot) fault-injection experiments
// via copy-on-write checkpoints.
//
// The classic executors (fi/executor.h, fi/sandbox.h) re-execute the kernel
// from dynamic instruction 0 for every experiment, so a campaign's replay
// work grows with the injection site: O(sites^2) dynamic work over a full
// sweep.  This file applies the fuzzer fork-server idiom to fault injection
// instead:
//
//   * a *runner* process executes the golden run exactly once, with a
//     checkpoint hook armed on its Tracer (Tracer::CheckpointHook);
//   * at every planned checkpoint -- dynamic instruction 0 (before run()
//     starts, so memory-resident faults replay from scratch), every phase
//     edge, and every `interval` dynamic instructions -- the hook fork()s a
//     *holder* child whose entire address space IS the snapshot: the paused
//     call stack, the tracer, and all live kernel state, captured for free
//     by copy-on-write;
//   * each experiment forks an *experiment child* from the holder with the
//     largest checkpoint index <= the injection site.  The child rearms the
//     inherited tracer with the real fault (Tracer::rearm), returns out of
//     the hook, and simply continues the paused execution -- no state
//     serialization, no replayed prefix -- then classifies through the very
//     same classify_finished / classify_crash the in-process executor uses,
//     so results are bit-identical to run_injected() for well-behaved
//     programs.
//
// Control plane: the parent owns one command pipe per checkpoint and a
// single shared response pipe.  All frames are fixed-size, CRC-framed, and
// rejected -- never trusted -- on any corruption (encode/decode exposed
// below so tests can fuzz them like net/frame.h).  Holders apply a
// per-experiment watchdog, classify real signal deaths of experiment
// children through the sandbox CrashReason taxonomy, and every level of the
// tree arms PR_SET_PDEATHSIG so a killed campaign never leaks a paused
// process.  When the tree is damaged (runner death, frame corruption,
// response deadline) the server rebuilds it up to `max_rebuilds` times and
// otherwise falls back to the in-process executor, one experiment at a
// time, so a degraded server is slow but never wrong.
//
// fork() is only safe when the kernel configuration is single-threaded;
// snapshot_safe() gates threaded configurations (":thr=" in the config
// key) off to the classic path.  Single-threaded, like the sandbox layer:
// construct, run(), and destroy from one thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fi/executor.h"
#include "fi/outcome.h"
#include "fi/program.h"
#include "fi/tracer.h"

namespace ftb::fi {

struct SnapshotOptions {
  /// Checkpoint cadence in dynamic instructions.  Phase edges are always
  /// checkpointed too (see include_phase_edges); the pre-run checkpoint at
  /// instruction 0 always exists.
  std::uint64_t interval = 4096;

  /// Upper bound on live holder processes.  A plan longer than this is
  /// thinned evenly (instruction 0 is never dropped).
  std::uint32_t max_checkpoints = 32;

  /// Also checkpoint at every golden PhaseMark boundary.
  bool include_phase_edges = true;

  /// Per-experiment watchdog applied by the holder, measured from the
  /// experiment child's fork.  0 is not honoured here: campaign-driven runs
  /// must always have a deadline, so 0 falls back to 2000 ms.
  std::uint32_t timeout_ms = 2000;

  /// Holder poll cadence while an experiment child runs.
  std::uint32_t poll_interval_us = 200;

  /// Tree rebuilds permitted before the server degrades permanently to the
  /// in-process executor.
  int max_rebuilds = 2;

  /// Observed injection-site density -- typically the campaign's pending
  /// sites.  When non-empty, checkpoint slots beyond the mandatory ones
  /// (instruction 0 and phase edges) are placed at quantiles of this
  /// distribution instead of on the uniform `interval` grid, so the
  /// checkpoint budget concentrates where experiments actually fork.
  /// Placement affects speed only; journal bytes never depend on it.
  std::vector<std::uint64_t> site_hints;
};

/// Observability counters over the server's lifetime.
struct SnapshotStats {
  std::uint64_t checkpoints = 0;      // holders in the current tree
  std::uint64_t served = 0;           // experiments answered by a fork
  std::uint64_t fallback_experiments = 0;  // run in-process instead
  std::uint64_t rejected_frames = 0;  // malformed/stale frames dropped
  std::uint64_t rebuilds = 0;         // tree rebuilds after damage
  std::uint64_t skipped_prefix = 0;   // dynamic instructions not re-executed
};

// ---------------------------------------------------------------------------
// Wire codec for the control channel, exposed for fuzz tests.  Both frames
// are fixed-size (well under PIPE_BUF, so pipe writes are atomic) and carry
// a trailing CRC-32 over every preceding byte: any 1-byte corruption or
// truncation decodes to a diagnostic, never to a frame.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kSnapshotMagic = 0x46544253u;  // "FTBS"
inline constexpr std::uint8_t kSnapshotVersion = 1;

/// Parent -> holder: run one experiment.  The injection is flattened field
/// by field (doubles bit-exactly via fi/fpbits.h), never memcpy'd as a
/// struct, so padding bytes can never leak or desynchronise the CRC.
struct SnapshotCommand {
  std::uint64_t seq = 0;
  Injection injection{};
};

/// Holder/runner/child -> parent.
struct SnapshotResponse {
  enum class Type : std::uint8_t {
    kReady = 1,   // runner registered checkpoint `seq` at instruction `site`
    kBuilt = 2,   // runner finished the golden run; `site` = instructions
    kResult = 3,  // experiment `seq` finished; result fields valid
    kReject = 4,  // holder refused experiment `seq` (bad frame / bad site)
  };

  Type type = Type::kResult;
  std::uint64_t seq = 0;
  std::uint64_t site = 0;
  ExperimentResult result{};
};

inline constexpr std::size_t kSnapshotCommandBytes = 52;
inline constexpr std::size_t kSnapshotResponseBytes = 56;

void encode_snapshot_command(const SnapshotCommand& command,
                             std::uint8_t out[kSnapshotCommandBytes]);
void encode_snapshot_response(const SnapshotResponse& response,
                              std::uint8_t out[kSnapshotResponseBytes]);

/// Strict decoders: exact size, magic, version, known enum values, and CRC
/// all checked.  On failure they return false and, when `diagnostic` is
/// non-null, explain what was wrong ("snapshot command: bad crc", ...).
bool decode_snapshot_command(std::span<const std::uint8_t> bytes,
                             SnapshotCommand* command,
                             std::string* diagnostic = nullptr);
bool decode_snapshot_response(std::span<const std::uint8_t> bytes,
                              SnapshotResponse* response,
                              std::string* diagnostic = nullptr);

/// True when this build/platform can run a snapshot tree (fork + pipes).
bool snapshot_supported() noexcept;

/// True when `program` may be served from snapshots: fork() requires a
/// single-threaded kernel configuration, recognised (by the kernel config
/// key convention) as the absence of a ":thr=" marker.
bool snapshot_safe(const Program& program);

/// Planned checkpoint sites for `golden` under `options`: instruction 0,
/// every phase edge (include_phase_edges), then either density quantiles of
/// options.site_hints or the uniform `interval` grid, thinned evenly to
/// max_checkpoints (instruction 0 is never dropped).  Exposed for tests and
/// bench/micro_supervisor.
std::vector<std::uint64_t> plan_checkpoints(const GoldenRun& golden,
                                            const SnapshotOptions& options);

class SnapshotServer {
 public:
  /// Builds the snapshot tree immediately: runs the golden execution once
  /// in a forked runner, pausing holders along the way.  `program` and
  /// `golden` must outlive the server.  Construction failure is not an
  /// error -- the server comes up unhealthy and run() falls back
  /// in-process.
  SnapshotServer(const Program& program, const GoldenRun& golden,
                 SnapshotOptions options = {});
  ~SnapshotServer();
  SnapshotServer(const SnapshotServer&) = delete;
  SnapshotServer& operator=(const SnapshotServer&) = delete;

  /// True while the tree is live and serving.  A damaged tree flips this
  /// until the next successful rebuild (run() rebuilds on demand).
  bool healthy() const noexcept;

  /// Checkpoints in the current tree (0 when unhealthy).
  std::size_t checkpoint_count() const noexcept;

  /// Dynamic instruction of the nearest checkpoint at or below `site`
  /// (kNoCheckpoint when unhealthy).  Exposed for tests and benches.
  std::uint64_t nearest_checkpoint(std::uint64_t site) const noexcept;

  /// OS pid of the runner process, or -1 when no tree is live.  For tests
  /// that damage the tree externally (mirrors WorkerPool::worker_pid).
  std::int64_t runner_pid() const noexcept;

  /// Runs one experiment, forked from the nearest checkpoint <= its site
  /// (memory faults replay from the pre-run checkpoint).  Bit-identical to
  /// run_injected() for well-behaved programs; on tree damage the
  /// experiment is retried on a rebuilt tree and, past max_rebuilds, run
  /// in-process.
  ExperimentResult run(const Injection& injection);

  const SnapshotStats& stats() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftb::fi
