// IEEE-754 double bit manipulation: the single-bit-flip fault model of
// paper Section 2.1.  Bit positions follow the binary64 layout with bit 0
// the least-significant mantissa bit, bits 52..62 the exponent, and bit 63
// the sign.
#pragma once

#include <cstdint>
#include <cmath>
#include <cstring>

namespace ftb::fi {

inline constexpr int kBitsPerValue = 64;
inline constexpr int kMantissaBits = 52;
inline constexpr int kSignBit = 63;

inline std::uint64_t to_bits(double v) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double from_bits(std::uint64_t bits) noexcept {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Flips one bit of a double.  bit must be in [0, 64).
inline double flip_bit(double v, int bit) noexcept {
  return from_bits(to_bits(v) ^ (std::uint64_t{1} << bit));
}

inline bool is_exponent_bit(int bit) noexcept {
  return bit >= kMantissaBits && bit < kSignBit;
}

/// The absolute error a flip introduces: |flip(v, bit) - v|.  Returns
/// +inf/NaN when the flipped value is non-finite, which the fault model
/// classifies as a (detectable) crash rather than SDC.
inline double bit_flip_error(double v, int bit) noexcept {
  const double flipped = flip_bit(v, bit);
  return std::fabs(flipped - v);
}

/// True when flipping `bit` of `v` yields a non-finite value (Inf/NaN) --
/// i.e. the injection itself is immediately "loud".
inline bool flip_is_nonfinite(double v, int bit) noexcept {
  return !std::isfinite(flip_bit(v, bit));
}

/// Relative error |a - b| / max(|a|, |b|, tiny); used for the significance
/// test in the paper's "potential impact" measure (rel error > 1e-8).
inline double relative_error(double a, double b) noexcept {
  const double scale = std::fmax(std::fmax(std::fabs(a), std::fabs(b)), 1e-300);
  return std::fabs(a - b) / scale;
}

}  // namespace ftb::fi
