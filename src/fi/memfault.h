// Richer fault models beyond the paper's single-bit trace flip:
//
//   * multi-bit *burst* faults: k contiguous bits XOR-flipped at once, on a
//     traced value or a memory word (the upsets ECC scrubbing can miss --
//     the ablation_multibit direction generalised from 2 to k bits);
//   * *memory-resident* faults: a bit (or burst) flipped in live
//     matrix/vector state between program phases, applied at the spans
//     kernels announce via Tracer::touch().
//
// The memory fault space is addressed (touch_point, word, bit): touch_point
// indexes the touch() call in execution order, word the element within that
// call's span.  GoldenRun::touch_sizes (recorded once per golden run) sizes
// the space, so campaigns over it sample, journal, and resume exactly like
// trace campaigns do.
#pragma once

#include <cstdint>
#include <span>

#include "fi/tracer.h"

namespace ftb::fi {

/// XOR mask of `width` contiguous set bits starting at `start_bit`.
/// Clamped to the 64-bit word: width 0 becomes 1, and a burst that would
/// run off bit 63 is truncated at the word boundary.
std::uint64_t burst_mask(int start_bit, int width) noexcept;

/// Burst fault on a traced value: flips `width` contiguous bits of the
/// value produced at dynamic instruction `site`.
Injection trace_burst(std::uint64_t site, int start_bit, int width) noexcept;

/// One memory-resident fault: bits [start_bit, start_bit + width) of word
/// `word` in the `touch_point`-th touched span.  width == 1 is a plain
/// DRAM-style single-bit flip.
struct MemFault {
  std::uint32_t touch_point = 0;
  std::uint64_t word = 0;
  int start_bit = 0;
  int width = 1;

  Injection to_injection() const noexcept {
    return Injection::mem_xor(touch_point, word, burst_mask(start_bit, width));
  }
};

/// Number of (word, bit) single-bit fault candidates across all touched
/// spans: 64 * sum(touch_sizes).
std::uint64_t mem_sample_space(std::span<const std::uint64_t> touch_sizes) noexcept;

/// Maps a flat index in [0, mem_sample_space(touch_sizes)) to a concrete
/// memory fault of the given burst width.  Flat indices enumerate bits
/// within words within touch points, in execution order, so the mapping is
/// stable across runs of the same kernel configuration.
MemFault mem_fault_at(std::span<const std::uint64_t> touch_sizes,
                      std::uint64_t flat, int width) noexcept;

}  // namespace ftb::fi
