// Tracer is header-only for inlining on the per-dynamic-instruction hot
// path; this translation unit anchors the module in the static library.
#include "fi/tracer.h"

namespace ftb::fi {}
