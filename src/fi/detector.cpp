#include "fi/detector.h"

#include <cmath>

namespace ftb::fi {

bool Detector::fires(std::span<const double> output,
                     std::span<const double> reference) const {
  const double observed = statistic(output);
  if (!std::isfinite(observed)) return true;
  const double expected = statistic(reference);
  return std::fabs(observed - expected) > atol_ + rtol_ * std::fabs(expected);
}

double ChecksumDetector::statistic(std::span<const double> output) const {
  double sum = 0.0;
  for (double v : output) sum += v;
  return sum;
}

double RowSumDetector::statistic(std::span<const double> output) const {
  if (stride_ == 0) return 0.0;
  double folded = 0.0;
  double sign = 1.0;
  for (std::size_t row = 0; row < output.size(); row += stride_) {
    const std::size_t end = std::min(row + stride_, output.size());
    double row_sum = 0.0;
    for (std::size_t i = row; i < end; ++i) row_sum += output[i];
    folded += sign * row_sum;
    sign = -sign;
  }
  return folded;
}

}  // namespace ftb::fi
