#include "fi/phase_map.h"

#include <algorithm>
#include <cassert>

namespace ftb::fi {

PhaseMap::PhaseMap(std::span<const PhaseMark> marks,
                   std::uint64_t total_sites)
    : total_sites_(total_sites) {
  if (total_sites == 0) return;

  if (marks.empty()) {
    segments_.push_back({"(whole program)", 0, total_sites});
    return;
  }
  if (marks.front().begin > 0) {
    segments_.push_back({"(prelude)", 0, marks.front().begin});
  }
  for (std::size_t i = 0; i < marks.size(); ++i) {
    assert(i == 0 || marks[i].begin >= marks[i - 1].begin);
    const std::uint64_t begin = std::min(marks[i].begin, total_sites);
    const std::uint64_t end =
        i + 1 < marks.size() ? std::min(marks[i + 1].begin, total_sites)
                             : total_sites;
    if (begin >= end) continue;  // empty phase (e.g. back-to-back marks)
    segments_.push_back({marks[i].name, begin, end});
  }
  if (segments_.empty()) {
    segments_.push_back({"(whole program)", 0, total_sites});
  }
}

std::size_t PhaseMap::segment_index_of(std::uint64_t site) const noexcept {
  assert(site < total_sites_);
  // First segment whose end exceeds the site.
  const auto it = std::upper_bound(
      segments_.begin(), segments_.end(), site,
      [](std::uint64_t s, const Segment& segment) { return s < segment.end; });
  assert(it != segments_.end());
  return static_cast<std::size_t>(it - segments_.begin());
}

std::string_view PhaseMap::phase_of(std::uint64_t site) const noexcept {
  return segments_[segment_index_of(site)].name;
}

}  // namespace ftb::fi
