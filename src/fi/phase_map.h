// PhaseMap: resolves dynamic-instruction indices to the source-level phase
// the kernel announced via Tracer::phase().  Reports use it to aggregate
// per-region vulnerability the way the paper's Figure 4 discussion does
// ("the first 80 dynamic instructions initialise floating point variables
// to zero", "instructions 80 to 200 execute initialization", ...).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fi/tracer.h"

namespace ftb::fi {

class PhaseMap {
 public:
  /// A resolved phase: name + half-open dynamic-instruction range.
  struct Segment {
    std::string name;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;

    std::uint64_t size() const noexcept { return end - begin; }
  };

  PhaseMap() = default;

  /// Builds from phase announcements (sorted by construction, since the
  /// tracer records them in execution order) and the total number of
  /// dynamic instructions.  Instructions before the first mark (if any)
  /// belong to an implicit "(prelude)" phase; a program that never calls
  /// Tracer::phase() yields one "(whole program)" segment.
  PhaseMap(std::span<const PhaseMark> marks, std::uint64_t total_sites);

  std::span<const Segment> segments() const noexcept { return segments_; }
  bool empty() const noexcept { return segments_.empty(); }
  std::uint64_t total_sites() const noexcept { return total_sites_; }

  /// Name of the phase containing `site` (binary search).
  std::string_view phase_of(std::uint64_t site) const noexcept;

  /// Index into segments() for `site`.
  std::size_t segment_index_of(std::uint64_t site) const noexcept;

 private:
  std::vector<Segment> segments_;
  std::uint64_t total_sites_ = 0;
};

}  // namespace ftb::fi
