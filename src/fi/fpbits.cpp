// fpbits is header-only; this translation unit exists so the static library
// always has at least one object for the module and to host non-inline
// helpers if they grow.
#include "fi/fpbits.h"

namespace ftb::fi {

static_assert(sizeof(double) == 8, "binary64 layout required");

}  // namespace ftb::fi
