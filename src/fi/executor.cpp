#include "fi/executor.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace ftb::fi {

namespace {

/// A run whose dynamic-instruction count differs from the golden run has
/// diverged control flow; the paper stops tracking at divergence and such
/// runs terminate "loudly" in our model, so we classify them as Crash.
bool step_count_matches(const Tracer& tracer, const GoldenRun& golden) noexcept {
  return tracer.steps() == golden.trace.size();
}

}  // namespace

ExperimentResult classify_finished(const Program& program,
                                   const GoldenRun& golden,
                                   const Tracer& tracer,
                                   const std::vector<double>& output) {
  ExperimentResult result;
  result.injected_error = tracer.injected_error();
  if (!step_count_matches(tracer, golden)) {
    result.outcome = Outcome::kCrash;
    result.crash_reason = CrashReason::kControlFlow;
    result.output_error = std::numeric_limits<double>::infinity();
    return result;
  }
  result.output_error = OutputComparator::linf_distance(output, golden.output);
  // A non-finite final output classifies as SDC here: the run finished
  // without trapping (the tracer's CrashSignal path handles mid-run
  // non-finites), so the corruption is silent by definition.
  result.outcome = program.comparator().classify(output, golden.output);
  // The program's ABFT detector (if any) sees the same finished output the
  // user would: an SDC it rejects is no longer *silent* (kDetected); a
  // rejection of an acceptable output stays Masked but is recorded as a
  // detector false positive.
  if (const Detector* detector = program.detector()) {
    result.detector_fired = detector->fires(output, golden.output);
    if (result.detector_fired && result.outcome == Outcome::kSdc) {
      result.outcome = Outcome::kDetected;
    }
  }
  return result;
}

ExperimentResult classify_crash(const Tracer& tracer,
                                std::uint64_t crash_site) noexcept {
  ExperimentResult result;
  result.outcome = Outcome::kCrash;
  result.crash_reason = CrashReason::kNonFinite;
  result.injected_error = tracer.injected_error();
  result.output_error = std::numeric_limits<double>::infinity();
  result.crash_site = crash_site;
  return result;
}

GoldenRun run_golden(const Program& program) {
  GoldenRun golden;
  golden.trace.reserve(1024);
  Tracer tracer =
      Tracer::recorder(golden.trace, &golden.phases, &golden.touch_sizes);
  golden.output = program.run(tracer);
  for (double v : golden.trace) {
    if (!std::isfinite(v)) {
      throw std::runtime_error(program.name() +
                               ": golden run produced a non-finite value");
    }
  }
  golden.tolerance = program.comparator().threshold_for(golden.output);
  return golden;
}

std::uint64_t count_dynamic_instructions(const Program& program) {
  Tracer tracer = Tracer::counter();
  (void)program.run(tracer);
  return tracer.steps();
}

ExperimentResult run_injected(const Program& program, const GoldenRun& golden,
                              const Injection& injection) {
  assert(injection.is_memory_fault() ||
         injection.site < golden.trace.size());
  Tracer tracer = Tracer::injector(injection);
  try {
    const std::vector<double> output = program.run(tracer);
    return classify_finished(program, golden, tracer, output);
  } catch (const CrashSignal& signal) {
    return classify_crash(tracer, signal.site);
  }
}

ExperimentResult run_injected_compare(const Program& program,
                                      const GoldenRun& golden,
                                      const Injection& injection,
                                      std::span<double> diffs) {
  assert(injection.is_memory_fault() ||
         injection.site < golden.trace.size());
  assert(diffs.size() == golden.trace.size());
  std::fill(diffs.begin(), diffs.end(), 0.0);
  Tracer tracer = Tracer::comparator(injection, golden.trace, diffs);
  try {
    const std::vector<double> output = program.run(tracer);
    return classify_finished(program, golden, tracer, output);
  } catch (const CrashSignal& signal) {
    return classify_crash(tracer, signal.site);
  }
}

}  // namespace ftb::fi
