// Experiment executors: golden runs, fault-injected runs, and fault-injected
// runs with error-propagation capture.  These are the only places that run
// Programs, so outcome classification is centralised here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fi/outcome.h"
#include "fi/program.h"
#include "fi/tracer.h"

namespace ftb::fi {

/// Everything the analysis needs from the fault-free execution.  Holding the
/// full trace is the memory cost the paper's "Overhead" section discusses:
/// one double per dynamic instruction.
struct GoldenRun {
  std::vector<double> trace;    // value produced at every dynamic instruction
  std::vector<double> output;   // final program output
  std::vector<PhaseMark> phases;  // phase announcements, by start index
  std::vector<std::uint64_t> touch_sizes;  // span length of each touch() call
  double tolerance = 0.0;       // comparator threshold for this output

  std::uint64_t dynamic_instructions() const noexcept { return trace.size(); }

  /// Total single-bit-flip experiments: 64 per dynamic instruction.
  std::uint64_t sample_space_size() const noexcept {
    return trace.size() * static_cast<std::uint64_t>(kBitsPerValue);
  }
};

/// Runs the program fault-free and records its trace and output.
GoldenRun run_golden(const Program& program);

/// Counts dynamic instructions without recording (cheap sizing pass).
std::uint64_t count_dynamic_instructions(const Program& program);

/// Runs one fault-injection experiment and classifies the outcome.  For
/// trace-target injections the site must be < golden.trace.size(); for
/// memory-target injections (fi/memfault.h) the word/touch_point must lie
/// within golden.touch_sizes.  When the program carries a detector, SDC
/// outcomes the detector catches become Outcome::kDetected.
ExperimentResult run_injected(const Program& program, const GoldenRun& golden,
                              const Injection& injection);

/// Classifies a run that finished (program.run returned `output`): exactly
/// the rule run_injected applies after a non-crashing run.  Exposed so the
/// snapshot fork-server (fi/snapshot.h), whose experiment children resume a
/// paused execution instead of calling run_injected, produces bit-identical
/// results.
ExperimentResult classify_finished(const Program& program,
                                   const GoldenRun& golden,
                                   const Tracer& tracer,
                                   const std::vector<double>& output);

/// Classifies a run that trapped (CrashSignal at `crash_site`); the
/// CrashSignal counterpart of classify_finished.
ExperimentResult classify_crash(const Tracer& tracer,
                                std::uint64_t crash_site) noexcept;

/// As run_injected, but also captures the propagated absolute error
/// |x_i' - x_i| into diffs[i] for i >= injection.site.  `diffs` must have
/// golden.trace.size() elements; the executor zeroes it first.  On Crash the
/// diff contents are unspecified (callers only consume Masked propagation
/// data, per Algorithm 1).
ExperimentResult run_injected_compare(const Program& program,
                                      const GoldenRun& golden,
                                      const Injection& injection,
                                      std::span<double> diffs);

}  // namespace ftb::fi
