// Outcome classification for fault-injection experiments (paper Section 2.1):
// Masked, SDC, or Crash, decided by comparing the corrupted run's final
// output against the golden run's output under an L-infinity tolerance.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace ftb::fi {

enum class Outcome : std::uint8_t {
  kMasked = 0,  // acceptable output (within tolerance of the golden run)
  kSdc = 1,     // silently wrong output
  kCrash = 2,   // "loud" failure: NaN/Inf in the injection, trace, or output
};

const char* to_string(Outcome outcome) noexcept;

/// Acceptance test: L-inf(output - golden) <= atol + rtol * L-inf(golden).
/// This is the paper's "acceptable tolerance level defined by the domain
/// user"; each kernel configuration carries its own comparator.
struct OutputComparator {
  double atol = 1e-9;
  double rtol = 1e-6;

  /// Largest absolute elementwise difference; +inf when any element pair
  /// contains a NaN (NaN output can never be acceptable).
  static double linf_distance(std::span<const double> output,
                              std::span<const double> golden) noexcept;

  /// The absolute tolerance implied by a golden output.
  double threshold_for(std::span<const double> golden) const noexcept;

  /// Full classification.  Any non-finite value in `output` is a Crash.
  Outcome classify(std::span<const double> output,
                   std::span<const double> golden) const noexcept;
};

/// A single fault-injection experiment's result record.
struct ExperimentResult {
  Outcome outcome = Outcome::kMasked;
  double injected_error = 0.0;  // |flip(x) - x| at the injection site
  double output_error = 0.0;    // L-inf distance of final outputs

  /// For Crash outcomes: the dynamic instruction at which the run
  /// "trapped" (produced its first non-finite value), or the injection
  /// site when the corrupted value itself was non-finite.  Undefined for
  /// other outcomes.  crash_site - injection.site is the detection
  /// latency in dynamic instructions.
  std::uint64_t crash_site = 0;
};

}  // namespace ftb::fi
