// Outcome classification for fault-injection experiments (paper Section 2.1):
// Masked, SDC, or Crash, decided by comparing the corrupted run's final
// output against the golden run's output under an L-infinity tolerance.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace ftb::fi {

enum class Outcome : std::uint8_t {
  kMasked = 0,    // acceptable output (within tolerance of the golden run)
  kSdc = 1,       // silently wrong output (includes a non-finite final output
                  // that was produced without tripping a CrashSignal: the
                  // program did not trap, so the corruption is silent)
  kCrash = 2,     // "loud" failure: NaN/Inf trap, fatal signal, diverged run
  kHang = 3,      // watchdog killed a runaway experiment (sandbox only)
  kDetected = 4,  // output is wrong, but the program's ABFT detector fired:
                  // the corruption would have been reported, so it is not
                  // *silent* data corruption (fi/detector.h)
};

const char* to_string(Outcome outcome) noexcept;

/// Human-readable name for a raw serialized outcome value, including values
/// this binary does not know (future log versions): "Masked", ...,
/// "unknown(7)".  Load diagnostics use this so v-next logs fail readably.
std::string outcome_name(std::uint64_t raw);

/// Why a Crash (or Hang) experiment terminated.  The in-process executor can
/// only observe the first two; the remaining reasons require the sandboxed
/// executor (fi/sandbox.h), which classifies real child-process deaths.
enum class CrashReason : std::uint8_t {
  kNone = 0,          // not a crash (Masked/SDC), or a Hang (no crash signal)
  kNonFinite = 1,     // NaN/Inf produced in the trace or output (CrashSignal)
  kControlFlow = 2,   // dynamic-instruction count diverged from the golden run
  kSigSegv = 3,       // child died with SIGSEGV
  kSigFpe = 4,        // child died with SIGFPE
  kSigAbrt = 5,       // child died with SIGABRT
  kSigBus = 6,        // child died with SIGBUS
  kSigIll = 7,        // child died with SIGILL
  kOtherSignal = 8,   // child died with some other fatal signal
  kAbnormalExit = 9,  // child exited nonzero without finishing the experiment
  kQuarantined = 10,  // (site, bit) killed >= K workers; supervisor stopped
                      // retrying it (campaign/supervisor.h quarantine ledger)
};

const char* to_string(CrashReason reason) noexcept;

/// True for reasons only the process-isolation layer can produce (a child
/// that was killed by a signal or exited abnormally).
bool is_isolation_reason(CrashReason reason) noexcept;

/// Acceptance test: L-inf(output - golden) <= atol + rtol * L-inf(golden).
/// This is the paper's "acceptable tolerance level defined by the domain
/// user"; each kernel configuration carries its own comparator.
struct OutputComparator {
  double atol = 1e-9;
  double rtol = 1e-6;

  /// Largest absolute elementwise difference; +inf when any element pair
  /// contains a NaN (NaN output can never be acceptable).
  static double linf_distance(std::span<const double> output,
                              std::span<const double> golden) noexcept;

  /// The absolute tolerance implied by a golden output.
  double threshold_for(std::span<const double> golden) const noexcept;

  /// Full classification.  Deterministic rule: any non-finite value in a
  /// *final* output is always SDC, never Masked -- the run completed without
  /// trapping, so nothing would alert the user, yet NaN/Inf output data can
  /// never be acceptable.  (A non-finite value produced *mid-run* trips the
  /// tracer's CrashSignal and is classified Crash by the executor instead;
  /// this rule only governs runs that finished.)
  Outcome classify(std::span<const double> output,
                   std::span<const double> golden) const noexcept;
};

/// A single fault-injection experiment's result record.
struct ExperimentResult {
  Outcome outcome = Outcome::kMasked;
  CrashReason crash_reason = CrashReason::kNone;  // set for Crash outcomes
  double injected_error = 0.0;  // |flip(x) - x| at the injection site
  double output_error = 0.0;    // L-inf distance of final outputs

  /// For Crash outcomes: the dynamic instruction at which the run
  /// "trapped" (produced its first non-finite value), or the injection
  /// site when the corrupted value itself was non-finite.  Undefined for
  /// other outcomes.  crash_site - injection.site is the detection
  /// latency in dynamic instructions.
  std::uint64_t crash_site = 0;

  /// True when the program's ABFT detector rejected the final output.  Set
  /// for kDetected (detector caught an SDC) and for Masked false positives
  /// (detector fired on an output that was actually within tolerance).
  bool detector_fired = false;
};

}  // namespace ftb::fi
