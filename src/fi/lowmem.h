// Low-memory analysis pipeline (the paper's Section 5 "Overhead" future
// work).  The standard pipeline keeps the golden trace -- one double per
// dynamic instruction -- resident for every comparison; at scale this is
// the dominant memory cost the paper worries about.  This module replaces
// it with
//
//   * CompressedGoldenTrace: the golden trace held Gorilla-compressed, with
//     only the (small) output vector uncompressed, and
//   * run_injected_compare_lowmem: a Compare-mode execution that decodes
//     golden values sequentially and streams propagated errors straight
//     into an observer (e.g. BoundaryAccumulator::record_masked_value),
//     never materialising an O(D) buffer.
//
// Since an experiment's outcome is only known at the end, boundary
// construction uses the two-pass recipe: classify first (cheap Inject
// mode), then re-run masked experiments in streaming-compare mode.
// bench/ablation_memory quantifies memory and runtime against the standard
// pipeline.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fi/executor.h"
#include "fi/program.h"
#include "util/gorilla.h"

namespace ftb::fi {

class CompressedGoldenTrace {
 public:
  CompressedGoldenTrace() = default;

  /// Compresses an existing golden run (the trace is dropped by the caller
  /// afterwards; output/phases/tolerance stay uncompressed -- they are
  /// O(output), not O(D)).
  static CompressedGoldenTrace from(const GoldenRun& golden);

  std::uint64_t sites() const noexcept { return sites_; }
  std::uint64_t sample_space_size() const noexcept {
    return sites_ * kBitsPerValue;
  }
  std::size_t compressed_bytes() const noexcept { return payload_.size(); }
  std::size_t raw_bytes() const noexcept { return sites_ * sizeof(double); }
  double compression_ratio() const noexcept {
    return raw_bytes() ? static_cast<double>(compressed_bytes()) /
                             static_cast<double>(raw_bytes())
                       : 0.0;
  }

  const std::vector<double>& output() const noexcept { return output_; }
  double tolerance() const noexcept { return tolerance_; }

  /// Sequential decoder positioned at site 0.
  util::GorillaCodec::Decoder decoder() const {
    return {payload_, static_cast<std::size_t>(sites_)};
  }

  /// Golden value at one site (decodes the prefix; O(site), for spot use).
  double value_at(std::uint64_t site) const;

 private:
  std::vector<std::uint8_t> payload_;
  std::uint64_t sites_ = 0;
  std::vector<double> output_;
  double tolerance_ = 0.0;
};

/// Outcome-only experiment against a compressed golden trace (Inject mode
/// needs no golden values; classification compares outputs only).
ExperimentResult run_injected_lowmem(const Program& program,
                                     const CompressedGoldenTrace& golden,
                                     const Injection& injection);

/// Streaming-compare experiment: `observe(site, error)` is called for every
/// dynamic instruction at or after the injection site with the propagated
/// absolute error (including zeros).  No O(D) buffer is allocated.
using StreamObserver = std::function<void(std::uint64_t, double)>;

ExperimentResult run_injected_compare_lowmem(
    const Program& program, const CompressedGoldenTrace& golden,
    const Injection& injection, const StreamObserver& observe);

}  // namespace ftb::fi
