#include "fi/outcome.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace ftb::fi {

const char* to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kMasked:
      return "Masked";
    case Outcome::kSdc:
      return "SDC";
    case Outcome::kCrash:
      return "Crash";
    case Outcome::kHang:
      return "Hang";
    case Outcome::kDetected:
      return "Detected";
  }
  return "?";
}

std::string outcome_name(std::uint64_t raw) {
  if (raw <= static_cast<std::uint64_t>(Outcome::kDetected)) {
    return to_string(static_cast<Outcome>(raw));
  }
  return "unknown(" + std::to_string(raw) + ")";
}

const char* to_string(CrashReason reason) noexcept {
  switch (reason) {
    case CrashReason::kNone:
      return "none";
    case CrashReason::kNonFinite:
      return "non-finite";
    case CrashReason::kControlFlow:
      return "control-flow";
    case CrashReason::kSigSegv:
      return "SIGSEGV";
    case CrashReason::kSigFpe:
      return "SIGFPE";
    case CrashReason::kSigAbrt:
      return "SIGABRT";
    case CrashReason::kSigBus:
      return "SIGBUS";
    case CrashReason::kSigIll:
      return "SIGILL";
    case CrashReason::kOtherSignal:
      return "signal";
    case CrashReason::kAbnormalExit:
      return "abnormal-exit";
    case CrashReason::kQuarantined:
      return "quarantined";
  }
  return "?";
}

bool is_isolation_reason(CrashReason reason) noexcept {
  switch (reason) {
    case CrashReason::kSigSegv:
    case CrashReason::kSigFpe:
    case CrashReason::kSigAbrt:
    case CrashReason::kSigBus:
    case CrashReason::kSigIll:
    case CrashReason::kOtherSignal:
    case CrashReason::kAbnormalExit:
    case CrashReason::kQuarantined:
      return true;
    case CrashReason::kNone:
    case CrashReason::kNonFinite:
    case CrashReason::kControlFlow:
      return false;
  }
  return false;
}

double OutputComparator::linf_distance(std::span<const double> output,
                                       std::span<const double> golden) noexcept {
  assert(output.size() == golden.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < output.size(); ++i) {
    const double diff = std::fabs(output[i] - golden[i]);
    if (std::isnan(diff)) return std::numeric_limits<double>::infinity();
    if (diff > worst) worst = diff;
  }
  return worst;
}

double OutputComparator::threshold_for(
    std::span<const double> golden) const noexcept {
  double scale = 0.0;
  for (double g : golden) scale = std::fmax(scale, std::fabs(g));
  return atol + rtol * scale;
}

Outcome OutputComparator::classify(std::span<const double> output,
                                   std::span<const double> golden) const noexcept {
  // A run that *finished* with NaN/Inf in its output never trapped, so the
  // corruption is silent: always SDC, never Masked (and not Crash -- crashes
  // are loud by definition; the mid-run CrashSignal path covers those).
  for (double v : output) {
    if (!std::isfinite(v)) return Outcome::kSdc;
  }
  const double distance = linf_distance(output, golden);
  return distance <= threshold_for(golden) ? Outcome::kMasked : Outcome::kSdc;
}

}  // namespace ftb::fi
