#include "fi/lowmem.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace ftb::fi {

namespace {

ExperimentResult classify_lowmem(const Program& program,
                                 const CompressedGoldenTrace& golden,
                                 const Tracer& tracer,
                                 const std::vector<double>& output) {
  ExperimentResult result;
  result.injected_error = tracer.injected_error();
  if (tracer.steps() != golden.sites()) {
    result.outcome = Outcome::kCrash;
    result.crash_reason = CrashReason::kControlFlow;
    result.output_error = std::numeric_limits<double>::infinity();
    return result;
  }
  result.output_error =
      OutputComparator::linf_distance(output, golden.output());
  // Non-finite final outputs are SDC (silent), never Crash; see
  // OutputComparator::classify.
  result.outcome = program.comparator().classify(output, golden.output());
  return result;
}

ExperimentResult crash_result_lowmem(const Tracer& tracer,
                                      std::uint64_t crash_site) noexcept {
  ExperimentResult result;
  result.outcome = Outcome::kCrash;
  result.crash_reason = CrashReason::kNonFinite;
  result.injected_error = tracer.injected_error();
  result.output_error = std::numeric_limits<double>::infinity();
  result.crash_site = crash_site;
  return result;
}

}  // namespace

CompressedGoldenTrace CompressedGoldenTrace::from(const GoldenRun& golden) {
  CompressedGoldenTrace trace;
  trace.payload_ = util::GorillaCodec::compress(golden.trace);
  trace.sites_ = golden.trace.size();
  trace.output_ = golden.output;
  trace.tolerance_ = golden.tolerance;
  return trace;
}

double CompressedGoldenTrace::value_at(std::uint64_t site) const {
  assert(site < sites_);
  util::GorillaCodec::Decoder cursor = decoder();
  double value = 0.0;
  for (std::uint64_t i = 0; i <= site; ++i) value = cursor.next();
  return value;
}

ExperimentResult run_injected_lowmem(const Program& program,
                                     const CompressedGoldenTrace& golden,
                                     const Injection& injection) {
  assert(injection.site < golden.sites());
  Tracer tracer = Tracer::injector(injection);
  try {
    const std::vector<double> output = program.run(tracer);
    return classify_lowmem(program, golden, tracer, output);
  } catch (const CrashSignal& signal) {
    return crash_result_lowmem(tracer, signal.site);
  }
}

ExperimentResult run_injected_compare_lowmem(
    const Program& program, const CompressedGoldenTrace& golden,
    const Injection& injection, const StreamObserver& observe) {
  assert(injection.site < golden.sites());

  struct StreamState {
    util::GorillaCodec::Decoder cursor;
    const StreamObserver* observe;
  };
  StreamState state{golden.decoder(), &observe};

  Tracer::StreamHooks hooks;
  hooks.ctx = &state;
  hooks.next_golden = [](void* ctx) {
    return static_cast<StreamState*>(ctx)->cursor.next();
  };
  hooks.observe = [](void* ctx, std::uint64_t site, double error) {
    auto* stream = static_cast<StreamState*>(ctx);
    if (*stream->observe) (*stream->observe)(site, error);
  };

  Tracer tracer = Tracer::stream_comparator(injection, hooks);
  try {
    const std::vector<double> output = program.run(tracer);
    return classify_lowmem(program, golden, tracer, output);
  } catch (const CrashSignal& signal) {
    return crash_result_lowmem(tracer, signal.site);
  } catch (const std::runtime_error&) {
    // Decoder exhausted: the faulty run executed more dynamic instructions
    // than the golden one -- diverged control flow, classified as Crash
    // (same rule as the step-count check in the standard executor).
    ExperimentResult result = crash_result_lowmem(tracer, tracer.steps());
    result.crash_reason = CrashReason::kControlFlow;
    return result;
  }
}

}  // namespace ftb::fi
