#include "fi/snapshot.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <ctime>
#include <limits>
#include <set>
#include <vector>

#include "fi/fpbits.h"
#include "util/cache.h"

#if defined(__unix__) || defined(__APPLE__)
#define FTB_SNAPSHOT_POSIX 1
#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif
#else
#define FTB_SNAPSHOT_POSIX 0
#endif

namespace ftb::fi {

// ---------------------------------------------------------------------------
// Wire codec (platform-independent: fuzz tests run it everywhere)
// ---------------------------------------------------------------------------

namespace {

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(get_u32(in)) |
         static_cast<std::uint64_t>(get_u32(in + 4)) << 32;
}

bool fail(std::string* diagnostic, const char* message) {
  if (diagnostic != nullptr) *diagnostic = message;
  return false;
}

}  // namespace

void encode_snapshot_command(const SnapshotCommand& command,
                             std::uint8_t out[kSnapshotCommandBytes]) {
  std::memset(out, 0, kSnapshotCommandBytes);
  put_u32(out, kSnapshotMagic);
  out[4] = kSnapshotVersion;
  out[5] = static_cast<std::uint8_t>(command.injection.kind);
  out[6] = static_cast<std::uint8_t>(command.injection.target);
  put_u64(out + 8, command.seq);
  put_u64(out + 16, command.injection.site);
  put_u32(out + 24, static_cast<std::uint32_t>(command.injection.bit));
  put_u32(out + 28, command.injection.touch_point);
  put_u64(out + 32, to_bits(command.injection.operand));
  put_u64(out + 40, command.injection.mask);
  put_u32(out + 48, util::crc32(out, 48));
}

bool decode_snapshot_command(std::span<const std::uint8_t> bytes,
                             SnapshotCommand* command,
                             std::string* diagnostic) {
  if (bytes.size() != kSnapshotCommandBytes) {
    return fail(diagnostic, "snapshot command: wrong frame size");
  }
  if (get_u32(bytes.data()) != kSnapshotMagic) {
    return fail(diagnostic, "snapshot command: bad magic");
  }
  if (bytes[4] != kSnapshotVersion) {
    return fail(diagnostic, "snapshot command: unsupported version");
  }
  if (get_u32(bytes.data() + 48) != util::crc32(bytes.data(), 48)) {
    return fail(diagnostic, "snapshot command: bad crc");
  }
  if (bytes[5] > static_cast<std::uint8_t>(Injection::Kind::kXorMask)) {
    return fail(diagnostic, "snapshot command: unknown injection kind");
  }
  if (bytes[6] > static_cast<std::uint8_t>(Injection::Target::kMemory)) {
    return fail(diagnostic, "snapshot command: unknown injection target");
  }
  if (bytes[7] != 0) {
    return fail(diagnostic, "snapshot command: nonzero reserved byte");
  }
  command->seq = get_u64(bytes.data() + 8);
  command->injection.kind = static_cast<Injection::Kind>(bytes[5]);
  command->injection.target = static_cast<Injection::Target>(bytes[6]);
  command->injection.site = get_u64(bytes.data() + 16);
  command->injection.bit = static_cast<int>(get_u32(bytes.data() + 24));
  command->injection.touch_point = get_u32(bytes.data() + 28);
  command->injection.operand = from_bits(get_u64(bytes.data() + 32));
  command->injection.mask = get_u64(bytes.data() + 40);
  return true;
}

void encode_snapshot_response(const SnapshotResponse& response,
                              std::uint8_t out[kSnapshotResponseBytes]) {
  std::memset(out, 0, kSnapshotResponseBytes);
  put_u32(out, kSnapshotMagic);
  out[4] = kSnapshotVersion;
  out[5] = static_cast<std::uint8_t>(response.type);
  out[6] = static_cast<std::uint8_t>(response.result.outcome);
  out[7] = static_cast<std::uint8_t>(response.result.crash_reason);
  put_u64(out + 8, response.seq);
  put_u64(out + 16, response.site);
  out[24] = response.result.detector_fired ? 1 : 0;
  put_u64(out + 28, to_bits(response.result.injected_error));
  put_u64(out + 36, to_bits(response.result.output_error));
  put_u64(out + 44, response.result.crash_site);
  put_u32(out + 52, util::crc32(out, 52));
}

bool decode_snapshot_response(std::span<const std::uint8_t> bytes,
                              SnapshotResponse* response,
                              std::string* diagnostic) {
  if (bytes.size() != kSnapshotResponseBytes) {
    return fail(diagnostic, "snapshot response: wrong frame size");
  }
  if (get_u32(bytes.data()) != kSnapshotMagic) {
    return fail(diagnostic, "snapshot response: bad magic");
  }
  if (bytes[4] != kSnapshotVersion) {
    return fail(diagnostic, "snapshot response: unsupported version");
  }
  if (get_u32(bytes.data() + 52) != util::crc32(bytes.data(), 52)) {
    return fail(diagnostic, "snapshot response: bad crc");
  }
  const std::uint8_t type = bytes[5];
  if (type < static_cast<std::uint8_t>(SnapshotResponse::Type::kReady) ||
      type > static_cast<std::uint8_t>(SnapshotResponse::Type::kReject)) {
    return fail(diagnostic, "snapshot response: unknown frame type");
  }
  if (bytes[6] > static_cast<std::uint8_t>(Outcome::kDetected)) {
    return fail(diagnostic, "snapshot response: unknown outcome");
  }
  if (bytes[7] > static_cast<std::uint8_t>(CrashReason::kQuarantined)) {
    return fail(diagnostic, "snapshot response: unknown crash reason");
  }
  if (bytes[24] > 1) {
    return fail(diagnostic, "snapshot response: non-boolean detector flag");
  }
  if (bytes[25] != 0 || bytes[26] != 0 || bytes[27] != 0) {
    return fail(diagnostic, "snapshot response: nonzero reserved byte");
  }
  response->type = static_cast<SnapshotResponse::Type>(type);
  response->seq = get_u64(bytes.data() + 8);
  response->site = get_u64(bytes.data() + 16);
  response->result.outcome = static_cast<Outcome>(bytes[6]);
  response->result.crash_reason = static_cast<CrashReason>(bytes[7]);
  response->result.detector_fired = bytes[24] != 0;
  response->result.injected_error = from_bits(get_u64(bytes.data() + 28));
  response->result.output_error = from_bits(get_u64(bytes.data() + 36));
  response->result.crash_site = get_u64(bytes.data() + 44);
  return true;
}

bool snapshot_safe(const Program& program) {
  // fork() would duplicate only the calling thread, so a kernel
  // configuration that spawns worker threads (":thr=" by the kernel
  // config-key convention) cannot be paused into holders.
  return snapshot_supported() &&
         program.config_key().find(":thr=") == std::string::npos;
}

std::vector<std::uint64_t> plan_checkpoints(const GoldenRun& golden,
                                            const SnapshotOptions& options) {
  const std::uint64_t total = golden.trace.size();
  std::set<std::uint64_t> sites{0};
  if (options.include_phase_edges) {
    for (const PhaseMark& mark : golden.phases) {
      if (mark.begin < total) sites.insert(mark.begin);
    }
  }
  const std::size_t cap = std::max<std::size_t>(options.max_checkpoints, 1);
  // Density placement: with site hints, spend the slot budget left after
  // the mandatory checkpoints on quantiles of the observed site
  // distribution -- a checkpoint serves every experiment at or above it, so
  // equal-mass spacing minimises the replayed prefix where the campaign
  // actually injects.  Without hints, fall back to the uniform grid.
  std::vector<std::uint64_t> hints;
  hints.reserve(options.site_hints.size());
  for (std::uint64_t hint : options.site_hints) {
    if (hint < total) hints.push_back(hint);
  }
  if (!hints.empty()) {
    std::sort(hints.begin(), hints.end());
    const std::size_t budget = cap > sites.size() ? cap - sites.size() : 1;
    for (std::size_t i = 0; i < budget; ++i) {
      const std::size_t index =
          budget > 1 ? i * (hints.size() - 1) / (budget - 1)
                     : hints.size() / 2;
      sites.insert(hints[index]);
    }
  } else if (options.interval > 0) {
    for (std::uint64_t s = options.interval; s < total; s += options.interval) {
      sites.insert(s);
    }
  }
  std::vector<std::uint64_t> plan(sites.begin(), sites.end());
  if (plan.size() > cap) {
    std::vector<std::uint64_t> thinned;
    thinned.reserve(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      thinned.push_back(plan[i * (plan.size() - 1) / (cap - 1 ? cap - 1 : 1)]);
    }
    thinned.erase(std::unique(thinned.begin(), thinned.end()), thinned.end());
    plan = std::move(thinned);
  }
  return plan;
}

#if FTB_SNAPSHOT_POSIX

namespace {

constexpr std::uint64_t kDeadSlot = ~std::uint64_t{0};

bool read_exact(int fd, void* buffer, std::size_t bytes) {
  char* out = static_cast<char*>(buffer);
  while (bytes > 0) {
    const ssize_t got = ::read(fd, out, bytes);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    out += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

/// read_exact with a wall-clock deadline (parent side only; children block).
bool read_exact_deadline(int fd, void* buffer, std::size_t bytes,
                         std::chrono::steady_clock::time_point deadline) {
  char* out = static_cast<char*>(buffer);
  while (bytes > 0) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    struct pollfd pfd {
      fd, POLLIN, 0
    };
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(std::min<long long>(
                            left.count() + 1, 1000)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) continue;
    const ssize_t got = ::read(fd, out, bytes);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    out += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_full_nosig(int fd, const void* buffer, std::size_t bytes) {
  const char* in = static_cast<const char*>(buffer);
  while (bytes > 0) {
    const ssize_t put = ::write(fd, in, bytes);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    in += put;
    bytes -= static_cast<std::size_t>(put);
  }
  return true;
}

CrashReason snapshot_reason_from_signal(int sig) noexcept {
  switch (sig) {
    case SIGSEGV:
      return CrashReason::kSigSegv;
    case SIGFPE:
      return CrashReason::kSigFpe;
    case SIGABRT:
      return CrashReason::kSigAbrt;
    case SIGBUS:
      return CrashReason::kSigBus;
    case SIGILL:
      return CrashReason::kSigIll;
    default:
      return CrashReason::kOtherSignal;
  }
}

ExperimentResult snapshot_isolation_result(Outcome outcome,
                                           CrashReason reason) {
  ExperimentResult result;
  result.outcome = outcome;
  result.crash_reason = reason;
  result.injected_error = std::numeric_limits<double>::infinity();
  result.output_error = std::numeric_limits<double>::infinity();
  result.crash_site = 0;
  return result;
}

void die_with_parent() {
#if defined(__linux__)
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) ::_exit(0);  // parent already gone before prctl
#endif
}

/// Shared state for the runner process tree, threaded through the tracer's
/// checkpoint hook.  Forks mutate `role`/`experiment_seq` in the child
/// branch, which is how one shared code path serves runner, holder, and
/// experiment child.
struct TreeContext {
  const Program* program = nullptr;
  const GoldenRun* golden = nullptr;
  const SnapshotOptions* options = nullptr;
  std::vector<std::uint64_t> plan;    // planned sites, ascending, plan[0]==0
  std::vector<int> command_read;      // per-slot command pipe read ends
  int response_write = -1;            // shared response pipe write end
  int keepalive_read = -1;            // runner blocks here after the golden run
  std::size_t next_plan = 1;          // next plan slot (0 is forked pre-run)
  Tracer* tracer = nullptr;
  bool is_experiment = false;
  std::uint64_t experiment_seq = 0;
};

void send_response(const TreeContext& ctx, const SnapshotResponse& response) {
  std::uint8_t frame[kSnapshotResponseBytes];
  encode_snapshot_response(response, frame);
  // A parent that went away takes the whole tree with it (PDEATHSIG); a
  // failed write here needs no recovery.
  (void)write_full_nosig(ctx.response_write, frame, sizeof(frame));
}

/// Holder body, entered inside the checkpoint hook with the whole execution
/// paused in this process's address space.  Loops serving experiments;
/// returns ONLY in a forked experiment child (with the tracer rearmed), and
/// _exits on command-pipe EOF (parent teardown).
void holder_loop(TreeContext& ctx, Tracer& tracer, std::size_t slot,
                 std::uint64_t site) {
  const int fd = ctx.command_read[slot];
  for (;;) {
    std::uint8_t frame[kSnapshotCommandBytes];
    if (!read_exact(fd, frame, sizeof(frame))) ::_exit(0);
    SnapshotCommand command;
    std::string diagnostic;
    if (!decode_snapshot_command({frame, sizeof(frame)}, &command,
                                 &diagnostic)) {
      SnapshotResponse reject;
      reject.type = SnapshotResponse::Type::kReject;
      reject.seq = 0;  // the frame cannot be trusted, not even its seq
      reject.site = site;
      send_response(ctx, reject);
      continue;
    }
    const bool serveable = command.injection.is_memory_fault()
                               ? site == 0
                               : command.injection.site >= site;
    if (!serveable) {
      SnapshotResponse reject;
      reject.type = SnapshotResponse::Type::kReject;
      reject.seq = command.seq;
      reject.site = site;
      send_response(ctx, reject);
      continue;
    }

    const pid_t child = ::fork();
    if (child < 0) {
      SnapshotResponse reject;
      reject.type = SnapshotResponse::Type::kReject;
      reject.seq = command.seq;
      reject.site = site;
      send_response(ctx, reject);
      continue;
    }
    if (child == 0) {
      die_with_parent();  // tied to this holder
      ctx.is_experiment = true;
      ctx.experiment_seq = command.seq;
      tracer.rearm(command.injection);
      return;  // unwinds out of the hook and resumes the paused execution
    }

    // Watchdog: an experiment child gets timeout_ms of wall clock from its
    // fork.  This mirrors the worker pool's per-experiment heartbeat budget
    // (the pool beats only at experiment start/finish too).
    std::uint32_t budget_ms =
        ctx.options->timeout_ms != 0 ? ctx.options->timeout_ms : 2000;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(budget_ms);
    int status = 0;
    bool reaped = false;
    bool timed_out = false;
    for (;;) {
      const pid_t waited = ::waitpid(child, &status, WNOHANG);
      if (waited == child) {
        reaped = true;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        timed_out = true;
        break;
      }
      struct timespec nap {
        0, static_cast<long>(ctx.options->poll_interval_us) * 1000
      };
      ::nanosleep(&nap, nullptr);
    }
    if (timed_out) {
      ::kill(child, SIGKILL);
      ::waitpid(child, &status, 0);
      // The child may have finished or died on its own between the last
      // poll and the SIGKILL; believe the reaped status over the watchdog.
      reaped = true;
    }

    SnapshotResponse response;
    response.seq = command.seq;
    response.site = site;
    if (reaped && WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      continue;  // the child wrote its own kResult frame before exiting
    }
    response.type = SnapshotResponse::Type::kResult;
    if (reaped && WIFSIGNALED(status) && WTERMSIG(status) != SIGKILL) {
      response.result = snapshot_isolation_result(
          Outcome::kCrash, snapshot_reason_from_signal(WTERMSIG(status)));
    } else if (reaped && WIFEXITED(status)) {
      response.result = snapshot_isolation_result(Outcome::kCrash,
                                                  CrashReason::kAbnormalExit);
    } else {
      response.result =
          snapshot_isolation_result(Outcome::kHang, CrashReason::kNone);
    }
    send_response(ctx, response);
  }
}

/// Forks the holder for `slot`, pausing the current execution state as the
/// checkpoint.  In the runner it registers the holder and returns; in the
/// experiment-child branch it returns with ctx.is_experiment set.
void spawn_holder(TreeContext& ctx, Tracer& tracer, std::size_t slot,
                  std::uint64_t site) {
  const pid_t holder = ::fork();
  if (holder == 0) {
    die_with_parent();  // tied to the runner
    holder_loop(ctx, tracer, slot, site);
    return;  // experiment child: resume the paused execution
  }
  SnapshotResponse ready;
  ready.seq = slot;
  ready.site = holder > 0 ? site : kDeadSlot;  // fork failure: dead slot
  ready.type = SnapshotResponse::Type::kReady;
  send_response(ctx, ready);
}

std::uint64_t checkpoint_reached(void* ctx_raw, Tracer& tracer,
                                 std::uint64_t index) {
  auto* ctx = static_cast<TreeContext*>(ctx_raw);
  if (ctx->is_experiment) return Tracer::kNoCheckpoint;
  while (ctx->next_plan < ctx->plan.size() &&
         ctx->plan[ctx->next_plan] <= index) {
    const std::size_t slot = ctx->next_plan++;
    spawn_holder(*ctx, tracer, slot, index);
    if (ctx->is_experiment) return Tracer::kNoCheckpoint;
  }
  return ctx->next_plan < ctx->plan.size() ? ctx->plan[ctx->next_plan]
                                           : Tracer::kNoCheckpoint;
}

/// Runner process body.  Executes the golden run once, pausing holders at
/// every planned checkpoint; experiment children forked from those holders
/// re-enter this stack mid-run and finish it with a real fault armed.
[[noreturn]] void runner_main(TreeContext& ctx) {
  die_with_parent();  // tied to the supervising SnapshotServer process
  ::signal(SIGPIPE, SIG_IGN);

  // A never-firing placeholder keeps the runner's execution bit-identical
  // to the golden run while using the exact tracer mode (kInject) a classic
  // run_injected experiment would, so a rearmed child's tracer state is
  // indistinguishable from a fresh injector's.
  Tracer tracer = Tracer::injector(
      Injection::bit_flip(Tracer::kNoCheckpoint, 0));
  ctx.tracer = &tracer;
  tracer.arm_checkpoint_hook(
      {&ctx, checkpoint_reached},
      ctx.plan.size() > 1 ? ctx.plan[1] : Tracer::kNoCheckpoint);

  // The pre-run checkpoint (instruction 0): memory-resident faults and
  // sites below the first interval replay the whole program from here.
  spawn_holder(ctx, tracer, 0, 0);

  try {
    const std::vector<double> output = ctx.program->run(tracer);
    if (ctx.is_experiment) {
      SnapshotResponse response;
      response.type = SnapshotResponse::Type::kResult;
      response.seq = ctx.experiment_seq;
      response.result =
          classify_finished(*ctx.program, *ctx.golden, tracer, output);
      send_response(ctx, response);
      ::_exit(0);
    }
  } catch (const CrashSignal& signal) {
    if (!ctx.is_experiment) ::_exit(3);  // golden run can never trap
    SnapshotResponse response;
    response.type = SnapshotResponse::Type::kResult;
    response.seq = ctx.experiment_seq;
    response.result = classify_crash(tracer, signal.site);
    send_response(ctx, response);
    ::_exit(0);
  } catch (...) {
    // Mirrors the sandbox child: an unexpected exception (bad_alloc from a
    // corrupted allocation size, ...) is an abnormal exit the holder
    // classifies.
    ::_exit(2);
  }

  // Golden run complete: announce the tree is built (site doubles as the
  // observed dynamic-instruction count for a determinism cross-check),
  // then sleep until the parent closes the keepalive pipe.
  SnapshotResponse built;
  built.type = SnapshotResponse::Type::kBuilt;
  built.seq = 0;
  built.site = tracer.steps();
  send_response(ctx, built);
  char byte = 0;
  while (::read(ctx.keepalive_read, &byte, 1) > 0) {
  }
  ::_exit(0);
}

}  // namespace

bool snapshot_supported() noexcept { return true; }

struct SnapshotServer::Impl {
  const Program& program;
  const GoldenRun& golden;
  SnapshotOptions options;
  SnapshotStats stats;

  std::vector<std::uint64_t> plan;    // planned checkpoint sites
  std::vector<std::uint64_t> actual;  // registered sites (kDeadSlot = dead)
  std::vector<int> command_write;     // parent write end per slot
  int response_read = -1;
  int keepalive_write = -1;
  pid_t runner = -1;
  std::uint64_t next_seq = 1;
  int rebuilds_left = 0;
  bool live = false;
  const bool safe;

  Impl(const Program& program_in, const GoldenRun& golden_in,
       SnapshotOptions options_in)
      : program(program_in),
        golden(golden_in),
        options(options_in),
        safe(snapshot_safe(program_in)) {
    if (options.timeout_ms == 0) options.timeout_ms = 2000;
    rebuilds_left = std::max(options.max_rebuilds, 0);
    if (safe) build();
  }

  ~Impl() { teardown(); }

  void close_fd(int& fd) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  void teardown() {
    for (int& fd : command_write) close_fd(fd);
    close_fd(keepalive_write);
    // Holders see EOF, the runner sees keepalive EOF; give the tree a
    // moment to exit, then SIGKILL (PDEATHSIG cascades to every holder and
    // experiment child under the runner).
    if (runner > 0) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(500);
      int status = 0;
      for (;;) {
        const pid_t waited = ::waitpid(runner, &status, WNOHANG);
        if (waited == runner) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          ::kill(runner, SIGKILL);
          ::waitpid(runner, &status, 0);
          break;
        }
        struct timespec nap {
          0, 1000000
        };
        ::nanosleep(&nap, nullptr);
      }
      runner = -1;
    }
    close_fd(response_read);
    command_write.clear();
    actual.clear();
    live = false;
    stats.checkpoints = 0;
  }

  void build() {
    teardown();
    plan = plan_checkpoints(golden, options);
    actual.assign(plan.size(), kDeadSlot);

    TreeContext ctx;
    ctx.program = &program;
    ctx.golden = &golden;
    ctx.options = &options;
    ctx.plan = plan;

    int response_fds[2];
    if (::pipe(response_fds) != 0) return;
    int keepalive_fds[2];
    if (::pipe(keepalive_fds) != 0) {
      ::close(response_fds[0]);
      ::close(response_fds[1]);
      return;
    }
    std::vector<std::array<int, 2>> command_fds(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (::pipe(command_fds[i].data()) != 0) {
        for (std::size_t j = 0; j < i; ++j) {
          ::close(command_fds[j][0]);
          ::close(command_fds[j][1]);
        }
        ::close(response_fds[0]);
        ::close(response_fds[1]);
        ::close(keepalive_fds[0]);
        ::close(keepalive_fds[1]);
        return;
      }
    }

    ctx.response_write = response_fds[1];
    ctx.keepalive_read = keepalive_fds[0];
    ctx.command_read.resize(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      ctx.command_read[i] = command_fds[i][0];
    }

    const pid_t pid = ::fork();
    if (pid == 0) {
      // Runner: drop every parent-side end so pipe EOFs mean what they
      // should (a command pipe reaches EOF only once the parent's write
      // end -- the sole remaining one -- closes).
      ::close(response_fds[0]);
      ::close(keepalive_fds[1]);
      for (std::size_t i = 0; i < plan.size(); ++i) {
        ::close(command_fds[i][1]);
      }
      runner_main(ctx);  // never returns
    }
    ::close(response_fds[1]);
    ::close(keepalive_fds[0]);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      ::close(command_fds[i][0]);
    }
    if (pid < 0) {
      ::close(response_fds[0]);
      ::close(keepalive_fds[1]);
      for (std::size_t i = 0; i < plan.size(); ++i) {
        ::close(command_fds[i][1]);
      }
      return;
    }
    runner = pid;
    response_read = response_fds[0];
    keepalive_write = keepalive_fds[1];
    command_write.resize(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      command_write[i] = command_fds[i][1];
    }

    // Collect kReady registrations until the runner announces kBuilt.  The
    // golden run itself bounds this phase; 60 s is far beyond any kernel in
    // the tree and exists only so a wedged runner cannot wedge us.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    for (;;) {
      std::uint8_t frame[kSnapshotResponseBytes];
      if (!read_exact_deadline(response_read, frame, sizeof(frame),
                               deadline)) {
        teardown();
        return;
      }
      SnapshotResponse response;
      if (!decode_snapshot_response({frame, sizeof(frame)}, &response)) {
        ++stats.rejected_frames;
        teardown();
        return;
      }
      if (response.type == SnapshotResponse::Type::kReady) {
        if (response.seq < actual.size()) actual[response.seq] = response.site;
        continue;
      }
      if (response.type == SnapshotResponse::Type::kBuilt) {
        if (response.site != golden.trace.size()) {
          teardown();  // nondeterministic program: refuse to serve from it
          return;
        }
        break;
      }
      ++stats.rejected_frames;
      teardown();
      return;
    }

    std::size_t live_slots = 0;
    for (std::uint64_t site : actual) {
      if (site != kDeadSlot) ++live_slots;
    }
    if (live_slots == 0 || actual[0] != 0) {
      teardown();
      return;
    }
    stats.checkpoints = live_slots;
    live = true;
  }

  /// Slot with the largest registered site <= `site` (memory faults pin to
  /// the pre-run slot 0).  Returns npos when no slot fits.
  std::size_t pick_slot(const Injection& injection) const {
    if (injection.is_memory_fault()) {
      return actual.empty() || actual[0] != 0 ? std::string::npos : 0;
    }
    std::size_t best = std::string::npos;
    for (std::size_t i = 0; i < actual.size(); ++i) {
      if (actual[i] == kDeadSlot || actual[i] > injection.site) continue;
      if (best == std::string::npos || actual[i] > actual[best]) best = i;
    }
    return best;
  }

  bool damaged() {
    if (runner <= 0) return true;
    int status = 0;
    return ::waitpid(runner, &status, WNOHANG) != 0;
  }

  ExperimentResult fallback(const Injection& injection) {
    ++stats.fallback_experiments;
    return run_injected(program, golden, injection);
  }

  ExperimentResult run(const Injection& injection) {
    if (!safe) return fallback(injection);
    for (;;) {
      if (!live || damaged()) {
        // Permanent degradation once the rebuild budget is spent: reap what
        // is left of the tree so healthy() reports the truth.
        if (rebuilds_left <= 0) {
          teardown();
          return fallback(injection);
        }
        --rebuilds_left;
        ++stats.rebuilds;
        build();
        if (!live) return fallback(injection);
      }

      const std::size_t slot = pick_slot(injection);
      if (slot == std::string::npos) return fallback(injection);

      SnapshotCommand command;
      command.seq = next_seq++;
      command.injection = injection;
      std::uint8_t frame[kSnapshotCommandBytes];
      encode_snapshot_command(command, frame);
      if (!write_full_nosig(command_write[slot], frame, sizeof(frame))) {
        // Holder gone: the tree is damaged; rebuild (or degrade) and retry.
        live = false;
        continue;
      }

      // The holder enforces timeout_ms on the child and then reports, so a
      // healthy tree always answers within one budget plus slack.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(2 * options.timeout_ms + 1000);
      for (;;) {
        std::uint8_t in[kSnapshotResponseBytes];
        if (!read_exact_deadline(response_read, in, sizeof(in), deadline)) {
          live = false;  // deadline or broken pipe: damage
          break;
        }
        SnapshotResponse response;
        if (!decode_snapshot_response({in, sizeof(in)}, &response)) {
          ++stats.rejected_frames;
          live = false;  // desynchronised stream: rebuild
          break;
        }
        if (response.seq < command.seq) {
          ++stats.rejected_frames;  // stale frame from an earlier timeout
          continue;
        }
        if (response.type == SnapshotResponse::Type::kResult &&
            response.seq == command.seq) {
          ++stats.served;
          if (!injection.is_memory_fault()) {
            stats.skipped_prefix += actual[slot];
          }
          return response.result;
        }
        if (response.type == SnapshotResponse::Type::kReject) {
          ++stats.rejected_frames;
          return fallback(injection);
        }
        ++stats.rejected_frames;
        live = false;  // unexpected frame type mid-serve
        break;
      }
    }
  }

  std::uint64_t nearest(std::uint64_t site) const {
    std::uint64_t best = Tracer::kNoCheckpoint;
    for (std::uint64_t s : actual) {
      if (s == kDeadSlot || s > site) continue;
      if (best == Tracer::kNoCheckpoint || s > best) best = s;
    }
    return best;
  }
};

SnapshotServer::SnapshotServer(const Program& program, const GoldenRun& golden,
                               SnapshotOptions options)
    : impl_(std::make_unique<Impl>(program, golden, options)) {}

SnapshotServer::~SnapshotServer() = default;

bool SnapshotServer::healthy() const noexcept { return impl_->live; }

std::size_t SnapshotServer::checkpoint_count() const noexcept {
  return impl_->live ? impl_->stats.checkpoints : 0;
}

std::uint64_t SnapshotServer::nearest_checkpoint(
    std::uint64_t site) const noexcept {
  return impl_->live ? impl_->nearest(site) : Tracer::kNoCheckpoint;
}

std::int64_t SnapshotServer::runner_pid() const noexcept {
  return impl_->live ? static_cast<std::int64_t>(impl_->runner) : -1;
}

ExperimentResult SnapshotServer::run(const Injection& injection) {
  return impl_->run(injection);
}

const SnapshotStats& SnapshotServer::stats() const noexcept {
  return impl_->stats;
}

#else  // !FTB_SNAPSHOT_POSIX

bool snapshot_supported() noexcept { return false; }

// Without fork() there is no tree; the server exists but every experiment
// takes the in-process path, so callers need no platform branches.
struct SnapshotServer::Impl {
  const Program& program;
  const GoldenRun& golden;
  SnapshotStats stats;
  Impl(const Program& p, const GoldenRun& g) : program(p), golden(g) {}
};

SnapshotServer::SnapshotServer(const Program& program, const GoldenRun& golden,
                               SnapshotOptions)
    : impl_(std::make_unique<Impl>(program, golden)) {}

SnapshotServer::~SnapshotServer() = default;

bool SnapshotServer::healthy() const noexcept { return false; }

std::size_t SnapshotServer::checkpoint_count() const noexcept { return 0; }

std::uint64_t SnapshotServer::nearest_checkpoint(std::uint64_t) const noexcept {
  return Tracer::kNoCheckpoint;
}

std::int64_t SnapshotServer::runner_pid() const noexcept { return -1; }

ExperimentResult SnapshotServer::run(const Injection& injection) {
  ++impl_->stats.fallback_experiments;
  return run_injected(impl_->program, impl_->golden, injection);
}

const SnapshotStats& SnapshotServer::stats() const noexcept {
  return impl_->stats;
}

#endif  // FTB_SNAPSHOT_POSIX

}  // namespace ftb::fi
