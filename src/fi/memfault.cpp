#include "fi/memfault.h"

#include "fi/fpbits.h"

namespace ftb::fi {

std::uint64_t burst_mask(int start_bit, int width) noexcept {
  if (start_bit < 0) start_bit = 0;
  if (start_bit >= kBitsPerValue) start_bit = kBitsPerValue - 1;
  if (width < 1) width = 1;
  if (width > kBitsPerValue - start_bit) width = kBitsPerValue - start_bit;
  const std::uint64_t run = width == kBitsPerValue
                                ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << width) - 1;
  return run << start_bit;
}

Injection trace_burst(std::uint64_t site, int start_bit, int width) noexcept {
  return Injection::xor_mask(site, burst_mask(start_bit, width));
}

std::uint64_t mem_sample_space(
    std::span<const std::uint64_t> touch_sizes) noexcept {
  std::uint64_t words = 0;
  for (std::uint64_t size : touch_sizes) words += size;
  return words * static_cast<std::uint64_t>(kBitsPerValue);
}

MemFault mem_fault_at(std::span<const std::uint64_t> touch_sizes,
                      std::uint64_t flat, int width) noexcept {
  MemFault fault;
  fault.width = width;
  fault.start_bit = static_cast<int>(flat % kBitsPerValue);
  std::uint64_t word = flat / kBitsPerValue;
  for (std::size_t point = 0; point < touch_sizes.size(); ++point) {
    if (word < touch_sizes[point]) {
      fault.touch_point = static_cast<std::uint32_t>(point);
      fault.word = word;
      return fault;
    }
    word -= touch_sizes[point];
  }
  // Out-of-range flat index: clamp to the last word (callers sample within
  // mem_sample_space, so this only guards against stale journals).
  fault.touch_point = touch_sizes.empty()
                          ? 0
                          : static_cast<std::uint32_t>(touch_sizes.size() - 1);
  fault.word = touch_sizes.empty() ? 0 : touch_sizes.back() - 1;
  return fault;
}

}  // namespace ftb::fi
