// Process-isolation layer for fault-injection experiments.
//
// The in-process executor (fi/executor.h) can only observe "polite" crashes:
// a CrashSignal thrown on the first non-finite value, or a step-count
// mismatch detected after the run returns.  A bit flip that corrupts control
// flow -- a loop trip count, a pivot index, an array offset -- instead
// segfaults or hangs the *entire campaign process*, which is exactly the
// failure class a resilience study must tolerate.  This layer runs batches
// of experiments in a forked child process:
//
//   * results stream back through a shared-memory result block, so every
//     experiment completed before an abnormal death is preserved;
//   * a child killed by a signal classifies the in-flight experiment as
//     Crash with a CrashReason derived from the signal (SIGSEGV, SIGFPE,
//     SIGBUS, SIGABRT, SIGILL, ...);
//   * a wall-clock watchdog converts runaway experiments (no progress for
//     `timeout_ms`) into the Outcome::kHang classification by SIGKILLing
//     the child;
//   * after each abnormal death the batch resumes in a fresh child at the
//     next experiment, so one poisoned flip never costs more than itself;
//   * transient spawn failures (fork/mmap) are retried with exponential
//     backoff; when isolation is unavailable (retries exhausted or a
//     non-POSIX platform) the remaining experiments gracefully fall back to
//     the in-process executor -- with NO protection against genuine
//     segfaults or hangs, so only feed well-behaved programs to the
//     fallback (see SandboxOptions::allow_in_process_fallback).
//
// Call this from a single thread.  fork() is invoked from the calling
// thread while any worker threads should be idle (the campaign layer runs
// sandbox batches sequentially, never from inside a thread-pool task).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fi/executor.h"
#include "fi/outcome.h"
#include "fi/program.h"
#include "fi/snapshot.h"
#include "util/retry.h"

namespace ftb::telemetry {
class Telemetry;
}

namespace ftb::fi {

struct SandboxOptions {
  /// Watchdog budget per experiment, measured from the last observed
  /// progress (an experiment starting or finishing).  0 disables the
  /// watchdog entirely -- a hung experiment then hangs the caller, so 0 is
  /// only for interactive runs that accept that risk.  Campaign-driven
  /// paths (campaign/checkpoint.h, service/jobs.cpp) never pass 0 through:
  /// they substitute a fallback deadline derived from the supervisor's
  /// heartbeat timeout.
  std::uint32_t timeout_ms = 2000;

  /// Parent poll cadence while the child runs.
  std::uint32_t poll_interval_us = 200;

  /// Transient fork/mmap failures are retried this many times ...
  int max_spawn_retries = 3;

  /// ... with this initial backoff, doubled per retry.
  std::uint32_t retry_backoff_ms = 5;

  /// When isolation cannot be established (spawn retries exhausted, or the
  /// platform has no fork), run the remaining experiments in-process.
  /// Disable to get a std::runtime_error instead -- prefer that for hazard
  /// programs whose corrupted runs can take down the campaign process.
  bool allow_in_process_fallback = true;
};

/// Observability counters for one sandboxed batch.
struct SandboxStats {
  std::uint64_t children_spawned = 0;  // fork()s that succeeded
  std::uint64_t signal_deaths = 0;     // children killed by a fault's signal
  std::uint64_t watchdog_kills = 0;    // children SIGKILLed by the watchdog
  std::uint64_t abnormal_exits = 0;    // children that exited nonzero
  std::uint64_t spawn_retries = 0;     // fork/mmap failures retried
  std::uint64_t fallback_experiments = 0;  // experiments run in-process
};

/// True when this build/platform can isolate experiments in child processes.
bool sandbox_supported() noexcept;

/// Runs `injections[i]` against `program` inside a sandboxed child process
/// and returns one ExperimentResult per injection, in order.  For
/// well-behaved programs the results are identical to run_injected(); for
/// misbehaving ones the extra outcomes above appear.  Experiments that died
/// abnormally report injected_error = output_error = +inf and crash_site = 0
/// (the child took that knowledge with it).
std::vector<ExperimentResult> run_injected_sandboxed(
    const Program& program, const GoldenRun& golden,
    std::span<const Injection> injections, const SandboxOptions& options = {},
    SandboxStats* stats = nullptr);

// ---------------------------------------------------------------------------
// Persistent worker pool.
//
// run_injected_sandboxed() pays one fork() per batch *and* one per abnormal
// death; a campaign over a hazard kernel with thousands of lethal flips
// spends most of its wall clock spawning children.  WorkerPool instead
// pre-forks N long-lived workers at construction.  Each worker owns
//
//   * a private shared-memory region: a heartbeat counter the worker bumps
//     on every chunk pickup and experiment start/finish, started/done
//     progress counters, and fixed-capacity injection/result slot arrays;
//   * a command pipe: the parent copies a chunk of injections into the
//     region and writes the chunk size (u32) to the pipe; the worker blocks
//     in read() between chunks, so an idle pool costs nothing.
//
// The parent polls: a worker whose pid waits (signal death / abnormal exit)
// or whose heartbeat stalls past heartbeat_timeout_ms (SIGKILLed) yields a
// WorkerEvent carrying every result the worker published before dying plus
// the index of the in-flight culprit experiment, classified through the
// same CrashReason taxonomy as the per-batch sandbox.  Dead workers are
// respawned with exponential backoff (util/retry.h); when a respawn fails
// terminally the pool *shrinks* instead of erroring, down to a floor of
// zero -- callers watch worker_count() and fall back in-process (see
// campaign/supervisor.h, which layers work-queue accounting, quarantine,
// and checkpoint integration on top of this class).
//
// Single-threaded, like the rest of this file: construct, dispatch, and
// poll from one thread while any worker threads are idle.
// ---------------------------------------------------------------------------

struct WorkerPoolOptions {
  /// Target number of persistent workers.  The pool starts with as many as
  /// it can actually spawn (degrading quietly under resource pressure).
  int workers = 4;

  /// Capacity of each worker's injection/result slot arrays: the largest
  /// chunk one try_dispatch() call may carry.
  std::size_t chunk_capacity = 64;

  /// A busy worker whose heartbeat does not change for this long is
  /// presumed hung, SIGKILLed, and reported as a kWorkerHang event.  The
  /// heartbeat advances when a chunk is picked up and when an experiment
  /// starts or finishes, so the budget is per experiment, not per chunk.
  /// 0 disables hang detection.
  std::uint32_t heartbeat_timeout_ms = 2000;

  /// Backoff policy for fork/mmap, applied per spawn or respawn attempt.
  util::RetryOptions spawn_retry;

  /// Serve experiments from a snapshot fork-server (fi/snapshot.h) instead
  /// of replaying each one from instruction 0.  Every worker builds its own
  /// tree at spawn (and after respawn); results stay bit-identical to the
  /// classic path for well-behaved programs, and workers fall back to
  /// run_injected() when the program is not snapshot_safe() or the tree
  /// degrades.
  bool use_snapshots = false;

  /// Checkpoint cadence/watchdog for the per-worker snapshot trees.
  SnapshotOptions snapshot;

  /// Testing seam: the first N fork attempts fail as if fork() returned
  /// EAGAIN, without forking.  Lets tests drive the degradation path
  /// (shrink, then empty pool) deterministically.
  int simulate_spawn_failures = 0;

  /// Testing seam: like simulate_spawn_failures, but only *respawn*
  /// attempts (replacements for dead workers) fail.  Initial spawns
  /// succeed, so tests can build a healthy pool and then force it to
  /// shrink the first time a worker dies.
  int simulate_respawn_failures = 0;

  /// Optional telemetry sink (telemetry/events.h).  When non-null and
  /// enabled, the pool emits worker.spawn / worker.respawn spans,
  /// worker.death / worker.hang instants, and pool.* counters plus
  /// heartbeat-gap and chunk-round-trip histograms.  Never owned; must
  /// outlive the pool.  nullptr (the default) costs one pointer test per
  /// instrumentation point.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Observability counters over the pool's lifetime.
struct WorkerPoolStats {
  std::uint64_t workers_spawned = 0;   // successful fork()s, incl. respawns
  std::uint64_t respawns = 0;          // replacements for dead workers
  std::uint64_t signal_deaths = 0;     // workers killed by a fault's signal
  std::uint64_t hang_kills = 0;        // workers SIGKILLed on heartbeat stall
  std::uint64_t abnormal_exits = 0;    // workers that exited nonzero
  std::uint64_t spawn_retries = 0;     // fork/mmap failures retried
  std::uint64_t shrinks = 0;           // worker slots permanently abandoned
};

/// What the pool observed about one worker during poll().
struct WorkerEvent {
  enum class Kind : std::uint8_t {
    kChunkDone,    // all experiments of the chunk completed; results valid
    kWorkerDeath,  // worker died on a signal / abnormal exit mid-chunk
    kWorkerHang,   // heartbeat stalled; worker SIGKILLed mid-chunk
  };

  static constexpr std::size_t kNoCulprit = ~std::size_t{0};

  Kind kind = Kind::kChunkDone;
  int worker = -1;           // slot index, stable across respawns
  std::size_t done = 0;      // results[0, done) were published and are valid
  std::vector<ExperimentResult> results;  // sized to the dispatched chunk

  /// Chunk index of the experiment the worker was executing when it died or
  /// hung; kNoCulprit when it died between experiments (environmental
  /// failure, no experiment to blame).  Always kNoCulprit for kChunkDone.
  std::size_t culprit = kNoCulprit;

  /// Signal-derived classification for kWorkerDeath (kAbnormalExit for a
  /// nonzero exit); kNone otherwise.
  CrashReason reason = CrashReason::kNone;
};

class WorkerPool {
 public:
  /// Spawns the initial workers immediately (as many as resources permit).
  /// `program` and `golden` must outlive the pool.
  WorkerPool(const Program& program, const GoldenRun& golden,
             WorkerPoolOptions options = {});
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Live workers right now.  0 means isolation is unavailable (all spawns
  /// failed, or a non-POSIX platform) -- run work in-process instead.
  int worker_count() const noexcept;

  /// Hands `chunk` (size <= chunk_capacity, non-empty) to an idle worker
  /// and returns its slot index, or -1 when every live worker is busy.
  int try_dispatch(std::span<const Injection> chunk);

  /// Harvests completed chunks, deaths, and hangs; respawns dead workers
  /// (shrinking the pool when respawn fails).  Returns the events observed,
  /// possibly none.  Call in a loop interleaved with try_dispatch().
  std::vector<WorkerEvent> poll();

  /// True while any dispatched chunk has not yet been reported via poll().
  bool busy() const noexcept;

  /// OS pid of the worker in `slot`, or -1 if the slot is not live.  For
  /// tests that kill workers externally; unlike the rest of this class it
  /// is safe to call from another thread while the pool runs.
  std::int64_t worker_pid(int slot) const noexcept;

  /// Asks every worker to exit (EOF on its command pipe), reaps them, and
  /// SIGKILLs stragglers.  Idempotent; the destructor calls it.
  void shutdown();

  const WorkerPoolStats& stats() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftb::fi
