// Process-isolation layer for fault-injection experiments.
//
// The in-process executor (fi/executor.h) can only observe "polite" crashes:
// a CrashSignal thrown on the first non-finite value, or a step-count
// mismatch detected after the run returns.  A bit flip that corrupts control
// flow -- a loop trip count, a pivot index, an array offset -- instead
// segfaults or hangs the *entire campaign process*, which is exactly the
// failure class a resilience study must tolerate.  This layer runs batches
// of experiments in a forked child process:
//
//   * results stream back through a shared-memory result block, so every
//     experiment completed before an abnormal death is preserved;
//   * a child killed by a signal classifies the in-flight experiment as
//     Crash with a CrashReason derived from the signal (SIGSEGV, SIGFPE,
//     SIGBUS, SIGABRT, SIGILL, ...);
//   * a wall-clock watchdog converts runaway experiments (no progress for
//     `timeout_ms`) into the Outcome::kHang classification by SIGKILLing
//     the child;
//   * after each abnormal death the batch resumes in a fresh child at the
//     next experiment, so one poisoned flip never costs more than itself;
//   * transient spawn failures (fork/mmap) are retried with exponential
//     backoff; when isolation is unavailable (retries exhausted or a
//     non-POSIX platform) the remaining experiments gracefully fall back to
//     the in-process executor -- with NO protection against genuine
//     segfaults or hangs, so only feed well-behaved programs to the
//     fallback (see SandboxOptions::allow_in_process_fallback).
//
// Call this from a single thread.  fork() is invoked from the calling
// thread while any worker threads should be idle (the campaign layer runs
// sandbox batches sequentially, never from inside a thread-pool task).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fi/executor.h"
#include "fi/outcome.h"
#include "fi/program.h"

namespace ftb::fi {

struct SandboxOptions {
  /// Watchdog budget per experiment, measured from the last observed
  /// progress (an experiment starting or finishing).  0 disables the
  /// watchdog entirely -- a hung experiment then hangs the campaign.
  std::uint32_t timeout_ms = 2000;

  /// Parent poll cadence while the child runs.
  std::uint32_t poll_interval_us = 200;

  /// Transient fork/mmap failures are retried this many times ...
  int max_spawn_retries = 3;

  /// ... with this initial backoff, doubled per retry.
  std::uint32_t retry_backoff_ms = 5;

  /// When isolation cannot be established (spawn retries exhausted, or the
  /// platform has no fork), run the remaining experiments in-process.
  /// Disable to get a std::runtime_error instead -- prefer that for hazard
  /// programs whose corrupted runs can take down the campaign process.
  bool allow_in_process_fallback = true;
};

/// Observability counters for one sandboxed batch.
struct SandboxStats {
  std::uint64_t children_spawned = 0;  // fork()s that succeeded
  std::uint64_t signal_deaths = 0;     // children killed by a fault's signal
  std::uint64_t watchdog_kills = 0;    // children SIGKILLed by the watchdog
  std::uint64_t abnormal_exits = 0;    // children that exited nonzero
  std::uint64_t spawn_retries = 0;     // fork/mmap failures retried
  std::uint64_t fallback_experiments = 0;  // experiments run in-process
};

/// True when this build/platform can isolate experiments in child processes.
bool sandbox_supported() noexcept;

/// Runs `injections[i]` against `program` inside a sandboxed child process
/// and returns one ExperimentResult per injection, in order.  For
/// well-behaved programs the results are identical to run_injected(); for
/// misbehaving ones the extra outcomes above appear.  Experiments that died
/// abnormally report injected_error = output_error = +inf and crash_site = 0
/// (the child took that knowledge with it).
std::vector<ExperimentResult> run_injected_sandboxed(
    const Program& program, const GoldenRun& golden,
    std::span<const Injection> injections, const SandboxOptions& options = {},
    SandboxStats* stats = nullptr);

}  // namespace ftb::fi
