#include "fi/sandbox.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <new>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#define FTB_SANDBOX_POSIX 1
#include <signal.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define FTB_SANDBOX_POSIX 0
#endif

namespace ftb::fi {

#if FTB_SANDBOX_POSIX

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ExperimentResult isolation_result(Outcome outcome, CrashReason reason) {
  ExperimentResult result;
  result.outcome = outcome;
  result.crash_reason = reason;
  result.injected_error = kInf;
  result.output_error = kInf;
  result.crash_site = 0;
  return result;
}

// Plain-old-data mirror of ExperimentResult living in the shared block.
struct ResultSlot {
  std::uint8_t outcome = 0;
  std::uint8_t crash_reason = 0;
  double injected_error = 0.0;
  double output_error = 0.0;
  std::uint64_t crash_site = 0;
};

// Progress header.  `started` holds 1 + the index of the experiment the
// child is currently executing; `done` the count of completed experiments.
// Both are absolute over the whole batch.  Lock-free atomics are required
// for cross-process progress reads; binary64 platforms all satisfy this.
struct ShmHeader {
  std::atomic<std::uint64_t> started;
  std::atomic<std::uint64_t> done;
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "sandbox progress counters must be lock-free");

struct SharedBlock {
  ShmHeader* header = nullptr;
  ResultSlot* slots = nullptr;
  void* base = nullptr;
  std::size_t bytes = 0;

  bool map(std::size_t count) {
    bytes = sizeof(ShmHeader) + count * sizeof(ResultSlot);
    base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) {
      base = nullptr;
      return false;
    }
    header = new (base) ShmHeader{};
    slots = reinterpret_cast<ResultSlot*>(static_cast<char*>(base) +
                                          sizeof(ShmHeader));
    return true;
  }

  ~SharedBlock() {
    if (base != nullptr) ::munmap(base, bytes);
  }
};

void encode_slot(ResultSlot& slot, const ExperimentResult& result) {
  slot.outcome = static_cast<std::uint8_t>(result.outcome);
  slot.crash_reason = static_cast<std::uint8_t>(result.crash_reason);
  slot.injected_error = result.injected_error;
  slot.output_error = result.output_error;
  slot.crash_site = result.crash_site;
}

ExperimentResult decode_slot(const ResultSlot& slot) {
  ExperimentResult result;
  result.outcome = static_cast<Outcome>(slot.outcome);
  result.crash_reason = static_cast<CrashReason>(slot.crash_reason);
  result.injected_error = slot.injected_error;
  result.output_error = slot.output_error;
  result.crash_site = slot.crash_site;
  return result;
}

CrashReason crash_reason_from_signal(int sig) noexcept {
  switch (sig) {
    case SIGSEGV:
      return CrashReason::kSigSegv;
    case SIGFPE:
      return CrashReason::kSigFpe;
    case SIGABRT:
      return CrashReason::kSigAbrt;
    case SIGBUS:
      return CrashReason::kSigBus;
    case SIGILL:
      return CrashReason::kSigIll;
    default:
      return CrashReason::kOtherSignal;
  }
}

/// Child body: run experiments [next, count) sequentially, publishing each
/// result before advancing.  Never returns.
[[noreturn]] void child_run(const Program& program, const GoldenRun& golden,
                            std::span<const Injection> injections,
                            SharedBlock& block, std::size_t next) {
  for (std::size_t i = next; i < injections.size(); ++i) {
    block.header->started.store(i + 1, std::memory_order_release);
    try {
      const ExperimentResult result =
          run_injected(program, golden, injections[i]);
      encode_slot(block.slots[i], result);
    } catch (...) {
      // An exception other than the handled CrashSignal (e.g. bad_alloc
      // from a corrupted allocation size): die loudly, the parent converts
      // this into a kAbnormalExit crash for experiment i.
      ::_exit(2);
    }
    block.header->done.store(i + 1, std::memory_order_release);
  }
  ::_exit(0);
}

enum class ChildEnd { kFinished, kKilledBySignal, kTimedOut, kExitedNonZero };

struct ChildOutcome {
  ChildEnd end = ChildEnd::kFinished;
  int signal = 0;
  std::uint64_t started = 0;  // header snapshot after death
  std::uint64_t done = 0;
};

/// Supervises one child until it exits, is killed by a fault, or trips the
/// watchdog.  Progress is "the child started or finished an experiment".
ChildOutcome supervise(pid_t pid, const SharedBlock& block,
                       std::size_t batch_size, const SandboxOptions& options) {
  using Clock = std::chrono::steady_clock;
  auto last_progress = Clock::now();
  std::uint64_t last_seen =
      block.header->started.load(std::memory_order_acquire) +
      block.header->done.load(std::memory_order_acquire);

  ChildOutcome outcome;
  for (;;) {
    int status = 0;
    const pid_t waited = ::waitpid(pid, &status, WNOHANG);
    if (waited == pid) {
      outcome.started = block.header->started.load(std::memory_order_acquire);
      outcome.done = block.header->done.load(std::memory_order_acquire);
      if (WIFSIGNALED(status)) {
        outcome.end = ChildEnd::kKilledBySignal;
        outcome.signal = WTERMSIG(status);
      } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        outcome.end = ChildEnd::kExitedNonZero;
      } else {
        outcome.end = ChildEnd::kFinished;
      }
      return outcome;
    }

    const std::uint64_t done =
        block.header->done.load(std::memory_order_acquire);
    const std::uint64_t seen =
        block.header->started.load(std::memory_order_acquire) + done;
    if (seen != last_seen) {
      last_seen = seen;
      last_progress = Clock::now();
    }
    if (done >= batch_size) {
      // All results published; let the child finish exiting.
      ::waitpid(pid, &status, 0);
      outcome.started = block.header->started.load(std::memory_order_acquire);
      outcome.done = done;
      outcome.end = ChildEnd::kFinished;
      return outcome;
    }
    if (options.timeout_ms != 0 &&
        Clock::now() - last_progress >
            std::chrono::milliseconds(options.timeout_ms)) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      outcome.started = block.header->started.load(std::memory_order_acquire);
      outcome.done = block.header->done.load(std::memory_order_acquire);
      outcome.end = ChildEnd::kTimedOut;
      return outcome;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(options.poll_interval_us));
  }
}

}  // namespace

bool sandbox_supported() noexcept { return true; }

std::vector<ExperimentResult> run_injected_sandboxed(
    const Program& program, const GoldenRun& golden,
    std::span<const Injection> injections, const SandboxOptions& options,
    SandboxStats* stats) {
  SandboxStats local_stats;
  SandboxStats& s = stats != nullptr ? *stats : local_stats;
  s = SandboxStats{};

  std::vector<ExperimentResult> results(injections.size());
  if (injections.empty()) return results;

  const std::size_t count = injections.size();
  SharedBlock block;

  // The shared block and each fork are retried with exponential backoff;
  // both fail only under transient resource pressure.
  auto with_retries = [&](auto&& attempt) -> bool {
    std::uint32_t backoff_ms = options.retry_backoff_ms;
    for (int tries = 0;; ++tries) {
      if (attempt()) return true;
      if (tries >= options.max_spawn_retries) return false;
      ++s.spawn_retries;
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
  };

  auto fallback_from = [&](std::size_t next) {
    if (!options.allow_in_process_fallback) {
      throw std::runtime_error(
          "sandbox: could not isolate experiments and in-process fallback "
          "is disabled");
    }
    for (std::size_t i = next; i < count; ++i) {
      results[i] = run_injected(program, golden, injections[i]);
      ++s.fallback_experiments;
    }
  };

  if (!with_retries([&] { return block.map(count); })) {
    fallback_from(0);
    return results;
  }

  std::size_t next = 0;
  while (next < count) {
    block.header->started.store(next, std::memory_order_release);
    block.header->done.store(next, std::memory_order_release);

    pid_t pid = -1;
    const bool spawned = with_retries([&] {
      pid = ::fork();
      return pid >= 0;
    });
    if (!spawned) {
      fallback_from(next);
      return results;
    }
    if (pid == 0) {
      child_run(program, golden, injections, block, next);  // never returns
    }
    ++s.children_spawned;

    const ChildOutcome child = supervise(pid, block, count, options);

    // Results completed by this child are valid regardless of how it died.
    for (std::size_t i = next; i < child.done && i < count; ++i) {
      results[i] = decode_slot(block.slots[i]);
    }
    next = child.done;

    if (child.end == ChildEnd::kFinished) {
      if (child.done >= count) break;
      // Exited cleanly mid-batch: should not happen; treat the next
      // experiment as the culprit so the loop always makes progress.
      results[next] = isolation_result(Outcome::kCrash,
                                       CrashReason::kAbnormalExit);
      ++s.abnormal_exits;
      ++next;
      continue;
    }

    // Abnormal death.  The culprit is the experiment the child had started
    // but not finished; if it died *between* experiments (started == done),
    // the environment -- not an experiment -- is at fault.
    const bool has_culprit = child.started > child.done;
    if (!has_culprit) {
      fallback_from(next);
      return results;
    }
    const std::size_t culprit = static_cast<std::size_t>(child.started - 1);
    switch (child.end) {
      case ChildEnd::kTimedOut:
        results[culprit] =
            isolation_result(Outcome::kHang, CrashReason::kNone);
        ++s.watchdog_kills;
        break;
      case ChildEnd::kKilledBySignal:
        results[culprit] = isolation_result(
            Outcome::kCrash, crash_reason_from_signal(child.signal));
        ++s.signal_deaths;
        break;
      case ChildEnd::kExitedNonZero:
      case ChildEnd::kFinished:  // unreachable here
        results[culprit] =
            isolation_result(Outcome::kCrash, CrashReason::kAbnormalExit);
        ++s.abnormal_exits;
        break;
    }
    next = culprit + 1;
  }
  return results;
}

#else  // !FTB_SANDBOX_POSIX

bool sandbox_supported() noexcept { return false; }

std::vector<ExperimentResult> run_injected_sandboxed(
    const Program& program, const GoldenRun& golden,
    std::span<const Injection> injections, const SandboxOptions& options,
    SandboxStats* stats) {
  SandboxStats local_stats;
  SandboxStats& s = stats != nullptr ? *stats : local_stats;
  s = SandboxStats{};
  if (!options.allow_in_process_fallback) {
    throw std::runtime_error(
        "sandbox: process isolation is unavailable on this platform and "
        "in-process fallback is disabled");
  }
  std::vector<ExperimentResult> results(injections.size());
  for (std::size_t i = 0; i < injections.size(); ++i) {
    results[i] = run_injected(program, golden, injections[i]);
    ++s.fallback_experiments;
  }
  return results;
}

#endif  // FTB_SANDBOX_POSIX

}  // namespace ftb::fi
