#include "fi/sandbox.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <limits>
#include <new>
#include <stdexcept>
#include <thread>
#include <type_traits>

#include "telemetry/events.h"
#include "util/retry.h"

#if defined(__unix__) || defined(__APPLE__)
#define FTB_SANDBOX_POSIX 1
#include <errno.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif
#else
#define FTB_SANDBOX_POSIX 0
#endif

namespace ftb::fi {

#if FTB_SANDBOX_POSIX

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ExperimentResult isolation_result(Outcome outcome, CrashReason reason) {
  ExperimentResult result;
  result.outcome = outcome;
  result.crash_reason = reason;
  result.injected_error = kInf;
  result.output_error = kInf;
  result.crash_site = 0;
  return result;
}

// Plain-old-data mirror of ExperimentResult living in the shared block.
struct ResultSlot {
  std::uint8_t outcome = 0;
  std::uint8_t crash_reason = 0;
  std::uint8_t detector_fired = 0;
  double injected_error = 0.0;
  double output_error = 0.0;
  std::uint64_t crash_site = 0;
};

// Progress header.  `started` holds 1 + the index of the experiment the
// child is currently executing; `done` the count of completed experiments.
// Both are absolute over the whole batch.  Lock-free atomics are required
// for cross-process progress reads; binary64 platforms all satisfy this.
struct ShmHeader {
  std::atomic<std::uint64_t> started;
  std::atomic<std::uint64_t> done;
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "sandbox progress counters must be lock-free");

struct SharedBlock {
  ShmHeader* header = nullptr;
  ResultSlot* slots = nullptr;
  void* base = nullptr;
  std::size_t bytes = 0;

  bool map(std::size_t count) {
    bytes = sizeof(ShmHeader) + count * sizeof(ResultSlot);
    base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) {
      base = nullptr;
      return false;
    }
    header = new (base) ShmHeader{};
    slots = reinterpret_cast<ResultSlot*>(static_cast<char*>(base) +
                                          sizeof(ShmHeader));
    return true;
  }

  ~SharedBlock() {
    if (base != nullptr) ::munmap(base, bytes);
  }
};

void encode_slot(ResultSlot& slot, const ExperimentResult& result) {
  slot.outcome = static_cast<std::uint8_t>(result.outcome);
  slot.crash_reason = static_cast<std::uint8_t>(result.crash_reason);
  slot.detector_fired = result.detector_fired ? 1 : 0;
  slot.injected_error = result.injected_error;
  slot.output_error = result.output_error;
  slot.crash_site = result.crash_site;
}

ExperimentResult decode_slot(const ResultSlot& slot) {
  ExperimentResult result;
  result.outcome = static_cast<Outcome>(slot.outcome);
  result.crash_reason = static_cast<CrashReason>(slot.crash_reason);
  result.detector_fired = slot.detector_fired != 0;
  result.injected_error = slot.injected_error;
  result.output_error = slot.output_error;
  result.crash_site = slot.crash_site;
  return result;
}

CrashReason crash_reason_from_signal(int sig) noexcept {
  switch (sig) {
    case SIGSEGV:
      return CrashReason::kSigSegv;
    case SIGFPE:
      return CrashReason::kSigFpe;
    case SIGABRT:
      return CrashReason::kSigAbrt;
    case SIGBUS:
      return CrashReason::kSigBus;
    case SIGILL:
      return CrashReason::kSigIll;
    default:
      return CrashReason::kOtherSignal;
  }
}

/// Child body: run experiments [next, count) sequentially, publishing each
/// result before advancing.  Never returns.
[[noreturn]] void child_run(const Program& program, const GoldenRun& golden,
                            std::span<const Injection> injections,
                            SharedBlock& block, std::size_t next) {
  for (std::size_t i = next; i < injections.size(); ++i) {
    block.header->started.store(i + 1, std::memory_order_release);
    try {
      const ExperimentResult result =
          run_injected(program, golden, injections[i]);
      encode_slot(block.slots[i], result);
    } catch (...) {
      // An exception other than the handled CrashSignal (e.g. bad_alloc
      // from a corrupted allocation size): die loudly, the parent converts
      // this into a kAbnormalExit crash for experiment i.
      ::_exit(2);
    }
    block.header->done.store(i + 1, std::memory_order_release);
  }
  ::_exit(0);
}

enum class ChildEnd { kFinished, kKilledBySignal, kTimedOut, kExitedNonZero };

struct ChildOutcome {
  ChildEnd end = ChildEnd::kFinished;
  int signal = 0;
  std::uint64_t started = 0;  // header snapshot after death
  std::uint64_t done = 0;
};

/// Supervises one child until it exits, is killed by a fault, or trips the
/// watchdog.  Progress is "the child started or finished an experiment".
ChildOutcome supervise(pid_t pid, const SharedBlock& block,
                       std::size_t batch_size, const SandboxOptions& options) {
  using Clock = std::chrono::steady_clock;
  auto last_progress = Clock::now();
  std::uint64_t last_seen =
      block.header->started.load(std::memory_order_acquire) +
      block.header->done.load(std::memory_order_acquire);

  ChildOutcome outcome;
  for (;;) {
    int status = 0;
    const pid_t waited = ::waitpid(pid, &status, WNOHANG);
    if (waited == pid) {
      outcome.started = block.header->started.load(std::memory_order_acquire);
      outcome.done = block.header->done.load(std::memory_order_acquire);
      if (WIFSIGNALED(status)) {
        outcome.end = ChildEnd::kKilledBySignal;
        outcome.signal = WTERMSIG(status);
      } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
        outcome.end = ChildEnd::kExitedNonZero;
      } else {
        outcome.end = ChildEnd::kFinished;
      }
      return outcome;
    }

    const std::uint64_t done =
        block.header->done.load(std::memory_order_acquire);
    const std::uint64_t seen =
        block.header->started.load(std::memory_order_acquire) + done;
    if (seen != last_seen) {
      last_seen = seen;
      last_progress = Clock::now();
    }
    if (done >= batch_size) {
      // All results published; let the child finish exiting.
      ::waitpid(pid, &status, 0);
      outcome.started = block.header->started.load(std::memory_order_acquire);
      outcome.done = done;
      outcome.end = ChildEnd::kFinished;
      return outcome;
    }
    if (options.timeout_ms != 0 &&
        Clock::now() - last_progress >
            std::chrono::milliseconds(options.timeout_ms)) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      outcome.started = block.header->started.load(std::memory_order_acquire);
      outcome.done = block.header->done.load(std::memory_order_acquire);
      // The child may have died on its own between the WNOHANG poll and the
      // SIGKILL; the reaped status then carries the real cause.  Believing
      // it keeps a signal death from being misfiled as a watchdog kill (and
      // double-counted in watchdog_kills), and a child that slipped in a
      // clean exit -- possibly having published everything -- from being
      // blamed for a hang it never had.
      if (WIFSIGNALED(status) && WTERMSIG(status) != SIGKILL) {
        outcome.end = ChildEnd::kKilledBySignal;
        outcome.signal = WTERMSIG(status);
      } else if (WIFEXITED(status)) {
        outcome.end = WEXITSTATUS(status) != 0 ? ChildEnd::kExitedNonZero
                                               : ChildEnd::kFinished;
      } else {
        outcome.end = ChildEnd::kTimedOut;
      }
      return outcome;
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(options.poll_interval_us));
  }
}

}  // namespace

bool sandbox_supported() noexcept { return true; }

std::vector<ExperimentResult> run_injected_sandboxed(
    const Program& program, const GoldenRun& golden,
    std::span<const Injection> injections, const SandboxOptions& options,
    SandboxStats* stats) {
  SandboxStats local_stats;
  SandboxStats& s = stats != nullptr ? *stats : local_stats;
  s = SandboxStats{};

  std::vector<ExperimentResult> results(injections.size());
  if (injections.empty()) return results;

  const std::size_t count = injections.size();
  SharedBlock block;

  // The shared block and each fork are retried with jittered exponential
  // backoff (util/retry.h); both fail only under transient resource
  // pressure.
  util::RetryOptions retry_options;
  retry_options.max_retries = options.max_spawn_retries;
  retry_options.initial_backoff_ms = options.retry_backoff_ms;
  auto with_retries = [&](const std::function<bool()>& attempt) -> bool {
    util::RetryStats retry_stats;
    const bool ok = util::retry_with_backoff(retry_options, attempt,
                                             &retry_stats);
    if (retry_stats.attempts > 1) {
      s.spawn_retries += static_cast<std::uint64_t>(retry_stats.attempts - 1);
    }
    return ok;
  };

  auto fallback_from = [&](std::size_t next) {
    if (!options.allow_in_process_fallback) {
      throw std::runtime_error(
          "sandbox: could not isolate experiments and in-process fallback "
          "is disabled");
    }
    for (std::size_t i = next; i < count; ++i) {
      results[i] = run_injected(program, golden, injections[i]);
      ++s.fallback_experiments;
    }
  };

  if (!with_retries([&] { return block.map(count); })) {
    fallback_from(0);
    return results;
  }

  std::size_t next = 0;
  while (next < count) {
    block.header->started.store(next, std::memory_order_release);
    block.header->done.store(next, std::memory_order_release);

    pid_t pid = -1;
    const bool spawned = with_retries([&] {
      pid = ::fork();
      return pid >= 0;
    });
    if (!spawned) {
      fallback_from(next);
      return results;
    }
    if (pid == 0) {
      child_run(program, golden, injections, block, next);  // never returns
    }
    ++s.children_spawned;

    const ChildOutcome child = supervise(pid, block, count, options);

    // Results completed by this child are valid regardless of how it died.
    for (std::size_t i = next; i < child.done && i < count; ++i) {
      results[i] = decode_slot(block.slots[i]);
    }
    next = child.done;

    if (child.end == ChildEnd::kFinished) {
      if (child.done >= count) break;
      // Exited cleanly mid-batch: should not happen; treat the next
      // experiment as the culprit so the loop always makes progress.
      results[next] = isolation_result(Outcome::kCrash,
                                       CrashReason::kAbnormalExit);
      ++s.abnormal_exits;
      ++next;
      continue;
    }

    // Abnormal death.  The culprit is the experiment the child had started
    // but not finished; if it died *between* experiments (started == done),
    // the environment -- not an experiment -- is at fault.
    const bool has_culprit = child.started > child.done;
    if (!has_culprit) {
      fallback_from(next);
      return results;
    }
    const std::size_t culprit = static_cast<std::size_t>(child.started - 1);
    switch (child.end) {
      case ChildEnd::kTimedOut:
        results[culprit] =
            isolation_result(Outcome::kHang, CrashReason::kNone);
        ++s.watchdog_kills;
        break;
      case ChildEnd::kKilledBySignal:
        results[culprit] = isolation_result(
            Outcome::kCrash, crash_reason_from_signal(child.signal));
        ++s.signal_deaths;
        break;
      case ChildEnd::kExitedNonZero:
      case ChildEnd::kFinished:  // unreachable here
        results[culprit] =
            isolation_result(Outcome::kCrash, CrashReason::kAbnormalExit);
        ++s.abnormal_exits;
        break;
    }
    next = culprit + 1;
  }
  return results;
}

// ---------------------------------------------------------------------------
// WorkerPool (POSIX implementation)
// ---------------------------------------------------------------------------

namespace {

static_assert(std::is_trivially_copyable_v<Injection>,
              "injections are copied byte-wise into shared memory");

/// Written by the parent to a worker's command pipe to ask it to exit (EOF
/// works too; the sentinel exists so shutdown() can be explicit even while
/// other fds alias the pipe).
constexpr std::uint32_t kShutdownCommand = 0xffffffffu;

/// Per-worker shared region header.  `heartbeat` is a monotonic liveness
/// counter (bumped at chunk pickup and every experiment start/finish);
/// `started`/`done` are chunk-relative progress counters with the same
/// semantics as the per-batch ShmHeader.
struct PoolShmHeader {
  std::atomic<std::uint64_t> heartbeat;
  std::atomic<std::uint64_t> started;
  std::atomic<std::uint64_t> done;
};

/// One worker's shared mapping: header + injection slots + result slots.
/// Mapped once per pool slot and reused across respawns (a fresh fork of
/// the parent inherits the same MAP_SHARED pages).
struct PoolShm {
  PoolShmHeader* header = nullptr;
  Injection* injections = nullptr;
  ResultSlot* slots = nullptr;
  void* base = nullptr;
  std::size_t bytes = 0;

  PoolShm() = default;
  PoolShm(const PoolShm&) = delete;
  PoolShm& operator=(const PoolShm&) = delete;

  bool map(std::size_t capacity) {
    bytes = sizeof(PoolShmHeader) + capacity * sizeof(Injection) +
            capacity * sizeof(ResultSlot);
    base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) {
      base = nullptr;
      return false;
    }
    header = new (base) PoolShmHeader{};
    injections = reinterpret_cast<Injection*>(static_cast<char*>(base) +
                                              sizeof(PoolShmHeader));
    slots = reinterpret_cast<ResultSlot*>(injections + capacity);
    return true;
  }

  ~PoolShm() {
    if (base != nullptr) ::munmap(base, bytes);
  }
};

/// read() the full buffer, retrying on EINTR.  False on EOF or error.
bool read_full(int fd, void* buffer, std::size_t bytes) {
  char* out = static_cast<char*>(buffer);
  while (bytes > 0) {
    const ssize_t got = ::read(fd, out, bytes);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    out += got;
    bytes -= static_cast<std::size_t>(got);
  }
  return true;
}

/// write() the full buffer with SIGPIPE suppressed (a worker that died
/// holding the read end must not kill the supervisor).  False on error.
bool write_full_nosigpipe(int fd, const void* buffer, std::size_t bytes) {
  struct sigaction ignore {};
  struct sigaction saved {};
  ignore.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ignore, &saved);
  const char* in = static_cast<const char*>(buffer);
  bool ok = true;
  while (bytes > 0) {
    const ssize_t put = ::write(fd, in, bytes);
    if (put < 0) {
      if (errno == EINTR) continue;
      ok = false;
      break;
    }
    in += put;
    bytes -= static_cast<std::size_t>(put);
  }
  ::sigaction(SIGPIPE, &saved, nullptr);
  return ok;
}

/// Worker body: block on the command pipe, run the announced chunk out of
/// shared memory, repeat.  Exits 0 on EOF/shutdown, 2 on an unexpected
/// exception (the parent classifies that as kAbnormalExit).  Never returns.
[[noreturn]] void pool_worker_main(const Program& program,
                                   const GoldenRun& golden, PoolShm& shm,
                                   int command_fd,
                                   const WorkerPoolOptions& options) {
#if defined(__linux__)
  // Die with the supervisor: a SIGKILLed campaign must not leak workers
  // spinning on hazard experiments.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) ::_exit(0);  // parent already gone before prctl
#endif
  const std::size_t capacity = options.chunk_capacity;
  // Snapshot mode: each worker owns a private fork-server tree so chunks
  // are served from copy-on-write checkpoints instead of replayed from
  // instruction 0.  Results stay bit-identical (the tree classifies via
  // classify_finished/classify_crash and falls back to run_injected when
  // degraded), so the parent-side protocol is untouched.
  std::unique_ptr<SnapshotServer> server;
  if (options.use_snapshots && snapshot_safe(program)) {
    server = std::make_unique<SnapshotServer>(program, golden,
                                              options.snapshot);
  }
  const auto clean_exit = [&server] {
    server.reset();  // reap the runner: no zombies charged to this worker
    ::_exit(0);
  };
  for (;;) {
    std::uint32_t count = 0;
    if (!read_full(command_fd, &count, sizeof(count))) clean_exit();
    if (count == kShutdownCommand || count == 0 || count > capacity) {
      clean_exit();
    }
    shm.header->heartbeat.fetch_add(1, std::memory_order_release);
    for (std::uint32_t i = 0; i < count; ++i) {
      shm.header->started.store(i + 1, std::memory_order_release);
      shm.header->heartbeat.fetch_add(1, std::memory_order_release);
      try {
        const ExperimentResult result =
            server != nullptr ? server->run(shm.injections[i])
                              : run_injected(program, golden,
                                             shm.injections[i]);
        encode_slot(shm.slots[i], result);
      } catch (...) {
        ::_exit(2);
      }
      shm.header->done.store(i + 1, std::memory_order_release);
      shm.header->heartbeat.fetch_add(1, std::memory_order_release);
    }
    // The final done-store above is the worker's last shared write before
    // it blocks on read() again, so once the parent has observed
    // done == count it may safely reset the counters and write the next
    // chunk's injections.
  }
}

}  // namespace

struct WorkerPool::Impl {
  struct Slot {
    // Atomic because worker_pid() is documented safe to call from other
    // threads (tests kill/stop workers externally mid-campaign) while the
    // supervisor thread respawns slots.  pid == -1 <=> slot not live.
    std::atomic<pid_t> pid{-1};
    int command_write = -1;  // parent's write end of the command pipe
    PoolShm shm;
    bool live = false;
    bool abandoned = false;  // respawn failed terminally; never retried
    bool busy = false;
    std::uint32_t chunk_count = 0;
    std::uint64_t last_heartbeat = 0;
    std::chrono::steady_clock::time_point last_beat_time;
    // Telemetry timestamps (Clock-driven, 0 when telemetry is off).
    std::uint64_t dispatch_ns = 0;
    std::uint64_t last_beat_tele_ns = 0;
  };

  const Program& program;
  const GoldenRun& golden;
  WorkerPoolOptions options;
  WorkerPoolStats stats;
  std::vector<Slot> slots;
  bool shut_down = false;

  Impl(const Program& program_in, const GoldenRun& golden_in,
       WorkerPoolOptions options_in)
      : program(program_in),
        golden(golden_in),
        options(std::move(options_in)) {
    if (options.workers < 0) options.workers = 0;
    if (options.chunk_capacity == 0) options.chunk_capacity = 1;
    slots = std::vector<Slot>(static_cast<std::size_t>(options.workers));
    for (Slot& slot : slots) {
      if (!spawn(slot, /*is_respawn=*/false)) {
        slot.abandoned = true;
        ++stats.shrinks;
      }
    }
  }

  ~Impl() { shutdown(); }

  /// One fork attempt (no retry).  The testing seams fail the first
  /// simulate_spawn_failures attempts (any kind) and the first
  /// simulate_respawn_failures replacement attempts as if fork() hit EAGAIN.
  bool try_fork(Slot& slot, bool is_respawn) {
    if (is_respawn && options.simulate_respawn_failures > 0) {
      --options.simulate_respawn_failures;
      return false;
    }
    if (options.simulate_spawn_failures > 0) {
      --options.simulate_spawn_failures;
      return false;
    }
    int fds[2];
    if (::pipe(fds) != 0) return false;
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return false;
    }
    if (pid == 0) {
      // Child: keep only this slot's read end.  Closing every sibling
      // write end matters -- a pipe delivers EOF only once *all* write fds
      // are gone, so an inherited duplicate would keep a sibling alive
      // past shutdown().
      ::close(fds[1]);
      for (const Slot& other : slots) {
        if (other.command_write >= 0) ::close(other.command_write);
      }
      pool_worker_main(program, golden, slot.shm, fds[0],
                       options);  // never returns
    }
    ::close(fds[0]);
    slot.pid = pid;
    slot.command_write = fds[1];
    slot.live = true;
    slot.busy = false;
    slot.last_heartbeat =
        slot.shm.header->heartbeat.load(std::memory_order_acquire);
    slot.last_beat_time = std::chrono::steady_clock::now();
    ++stats.workers_spawned;
    return true;
  }

  /// Spawn (or respawn) with the configured backoff.  The shm region is
  /// mapped lazily on first success path and kept across respawns.
  bool spawn(Slot& slot, bool is_respawn) {
    telemetry::SpanScope span(options.telemetry,
                              is_respawn ? "worker.respawn" : "worker.spawn",
                              "pool");
    span.arg("slot", static_cast<double>(&slot - slots.data()));
    util::RetryStats retry_stats;
    const bool ok = util::retry_with_backoff(
        options.spawn_retry,
        [&] {
          if (slot.shm.base == nullptr &&
              !slot.shm.map(options.chunk_capacity)) {
            return false;
          }
          return try_fork(slot, is_respawn);
        },
        &retry_stats);
    if (retry_stats.attempts > 1) {
      stats.spawn_retries +=
          static_cast<std::uint64_t>(retry_stats.attempts - 1);
    }
    if (ok && is_respawn) ++stats.respawns;
    if (telemetry::active(options.telemetry)) {
      span.arg("ok", ok ? 1.0 : 0.0);
      auto& metrics = options.telemetry->metrics();
      if (ok) {
        metrics.counter(is_respawn ? "pool.respawns" : "pool.spawns").add();
      } else {
        metrics.counter("pool.spawn_failures").add();
      }
    }
    return ok;
  }

  void drop(Slot& slot) {
    if (slot.command_write >= 0) {
      ::close(slot.command_write);
      slot.command_write = -1;
    }
    slot.pid = -1;
    slot.live = false;
    slot.busy = false;
  }

  /// Replace a dead worker; on terminal failure the pool shrinks.
  void respawn(Slot& slot) {
    drop(slot);
    if (!spawn(slot, /*is_respawn=*/true)) {
      slot.abandoned = true;
      ++stats.shrinks;
    }
  }

  int worker_count() const noexcept {
    int count = 0;
    for (const Slot& slot : slots) {
      if (slot.live) ++count;
    }
    return count;
  }

  bool busy() const noexcept {
    for (const Slot& slot : slots) {
      if (slot.live && slot.busy) return true;
    }
    return false;
  }

  int try_dispatch(std::span<const Injection> chunk) {
    if (chunk.empty() || chunk.size() > options.chunk_capacity) return -1;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& slot = slots[i];
      if (!slot.live || slot.busy) continue;
      // The worker is blocked in read() between chunks (its last shared
      // write was the previous chunk's final done-store), so resetting the
      // counters and rewriting the injection slots here is race-free.
      slot.shm.header->started.store(0, std::memory_order_release);
      slot.shm.header->done.store(0, std::memory_order_release);
      std::memcpy(slot.shm.injections, chunk.data(),
                  chunk.size() * sizeof(Injection));
      const auto count = static_cast<std::uint32_t>(chunk.size());
      if (!write_full_nosigpipe(slot.command_write, &count, sizeof(count))) {
        // The worker died while idle (its read end is gone).  Reap it and
        // try the next slot; poll() would otherwise find it anyway.
        ::kill(slot.pid, SIGKILL);
        int status = 0;
        ::waitpid(slot.pid, &status, 0);
        respawn(slot);
        if (!slot.live || slot.busy) continue;
        if (!write_full_nosigpipe(slot.command_write, &count,
                                  sizeof(count))) {
          continue;
        }
      }
      slot.chunk_count = count;
      slot.last_heartbeat =
          slot.shm.header->heartbeat.load(std::memory_order_acquire);
      slot.last_beat_time = std::chrono::steady_clock::now();
      slot.busy = true;
      if (telemetry::active(options.telemetry)) {
        slot.dispatch_ns = options.telemetry->now_ns();
        slot.last_beat_tele_ns = slot.dispatch_ns;
        options.telemetry->metrics()
            .counter("pool.chunks_dispatched")
            .add();
      }
      return static_cast<int>(i);
    }
    return -1;
  }

  /// Telemetry hooks; all no-ops when the sink is null or disabled.
  void tele_chunk_done(Slot& slot) {
    if (!telemetry::active(options.telemetry)) return;
    auto& metrics = options.telemetry->metrics();
    metrics.counter("pool.chunks_done").add();
    if (slot.dispatch_ns != 0) {
      metrics.histogram("pool.chunk_round_trip_ns")
          .record(options.telemetry->now_ns() - slot.dispatch_ns);
    }
  }

  void tele_worker_lost(const char* event_name, const char* counter_name,
                        std::size_t slot_index, CrashReason reason) {
    if (!telemetry::active(options.telemetry)) return;
    options.telemetry->instant(
        event_name, "pool",
        {{"slot", static_cast<double>(slot_index)},
         {"reason", static_cast<double>(static_cast<int>(reason))}});
    options.telemetry->metrics().counter(counter_name).add();
  }

  WorkerEvent harvest(int index, Slot& slot, WorkerEvent::Kind kind) {
    WorkerEvent event;
    event.kind = kind;
    event.worker = index;
    const std::uint64_t done =
        slot.shm.header->done.load(std::memory_order_acquire);
    const std::uint64_t started =
        slot.shm.header->started.load(std::memory_order_acquire);
    event.done = std::min<std::uint64_t>(done, slot.chunk_count);
    event.results.resize(slot.chunk_count);
    for (std::size_t i = 0; i < event.done; ++i) {
      event.results[i] = decode_slot(slot.shm.slots[i]);
    }
    if (kind != WorkerEvent::Kind::kChunkDone && started > done) {
      event.culprit = static_cast<std::size_t>(started - 1);
    }
    return event;
  }

  std::vector<WorkerEvent> poll() {
    std::vector<WorkerEvent> events;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < slots.size(); ++i) {
      Slot& slot = slots[i];
      if (!slot.live) continue;

      int status = 0;
      const pid_t waited = ::waitpid(slot.pid, &status, WNOHANG);
      if (waited == slot.pid) {
        const std::uint64_t done =
            slot.shm.header->done.load(std::memory_order_acquire);
        if (slot.busy && done >= slot.chunk_count) {
          // Died *after* publishing the whole chunk (e.g. an external kill
          // between chunks): the results are all valid, nothing is lost.
          events.push_back(harvest(static_cast<int>(i), slot,
                                   WorkerEvent::Kind::kChunkDone));
          tele_chunk_done(slot);
          slot.busy = false;
        } else if (slot.busy) {
          WorkerEvent event = harvest(static_cast<int>(i), slot,
                                      WorkerEvent::Kind::kWorkerDeath);
          if (WIFSIGNALED(status)) {
            event.reason = crash_reason_from_signal(WTERMSIG(status));
            ++stats.signal_deaths;
          } else {
            event.reason = CrashReason::kAbnormalExit;
            ++stats.abnormal_exits;
          }
          tele_worker_lost("worker.death", "pool.worker_deaths", i,
                           event.reason);
          events.push_back(std::move(event));
          slot.busy = false;
        } else if (WIFSIGNALED(status)) {
          ++stats.signal_deaths;  // idle worker killed externally: no event
        } else {
          ++stats.abnormal_exits;
        }
        respawn(slot);
        continue;
      }

      if (!slot.busy) continue;

      const std::uint64_t done =
          slot.shm.header->done.load(std::memory_order_acquire);
      if (done >= slot.chunk_count) {
        events.push_back(harvest(static_cast<int>(i), slot,
                                 WorkerEvent::Kind::kChunkDone));
        tele_chunk_done(slot);
        slot.busy = false;
        continue;
      }

      const std::uint64_t beat =
          slot.shm.header->heartbeat.load(std::memory_order_acquire);
      if (beat != slot.last_heartbeat) {
        slot.last_heartbeat = beat;
        slot.last_beat_time = now;
        if (telemetry::active(options.telemetry)) {
          const std::uint64_t tele_now = options.telemetry->now_ns();
          if (slot.last_beat_tele_ns != 0) {
            options.telemetry->metrics()
                .histogram("pool.heartbeat_gap_ns")
                .record(tele_now - slot.last_beat_tele_ns);
          }
          slot.last_beat_tele_ns = tele_now;
        }
      } else if (options.heartbeat_timeout_ms != 0 &&
                 now - slot.last_beat_time > std::chrono::milliseconds(
                                                 options.heartbeat_timeout_ms)) {
        ::kill(slot.pid, SIGKILL);
        ::waitpid(slot.pid, &status, 0);
        // Same race as the per-batch watchdog: the worker may have finished
        // the chunk, died on a fault's signal, or exited on its own between
        // the heartbeat check and the SIGKILL.  The reaped status and the
        // done counter carry the truth; only a genuine stall is a hang.
        const std::uint64_t done_now =
            slot.shm.header->done.load(std::memory_order_acquire);
        if (done_now >= slot.chunk_count) {
          events.push_back(harvest(static_cast<int>(i), slot,
                                   WorkerEvent::Kind::kChunkDone));
          tele_chunk_done(slot);
        } else if (WIFSIGNALED(status) && WTERMSIG(status) != SIGKILL) {
          WorkerEvent event = harvest(static_cast<int>(i), slot,
                                      WorkerEvent::Kind::kWorkerDeath);
          event.reason = crash_reason_from_signal(WTERMSIG(status));
          ++stats.signal_deaths;
          tele_worker_lost("worker.death", "pool.worker_deaths", i,
                           event.reason);
          events.push_back(std::move(event));
        } else if (WIFEXITED(status)) {
          WorkerEvent event = harvest(static_cast<int>(i), slot,
                                      WorkerEvent::Kind::kWorkerDeath);
          event.reason = CrashReason::kAbnormalExit;
          ++stats.abnormal_exits;
          tele_worker_lost("worker.death", "pool.worker_deaths", i,
                           event.reason);
          events.push_back(std::move(event));
        } else {
          events.push_back(harvest(static_cast<int>(i), slot,
                                   WorkerEvent::Kind::kWorkerHang));
          ++stats.hang_kills;
          tele_worker_lost("worker.hang", "pool.worker_hangs", i,
                           CrashReason::kNone);
        }
        slot.busy = false;
        respawn(slot);
      }
    }
    return events;
  }

  void shutdown() {
    if (shut_down) return;
    shut_down = true;
    // Ask politely: EOF on every command pipe.
    for (Slot& slot : slots) {
      if (slot.command_write >= 0) {
        const std::uint32_t sentinel = kShutdownCommand;
        write_full_nosigpipe(slot.command_write, &sentinel, sizeof(sentinel));
        ::close(slot.command_write);
        slot.command_write = -1;
      }
    }
    // Grace period, then SIGKILL stragglers.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
    for (Slot& slot : slots) {
      if (!slot.live) continue;
      int status = 0;
      for (;;) {
        const pid_t waited = ::waitpid(slot.pid, &status, WNOHANG);
        if (waited == slot.pid) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          ::kill(slot.pid, SIGKILL);
          ::waitpid(slot.pid, &status, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      slot.pid = -1;
      slot.live = false;
      slot.busy = false;
    }
  }
};

WorkerPool::WorkerPool(const Program& program, const GoldenRun& golden,
                       WorkerPoolOptions options)
    : impl_(std::make_unique<Impl>(program, golden, std::move(options))) {}

WorkerPool::~WorkerPool() = default;

int WorkerPool::worker_count() const noexcept { return impl_->worker_count(); }

int WorkerPool::try_dispatch(std::span<const Injection> chunk) {
  return impl_->try_dispatch(chunk);
}

std::vector<WorkerEvent> WorkerPool::poll() { return impl_->poll(); }

bool WorkerPool::busy() const noexcept { return impl_->busy(); }

std::int64_t WorkerPool::worker_pid(int slot) const noexcept {
  if (slot < 0 || static_cast<std::size_t>(slot) >= impl_->slots.size()) {
    return -1;
  }
  const Impl::Slot& s = impl_->slots[static_cast<std::size_t>(slot)];
  // Only the pid is read: `live` belongs to the supervisor thread, and
  // pid == -1 already encodes "slot not live".
  return static_cast<std::int64_t>(s.pid.load(std::memory_order_relaxed));
}

void WorkerPool::shutdown() { impl_->shutdown(); }

const WorkerPoolStats& WorkerPool::stats() const noexcept {
  return impl_->stats;
}

#else  // !FTB_SANDBOX_POSIX

bool sandbox_supported() noexcept { return false; }

std::vector<ExperimentResult> run_injected_sandboxed(
    const Program& program, const GoldenRun& golden,
    std::span<const Injection> injections, const SandboxOptions& options,
    SandboxStats* stats) {
  SandboxStats local_stats;
  SandboxStats& s = stats != nullptr ? *stats : local_stats;
  s = SandboxStats{};
  if (!options.allow_in_process_fallback) {
    throw std::runtime_error(
        "sandbox: process isolation is unavailable on this platform and "
        "in-process fallback is disabled");
  }
  std::vector<ExperimentResult> results(injections.size());
  for (std::size_t i = 0; i < injections.size(); ++i) {
    results[i] = run_injected(program, golden, injections[i]);
    ++s.fallback_experiments;
  }
  return results;
}

// WorkerPool stub: no process isolation, so the pool is permanently empty
// and callers take their in-process fallback path.
struct WorkerPool::Impl {
  WorkerPoolStats stats;
};

WorkerPool::WorkerPool(const Program&, const GoldenRun&, WorkerPoolOptions)
    : impl_(std::make_unique<Impl>()) {}

WorkerPool::~WorkerPool() = default;

int WorkerPool::worker_count() const noexcept { return 0; }

int WorkerPool::try_dispatch(std::span<const Injection>) { return -1; }

std::vector<WorkerEvent> WorkerPool::poll() { return {}; }

bool WorkerPool::busy() const noexcept { return false; }

std::int64_t WorkerPool::worker_pid(int) const noexcept { return -1; }

void WorkerPool::shutdown() {}

const WorkerPoolStats& WorkerPool::stats() const noexcept {
  return impl_->stats;
}

#endif  // FTB_SANDBOX_POSIX

}  // namespace ftb::fi
