#include "fi/program.h"

namespace ftb::fi {}
