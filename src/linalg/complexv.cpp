#include "linalg/complexv.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ftb::linalg {

std::vector<double> ComplexVec::interleaved() const {
  std::vector<double> out;
  out.reserve(2 * size());
  for (std::size_t i = 0; i < size(); ++i) {
    out.push_back(re[i]);
    out.push_back(im[i]);
  }
  return out;
}

ComplexVec dft_reference(const ComplexVec& input) {
  const std::size_t n = input.size();
  ComplexVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    double sum_re = 0.0;
    double sum_im = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * j) / static_cast<double>(n);
      const double c = std::cos(angle);
      const double s = std::sin(angle);
      sum_re += input.re[j] * c - input.im[j] * s;
      sum_im += input.re[j] * s + input.im[j] * c;
    }
    out.re[k] = sum_re;
    out.im[k] = sum_im;
  }
  return out;
}

double linf_distance(const ComplexVec& a, const ComplexVec& b) noexcept {
  assert(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::fmax(worst, std::fabs(a.re[i] - b.re[i]));
    worst = std::fmax(worst, std::fabs(a.im[i] - b.im[i]));
  }
  return worst;
}

}  // namespace ftb::linalg
