// Split-layout complex vectors (separate real/imag arrays) and a reference
// DFT.  The six-step FFT kernel uses the split layout because the tracer
// instruments scalar doubles; std::complex would hide the two data elements
// a bit flip can corrupt independently.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ftb::linalg {

struct ComplexVec {
  std::vector<double> re;
  std::vector<double> im;

  ComplexVec() = default;
  explicit ComplexVec(std::size_t n) : re(n, 0.0), im(n, 0.0) {}

  std::size_t size() const noexcept { return re.size(); }

  /// Interleaves into [re0, im0, re1, im1, ...] (used as program output).
  std::vector<double> interleaved() const;
};

/// Naive O(n^2) reference DFT (forward, no normalisation) used by the tests
/// to validate the six-step FFT kernel.
ComplexVec dft_reference(const ComplexVec& input);

/// max over elements of |a - b| treating re/im independently.
double linf_distance(const ComplexVec& a, const ComplexVec& b) noexcept;

}  // namespace ftb::linalg
