// Row-major dense matrix and the un-instrumented reference operations the
// tests compare kernels against.  The instrumented kernels in src/kernels
// re-implement their math against the Tracer; this module is the plain
// substrate (construction, reference solvers, norms).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace ftb::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  /// Well-conditioned random test matrix: uniform entries in [-1, 1] with
  /// the diagonal boosted to strict diagonal dominance, so non-pivoting LU
  /// is stable (the SPLASH-2 LU benchmark has the same requirement).
  static DenseMatrix random_diagonally_dominant(std::size_t n, util::Rng& rng);

  /// Uniform random entries in [lo, hi].
  static DenseMatrix random_uniform(std::size_t rows, std::size_t cols,
                                    util::Rng& rng, double lo = -1.0,
                                    double hi = 1.0);

  static DenseMatrix identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B (reference implementation for tests).
DenseMatrix multiply(const DenseMatrix& a, const DenseMatrix& b);

/// y = A * x.
std::vector<double> matvec(const DenseMatrix& a, std::span<const double> x);

/// In-place, non-pivoting reference LU: returns unit-lower L strictly below
/// the diagonal and U on/above it, packed into one matrix (as SPLASH-2 does).
DenseMatrix lu_factor_reference(DenseMatrix a);

/// Reconstructs A from a packed LU factor matrix (tests residual checks).
DenseMatrix lu_reconstruct(const DenseMatrix& lu);

/// max_i |a_i - b_i| over two equal-size spans.
double linf_distance(std::span<const double> a, std::span<const double> b) noexcept;

/// Euclidean norm.
double norm2(std::span<const double> x) noexcept;

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b) noexcept;

}  // namespace ftb::linalg
