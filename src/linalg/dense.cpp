#include "linalg/dense.h"

#include <cassert>
#include <cmath>

namespace ftb::linalg {

DenseMatrix DenseMatrix::random_diagonally_dominant(std::size_t n,
                                                    util::Rng& rng) {
  DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    double off_diagonal_sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (c == r) continue;
      const double v = rng.next_double(-1.0, 1.0);
      a.at(r, c) = v;
      off_diagonal_sum += std::fabs(v);
    }
    // Strictly dominant positive diagonal keeps all pivots healthy.
    a.at(r, r) = off_diagonal_sum + 1.0 + rng.next_double();
  }
  return a;
}

DenseMatrix DenseMatrix::random_uniform(std::size_t rows, std::size_t cols,
                                        util::Rng& rng, double lo, double hi) {
  DenseMatrix a(rows, cols);
  for (double& v : a.data()) v = rng.next_double(lo, hi);
  return a;
}

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) a.at(i, i) = 1.0;
  return a;
}

DenseMatrix multiply(const DenseMatrix& a, const DenseMatrix& b) {
  assert(a.cols() == b.rows());
  DenseMatrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

std::vector<double> matvec(const DenseMatrix& a, std::span<const double> x) {
  assert(a.cols() == x.size());
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) sum += a.at(i, j) * x[j];
    y[i] = sum;
  }
  return y;
}

DenseMatrix lu_factor_reference(DenseMatrix a) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    const double pivot = a.at(k, k);
    assert(std::fabs(pivot) > 0.0);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a.at(i, k) / pivot;
      a.at(i, k) = factor;
      for (std::size_t j = k + 1; j < n; ++j) {
        a.at(i, j) -= factor * a.at(k, j);
      }
    }
  }
  return a;
}

DenseMatrix lu_reconstruct(const DenseMatrix& lu) {
  assert(lu.rows() == lu.cols());
  const std::size_t n = lu.rows();
  DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      const std::size_t limit = std::min(i, j + 1);  // L has unit diagonal
      for (std::size_t k = 0; k < limit; ++k) {
        sum += lu.at(i, k) * lu.at(k, j);
      }
      if (i <= j) sum += lu.at(i, j);  // L(i,i) = 1 times U(i,j)
      a.at(i, j) = sum;
    }
  }
  return a;
}

double linf_distance(std::span<const double> a,
                     std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::fmax(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

double norm2(std::span<const double> x) noexcept {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return std::sqrt(sum);
}

double dot(std::span<const double> a, std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace ftb::linalg
