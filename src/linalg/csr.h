// Compressed sparse row matrices and the 2-D Poisson assembly that feeds the
// CG kernel (our MiniFE stand-in assembles a 5-point finite-difference
// operator the same way MiniFE assembles its finite-element operator).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ftb::linalg {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplet lists already grouped by row (row_ptr prefix form).
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nonzeros() const noexcept { return values_.size(); }

  std::span<const std::size_t> row_ptr() const noexcept { return row_ptr_; }
  std::span<const std::size_t> col_idx() const noexcept { return col_idx_; }
  std::span<const double> values() const noexcept { return values_; }

  /// y = A * x (reference, un-instrumented).
  std::vector<double> multiply(std::span<const double> x) const;

  /// The symmetric positive-definite 5-point Laplacian on an nx-by-ny grid
  /// with Dirichlet boundaries: diagonal 4, neighbours -1.  This is the CG
  /// benchmark's operator.
  static CsrMatrix poisson5(std::size_t nx, std::size_t ny);

  bool is_symmetric(double tol = 1e-12) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace ftb::linalg
