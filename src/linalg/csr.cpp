#include "linalg/csr.h"

#include <cassert>
#include <cmath>

namespace ftb::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  assert(row_ptr_.size() == rows_ + 1);
  assert(col_idx_.size() == values_.size());
  assert(row_ptr_.back() == values_.size());
}

std::vector<double> CsrMatrix::multiply(std::span<const double> x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k] * x[col_idx_[k]];
    }
    y[r] = sum;
  }
  return y;
}

CsrMatrix CsrMatrix::poisson5(std::size_t nx, std::size_t ny) {
  assert(nx > 0 && ny > 0);
  const std::size_t n = nx * ny;
  std::vector<std::size_t> row_ptr(n + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(5 * n);
  values.reserve(5 * n);

  const auto index = [nx](std::size_t ix, std::size_t iy) {
    return iy * nx + ix;
  };

  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t row = index(ix, iy);
      // Columns emitted in ascending order: S, W, C, E, N.
      if (iy > 0) {
        col_idx.push_back(index(ix, iy - 1));
        values.push_back(-1.0);
      }
      if (ix > 0) {
        col_idx.push_back(index(ix - 1, iy));
        values.push_back(-1.0);
      }
      col_idx.push_back(row);
      values.push_back(4.0);
      if (ix + 1 < nx) {
        col_idx.push_back(index(ix + 1, iy));
        values.push_back(-1.0);
      }
      if (iy + 1 < ny) {
        col_idx.push_back(index(ix, iy + 1));
        values.push_back(-1.0);
      }
      row_ptr[row + 1] = col_idx.size();
    }
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      // Find (c, r).
      double transposed = 0.0;
      bool found = false;
      for (std::size_t k2 = row_ptr_[c]; k2 < row_ptr_[c + 1]; ++k2) {
        if (col_idx_[k2] == r) {
          transposed = values_[k2];
          found = true;
          break;
        }
      }
      if (!found || std::fabs(values_[k] - transposed) > tol) return false;
    }
  }
  return true;
}

}  // namespace ftb::linalg
