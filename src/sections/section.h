// Section carving: the FastFlip-style decomposition of a kernel's dynamic
// trace into named sections (PAPERS.md, arXiv 2403.13989).  Every kernel
// already announces phases through Tracer::phase(); a SectionSpec wraps one
// resolved PhaseMap segment with the three things compositional inference
// needs on top of a range:
//
//   * entry/exit *value signatures* -- chained FNV-1a over the bit patterns
//     of the golden trace prefix, so two builds agree on a section's
//     boundary values iff the fault-free data flowing across that edge is
//     bit-identical;
//   * a *content fingerprint* -- a hash of (config key, section name, range,
//     signatures, per-section campaign budget, seed).  Incremental
//     recompute diffs fingerprints: any change to the kernel, preset,
//     section shape, boundary data, or campaign budget dirties exactly the
//     sections it touches;
//   * a deterministic per-section experiment sample, drawn from a seed
//     derived from the global seed and the section name so that re-carving
//     the same program yields the same ids (journals resume across runs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/sample_space.h"
#include "fi/executor.h"

namespace ftb::sections {

struct SectionSpec {
  std::string name;          // sanitized, unique within the plan
  std::uint64_t begin = 0;   // first dynamic instruction (inclusive)
  std::uint64_t end = 0;     // one past the last dynamic instruction
  std::uint64_t entry_sig = 0;   // golden-value signature at entry
  std::uint64_t exit_sig = 0;    // golden-value signature at exit
  std::uint64_t fingerprint = 0;  // content hash; dirty iff it changed
  std::uint64_t batch = 0;   // experiments budgeted for this section

  std::uint64_t size() const noexcept { return end - begin; }
  /// Single-bit-flip experiments available inside this section.
  std::uint64_t sample_space() const noexcept {
    return size() * static_cast<std::uint64_t>(fi::kBitsPerValue);
  }
};

struct SectionPlan {
  std::string config_key;
  std::uint64_t total_sites = 0;
  std::uint64_t seed = 1;
  std::vector<SectionSpec> sections;  // sorted by begin; ranges tile the trace

  const SectionSpec* find(const std::string& name) const noexcept;
};

struct CarveOptions {
  std::uint64_t seed = 1;
  /// Default experiments per section; sections smaller than the budget are
  /// clamped to their sample space.
  std::uint64_t batch_per_section = 256;
  /// Per-section overrides as "name=N,name=M" (sanitized names).  Unknown
  /// names throw std::invalid_argument so a typo cannot silently leave a
  /// section on the default budget.
  std::string batch_overrides;
};

/// Replaces characters that cannot appear in a file stem ("block 0" ->
/// "block-0") and never returns an empty string.
std::string sanitize_section_name(const std::string& name);

/// Carves the golden run's phase map into a SectionPlan.  Section names are
/// sanitized segment names, deduplicated with a "-2", "-3" suffix when a
/// kernel reuses a phase name.  Ranges tile [0, trace size) exactly.
SectionPlan carve_sections(const std::string& config_key,
                           const fi::GoldenRun& golden,
                           const CarveOptions& options = {});

/// The section's deterministic experiment sample: `spec.batch` distinct
/// classic ids drawn uniformly from the section's own (site, bit) space
/// with a seed derived from (plan seed, section name), then offset into
/// whole-program coordinates.  Sorted ascending; a pure function of the
/// spec and seed, so resumed and fresh runs agree.
std::vector<campaign::ExperimentId> section_sample_ids(const SectionSpec& spec,
                                                       std::uint64_t plan_seed);

/// Chained FNV-1a over the bit patterns of trace[0..site); signature 0 is
/// the hash of the empty prefix.  Exposed for tests.
std::uint64_t trace_signature(const std::vector<double>& trace,
                              std::uint64_t site);

}  // namespace ftb::sections
