// The composed-boundary artifact: one record per section (fingerprint,
// provenance, outcome tallies, exit/entry error bounds, and the section's
// own unscaled threshold slice) plus the composition operator that splices
// those slices into a whole-program boundary.
//
// The artifact stores *unscaled* slices and derives edge scaling at
// materialization time, so an incremental recompute that replaces one dirty
// section's record re-derives every downstream scale from stored neighbour
// bounds and serializes byte-identically to a fresh full compose.
//
// Framing follows boundary/serialize.cpp v2 and campaign/log.cpp: magic,
// version, body, trailing CRC-32 stored as a u64.  The parser rejects --
// with a one-line diagnostic, never a crash -- bad magic, unknown versions,
// CRC mismatches, truncation, trailing garbage, forged counts, and section
// tables that do not tile the trace (tests/test_sections.cpp fuzzes every
// 1-byte corruption the way test_frame does).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "boundary/boundary.h"
#include "sections/section.h"

namespace ftb::sections {

/// Per-section provenance + evidence.  `thresholds`/`exact` cover exactly
/// [spec.begin, spec.end) and come from the section's own campaign, before
/// any edge scaling.
struct SectionRecord {
  SectionSpec spec;
  std::uint64_t executed = 0;  // experiments run for this record
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t crash = 0;
  std::uint64_t hang = 0;
  std::uint64_t detected = 0;
  /// Largest masked-propagation |error| observed in the section's exit
  /// window; what the section can hand to its successor while still
  /// producing an acceptable output.  0 with no masked evidence.
  double exit_bound = 0.0;
  /// Smallest informed threshold in the section's entry window; the
  /// incoming error the section is known to tolerate.  0 when the entry
  /// window has no informed sites (conservative: tolerate nothing).
  double entry_tolerance = 0.0;
  std::string journal;  // journal file stem this record was built from
  std::vector<double> thresholds;      // size() == spec.size()
  std::vector<std::uint8_t> exact;     // size() == spec.size()
};

struct ComposedArtifact {
  std::string config_key;
  std::string kernel;
  std::string preset;
  std::uint64_t seed = 1;
  std::uint64_t total_sites = 0;
  std::vector<SectionRecord> sections;  // sorted; ranges tile [0, total)

  const SectionRecord* find(const std::string& name) const noexcept;

  /// Edge scale applied to section `index` when materializing.  1 on a
  /// consistent splice (the record's entry signature chains onto its
  /// predecessor's exit signature -- section campaigns are end-to-end, so
  /// consistent evidence needs no adjustment).  On a broken chain (the
  /// stale-composition failure mode) the stored exit bound and entry
  /// tolerance become a conservative scale: entry_tolerance / exit_bound
  /// in [0, 1) when certified incoming error exceeds the tolerance, 0 when
  /// the incoming bound is unbounded.  The first section is never scaled.
  double edge_scale(std::size_t index) const noexcept;

  /// Splices the per-section slices (times edge_scale) into one
  /// whole-program boundary.  Exact flags survive only on unscaled
  /// sections: a scaled threshold is no longer the enumerated value.
  boundary::FaultToleranceBoundary compose() const;
};

std::string serialize(const ComposedArtifact& artifact);

/// Strict parser; returns nullopt with a diagnostic in `*error` on any
/// corruption.  `expect_config` "" skips the config check.
std::optional<ComposedArtifact> deserialize_composed(
    const std::string& payload, const std::string& expect_config,
    std::string* error = nullptr);

bool save_composed(const ComposedArtifact& artifact, const std::string& path);

std::optional<ComposedArtifact> load_composed(
    const std::string& path, const std::string& expect_config,
    std::string* error = nullptr);

}  // namespace ftb::sections
