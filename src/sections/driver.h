// The per-section campaign driver and the incremental recompute loop.
//
// One invocation carves the golden run into sections, diffs their
// fingerprints against a previous composed artifact, re-campaigns only the
// dirty sections (each through the existing checkpointed runner, so a
// section campaign inherits journal resume, supervisor isolation, snapshot
// serving, and SIGTERM drain), splices clean sections' stored evidence
// verbatim, and assembles a fresh ComposedArtifact.  Experiment outcomes
// are deterministic, so an incremental splice serializes byte-identically
// to a full recompose -- that is the invariant the CI compose job and the
// chaos tests pin.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/log.h"
#include "sections/compose.h"
#include "sections/section.h"
#include "telemetry/events.h"
#include "util/thread_pool.h"

namespace ftb::sections {

/// What a SectionRunner hands back for one section's campaign.
struct SectionRunOutcome {
  campaign::CampaignLog log;
  std::uint64_t executed = 0;
  bool stopped = false;  // drained mid-section; journal is resumable
};

/// Hook that executes one dirty section's experiments, journaling into
/// `journal_path` exactly like run_campaign_checkpointed (the service
/// routes this through its ChunkDispatcher so sections fan out to
/// ftb_workerd workers).  Unset -> the driver runs locally.
using SectionRunner = std::function<SectionRunOutcome(
    const SectionSpec& spec, std::span<const campaign::ExperimentId> ids,
    const std::string& journal_path)>;

struct SectionCampaignOptions {
  /// Directory for per-section journals ("<stem>.<section>.clog").
  std::string store_dir = ".";
  /// File stem shared by this plan's journals.  Must be non-empty.
  std::string stem;
  /// Labels stamped into the artifact so a recompute job can rebuild the
  /// same program without parsing the config key.
  std::string kernel;
  std::string preset;
  CarveOptions carve;
  std::size_t flush_every = 256;
  /// Treat every section as dirty regardless of fingerprints.
  bool force = false;
  bool use_supervisor = false;
  campaign::SupervisorOptions supervisor;
  /// Boundary accumulation (Section 3.5 filter) for the evidence pass.
  bool filter = true;
  std::size_t prop_buffer_cap = 32;
  /// Sites of the exit window (where the section's outgoing error bound is
  /// measured) and the entry window (where its incoming tolerance is read).
  std::uint64_t edge_window = 16;
  util::ThreadPool* pool = nullptr;
  telemetry::Telemetry* telemetry = nullptr;
  /// Polled between sections and between chunks; leaves resumable journals.
  std::function<bool()> should_stop;
  /// Streamed per flush of whichever section is running.
  std::function<void(const std::string& section,
                     const campaign::CheckpointProgress&)>
      on_progress;
  SectionRunner section_runner;
};

struct SectionCampaignResult {
  ComposedArtifact artifact;         // valid only when !stopped
  std::vector<std::string> dirty;    // sections (re-)campaigned
  std::vector<std::string> reused;   // sections spliced from `previous`
  std::uint64_t executed = 0;        // experiments actually run
  bool stopped = false;              // drained; journals resume next run
};

/// Builds one section's evidence record from its finished journal: outcome
/// tallies, the section-local boundary slice (masked propagation re-runs,
/// Algorithm 1 over the whole trace, then sliced to the section range),
/// the exit-window error bound, and the entry-window tolerance.
SectionRecord build_section_record(const fi::Program& program,
                                   const fi::GoldenRun& golden,
                                   const SectionSpec& spec,
                                   const campaign::CampaignLog& log,
                                   const std::string& journal_stem,
                                   const SectionCampaignOptions& options);

/// Runs (or resumes) the compositional campaign.  `previous` is the last
/// composed artifact for fingerprint diffing; nullptr means full compose.
/// Throws std::invalid_argument on an empty stem or malformed overrides.
SectionCampaignResult run_section_campaigns(
    const fi::Program& program, const fi::GoldenRun& golden,
    const ComposedArtifact* previous, const SectionCampaignOptions& options);

/// Agreement statistics between two boundaries over the same trace, probed
/// with a batch of known-outcome records: the validation surface for
/// composed-vs-monolithic (EXPERIMENTS.md).  Against a monolithic boundary
/// built from the union of the per-section id sets, the composed boundary
/// is pointwise conservative -- each section's accumulator sees a subset of
/// the evidence -- so `composed_optimistic` must be 0 and every common-site
/// delta points the safe way (composed <= monolithic).
struct CompositionCheck {
  std::uint64_t common_informed = 0;   // sites informed by both boundaries
  std::uint64_t composed_only = 0;     // informed by composed only
  std::uint64_t monolithic_only = 0;   // informed by monolithic only
  std::uint64_t composed_optimistic = 0;  // composed threshold > monolithic
  double max_rel_delta = 0.0;  // max relative threshold delta, common sites
  double mean_rel_delta = 0.0;
  std::uint64_t probes = 0;            // probe experiments compared
  std::uint64_t predictions_agree = 0; // both predict the same class

  double agreement() const noexcept {
    return probes ? static_cast<double>(predictions_agree) /
                        static_cast<double>(probes)
                  : 1.0;
  }
};

CompositionCheck compare_boundaries(
    const boundary::FaultToleranceBoundary& composed,
    const boundary::FaultToleranceBoundary& monolithic,
    std::span<const campaign::ExperimentRecord> probe);

}  // namespace ftb::sections
