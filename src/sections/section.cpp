#include "sections/section.h"

#include <algorithm>
#include <stdexcept>

#include "campaign/sampler.h"
#include "fi/fpbits.h"
#include "fi/phase_map.h"
#include "util/rng.h"

namespace ftb::sections {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv_step(std::uint64_t hash, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv_text(std::uint64_t hash, const std::string& text) noexcept {
  for (unsigned char c : text) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  // Length terminator: "ab" + "c" must not collide with "a" + "bc".
  return fnv_step(hash, text.size());
}

/// "name=N,name=M" -> pairs; throws on malformed entries.
std::vector<std::pair<std::string, std::uint64_t>> parse_overrides(
    const std::string& text) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("section batch override '" + entry +
                                  "' is not of the form name=count");
    }
    std::uint64_t value = 0;
    try {
      value = std::stoull(entry.substr(eq + 1));
    } catch (const std::exception&) {
      throw std::invalid_argument("section batch override '" + entry +
                                  "' has a non-numeric count");
    }
    out.emplace_back(entry.substr(0, eq), value);
  }
  return out;
}

}  // namespace

const SectionSpec* SectionPlan::find(const std::string& name) const noexcept {
  for (const SectionSpec& spec : sections) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::string sanitize_section_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    out.push_back(ok ? c : '-');
  }
  if (out.empty()) out = "section";
  return out;
}

std::uint64_t trace_signature(const std::vector<double>& trace,
                              std::uint64_t site) {
  std::uint64_t hash = kFnvOffset;
  const std::uint64_t limit = std::min<std::uint64_t>(site, trace.size());
  for (std::uint64_t i = 0; i < limit; ++i) {
    hash = fnv_step(hash, fi::to_bits(trace[i]));
  }
  return hash;
}

SectionPlan carve_sections(const std::string& config_key,
                           const fi::GoldenRun& golden,
                           const CarveOptions& options) {
  const fi::PhaseMap phases(golden.phases, golden.trace.size());

  SectionPlan plan;
  plan.config_key = config_key;
  plan.total_sites = golden.trace.size();
  plan.seed = options.seed;

  // Signatures are cumulative, so compute them in one forward sweep instead
  // of re-hashing the prefix per section.
  std::uint64_t rolling = kFnvOffset;
  std::uint64_t hashed = 0;
  const auto advance = [&](std::uint64_t to) {
    for (; hashed < to; ++hashed) {
      rolling = fnv_step(rolling, fi::to_bits(golden.trace[hashed]));
    }
    return rolling;
  };

  std::vector<std::string> used;
  for (const fi::PhaseMap::Segment& segment : phases.segments()) {
    SectionSpec spec;
    spec.name = sanitize_section_name(segment.name);
    int copy = 1;
    while (std::find(used.begin(), used.end(), spec.name) != used.end()) {
      spec.name = sanitize_section_name(segment.name) + "-" +
                  std::to_string(++copy);
    }
    used.push_back(spec.name);
    spec.begin = segment.begin;
    spec.end = segment.end;
    spec.entry_sig = advance(spec.begin);
    spec.exit_sig = advance(spec.end);
    spec.batch = std::min(options.batch_per_section, spec.sample_space());
    plan.sections.push_back(std::move(spec));
  }

  for (const auto& [name, batch] : parse_overrides(options.batch_overrides)) {
    bool found = false;
    for (SectionSpec& spec : plan.sections) {
      if (spec.name != name) continue;
      spec.batch = std::min(batch, spec.sample_space());
      found = true;
      break;
    }
    if (!found) {
      throw std::invalid_argument("section batch override names unknown "
                                  "section '" + name + "'");
    }
  }

  for (SectionSpec& spec : plan.sections) {
    std::uint64_t hash = kFnvOffset;
    hash = fnv_text(hash, config_key);
    hash = fnv_text(hash, spec.name);
    hash = fnv_step(hash, spec.begin);
    hash = fnv_step(hash, spec.end);
    hash = fnv_step(hash, spec.entry_sig);
    hash = fnv_step(hash, spec.exit_sig);
    hash = fnv_step(hash, spec.batch);
    hash = fnv_step(hash, options.seed);
    spec.fingerprint = hash;
  }
  return plan;
}

std::vector<campaign::ExperimentId> section_sample_ids(
    const SectionSpec& spec, std::uint64_t plan_seed) {
  std::uint64_t section_seed = fnv_text(kFnvOffset, spec.name);
  section_seed = fnv_step(section_seed, plan_seed);
  util::Rng rng(section_seed);
  std::vector<campaign::ExperimentId> ids =
      campaign::sample_uniform(rng, spec.sample_space(), spec.batch);
  const std::uint64_t offset =
      spec.begin * static_cast<std::uint64_t>(fi::kBitsPerValue);
  for (campaign::ExperimentId& id : ids) id += offset;
  return ids;
}

}  // namespace ftb::sections
