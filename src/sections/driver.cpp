#include "sections/driver.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "boundary/accumulator.h"
#include "campaign/campaign.h"

namespace ftb::sections {

namespace {

std::string journal_path(const SectionCampaignOptions& options,
                         const std::string& section) {
  return options.store_dir + "/" + options.stem + "." + section + ".clog";
}

/// A dirty section's journal is resumable only when it was written by this
/// exact configuration *and* contains no experiment outside the section's
/// current id set -- extra records would survive dedupe and make a resumed
/// journal diverge from a fresh one.  Anything else is stale and removed.
void discard_stale_journal(const std::string& path,
                           const std::string& config_key,
                           std::span<const campaign::ExperimentId> ids,
                           telemetry::Telemetry* telemetry) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return;
  bool stale = false;
  std::string error;
  auto journal = campaign::CampaignLog::load(path, &error);
  if (!journal || journal->config_key() != config_key) {
    stale = true;
  } else {
    const std::vector<campaign::ExperimentId> logged = journal->ids();
    stale = !std::includes(ids.begin(), ids.end(), logged.begin(),
                           logged.end());
  }
  if (!stale) return;
  std::filesystem::remove(path, ec);
  if (telemetry::active(telemetry)) {
    telemetry->metrics().counter("sections.journal_discarded").add();
  }
}

}  // namespace

SectionRecord build_section_record(const fi::Program& program,
                                   const fi::GoldenRun& golden,
                                   const SectionSpec& spec,
                                   const campaign::CampaignLog& log,
                                   const std::string& journal_stem,
                                   const SectionCampaignOptions& options) {
  SectionRecord record;
  record.spec = spec;
  record.executed = log.size();
  record.journal = journal_stem;

  const campaign::OutcomeCounts counts = campaign::count_outcomes(log.records());
  record.masked = counts.masked;
  record.sdc = counts.sdc;
  record.crash = counts.crash;
  record.hang = counts.hang;
  record.detected = counts.detected;

  boundary::BoundaryAccumulator accumulator(
      golden.trace.size(), {options.filter, options.prop_buffer_cap});
  std::vector<campaign::ExperimentId> masked_ids;
  for (const campaign::ExperimentRecord& entry : log.records()) {
    if (!campaign::is_classic(entry.id)) continue;
    accumulator.record_injection(campaign::site_of(entry.id),
                                 campaign::bit_of(entry.id),
                                 entry.result.outcome,
                                 entry.result.injected_error);
    if (entry.result.outcome == fi::Outcome::kMasked) {
      masked_ids.push_back(entry.id);
    }
  }

  // Masked propagation re-runs (Algorithm 1) feed the boundary slice and,
  // over the exit window, the section's outgoing error bound.  Both are
  // pointwise maxima, so the worker-thread consumption order cannot change
  // the result.
  const std::uint64_t window = std::max<std::uint64_t>(1, options.edge_window);
  const std::uint64_t exit_begin =
      spec.end - std::min<std::uint64_t>(window, spec.size());
  double exit_bound = 0.0;
  util::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : util::default_pool();
  const auto consume = [&](const campaign::ExperimentRecord&,
                           std::span<const double> diffs) {
    accumulator.record_masked_propagation(diffs);
    for (std::uint64_t j = exit_begin; j < spec.end; ++j) {
      if (std::isfinite(diffs[j]) && diffs[j] > exit_bound) {
        exit_bound = diffs[j];
      }
    }
  };
  (void)campaign::run_experiments_compare(program, golden, masked_ids, pool,
                                          consume);
  record.exit_bound = exit_bound;

  const boundary::FaultToleranceBoundary whole = accumulator.finalize();
  record.thresholds.reserve(spec.size());
  record.exact.reserve(spec.size());
  for (std::uint64_t s = spec.begin; s < spec.end; ++s) {
    record.thresholds.push_back(whole.threshold(s));
    record.exact.push_back(whole.is_exact(s) ? 1 : 0);
  }

  const std::uint64_t entry_end =
      spec.begin + std::min<std::uint64_t>(window, spec.size());
  double entry_tolerance = boundary::FaultToleranceBoundary::kUnbounded;
  bool informed = false;
  for (std::uint64_t s = spec.begin; s < entry_end; ++s) {
    const double threshold = whole.threshold(s);
    if (threshold > 0.0) {
      informed = true;
      entry_tolerance = std::min(entry_tolerance, threshold);
    }
  }
  record.entry_tolerance = informed ? entry_tolerance : 0.0;
  return record;
}

SectionCampaignResult run_section_campaigns(
    const fi::Program& program, const fi::GoldenRun& golden,
    const ComposedArtifact* previous, const SectionCampaignOptions& options) {
  if (options.stem.empty()) {
    throw std::invalid_argument("run_section_campaigns: stem is empty");
  }
  const std::string config_key = program.config_key();
  const SectionPlan plan = carve_sections(config_key, golden, options.carve);

  SectionCampaignResult result;
  result.artifact.config_key = config_key;
  result.artifact.kernel = options.kernel;
  result.artifact.preset = options.preset;
  result.artifact.seed = plan.seed;
  result.artifact.total_sites = plan.total_sites;

  for (const SectionSpec& spec : plan.sections) {
    if (options.should_stop && options.should_stop()) {
      result.stopped = true;
      break;
    }

    const SectionRecord* prev =
        previous != nullptr ? previous->find(spec.name) : nullptr;
    if (!options.force && prev != nullptr &&
        prev->spec.fingerprint == spec.fingerprint) {
      result.artifact.sections.push_back(*prev);
      result.reused.push_back(spec.name);
      if (telemetry::active(options.telemetry)) {
        options.telemetry->metrics().counter("sections.reused").add();
      }
      continue;
    }

    const std::vector<campaign::ExperimentId> ids =
        section_sample_ids(spec, plan.seed);
    const std::string path = journal_path(options, spec.name);
    discard_stale_journal(path, config_key, ids, options.telemetry);

    SectionRunOutcome outcome;
    if (options.section_runner) {
      outcome = options.section_runner(spec, ids, path);
    } else {
      campaign::CheckpointOptions checkpoint;
      checkpoint.path = path;
      checkpoint.flush_every = options.flush_every;
      checkpoint.use_supervisor = options.use_supervisor;
      checkpoint.supervisor = options.supervisor;
      checkpoint.pool = options.pool;
      checkpoint.telemetry = options.telemetry;
      checkpoint.should_stop = options.should_stop;
      if (options.on_progress) {
        checkpoint.on_progress =
            [&](const campaign::CheckpointProgress& progress) {
              options.on_progress(spec.name, progress);
            };
      }
      campaign::CheckpointRunResult run =
          campaign::run_campaign_checkpointed(program, golden, ids, checkpoint);
      outcome.log = std::move(run.log);
      outcome.executed = run.executed;
      outcome.stopped = run.stopped;
    }
    result.executed += outcome.executed;
    if (outcome.stopped) {
      result.stopped = true;
      break;
    }

    result.artifact.sections.push_back(build_section_record(
        program, golden, spec, outcome.log,
        options.stem + "." + spec.name, options));
    result.dirty.push_back(spec.name);
    if (telemetry::active(options.telemetry)) {
      options.telemetry->metrics().counter("sections.recomputed").add();
    }
  }
  return result;
}

CompositionCheck compare_boundaries(
    const boundary::FaultToleranceBoundary& composed,
    const boundary::FaultToleranceBoundary& monolithic,
    std::span<const campaign::ExperimentRecord> probe) {
  CompositionCheck check;
  const std::size_t sites =
      std::min(composed.sites(), monolithic.sites());
  double delta_sum = 0.0;
  for (std::size_t s = 0; s < sites; ++s) {
    const double a = composed.threshold(s);
    const double b = monolithic.threshold(s);
    const bool ia = a > 0.0;
    const bool ib = b > 0.0;
    if (a > b) ++check.composed_optimistic;
    if (ia && !ib) ++check.composed_only;
    if (ib && !ia) ++check.monolithic_only;
    if (!ia || !ib) continue;
    ++check.common_informed;
    double delta = 0.0;
    if (std::isfinite(a) != std::isfinite(b)) {
      delta = 1.0;  // one side claims an unbounded site, the other a value
    } else if (std::isfinite(a)) {
      delta = std::abs(a - b) / std::max(a, b);
    }
    check.max_rel_delta = std::max(check.max_rel_delta, delta);
    delta_sum += delta;
  }
  if (check.common_informed > 0) {
    check.mean_rel_delta =
        delta_sum / static_cast<double>(check.common_informed);
  }
  for (const campaign::ExperimentRecord& record : probe) {
    if (!campaign::is_classic(record.id)) continue;
    const std::uint64_t site = campaign::site_of(record.id);
    if (site >= sites) continue;
    ++check.probes;
    const double error = record.result.injected_error;
    if (composed.predict_masked(site, error) ==
        monolithic.predict_masked(site, error)) {
      ++check.predictions_agree;
    }
  }
  return check;
}

}  // namespace ftb::sections
