#include "sections/compose.h"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/cache.h"
#include "util/durable_file.h"

namespace ftb::sections {

namespace {

constexpr std::uint64_t kMagic = 0x4654422d434d5053ull;  // "FTB-CMPS"
constexpr std::uint64_t kVersion = 1;

std::optional<ComposedArtifact> fail(std::string* error,
                                     const std::string& what) {
  if (error != nullptr) *error = what;
  return std::nullopt;
}

}  // namespace

const SectionRecord* ComposedArtifact::find(
    const std::string& name) const noexcept {
  for (const SectionRecord& record : sections) {
    if (record.spec.name == name) return &record;
  }
  return nullptr;
}

double ComposedArtifact::edge_scale(std::size_t index) const noexcept {
  if (index == 0 || index >= sections.size()) return 1.0;
  const SectionRecord& upstream = sections[index - 1];
  const SectionRecord& here = sections[index];
  // A section campaign is end-to-end -- a masked outcome already certifies
  // the fault through every later section -- so a *consistent* splice needs
  // no cross-edge adjustment.  Consistency is the signature chain: this
  // record must have been built against the exact boundary values its
  // predecessor now produces.  A broken chain is the stale-composition
  // failure mode (a record spliced over a different upstream), and only
  // then do the stored bounds turn into a conservative scale: incoming
  // certified error beyond the entry tolerance shrinks the stale section's
  // thresholds proportionally rather than trusting them.
  if (here.spec.entry_sig == upstream.spec.exit_sig) return 1.0;
  const double incoming = upstream.exit_bound;
  const double tolerated = here.entry_tolerance;
  if (!(incoming > 0.0)) return 1.0;  // nothing certified across the edge
  if (!std::isfinite(incoming)) return 0.0;  // unbounded incoming error
  if (!std::isfinite(tolerated)) return 1.0;  // entry provably insensitive
  if (tolerated >= incoming) return 1.0;
  return tolerated / incoming;  // in [0, 1): shrink proportionally
}

boundary::FaultToleranceBoundary ComposedArtifact::compose() const {
  std::vector<double> thresholds(total_sites, 0.0);
  std::vector<std::uint8_t> exact(total_sites, 0);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const SectionRecord& record = sections[i];
    const double scale = edge_scale(i);
    for (std::uint64_t s = 0; s < record.spec.size(); ++s) {
      thresholds[record.spec.begin + s] = record.thresholds[s] * scale;
      exact[record.spec.begin + s] =
          scale == 1.0 ? record.exact[s] : std::uint8_t{0};
    }
  }
  return boundary::FaultToleranceBoundary(std::move(thresholds),
                                          std::move(exact));
}

std::string serialize(const ComposedArtifact& artifact) {
  util::BinaryWriter writer;
  writer.put_u64(kMagic);
  writer.put_u64(kVersion);
  writer.put_string(artifact.config_key);
  writer.put_string(artifact.kernel);
  writer.put_string(artifact.preset);
  writer.put_u64(artifact.seed);
  writer.put_u64(artifact.total_sites);
  writer.put_u64(artifact.sections.size());
  for (const SectionRecord& record : artifact.sections) {
    writer.put_string(record.spec.name);
    writer.put_u64(record.spec.begin);
    writer.put_u64(record.spec.end);
    writer.put_u64(record.spec.entry_sig);
    writer.put_u64(record.spec.exit_sig);
    writer.put_u64(record.spec.fingerprint);
    writer.put_u64(record.spec.batch);
    writer.put_u64(record.executed);
    writer.put_u64(record.masked);
    writer.put_u64(record.sdc);
    writer.put_u64(record.crash);
    writer.put_u64(record.hang);
    writer.put_u64(record.detected);
    writer.put_f64(record.exit_bound);
    writer.put_f64(record.entry_tolerance);
    writer.put_string(record.journal);
    writer.put_f64_vec(record.thresholds);
    writer.put_bytes(record.exact);
  }
  const std::uint32_t crc =
      util::crc32(writer.buffer().data(), writer.buffer().size());
  writer.put_u64(crc);
  return {writer.buffer().begin(), writer.buffer().end()};
}

std::optional<ComposedArtifact> deserialize_composed(
    const std::string& payload, const std::string& expect_config,
    std::string* error) {
  if (payload.size() < 3 * 8) {
    return fail(error, "composed artifact truncated: " +
                           std::to_string(payload.size()) +
                           " bytes is smaller than the fixed header");
  }
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(payload.data());
  try {
    std::uint64_t magic = 0, version = 0;
    for (int i = 0; i < 8; ++i) {
      magic |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
      version |= static_cast<std::uint64_t>(bytes[8 + i]) << (8 * i);
    }
    if (magic != kMagic) {
      return fail(error,
                  "composed artifact has bad magic (not an FTB-CMPS file)");
    }
    if (version != kVersion) {
      return fail(error, "composed artifact has unsupported version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kVersion) + ")");
    }
    const std::size_t body = payload.size() - 8;
    std::uint64_t stored_crc = 0;
    for (int i = 0; i < 8; ++i) {
      stored_crc |= static_cast<std::uint64_t>(bytes[body + i]) << (8 * i);
    }
    if (stored_crc != util::crc32(bytes, body)) {
      return fail(error,
                  "composed artifact CRC mismatch (file is corrupt or was "
                  "truncated mid-write)");
    }
    util::BinaryReader reader(
        std::vector<std::uint8_t>(bytes + 16, bytes + body));
    ComposedArtifact artifact;
    artifact.config_key = reader.get_string();
    artifact.kernel = reader.get_string();
    artifact.preset = reader.get_string();
    artifact.seed = reader.get_u64();
    artifact.total_sites = reader.get_u64();
    const std::uint64_t count = reader.get_u64();
    // A section record is at least 13 u64s + 2 f64s + 3 length prefixes;
    // validating the count against the remaining bytes stops a forged
    // prefix from driving a huge reserve.
    constexpr std::uint64_t kMinRecordBytes = 18 * 8;
    if (count > reader.remaining() / kMinRecordBytes) {
      return fail(error, "composed artifact section count " +
                             std::to_string(count) +
                             " does not fit the payload");
    }
    artifact.sections.reserve(count);
    std::uint64_t expect_begin = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      SectionRecord record;
      record.spec.name = reader.get_string();
      record.spec.begin = reader.get_u64();
      record.spec.end = reader.get_u64();
      record.spec.entry_sig = reader.get_u64();
      record.spec.exit_sig = reader.get_u64();
      record.spec.fingerprint = reader.get_u64();
      record.spec.batch = reader.get_u64();
      record.executed = reader.get_u64();
      record.masked = reader.get_u64();
      record.sdc = reader.get_u64();
      record.crash = reader.get_u64();
      record.hang = reader.get_u64();
      record.detected = reader.get_u64();
      record.exit_bound = reader.get_f64();
      record.entry_tolerance = reader.get_f64();
      record.journal = reader.get_string();
      record.thresholds = reader.get_f64_vec();
      record.exact = reader.get_bytes();
      if (record.spec.begin != expect_begin ||
          record.spec.end <= record.spec.begin ||
          record.spec.end > artifact.total_sites) {
        return fail(error, "composed artifact section '" + record.spec.name +
                               "' has range [" +
                               std::to_string(record.spec.begin) + ", " +
                               std::to_string(record.spec.end) +
                               ") which does not tile the trace");
      }
      if (record.thresholds.size() != record.spec.size() ||
          record.exact.size() != record.spec.size()) {
        return fail(error, "composed artifact section '" + record.spec.name +
                               "' carries " +
                               std::to_string(record.thresholds.size()) +
                               " thresholds / " +
                               std::to_string(record.exact.size()) +
                               " exact flags for " +
                               std::to_string(record.spec.size()) + " sites");
      }
      expect_begin = record.spec.end;
      artifact.sections.push_back(std::move(record));
    }
    if (expect_begin != artifact.total_sites) {
      return fail(error, "composed artifact sections cover " +
                             std::to_string(expect_begin) + " of " +
                             std::to_string(artifact.total_sites) + " sites");
    }
    if (!reader.exhausted()) {
      return fail(error, "composed artifact has trailing garbage after the "
                         "section table");
    }
    if (!expect_config.empty() && artifact.config_key != expect_config) {
      return fail(error, "composed artifact was built for config '" +
                             artifact.config_key + "', not '" + expect_config +
                             "'");
    }
    return artifact;
  } catch (const std::runtime_error& e) {
    return fail(error, std::string("composed artifact is corrupt: ") +
                           e.what());
  }
}

bool save_composed(const ComposedArtifact& artifact, const std::string& path) {
  return util::write_file_durable(path, serialize(artifact));
}

std::optional<ComposedArtifact> load_composed(const std::string& path,
                                              const std::string& expect_config,
                                              std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "' for reading";
    return std::nullopt;
  }
  const std::string payload{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
  std::string detail;
  auto artifact = deserialize_composed(payload, expect_config, &detail);
  if (!artifact) return fail(error, "'" + path + "': " + detail);
  return artifact;
}

}  // namespace ftb::sections
