// The fault tolerance boundary (paper Section 3.2): one threshold value per
// dynamic instruction.  An error of magnitude <= threshold injected at that
// site is predicted to yield a Masked (acceptable) outcome; anything larger
// is predicted SDC.  A threshold of 0 means "no information" (sites without
// samples are assumed vulnerable, Section 4.4); +infinity means the site
// provably cannot affect the output.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace ftb::boundary {

class FaultToleranceBoundary {
 public:
  FaultToleranceBoundary() = default;

  /// `thresholds[i]` is Delta-e_i.  `exact[i]` marks sites whose threshold
  /// came from enumerating all 64 bit flips rather than from inference
  /// (Section 4.4 uses the correct value for fully-tested sites).
  explicit FaultToleranceBoundary(std::vector<double> thresholds,
                                  std::vector<std::uint8_t> exact = {});

  std::size_t sites() const noexcept { return thresholds_.size(); }

  double threshold(std::size_t site) const noexcept { return thresholds_[site]; }
  bool is_exact(std::size_t site) const noexcept {
    return !exact_.empty() && exact_[site] != 0;
  }

  std::span<const double> thresholds() const noexcept { return thresholds_; }

  /// The paper's definition: errors <= Delta-e are tolerated.
  bool predict_masked(std::size_t site, double injected_error) const noexcept {
    return injected_error <= thresholds_[site];
  }

  /// Number of sites with any information (threshold > 0).
  std::size_t informed_sites() const noexcept;

  /// Pointwise max with another boundary over the same program (used when
  /// combining boundaries built from independent sample batches).
  void merge_max(const FaultToleranceBoundary& other);

  static constexpr double kUnknown = 0.0;
  static constexpr double kUnbounded = std::numeric_limits<double>::infinity();

 private:
  std::vector<double> thresholds_;
  std::vector<std::uint8_t> exact_;
};

}  // namespace ftb::boundary
