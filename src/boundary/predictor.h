// Prediction with a fault tolerance boundary: given the golden value at a
// site, each of the 64 possible bit flips has a deterministic injected
// error, so the boundary classifies each flip as predicted-Masked
// (error <= threshold), predicted-Crash (the flipped value is non-finite,
// which our fault model terminates loudly), or predicted-SDC (everything
// else -- including all flips at sites with no information, per Section
// 4.4's "assume the outcome of unknown sample cases as SDC").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "boundary/boundary.h"
#include "fi/outcome.h"

namespace ftb::boundary {

/// Per-site counts over the 64 bit flips.
struct SitePrediction {
  std::uint32_t masked = 0;
  std::uint32_t sdc = 0;
  std::uint32_t crash = 0;

  /// n_sdc / 64, matching the paper's per-instruction SDC ratio.
  double sdc_ratio() const noexcept;
};

/// Predicts the outcome of flipping `bit` of the golden value at `site`.
fi::Outcome predict_flip(const FaultToleranceBoundary& boundary,
                         std::size_t site, double golden_value,
                         int bit) noexcept;

/// All 64 flips at one site.
SitePrediction predict_site(const FaultToleranceBoundary& boundary,
                            std::size_t site, double golden_value) noexcept;

/// Predicted per-site SDC-ratio profile over the whole trace (Figure 4's
/// orange curves).
std::vector<double> predicted_sdc_profile(const FaultToleranceBoundary& boundary,
                                          std::span<const double> golden_trace);

/// Predicted overall SDC ratio: total predicted-SDC experiments over the
/// whole sample space (Tables 1 and 3's Approx/Predict SDC columns).
double predicted_overall_sdc(const FaultToleranceBoundary& boundary,
                             std::span<const double> golden_trace);

}  // namespace ftb::boundary
