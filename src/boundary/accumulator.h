// BoundaryAccumulator: streaming construction of the fault tolerance
// boundary from fault-injection experiments.
//
// This implements Algorithm 1 of the paper -- the boundary is the pointwise
// max over the propagation errors of all *masked* experiments -- plus two
// refinements:
//
//   * the Section 3.5 *filter operation*: a masked propagation value at
//     site j is rejected if it is >= the smallest injected error of a known
//     SDC experiment at j (non-monotonic sites would otherwise inflate the
//     threshold and cost precision);
//   * the Section 4.4 *exact sites*: once all 64 bit flips of a site have
//     been tested directly, the threshold is taken from the exhaustive rule
//     (largest masked injected error strictly below the smallest SDC
//     injected error) instead of from inference.
//
// Memory: the unfiltered path is a pure streaming max (O(1) per site).  The
// filtered path keeps a small bounded buffer of the largest surviving
// propagation values per site (default 32) because SDC evidence arriving
// later can invalidate previously accepted values.  Eviction can only make
// thresholds smaller, i.e. the filter stays conservative: precision is
// never hurt, recall can drop marginally.  Values rejected at insert time
// (> the then-current SDC minimum) would also be rejected at finalize time
// because the minimum only decreases, so insert-time filtering loses
// nothing.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "boundary/boundary.h"
#include "fi/outcome.h"

namespace ftb::boundary {

struct AccumulatorOptions {
  bool filter = false;           // Section 3.5 filter operation
  std::size_t prop_buffer_cap = 32;  // per-site buffer in filtered mode
};

class BoundaryAccumulator {
 public:
  BoundaryAccumulator(std::size_t sites, AccumulatorOptions options = {});

  std::size_t sites() const noexcept { return site_count_; }

  /// Records a direct injection experiment at `site` flipping `bit`.
  /// All outcomes matter here: masked injections are threshold evidence,
  /// SDC injections feed the filter and the exact-site rule, crash
  /// injections only mark the bit as tested.
  void record_injection(std::size_t site, int bit, fi::Outcome outcome,
                        double injected_error);

  /// Records the propagation data of one *masked* experiment: diffs[j] is
  /// the absolute error observed at site j (0 where untouched).  Only call
  /// for experiments whose final outcome was Masked -- that is precisely
  /// Algorithm 1's guard.
  void record_masked_propagation(std::span<const double> diffs);

  /// Streaming single-value form of the above for the low-memory pipeline
  /// (fi/lowmem.h), which never materialises a diff vector.
  void record_masked_value(std::size_t site, double value);

  /// Per-site count of tested bits (64 -> the site is exact).
  std::uint32_t tested_bits(std::size_t site) const noexcept;

  /// Per-site detector evidence: direct injections at `site` that were
  /// classified Detected / SDC respectively.
  std::uint32_t detected_count(std::size_t site) const noexcept {
    return states_[site].detected;
  }
  std::uint32_t sdc_count(std::size_t site) const noexcept {
    return states_[site].sdc;
  }

  /// Detector coverage at `site`: detected / (detected + sdc), the share of
  /// wrong outputs originating here that the detector caught.  0 with no
  /// evidence (conservative: an untested site claims no coverage).
  double detected_coverage(std::size_t site) const noexcept {
    const std::uint64_t wrong = std::uint64_t{states_[site].detected} +
                                std::uint64_t{states_[site].sdc};
    return wrong ? static_cast<double>(states_[site].detected) /
                       static_cast<double>(wrong)
                 : 0.0;
  }

  /// Totals over all sites (the campaign-level detector summary).
  std::uint64_t total_detected() const noexcept;
  std::uint64_t total_sdc() const noexcept;

  /// Per-site detected_coverage() as a dense vector, for the phase report
  /// (boundary/report.h) and figure emitters.
  std::vector<double> coverage_profile() const;

  /// Masked propagation values dropped because they were NaN/Inf (an
  /// |x' - x| diff can overflow to +inf even between finite trace values).
  /// Surfaced by boundary::render_build_health; nonzero means some masked
  /// runs carried overflowing intermediate corruption.
  std::uint64_t nonfinite_skipped() const noexcept {
    return nonfinite_skipped_;
  }

  /// Filtered mode: propagation values rejected by the Section 3.5 filter,
  /// either at insert time (value >= the site's current SDC minimum) or
  /// pruned later when new SDC evidence lowered that minimum.
  std::uint64_t filter_rejected() const noexcept { return filter_rejected_; }

  /// Filtered mode: values evicted from a full per-site buffer (the
  /// smallest is dropped once prop_buffer_cap is exceeded).
  std::uint64_t prop_evicted() const noexcept { return prop_evicted_; }

  /// Builds the boundary from everything recorded so far.  Can be called
  /// repeatedly (the progressive sampler rebuilds every round).
  FaultToleranceBoundary finalize() const;

  const AccumulatorOptions& options() const noexcept { return options_; }

 private:
  struct SiteState {
    // Direct-injection evidence.
    std::uint64_t tested_mask = 0;       // bits already flipped at this site
    double masked_inj_max = 0.0;         // largest masked injected error
    double min_sdc_inj = kNoSdc;         // smallest SDC injected error
    // Largest masked injected error strictly below min_sdc_inj needs the
    // full set; 64 experiments max, so a compact sorted vector is exact.
    std::vector<double> masked_inj;      // all masked injected errors
    // Propagation evidence (Algorithm 1).
    double prop_max = 0.0;               // unfiltered running max
    std::vector<double> prop_buffer;     // filtered mode: top values kept
    // Detector evidence (fi/detector.h): coverage = detected/(detected+sdc).
    std::uint32_t detected = 0;          // injections classified kDetected
    std::uint32_t sdc = 0;               // injections classified kSdc
  };

  // +inf: no SDC evidence seen yet at a site.
  static constexpr double kNoSdc = std::numeric_limits<double>::infinity();

  void insert_filtered(SiteState& state, double value);

  std::size_t site_count_;
  AccumulatorOptions options_;
  std::vector<SiteState> states_;
  std::uint64_t nonfinite_skipped_ = 0;
  std::uint64_t filter_rejected_ = 0;
  std::uint64_t prop_evicted_ = 0;
};

}  // namespace ftb::boundary
