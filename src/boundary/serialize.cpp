#include "boundary/serialize.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/cache.h"
#include "util/durable_file.h"

namespace ftb::boundary {

namespace {

constexpr std::uint64_t kMagic = 0x4654422d424e4452ull;  // "FTB-BNDR"
// v1: magic, version, body, no integrity check.
// v2: magic, version, body, trailing CRC-32 stored as a u64 (the campaign
//     log's framing discipline), so torn writes and bit rot are rejected
//     instead of silently producing a wrong boundary.
constexpr std::uint64_t kVersionLegacy = 1;
constexpr std::uint64_t kVersion = 2;

std::optional<BoundaryArtifact> fail(std::string* error,
                                     const std::string& what) {
  if (error != nullptr) *error = what;
  return std::nullopt;
}

/// Decodes the body shared by v1 and v2: config key, thresholds, exact
/// flags.  Throws std::runtime_error on truncation (BinaryReader).
BoundaryArtifact decode_body(util::BinaryReader& reader,
                             std::uint64_t version) {
  BoundaryArtifact artifact;
  artifact.version = version;
  artifact.config_key = reader.get_string();
  const std::uint64_t sites = reader.get_u64();
  std::vector<double> thresholds;
  thresholds.reserve(sites);
  for (std::uint64_t i = 0; i < sites; ++i) {
    thresholds.push_back(reader.get_f64());
  }
  std::vector<std::uint8_t> exact = reader.get_bytes();
  if (exact.size() != sites) {
    throw std::runtime_error("exact-flag vector has " +
                             std::to_string(exact.size()) + " entries for " +
                             std::to_string(sites) + " sites");
  }
  artifact.boundary =
      FaultToleranceBoundary(std::move(thresholds), std::move(exact));
  return artifact;
}

}  // namespace

std::string serialize(const FaultToleranceBoundary& boundary,
                      const std::string& config_key) {
  util::BinaryWriter writer;
  writer.put_u64(kMagic);
  writer.put_u64(kVersion);
  writer.put_string(config_key);
  writer.put_u64(boundary.sites());
  for (std::size_t i = 0; i < boundary.sites(); ++i) {
    writer.put_f64(boundary.threshold(i));
  }
  std::vector<std::uint8_t> exact(boundary.sites());
  for (std::size_t i = 0; i < boundary.sites(); ++i) {
    exact[i] = boundary.is_exact(i) ? 1 : 0;
  }
  writer.put_bytes(exact);
  const std::uint32_t crc =
      util::crc32(writer.buffer().data(), writer.buffer().size());
  writer.put_u64(crc);
  return {writer.buffer().begin(), writer.buffer().end()};
}

std::optional<BoundaryArtifact> deserialize_artifact(
    const std::string& payload, const std::string& expect_config,
    std::string* error) {
  if (payload.size() < 2 * 8) {
    return fail(error, "boundary artifact truncated: " +
                           std::to_string(payload.size()) +
                           " bytes is smaller than the fixed header");
  }
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(payload.data());
  try {
    std::uint64_t magic = 0, version = 0;
    for (int i = 0; i < 8; ++i) {
      magic |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
      version |= static_cast<std::uint64_t>(bytes[8 + i]) << (8 * i);
    }
    if (magic != kMagic) {
      return fail(error,
                  "boundary artifact has bad magic (not an FTB-BNDR file)");
    }
    if (version != kVersionLegacy && version != kVersion) {
      return fail(error, "boundary artifact has unsupported version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kVersionLegacy) + " or " +
                             std::to_string(kVersion) + ")");
    }
    std::size_t body = payload.size();
    if (version == kVersion) {
      if (payload.size() < 3 * 8) {
        return fail(error,
                    "boundary artifact truncated: no room for the CRC frame");
      }
      body -= 8;
      std::uint64_t stored_crc = 0;
      for (int i = 0; i < 8; ++i) {
        stored_crc |= static_cast<std::uint64_t>(bytes[body + i]) << (8 * i);
      }
      if (stored_crc != util::crc32(bytes, body)) {
        return fail(error,
                    "boundary artifact CRC mismatch (file is corrupt or was "
                    "truncated mid-write)");
      }
    }
    util::BinaryReader reader(
        std::vector<std::uint8_t>(bytes + 16, bytes + body));
    BoundaryArtifact artifact = decode_body(reader, version);
    if (!reader.exhausted()) {
      // A v2 file whose version word rotted to 1 lands here: the legacy
      // parse leaves the CRC frame behind as unexplained trailing bytes.
      return fail(error, "boundary artifact has trailing garbage after the "
                         "encoded boundary");
    }
    if (!expect_config.empty() && artifact.config_key != expect_config) {
      return fail(error, "boundary artifact was built for config '" +
                             artifact.config_key + "', not '" + expect_config +
                             "'");
    }
    return artifact;
  } catch (const std::runtime_error& e) {
    return fail(error,
                std::string("boundary artifact is corrupt: ") + e.what());
  }
}

std::optional<FaultToleranceBoundary> deserialize(
    const std::string& payload, const std::string& expect_config,
    std::string* error) {
  auto artifact = deserialize_artifact(payload, expect_config, error);
  if (!artifact.has_value()) return std::nullopt;
  return std::move(artifact->boundary);
}

bool save_to_file(const FaultToleranceBoundary& boundary,
                  const std::string& config_key, const std::string& path) {
  // Durable publish (tmp + fsync + rename + parent-dir fsync): the store
  // serves whatever *.boundary files exist, so a published artifact must
  // never be a rename that a crash can un-write.
  return util::write_file_durable(path, serialize(boundary, config_key));
}

std::optional<BoundaryArtifact> load_artifact_from_file(
    const std::string& path, const std::string& expect_config,
    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "' for reading";
    return std::nullopt;
  }
  const std::string payload{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
  return deserialize_artifact(payload, expect_config, error);
}

std::optional<FaultToleranceBoundary> load_from_file(
    const std::string& path, const std::string& expect_config,
    std::string* error) {
  auto artifact = load_artifact_from_file(path, expect_config, error);
  if (!artifact.has_value()) return std::nullopt;
  return std::move(artifact->boundary);
}

}  // namespace ftb::boundary
