#include "boundary/serialize.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/cache.h"

namespace ftb::boundary {

namespace {

constexpr std::uint64_t kMagic = 0x4654422d424e4452ull;  // "FTB-BNDR"
constexpr std::uint64_t kVersion = 1;

}  // namespace

std::string serialize(const FaultToleranceBoundary& boundary,
                      const std::string& config_key) {
  util::BinaryWriter writer;
  writer.put_u64(kMagic);
  writer.put_u64(kVersion);
  writer.put_string(config_key);
  writer.put_u64(boundary.sites());
  for (std::size_t i = 0; i < boundary.sites(); ++i) {
    writer.put_f64(boundary.threshold(i));
  }
  std::vector<std::uint8_t> exact(boundary.sites());
  for (std::size_t i = 0; i < boundary.sites(); ++i) {
    exact[i] = boundary.is_exact(i) ? 1 : 0;
  }
  writer.put_bytes(exact);
  return {writer.buffer().begin(), writer.buffer().end()};
}

std::optional<FaultToleranceBoundary> deserialize(
    const std::string& payload, const std::string& expect_config) {
  try {
    util::BinaryReader reader(
        std::vector<std::uint8_t>(payload.begin(), payload.end()));
    if (reader.get_u64() != kMagic) return std::nullopt;
    if (reader.get_u64() != kVersion) return std::nullopt;
    const std::string config = reader.get_string();
    if (!expect_config.empty() && config != expect_config) {
      return std::nullopt;
    }
    const std::uint64_t sites = reader.get_u64();
    std::vector<double> thresholds;
    thresholds.reserve(sites);
    for (std::uint64_t i = 0; i < sites; ++i) {
      thresholds.push_back(reader.get_f64());
    }
    std::vector<std::uint8_t> exact = reader.get_bytes();
    if (exact.size() != sites) return std::nullopt;
    return FaultToleranceBoundary(std::move(thresholds), std::move(exact));
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

bool save_to_file(const FaultToleranceBoundary& boundary,
                  const std::string& config_key, const std::string& path) {
  const std::string payload = serialize(boundary, config_key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

std::optional<FaultToleranceBoundary> load_from_file(
    const std::string& path, const std::string& expect_config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  const std::string payload{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
  return deserialize(payload, expect_config);
}

}  // namespace ftb::boundary
