#include "boundary/predictor.h"

#include <cassert>

#include "fi/fpbits.h"

namespace ftb::boundary {

double SitePrediction::sdc_ratio() const noexcept {
  return static_cast<double>(sdc) / static_cast<double>(fi::kBitsPerValue);
}

fi::Outcome predict_flip(const FaultToleranceBoundary& boundary,
                         std::size_t site, double golden_value,
                         int bit) noexcept {
  if (fi::flip_is_nonfinite(golden_value, bit)) return fi::Outcome::kCrash;
  const double error = fi::bit_flip_error(golden_value, bit);
  return boundary.predict_masked(site, error) ? fi::Outcome::kMasked
                                              : fi::Outcome::kSdc;
}

SitePrediction predict_site(const FaultToleranceBoundary& boundary,
                            std::size_t site, double golden_value) noexcept {
  SitePrediction prediction;
  for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
    switch (predict_flip(boundary, site, golden_value, bit)) {
      case fi::Outcome::kMasked:
        ++prediction.masked;
        break;
      case fi::Outcome::kSdc:
        ++prediction.sdc;
        break;
      case fi::Outcome::kCrash:
      case fi::Outcome::kHang:      // predict_flip never returns kHang...
      case fi::Outcome::kDetected:  // ...nor kDetected (no detector model)
        ++prediction.crash;
        break;
    }
  }
  return prediction;
}

std::vector<double> predicted_sdc_profile(
    const FaultToleranceBoundary& boundary,
    std::span<const double> golden_trace) {
  assert(boundary.sites() == golden_trace.size());
  std::vector<double> profile(golden_trace.size(), 0.0);
  for (std::size_t site = 0; site < golden_trace.size(); ++site) {
    profile[site] = predict_site(boundary, site, golden_trace[site]).sdc_ratio();
  }
  return profile;
}

double predicted_overall_sdc(const FaultToleranceBoundary& boundary,
                             std::span<const double> golden_trace) {
  assert(boundary.sites() == golden_trace.size());
  if (golden_trace.empty()) return 0.0;
  std::uint64_t sdc = 0;
  for (std::size_t site = 0; site < golden_trace.size(); ++site) {
    sdc += predict_site(boundary, site, golden_trace[site]).sdc;
  }
  return static_cast<double>(sdc) /
         static_cast<double>(golden_trace.size() * fi::kBitsPerValue);
}

}  // namespace ftb::boundary
