// Evaluation metrics (paper Sections 3.6 and 4.1): precision and recall of
// a boundary against exhaustive ground truth, the self-verifiable
// *uncertainty* (precision measured only on the sampled experiments), the
// per-site DeltaSDC profile of Figure 3, and the monotonicity analysis the
// paper reports alongside it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "boundary/boundary.h"
#include "fi/outcome.h"
#include "util/stats.h"

namespace ftb::boundary {

struct EvaluationMetrics {
  util::Confusion full;     // confusion over the complete sample space
  util::Confusion sampled;  // confusion over the selected samples only

  double precision() const noexcept { return full.precision(); }
  double recall() const noexcept { return full.recall(); }
  /// Section 3.6: precision on the training (sampled) set; computable
  /// without ground truth, so the user can self-verify the boundary.
  double uncertainty() const noexcept { return sampled.precision(); }
};

/// Evaluates predicted-masked vs actually-masked over every (site, bit)
/// experiment.  `outcomes` is the exhaustive ground-truth table, row-major
/// outcomes[site * 64 + bit]; `sampled_ids` lists the experiments used to
/// build the boundary (site * 64 + bit encoding), for the uncertainty
/// metric.  Actual crashes count as negatives (they are not masked); a
/// predicted-Crash never counts as predicted-masked.
EvaluationMetrics evaluate_boundary(const FaultToleranceBoundary& boundary,
                                    std::span<const double> golden_trace,
                                    std::span<const fi::Outcome> outcomes,
                                    std::span<const std::uint64_t> sampled_ids);

/// Per-site true SDC ratio (n_sdc / 64) from the ground-truth table.
std::vector<double> true_sdc_profile(std::span<const fi::Outcome> outcomes,
                                     std::size_t sites);

/// Overall SDC ratio over the whole sample space.
double overall_sdc_ratio(std::span<const fi::Outcome> outcomes);

/// DeltaSDC[i] = Golden_SDC[i] - Approx_SDC[i] (Figure 3's x axis).
std::vector<double> delta_sdc_profile(std::span<const double> golden_profile,
                                      std::span<const double> predicted_profile);

/// Section 4.1 / Section 5: a site is non-monotonic when some masked
/// experiment's injected error strictly exceeds the smallest SDC
/// experiment's injected error at the same site.
struct MonotonicityReport {
  std::size_t total_sites = 0;
  std::size_t non_monotonic_sites = 0;
  double fraction() const noexcept {
    return total_sites
               ? static_cast<double>(non_monotonic_sites) /
                     static_cast<double>(total_sites)
               : 0.0;
  }
};

MonotonicityReport analyze_monotonicity(std::span<const fi::Outcome> outcomes,
                                        std::span<const double> golden_trace);

}  // namespace ftb::boundary
