#include "boundary/protection.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "boundary/predictor.h"
#include "fi/fpbits.h"

namespace ftb::boundary {

namespace {

/// Per-site predicted-SDC bit counts and the sites ordered by impact.
struct Contributions {
  std::vector<std::uint32_t> sdc_bits;      // per site
  std::vector<std::uint64_t> order;         // sites, highest impact first
  std::uint64_t total_sdc_bits = 0;
};

Contributions compute_contributions(const FaultToleranceBoundary& boundary,
                                    std::span<const double> golden_trace) {
  assert(boundary.sites() == golden_trace.size());
  Contributions c;
  c.sdc_bits.resize(golden_trace.size());
  for (std::size_t site = 0; site < golden_trace.size(); ++site) {
    c.sdc_bits[site] = predict_site(boundary, site, golden_trace[site]).sdc;
    c.total_sdc_bits += c.sdc_bits[site];
  }
  c.order.resize(golden_trace.size());
  std::iota(c.order.begin(), c.order.end(), std::uint64_t{0});
  std::stable_sort(c.order.begin(), c.order.end(),
                   [&](std::uint64_t a, std::uint64_t b) {
                     return c.sdc_bits[a] > c.sdc_bits[b];
                   });
  return c;
}

ProtectionPlan build_plan(const Contributions& c, std::size_t site_count,
                          std::size_t protect_count) {
  ProtectionPlan plan;
  const double denom =
      static_cast<double>(site_count) * fi::kBitsPerValue;
  plan.sdc_before = static_cast<double>(c.total_sdc_bits) / denom;

  std::uint64_t removed = 0;
  plan.sites.reserve(protect_count);
  for (std::size_t i = 0; i < protect_count; ++i) {
    const std::uint64_t site = c.order[i];
    if (c.sdc_bits[site] == 0) break;  // nothing left worth protecting
    plan.sites.push_back(site);
    removed += c.sdc_bits[site];
  }
  plan.sdc_after =
      static_cast<double>(c.total_sdc_bits - removed) / denom;
  plan.cost_fraction = site_count
                           ? static_cast<double>(plan.sites.size()) /
                                 static_cast<double>(site_count)
                           : 0.0;
  return plan;
}

}  // namespace

ProtectionPlan plan_with_budget(const FaultToleranceBoundary& boundary,
                                std::span<const double> golden_trace,
                                double budget_fraction) {
  const Contributions c = compute_contributions(boundary, golden_trace);
  const auto protect_count = static_cast<std::size_t>(
      std::clamp(budget_fraction, 0.0, 1.0) *
      static_cast<double>(golden_trace.size()));
  return build_plan(c, golden_trace.size(), protect_count);
}

ProtectionPlan plan_to_target(const FaultToleranceBoundary& boundary,
                              std::span<const double> golden_trace,
                              double target_sdc_ratio) {
  const Contributions c = compute_contributions(boundary, golden_trace);
  const double denom =
      static_cast<double>(golden_trace.size()) * fi::kBitsPerValue;
  const auto target_bits = static_cast<std::uint64_t>(
      std::max(0.0, target_sdc_ratio) * denom);

  std::uint64_t remaining = c.total_sdc_bits;
  std::size_t needed = 0;
  while (needed < c.order.size() && remaining > target_bits &&
         c.sdc_bits[c.order[needed]] > 0) {
    remaining -= c.sdc_bits[c.order[needed]];
    ++needed;
  }
  return build_plan(c, golden_trace.size(), needed);
}

}  // namespace ftb::boundary
