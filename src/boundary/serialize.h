// Boundary (de)serialisation: an inferred fault tolerance boundary is the
// expensive artefact of a campaign, so downstream tooling (vulnerability
// reports, protection planners, CI checks, the ftb_served boundary store)
// can persist it and reload it without rerunning experiments.  The format
// embeds the program's config_key so a boundary cannot be applied to a
// different configuration silently.
//
// Since v2 the file is framed like the campaign log: magic, version, body,
// then a trailing CRC-32 (stored as a u64 to keep the file 8-byte framed)
// over everything before it.  Old v1 files -- same magic, version 1, no
// CRC -- still load; new files are always written as v2.
#pragma once

#include <optional>
#include <string>

#include "boundary/boundary.h"

namespace ftb::boundary {

/// A fully decoded artifact: the boundary plus the metadata the frame
/// carried.  `version` is the on-disk format version the payload used.
struct BoundaryArtifact {
  FaultToleranceBoundary boundary;
  std::string config_key;
  std::uint64_t version = 0;
};

/// Serialises the boundary together with the program configuration key it
/// was built for (always the current v2 CRC-framed format).
std::string serialize(const FaultToleranceBoundary& boundary,
                      const std::string& config_key);

/// Deserialises with full metadata.  Returns nullopt (with a one-line
/// diagnostic in `error`) on corrupt input -- bad magic, unsupported
/// version, CRC mismatch, truncation, trailing garbage -- or when
/// `expect_config` is non-empty and does not match the embedded key.
std::optional<BoundaryArtifact> deserialize_artifact(
    const std::string& payload, const std::string& expect_config = {},
    std::string* error = nullptr);

/// Boundary-only convenience wrapper over deserialize_artifact.
std::optional<FaultToleranceBoundary> deserialize(
    const std::string& payload, const std::string& expect_config = {},
    std::string* error = nullptr);

/// Convenience file helpers (binary, atomic-ish write via temp + rename).
bool save_to_file(const FaultToleranceBoundary& boundary,
                  const std::string& config_key, const std::string& path);
std::optional<FaultToleranceBoundary> load_from_file(
    const std::string& path, const std::string& expect_config = {},
    std::string* error = nullptr);
std::optional<BoundaryArtifact> load_artifact_from_file(
    const std::string& path, const std::string& expect_config = {},
    std::string* error = nullptr);

}  // namespace ftb::boundary
