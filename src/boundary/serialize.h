// Boundary (de)serialisation: an inferred fault tolerance boundary is the
// expensive artefact of a campaign, so downstream tooling (vulnerability
// reports, protection planners, CI checks) can persist it and reload it
// without rerunning experiments.  The format embeds the program's
// config_key so a boundary cannot be applied to a different configuration
// silently.
#pragma once

#include <optional>
#include <string>

#include "boundary/boundary.h"

namespace ftb::boundary {

/// Serialises the boundary together with the program configuration key it
/// was built for.
std::string serialize(const FaultToleranceBoundary& boundary,
                      const std::string& config_key);

/// Deserialises; returns nullopt on corrupt input or when `expect_config`
/// is non-empty and does not match the embedded key.
std::optional<FaultToleranceBoundary> deserialize(
    const std::string& payload, const std::string& expect_config = {});

/// Convenience file helpers (binary, atomic-ish write via temp + rename).
bool save_to_file(const FaultToleranceBoundary& boundary,
                  const std::string& config_key, const std::string& path);
std::optional<FaultToleranceBoundary> load_from_file(
    const std::string& path, const std::string& expect_config = {});

}  // namespace ftb::boundary
