// Exhaustive boundary construction (paper Section 4.1): given the outcome of
// every one of the 64 bit-flip experiments at every site, derive each site's
// threshold as the largest masked injected error strictly below the smallest
// SDC injected error.  This is the "ground truth boundary" the inference
// method is compared against, and it also powers the Figure 3 monotonicity
// analysis.
#pragma once

#include <span>

#include "boundary/boundary.h"
#include "fi/outcome.h"

namespace ftb::boundary {

/// `outcomes` is row-major: outcomes[site * 64 + bit].  `golden_trace` gives
/// the fault-free value at each site, from which each experiment's injected
/// error is recomputed (the fault model is deterministic).  All sites are
/// marked exact.
FaultToleranceBoundary exhaustive_boundary(std::span<const fi::Outcome> outcomes,
                                           std::span<const double> golden_trace);

}  // namespace ftb::boundary
