#include "boundary/boundary.h"

#include <algorithm>
#include <cassert>

namespace ftb::boundary {

FaultToleranceBoundary::FaultToleranceBoundary(std::vector<double> thresholds,
                                               std::vector<std::uint8_t> exact)
    : thresholds_(std::move(thresholds)), exact_(std::move(exact)) {
  assert(exact_.empty() || exact_.size() == thresholds_.size());
}

std::size_t FaultToleranceBoundary::informed_sites() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(thresholds_.begin(), thresholds_.end(),
                    [](double t) { return t > 0.0; }));
}

void FaultToleranceBoundary::merge_max(const FaultToleranceBoundary& other) {
  assert(other.sites() == sites());
  for (std::size_t i = 0; i < thresholds_.size(); ++i) {
    thresholds_[i] = std::max(thresholds_[i], other.thresholds_[i]);
  }
  if (!other.exact_.empty()) {
    if (exact_.empty()) {
      exact_ = other.exact_;
    } else {
      for (std::size_t i = 0; i < exact_.size(); ++i) {
        exact_[i] = exact_[i] || other.exact_[i];
      }
    }
  }
}

}  // namespace ftb::boundary
