#include "boundary/metrics.h"

#include <cassert>
#include <limits>

#include "boundary/predictor.h"
#include "fi/fpbits.h"

namespace ftb::boundary {

namespace {

void tally(util::Confusion& confusion, fi::Outcome predicted,
           fi::Outcome actual) noexcept {
  // A predicted Crash is not a "predicted case" in the paper's sense (it is
  // neither predicted masked nor predicted SDC by the boundary); actual
  // crashes are negatives (not masked).
  const bool predicted_masked = predicted == fi::Outcome::kMasked;
  const bool actually_masked = actual == fi::Outcome::kMasked;
  if (predicted == fi::Outcome::kCrash) return;
  if (predicted_masked && actually_masked) {
    ++confusion.true_positive;
  } else if (predicted_masked) {
    ++confusion.false_positive;
  } else if (actually_masked) {
    ++confusion.false_negative;
  } else {
    ++confusion.true_negative;
  }
}

}  // namespace

EvaluationMetrics evaluate_boundary(const FaultToleranceBoundary& boundary,
                                    std::span<const double> golden_trace,
                                    std::span<const fi::Outcome> outcomes,
                                    std::span<const std::uint64_t> sampled_ids) {
  const std::size_t sites = golden_trace.size();
  assert(boundary.sites() == sites);
  assert(outcomes.size() == sites * fi::kBitsPerValue);

  std::vector<std::uint8_t> is_sampled(outcomes.size(), 0);
  for (std::uint64_t id : sampled_ids) {
    assert(id < outcomes.size());
    is_sampled[id] = 1;
  }

  EvaluationMetrics metrics;
  for (std::size_t site = 0; site < sites; ++site) {
    const double value = golden_trace[site];
    for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
      const std::size_t id = site * fi::kBitsPerValue + bit;
      const fi::Outcome predicted = predict_flip(boundary, site, value, bit);
      const fi::Outcome actual = outcomes[id];
      tally(metrics.full, predicted, actual);
      if (is_sampled[id]) tally(metrics.sampled, predicted, actual);
    }
  }
  return metrics;
}

std::vector<double> true_sdc_profile(std::span<const fi::Outcome> outcomes,
                                     std::size_t sites) {
  assert(outcomes.size() == sites * fi::kBitsPerValue);
  std::vector<double> profile(sites, 0.0);
  for (std::size_t site = 0; site < sites; ++site) {
    std::uint32_t sdc = 0;
    for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
      if (outcomes[site * fi::kBitsPerValue + bit] == fi::Outcome::kSdc) ++sdc;
    }
    profile[site] =
        static_cast<double>(sdc) / static_cast<double>(fi::kBitsPerValue);
  }
  return profile;
}

double overall_sdc_ratio(std::span<const fi::Outcome> outcomes) {
  if (outcomes.empty()) return 0.0;
  std::uint64_t sdc = 0;
  for (fi::Outcome o : outcomes) {
    if (o == fi::Outcome::kSdc) ++sdc;
  }
  return static_cast<double>(sdc) / static_cast<double>(outcomes.size());
}

std::vector<double> delta_sdc_profile(
    std::span<const double> golden_profile,
    std::span<const double> predicted_profile) {
  assert(golden_profile.size() == predicted_profile.size());
  std::vector<double> delta(golden_profile.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = golden_profile[i] - predicted_profile[i];
  }
  return delta;
}

MonotonicityReport analyze_monotonicity(std::span<const fi::Outcome> outcomes,
                                        std::span<const double> golden_trace) {
  const std::size_t sites = golden_trace.size();
  assert(outcomes.size() == sites * fi::kBitsPerValue);
  MonotonicityReport report;
  report.total_sites = sites;
  for (std::size_t site = 0; site < sites; ++site) {
    const double value = golden_trace[site];
    double min_sdc = std::numeric_limits<double>::infinity();
    double max_masked = 0.0;
    for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
      const fi::Outcome outcome = outcomes[site * fi::kBitsPerValue + bit];
      const double error = fi::bit_flip_error(value, bit);
      if (outcome == fi::Outcome::kSdc && error < min_sdc) min_sdc = error;
      if (outcome == fi::Outcome::kMasked && error > max_masked) {
        max_masked = error;
      }
    }
    if (max_masked > min_sdc) ++report.non_monotonic_sites;
  }
  return report;
}

}  // namespace ftb::boundary
