#include "boundary/exhaustive.h"

#include <cassert>
#include <limits>
#include <vector>

#include "fi/fpbits.h"

namespace ftb::boundary {

FaultToleranceBoundary exhaustive_boundary(
    std::span<const fi::Outcome> outcomes,
    std::span<const double> golden_trace) {
  const std::size_t sites = golden_trace.size();
  assert(outcomes.size() == sites * fi::kBitsPerValue);

  std::vector<double> thresholds(sites, 0.0);
  std::vector<std::uint8_t> exact(sites, 1);

  for (std::size_t site = 0; site < sites; ++site) {
    const double value = golden_trace[site];
    double min_sdc = std::numeric_limits<double>::infinity();
    for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
      if (outcomes[site * fi::kBitsPerValue + bit] == fi::Outcome::kSdc) {
        const double e = fi::bit_flip_error(value, bit);
        if (e < min_sdc) min_sdc = e;
      }
    }
    double best = 0.0;
    for (int bit = 0; bit < fi::kBitsPerValue; ++bit) {
      if (outcomes[site * fi::kBitsPerValue + bit] == fi::Outcome::kMasked) {
        const double e = fi::bit_flip_error(value, bit);
        if (e < min_sdc && e > best) best = e;
      }
    }
    thresholds[site] = best;
  }
  return FaultToleranceBoundary(std::move(thresholds), std::move(exact));
}

}  // namespace ftb::boundary
