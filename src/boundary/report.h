// Per-phase vulnerability reports: aggregates boundary predictions (and,
// when available, ground truth) over the source-level phases a kernel
// announced through Tracer::phase().  This is the "interpreted directly by
// the application programmer" output the paper's Section 2.2 asks for.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "boundary/boundary.h"
#include "fi/phase_map.h"

namespace ftb::boundary {

struct PhaseReport {
  std::string name;
  std::uint64_t begin = 0;            // dynamic-instruction range
  std::uint64_t end = 0;
  double mean_predicted_sdc = 0.0;    // mean predicted per-site SDC ratio
  double median_threshold = 0.0;      // median tolerance threshold
  double informed_fraction = 0.0;     // sites with any boundary information
  std::optional<double> mean_true_sdc;  // when ground truth is supplied
  // Mean per-site detector coverage (detected / (detected + sdc)) when the
  // campaign ran with an ABFT detector (fi/detector.h); nullopt otherwise.
  std::optional<double> mean_detected_coverage;

  std::uint64_t sites() const noexcept { return end - begin; }
};

/// Builds one report row per phase.  `true_profile` (per-site golden SDC
/// ratios) and `coverage_profile` (per-site detector coverage, see
/// BoundaryAccumulator::coverage_profile) are optional; pass empty spans
/// when no ground truth / no detector exists.
std::vector<PhaseReport> phase_report(const fi::PhaseMap& phases,
                                      const FaultToleranceBoundary& boundary,
                                      std::span<const double> golden_trace,
                                      std::span<const double> true_profile = {},
                                      std::span<const double> coverage_profile = {});

/// Renders the report as an aligned text table (one line per phase).
std::string render_phase_report(std::span<const PhaseReport> report);

/// One-line health note about the boundary build itself: how many masked
/// propagation values were skipped for being NaN/Inf (see
/// BoundaryAccumulator::nonfinite_skipped).  Empty string when zero, so
/// callers can append it unconditionally.
std::string render_build_health(std::uint64_t nonfinite_skipped);

}  // namespace ftb::boundary
