// Selective-protection planning on top of a fault tolerance boundary.
//
// The paper's introduction motivates the whole method with this workload:
// full duplication/TMR is too expensive, "a small fraction of static
// instructions contribute to the majority of SDC events", so find the
// vulnerable instructions and protect only those.  Given a boundary, each
// site's predicted SDC contribution is its predicted-SDC bit count;
// protecting a site (duplicating its producing instruction) removes that
// contribution.  The planner greedily protects the highest-contribution
// sites under either a site budget or a target residual SDC ratio.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "boundary/boundary.h"

namespace ftb::boundary {

struct ProtectionPlan {
  std::vector<std::uint64_t> sites;  // protected sites, highest impact first
  double sdc_before = 0.0;  // predicted overall SDC ratio, unprotected
  double sdc_after = 0.0;   // predicted ratio with the plan applied
  double cost_fraction = 0.0;  // protected sites / total sites

  double coverage() const noexcept {
    return sdc_before > 0.0 ? 1.0 - sdc_after / sdc_before : 1.0;
  }
};

/// Protects up to `budget_fraction` of the dynamic instructions, highest
/// predicted-SDC contribution first.
ProtectionPlan plan_with_budget(const FaultToleranceBoundary& boundary,
                                std::span<const double> golden_trace,
                                double budget_fraction);

/// Protects the fewest sites that bring the predicted SDC ratio down to
/// `target_sdc_ratio` (or protects every contributing site if the target is
/// unreachable).
ProtectionPlan plan_to_target(const FaultToleranceBoundary& boundary,
                              std::span<const double> golden_trace,
                              double target_sdc_ratio);

}  // namespace ftb::boundary
