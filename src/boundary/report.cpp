#include "boundary/report.h"

#include <algorithm>
#include <cassert>

#include "boundary/predictor.h"
#include "util/table.h"

namespace ftb::boundary {

std::vector<PhaseReport> phase_report(const fi::PhaseMap& phases,
                                      const FaultToleranceBoundary& boundary,
                                      std::span<const double> golden_trace,
                                      std::span<const double> true_profile,
                                      std::span<const double> coverage_profile) {
  assert(boundary.sites() == golden_trace.size());
  assert(true_profile.empty() || true_profile.size() == golden_trace.size());
  assert(coverage_profile.empty() ||
         coverage_profile.size() == golden_trace.size());
  assert(phases.total_sites() == golden_trace.size());

  std::vector<PhaseReport> report;
  report.reserve(phases.segments().size());
  for (const fi::PhaseMap::Segment& segment : phases.segments()) {
    PhaseReport row;
    row.name = segment.name;
    row.begin = segment.begin;
    row.end = segment.end;

    double predicted_sum = 0.0;
    double true_sum = 0.0;
    double coverage_sum = 0.0;
    std::uint64_t informed = 0;
    std::vector<double> thresholds;
    thresholds.reserve(segment.size());
    for (std::uint64_t site = segment.begin; site < segment.end; ++site) {
      predicted_sum +=
          predict_site(boundary, site, golden_trace[site]).sdc_ratio();
      if (!true_profile.empty()) true_sum += true_profile[site];
      if (!coverage_profile.empty()) coverage_sum += coverage_profile[site];
      if (boundary.threshold(site) > 0.0) ++informed;
      thresholds.push_back(boundary.threshold(site));
    }
    const auto n = static_cast<double>(segment.size());
    row.mean_predicted_sdc = predicted_sum / n;
    row.informed_fraction = static_cast<double>(informed) / n;
    std::nth_element(thresholds.begin(),
                     thresholds.begin() + thresholds.size() / 2,
                     thresholds.end());
    row.median_threshold = thresholds[thresholds.size() / 2];
    if (!true_profile.empty()) row.mean_true_sdc = true_sum / n;
    if (!coverage_profile.empty()) row.mean_detected_coverage = coverage_sum / n;
    report.push_back(std::move(row));
  }
  return report;
}

std::string render_phase_report(std::span<const PhaseReport> report) {
  const bool with_truth =
      !report.empty() && report.front().mean_true_sdc.has_value();
  const bool with_coverage =
      !report.empty() && report.front().mean_detected_coverage.has_value();
  std::vector<std::string> header = {"phase", "instructions",
                                     "predicted SDC", "median threshold",
                                     "informed"};
  if (with_truth) header.insert(header.begin() + 3, "true SDC");
  if (with_coverage) header.push_back("det coverage");
  util::Table table(std::move(header));
  for (const PhaseReport& row : report) {
    std::vector<std::string> cells = {
        row.name,
        util::format("[%llu, %llu)", static_cast<unsigned long long>(row.begin),
                     static_cast<unsigned long long>(row.end)),
        util::percent(row.mean_predicted_sdc),
        util::format("%.3g", row.median_threshold),
        util::percent(row.informed_fraction)};
    if (with_truth) {
      cells.insert(cells.begin() + 3, util::percent(*row.mean_true_sdc));
    }
    if (with_coverage) {
      cells.push_back(util::percent(row.mean_detected_coverage.value_or(0.0)));
    }
    table.add_row(std::move(cells));
  }
  return table.render();
}

std::string render_build_health(std::uint64_t nonfinite_skipped) {
  if (nonfinite_skipped == 0) return "";
  return "warning: skipped " + std::to_string(nonfinite_skipped) +
         " non-finite masked propagation value(s) while building the "
         "boundary (overflowing intermediate corruption)\n";
}

}  // namespace ftb::boundary
