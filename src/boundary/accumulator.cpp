#include "boundary/accumulator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "fi/fpbits.h"

namespace ftb::boundary {

BoundaryAccumulator::BoundaryAccumulator(std::size_t sites,
                                         AccumulatorOptions options)
    : site_count_(sites), options_(options), states_(sites) {
  assert(options_.prop_buffer_cap > 0);
}

void BoundaryAccumulator::record_injection(std::size_t site, int bit,
                                           fi::Outcome outcome,
                                           double injected_error) {
  assert(site < site_count_);
  assert(bit >= 0 && bit < fi::kBitsPerValue);
  SiteState& state = states_[site];
  state.tested_mask |= std::uint64_t{1} << bit;

  switch (outcome) {
    case fi::Outcome::kMasked:
      if (!std::isfinite(injected_error)) {
        // An exponent flip can push |x' - x| to +inf even when the run ends
        // masked.  Folding that into masked_inj_max makes the unfiltered
        // threshold max(prop_max, inf) = inf -- the site then predicts
        // *every* fault masked.  Skip the magnitude (the bit still counts
        // as tested) and tally it like record_masked_value does.
        ++nonfinite_skipped_;
        break;
      }
      state.masked_inj_max = std::max(state.masked_inj_max, injected_error);
      state.masked_inj.push_back(injected_error);
      break;
    case fi::Outcome::kSdc:
      ++state.sdc;
      if (!std::isfinite(injected_error)) {
        // An infinite (or NaN) injected error that still flips the output
        // carries no usable magnitude: it cannot tighten min_sdc_inj (the
        // old code's `inf < inf` was silently false; NaN compares false on
        // everything).  Count it so reports surface the loss.
        ++nonfinite_skipped_;
        break;
      }
      if (injected_error < state.min_sdc_inj) {
        state.min_sdc_inj = injected_error;
        // New SDC evidence can invalidate previously accepted propagation
        // values; prune everything no longer strictly below the minimum.
        if (options_.filter && !state.prop_buffer.empty()) {
          while (!state.prop_buffer.empty() &&
                 state.prop_buffer.back() >= state.min_sdc_inj) {
            state.prop_buffer.pop_back();
            ++filter_rejected_;
          }
        }
      }
      break;
    case fi::Outcome::kDetected:
      // A detector-caught corruption is loud like a crash, so it neither
      // supports nor constrains the *silent*-corruption boundary -- but it
      // is the numerator of the per-site coverage metric.
      ++state.detected;
      break;
    case fi::Outcome::kCrash:
    case fi::Outcome::kHang:
      // Crashes and hangs are detectable, not silent; they neither support
      // nor constrain the boundary (the bit still counts as tested).
      break;
  }
}

void BoundaryAccumulator::insert_filtered(SiteState& state, double value) {
  if (value >= state.min_sdc_inj) {  // Section 3.5 rejection
    ++filter_rejected_;
    return;
  }
  auto pos = std::lower_bound(state.prop_buffer.begin(),
                              state.prop_buffer.end(), value);
  state.prop_buffer.insert(pos, value);
  if (state.prop_buffer.size() > options_.prop_buffer_cap) {
    state.prop_buffer.erase(state.prop_buffer.begin());  // drop the smallest
    ++prop_evicted_;
  }
}

void BoundaryAccumulator::record_masked_propagation(
    std::span<const double> diffs) {
  assert(diffs.size() == site_count_);
  for (std::size_t j = 0; j < diffs.size(); ++j) {
    record_masked_value(j, diffs[j]);
  }
}

void BoundaryAccumulator::record_masked_value(std::size_t site, double value) {
  assert(site < site_count_);
  if (!std::isfinite(value)) {
    // |x' - x| can overflow to +inf even when both trace values are finite
    // (1.7e308 - (-1.7e308), say), and a NaN diff survives no comparison
    // meaningfully; either would poison the site's pointwise max forever.
    // Skip it, but keep count -- a nonzero tally in the report tells the
    // user their masked runs carry overflowing intermediate corruption.
    ++nonfinite_skipped_;
    return;
  }
  if (value <= 0.0) return;
  SiteState& state = states_[site];
  if (options_.filter) {
    insert_filtered(state, value);
  } else if (value > state.prop_max) {
    state.prop_max = value;
  }
}

std::uint32_t BoundaryAccumulator::tested_bits(std::size_t site) const noexcept {
  return static_cast<std::uint32_t>(
      std::popcount(states_[site].tested_mask));
}

std::uint64_t BoundaryAccumulator::total_detected() const noexcept {
  std::uint64_t total = 0;
  for (const SiteState& state : states_) total += state.detected;
  return total;
}

std::uint64_t BoundaryAccumulator::total_sdc() const noexcept {
  std::uint64_t total = 0;
  for (const SiteState& state : states_) total += state.sdc;
  return total;
}

std::vector<double> BoundaryAccumulator::coverage_profile() const {
  std::vector<double> profile(site_count_, 0.0);
  for (std::size_t i = 0; i < site_count_; ++i) {
    profile[i] = detected_coverage(i);
  }
  return profile;
}

FaultToleranceBoundary BoundaryAccumulator::finalize() const {
  std::vector<double> thresholds(site_count_, FaultToleranceBoundary::kUnknown);
  std::vector<std::uint8_t> exact(site_count_, 0);

  for (std::size_t i = 0; i < site_count_; ++i) {
    const SiteState& state = states_[i];

    if (state.tested_mask == ~std::uint64_t{0}) {
      // Exact site (Section 4.4): all 64 flips tested directly; use the
      // exhaustive rule -- largest masked injected error strictly below the
      // smallest SDC injected error.
      double best = 0.0;
      for (double e : state.masked_inj) {
        if (e < state.min_sdc_inj && e > best) best = e;
      }
      thresholds[i] = best;
      exact[i] = 1;
      continue;
    }

    if (options_.filter) {
      double best = state.prop_buffer.empty() ? 0.0 : state.prop_buffer.back();
      for (double e : state.masked_inj) {
        if (e < state.min_sdc_inj && e > best) best = e;
      }
      thresholds[i] = best;
    } else {
      thresholds[i] = std::max(state.prop_max, state.masked_inj_max);
    }
  }
  return FaultToleranceBoundary(std::move(thresholds), std::move(exact));
}

}  // namespace ftb::boundary
