#include "chaos/chaos.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#define FTB_CHAOS_POSIX 1
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace ftb::chaos {

namespace {

struct State {
  std::mutex mutex;
  ChaosOptions options;
  std::uint64_t rng = 0;
  ChaosStats stats;
};

// Fast-path gate: a single relaxed load when chaos is off.
std::atomic<bool> g_enabled{false};

State& state() {
  static State s;
  return s;
}

// splitmix64: tiny, seedable, and good enough to decorrelate fault rolls.
std::uint64_t next_u64(State& s) {
  std::uint64_t z = (s.rng += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double next_unit(State& s) {
  return static_cast<double>(next_u64(s) >> 11) * 0x1.0p-53;
}

enum class Fault { kNone, kEintr, kShort, kWriteError, kFsyncError };

/// One locked roll deciding the fate of an I/O call.  `count` is clamped in
/// place for short I/O.  `is_file_write` additionally arms write_error.
Fault roll_io(std::size_t* count, bool is_read, bool is_file_write) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.options.enabled) return Fault::kNone;
  if (s.options.eintr > 0 && next_unit(s) < s.options.eintr) {
    ++s.stats.eintr_faults;
    return Fault::kEintr;
  }
  if (is_file_write && s.options.write_error > 0 &&
      next_unit(s) < s.options.write_error) {
    ++s.stats.write_errors;
    return Fault::kWriteError;
  }
  if (*count > 1 && s.options.short_io > 0 &&
      next_unit(s) < s.options.short_io) {
    (is_read ? s.stats.short_reads : s.stats.short_writes) += 1;
    *count = 1 + static_cast<std::size_t>(next_u64(s) % (*count - 1));
    return Fault::kShort;
  }
  return Fault::kNone;
}

Fault roll_fsync() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.options.enabled) return Fault::kNone;
  if (s.options.fsync_error > 0 && next_unit(s) < s.options.fsync_error) {
    ++s.stats.fsync_errors;
    return Fault::kFsyncError;
  }
  return Fault::kNone;
}

}  // namespace

void configure(const ChaosOptions& options) {
  State& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.options = options;
    s.rng = options.seed;
  }
  g_enabled.store(options.enabled, std::memory_order_release);
}

void disable() {
  State& s = state();
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.options.enabled = false;
  }
  g_enabled.store(false, std::memory_order_release);
}

bool enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

ChaosOptions current_options() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.options;
}

bool configure_from_env(std::string* summary) {
  const char* raw = std::getenv("FTB_CHAOS");
  if (raw == nullptr || raw[0] == '\0' || std::string(raw) == "off") {
    disable();  // "off" means off even if chaos was armed earlier
    return false;
  }
  ChaosOptions options;
  options.enabled = true;
  std::string spec(raw);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* tail = nullptr;
    const double parsed = std::strtod(value.c_str(), &tail);
    if (tail == value.c_str()) continue;  // not a number: ignore the knob
    if (key == "seed") {
      options.seed = static_cast<std::uint64_t>(parsed);
    } else if (key == "short_io") {
      options.short_io = parsed;
    } else if (key == "eintr") {
      options.eintr = parsed;
    } else if (key == "write_error") {
      options.write_error = parsed;
    } else if (key == "fsync_error") {
      options.fsync_error = parsed;
    }
    // Unknown keys are ignored for forward compatibility.
  }
  configure(options);
  if (summary != nullptr) {
    *summary = "enabled (seed=" + std::to_string(options.seed) +
               ", short_io=" + std::to_string(options.short_io) +
               ", eintr=" + std::to_string(options.eintr) +
               ", write_error=" + std::to_string(options.write_error) +
               ", fsync_error=" + std::to_string(options.fsync_error) + ")";
  }
  return true;
}

ChaosStats stats() noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.stats;
}

void reset_stats() noexcept {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.stats = ChaosStats{};
}

#if FTB_CHAOS_POSIX

ssize_t read(int fd, void* buf, std::size_t count) {
  if (g_enabled.load(std::memory_order_relaxed)) {
    switch (roll_io(&count, /*is_read=*/true, /*is_file_write=*/false)) {
      case Fault::kEintr:
        errno = EINTR;
        return -1;
      default:
        break;
    }
  }
  return ::read(fd, buf, count);
}

ssize_t write(int fd, const void* buf, std::size_t count) {
  if (g_enabled.load(std::memory_order_relaxed)) {
    switch (roll_io(&count, /*is_read=*/false, /*is_file_write=*/true)) {
      case Fault::kEintr:
        errno = EINTR;
        return -1;
      case Fault::kWriteError:
        // Alternate the two classic hard write errors via the seed stream.
        errno = (stats().write_errors % 2 == 0) ? ENOSPC : EIO;
        return -1;
      default:
        break;
    }
  }
  return ::write(fd, buf, count);
}

ssize_t send(int fd, const void* buf, std::size_t count, int flags) {
  if (g_enabled.load(std::memory_order_relaxed)) {
    switch (roll_io(&count, /*is_read=*/false, /*is_file_write=*/false)) {
      case Fault::kEintr:
        errno = EINTR;
        return -1;
      default:
        break;
    }
  }
  return ::send(fd, buf, count, flags);
}

ssize_t recv(int fd, void* buf, std::size_t count, int flags) {
  if (g_enabled.load(std::memory_order_relaxed)) {
    switch (roll_io(&count, /*is_read=*/true, /*is_file_write=*/false)) {
      case Fault::kEintr:
        errno = EINTR;
        return -1;
      default:
        break;
    }
  }
  return ::recv(fd, buf, count, flags);
}

int fsync(int fd) {
  if (g_enabled.load(std::memory_order_relaxed) &&
      roll_fsync() == Fault::kFsyncError) {
    errno = EIO;
    return -1;
  }
  return ::fsync(fd);
}

#else  // !FTB_CHAOS_POSIX

ssize_t read(int, void*, std::size_t) {
  errno = ENOSYS;
  return -1;
}
ssize_t write(int, const void*, std::size_t) {
  errno = ENOSYS;
  return -1;
}
ssize_t send(int, const void*, std::size_t, int) {
  errno = ENOSYS;
  return -1;
}
ssize_t recv(int, void*, std::size_t, int) {
  errno = ENOSYS;
  return -1;
}
int fsync(int) {
  errno = ENOSYS;
  return -1;
}

#endif

}  // namespace ftb::chaos
