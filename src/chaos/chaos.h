// Seeded, deterministic fault injection at the syscall boundary.
//
// The paper's thesis is that resiliency has to be measured under injected
// faults; this layer turns that discipline on the serving stack itself.
// net and storage code route their I/O through the veneers below instead of
// calling read()/write()/send()/recv()/fsync() directly.  With chaos
// disabled (the default) each veneer is a relaxed atomic load plus the real
// syscall; with chaos enabled a mutex-protected splitmix64 stream decides,
// per call, whether to deliver the fault classes production actually sees:
//
//   * EINTR before the syscall runs (signal storms),
//   * short reads/writes (torn frame delivery, partial file writes),
//   * ENOSPC/EIO on file writes (disk full, dying media),
//   * EIO on fsync (the failure mode that silently breaks "durable" code).
//
// The stream is seeded, so a failing chaos run replays exactly.  Faults are
// injected *before* the real syscall, never after: a call that reports
// success really did its (possibly shortened) I/O, so invariants about
// on-disk state stay checkable.
//
// chaos is a leaf library (no ftb dependencies); util and net link it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include <sys/types.h>

namespace ftb::chaos {

struct ChaosOptions {
  bool enabled = false;
  std::uint64_t seed = 1;
  /// P(clamp an I/O to a random shorter length), per read/write/send/recv.
  double short_io = 0.0;
  /// P(fail with EINTR instead of doing anything), per I/O call.
  double eintr = 0.0;
  /// P(fail a file write with ENOSPC/EIO), per chaos::write call.
  double write_error = 0.0;
  /// P(fail fsync with EIO), per chaos::fsync call.
  double fsync_error = 0.0;
};

/// Installs `options` and reseeds the fault stream.  Thread-safe.
void configure(const ChaosOptions& options);

/// Turns injection off (veneers become pass-throughs).  Stats survive.
void disable();

bool enabled() noexcept;
ChaosOptions current_options();

/// Reads FTB_CHAOS ("seed=7,short_io=0.2,eintr=0.1,write_error=0.01,
/// fsync_error=0.05"; unset, empty, or "off" disables).  Unknown keys are
/// ignored so old daemons tolerate new knobs.  Returns true when chaos was
/// enabled; `summary` (optional) gets a printable description.
bool configure_from_env(std::string* summary = nullptr);

/// Cumulative injected-fault counts since the last reset.
struct ChaosStats {
  std::uint64_t short_reads = 0;
  std::uint64_t short_writes = 0;
  std::uint64_t eintr_faults = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t fsync_errors = 0;

  std::uint64_t total() const noexcept {
    return short_reads + short_writes + eintr_faults + write_errors +
           fsync_errors;
  }
};
ChaosStats stats() noexcept;
void reset_stats() noexcept;

// Syscall veneers.  Identical semantics to the raw syscalls (return value
// and errno), with faults injected when chaos is enabled.  write_error only
// applies to write() (file plane); the socket veneers see short I/O and
// EINTR, which is what a lossy kernel boundary actually delivers to them.
ssize_t read(int fd, void* buf, std::size_t count);
ssize_t write(int fd, const void* buf, std::size_t count);
ssize_t send(int fd, const void* buf, std::size_t count, int flags);
ssize_t recv(int fd, void* buf, std::size_t count, int flags);
int fsync(int fd);

}  // namespace ftb::chaos
