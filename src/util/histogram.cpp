#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace ftb::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), inv_width_(0.0), counts_(bins, 0) {
  assert(bins > 0);
  assert(hi > lo);
  inv_width_ = static_cast<double>(bins) / (hi - lo);
}

void Histogram::add(double value) noexcept {
  ++total_;
  if (std::isnan(value)) {
    ++overflow_;  // NaN has no place on the axis; count it as out-of-range.
    return;
  }
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    // hi_ itself belongs to the last bin so a closed upper endpoint works.
    if (value == hi_) {
      ++counts_.back();
    } else {
      ++overflow_;
    }
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) * inv_width_);
  bin = std::min(bin, counts_.size() - 1);  // guard rounding at the edge
  // The multiply can land a value one bin off its [bin_lo, bin_hi) interval
  // when the edges themselves are not exactly representable; nudge so that
  // bin_lo(b) always counts into bin b (half-open intervals stay exact).
  if (value < bin_lo(bin) && bin > 0) {
    --bin;
  } else if (value >= bin_hi(bin) && bin + 1 < counts_.size()) {
    ++bin;
  }
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> values) noexcept {
  for (double v : values) add(v);
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + static_cast<double>(bin) / inv_width_;
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + static_cast<double>(bin + 1) / inv_width_;
}

double Histogram::bin_center(std::size_t bin) const noexcept {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

double Histogram::fraction(std::size_t bin) const noexcept {
  return total_ ? static_cast<double>(counts_[bin]) / static_cast<double>(total_)
                : 0.0;
}

std::string Histogram::render(std::size_t width, bool log_scale) const {
  std::uint64_t peak = 1;
  for (std::uint64_t c : counts_) peak = std::max(peak, c);

  const double peak_scale =
      log_scale ? std::log1p(static_cast<double>(peak))
                : static_cast<double>(peak);

  std::string out;
  char line[256];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double magnitude =
        log_scale ? std::log1p(static_cast<double>(counts_[b]))
                  : static_cast<double>(counts_[b]);
    const auto bar_len = static_cast<std::size_t>(
        peak_scale > 0.0 ? magnitude / peak_scale * static_cast<double>(width)
                         : 0.0);
    std::snprintf(line, sizeof(line), "[%+9.3f, %+9.3f) %10llu |", bin_lo(b),
                  bin_hi(b),
                  static_cast<unsigned long long>(counts_[b]));
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  if (underflow_ || overflow_) {
    std::snprintf(line, sizeof(line), "  (underflow %llu, overflow %llu)\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += line;
  }
  return out;
}

}  // namespace ftb::util
