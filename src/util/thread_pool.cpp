#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace ftb::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_) {
    std::exception_ptr rethrow = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(rethrow);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t threads = thread_count();
  if (threads == 1 || n < 2 * threads) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t blocks = std::min(n, threads * 4);
  const std::size_t per_block = (n + blocks - 1) / blocks;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * per_block;
    const std::size_t hi = std::min(lo + per_block, end);
    if (lo >= hi) break;
    submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (thrown && !first_exception_) first_exception_ = thrown;
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("FTB_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace ftb::util
