// Minimal SVG emission for the figure benches: line/scatter charts for the
// Figure 4/5 series and bar charts for the Figure 3 histograms, written as
// self-contained .svg files (no external assets, no JavaScript).  The
// ASCII plots remain the terminal-first output; SVG is for reports.
#pragma once

#include <span>
#include <string>

#include "util/ascii_plot.h"  // reuses the Series type
#include "util/histogram.h"

namespace ftb::util {

struct SvgOptions {
  int width = 860;            // total canvas, px
  int height = 420;
  std::string title;
  std::string x_label;
  std::string y_label;
  bool y_from_zero = false;   // pin the y axis at 0 (ratios, counts)
  bool scatter = false;       // draw points instead of connected lines
};

/// Renders one or more series as a line/scatter chart.  Series may have
/// different lengths; each is stretched over the full x range (same
/// convention as util::plot).  NaN values create gaps.
std::string svg_chart(std::span<const Series> series,
                      const SvgOptions& options = {});

/// Renders a histogram as a bar chart (bar height = count).
std::string svg_histogram(const Histogram& histogram,
                          const SvgOptions& options = {});

/// Writes content to path (returns false on I/O failure).
bool write_svg_file(const std::string& path, const std::string& content);

}  // namespace ftb::util
