// Small statistics toolkit used by the evaluation harness: running
// mean/stddev (Welford), summaries of repeated trials, and the confusion
// counts behind the paper's precision / recall / uncertainty metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ftb::util {

/// Numerically stable running mean / variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean and sample stddev of a data span (convenience for trial summaries).
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd mean_std(std::span<const double> values) noexcept;

/// Formats "12.34% +- 0.56%" the way the paper's tables report trials.
std::string format_percent_pm(MeanStd ms, int decimals = 2);

/// Binary-classification confusion counts for "predicted masked" vs
/// "actually masked" (paper Section 3.6).  Crash experiments are excluded
/// before these counts are formed.
struct Confusion {
  std::uint64_t true_positive = 0;   // predicted masked, actually masked
  std::uint64_t false_positive = 0;  // predicted masked, actually SDC
  std::uint64_t false_negative = 0;  // predicted SDC, actually masked
  std::uint64_t true_negative = 0;   // predicted SDC, actually SDC

  std::uint64_t predicted_positive() const noexcept {
    return true_positive + false_positive;
  }
  std::uint64_t actual_positive() const noexcept {
    return true_positive + false_negative;
  }
  std::uint64_t total() const noexcept {
    return true_positive + false_positive + false_negative + true_negative;
  }

  /// M_positive / M_predict; 1.0 when nothing was predicted positive
  /// (vacuous precision, matching the paper's 100% FFT entries).
  double precision() const noexcept;
  /// M_positive / M_total; 1.0 when there are no actual positives.
  double recall() const noexcept;

  Confusion& operator+=(const Confusion& o) noexcept;
};

/// Pearson correlation of two equal-length series (used by tests to check
/// that predicted per-site SDC profiles track the ground truth).
double pearson_correlation(std::span<const double> a, std::span<const double> b) noexcept;

/// Mean absolute error between two equal-length series.
double mean_absolute_error(std::span<const double> a, std::span<const double> b) noexcept;

/// Groups a series into consecutive buckets of `group` elements and returns
/// per-bucket means — exactly how Figure 4 condenses millions of per-site
/// values into plottable dots ("8 dynamic instructions in CG, 147 in LU...").
std::vector<double> group_means(std::span<const double> values, std::size_t group);

/// Wilson score interval for a binomial proportion — the statistical-fault-
/// injection machinery (Leveugle et al., DATE'09, the paper's ref [18]):
/// with `successes` SDC outcomes out of `trials` sampled experiments, the
/// true SDC ratio lies in [lo, hi] at the confidence implied by `z`
/// (z = 1.96 for 95%).  Robust near 0 and 1, unlike the normal
/// approximation.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool contains(double p) const noexcept { return p >= lo && p <= hi; }
  double width() const noexcept { return hi - lo; }
};

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z = 1.96) noexcept;

}  // namespace ftb::util
