#include "util/durable_file.h"

#include <cerrno>
#include <cstring>

#include "chaos/chaos.h"

#if defined(__unix__) || defined(__APPLE__)
#define FTB_DURABLE_POSIX 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <filesystem>
#include <fstream>
#endif

namespace ftb::util {

namespace {

void set_error(std::string* error, std::string what) {
  if (error != nullptr) *error = std::move(what);
}

#if FTB_DURABLE_POSIX

std::string errno_string(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Writes all of [data, data+size) through the chaos veneer, absorbing
/// EINTR and short writes.  False (with errno intact) on a hard error.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = chaos::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::string parent_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

#endif  // FTB_DURABLE_POSIX

}  // namespace

#if FTB_DURABLE_POSIX

bool fsync_parent_dir(const std::string& path, std::string* error) {
  const std::string dir = parent_of(path);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    set_error(error, errno_string("open directory '" + dir + "'"));
    return false;
  }
  int rc;
  do {
    rc = chaos::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  const int saved_errno = errno;
  ::close(fd);
  if (rc < 0) {
    errno = saved_errno;
    set_error(error, errno_string("fsync directory '" + dir + "'"));
    return false;
  }
  return true;
}

bool write_file_durable(const std::string& path, const void* data,
                        std::size_t size, std::string* error) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    set_error(error, errno_string("open '" + tmp + "'"));
    return false;
  }
  if (!write_all(fd, static_cast<const std::uint8_t*>(data), size)) {
    set_error(error, errno_string("write '" + tmp + "'"));
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  int rc;
  do {
    rc = chaos::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    set_error(error, errno_string("fsync '" + tmp + "'"));
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) < 0) {
    set_error(error, errno_string("close '" + tmp + "'"));
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) < 0) {
    set_error(error, errno_string("rename '" + tmp + "' -> '" + path + "'"));
    ::unlink(tmp.c_str());
    return false;
  }
  // The file's bytes are durable and the rename is atomic; the directory
  // fsync makes the new link itself survive a crash.
  return fsync_parent_dir(path, error);
}

AppendLog::~AppendLog() { close(); }

bool AppendLog::open(const std::string& path, std::string* error) {
  close();
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    set_error(error, errno_string("open '" + path + "'"));
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) < 0) {
    set_error(error, errno_string("fstat '" + path + "'"));
    ::close(fd);
    return false;
  }
  fd_ = fd;
  path_ = path;
  size_ = static_cast<std::uint64_t>(st.st_size);
  // Make the file's existence durable before the first record is acked.
  if (!fsync_parent_dir(path, error)) {
    close();
    return false;
  }
  return true;
}

bool AppendLog::append(const void* data, std::size_t size,
                       std::string* error) {
  if (fd_ < 0) {
    set_error(error, "append log '" + path_ + "' is not open");
    return false;
  }
  bool failed = false;
  std::string detail;
  if (!write_all(fd_, static_cast<const std::uint8_t*>(data), size)) {
    detail = errno_string("append to '" + path_ + "'");
    failed = true;
  }
  if (!failed) {
    int rc;
    do {
      rc = chaos::fsync(fd_);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
      detail = errno_string("fsync '" + path_ + "'");
      failed = true;
    }
  }
  if (!failed) {
    size_ += size;
    return true;
  }
  // Roll the file back to the last good record.  A record that was written
  // but not fsynced must not be treated as acked, and a partial record must
  // not sit in front of later appends and corrupt the framing.
  int rc;
  do {
    rc = ::ftruncate(fd_, static_cast<off_t>(size_));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    detail += "; rollback ftruncate failed (" +
              std::string(std::strerror(errno)) + "), log is poisoned";
    ::close(fd_);
    fd_ = -1;
  }
  set_error(error, detail);
  return false;
}

void AppendLog::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  size_ = 0;
}

#else  // !FTB_DURABLE_POSIX

// Portability fallback: atomic rename without fsync (the platforms the
// service actually targets take the POSIX path above).

bool fsync_parent_dir(const std::string&, std::string*) { return true; }

bool write_file_durable(const std::string& path, const void* data,
                        std::size_t size, std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      set_error(error, "cannot open '" + tmp + "' for writing");
      return false;
    }
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
    if (!out) {
      set_error(error, "cannot write '" + tmp + "'");
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    set_error(error, "cannot rename '" + tmp + "': " + ec.message());
    return false;
  }
  return true;
}

AppendLog::~AppendLog() { close(); }

bool AppendLog::open(const std::string& path, std::string* error) {
  set_error(error, "append log is not supported on this platform");
  path_ = path;
  return false;
}

bool AppendLog::append(const void*, std::size_t, std::string* error) {
  set_error(error, "append log is not supported on this platform");
  return false;
}

void AppendLog::close() {
  fd_ = -1;
  size_ = 0;
}

#endif

}  // namespace ftb::util
