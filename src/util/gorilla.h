// Gorilla-style floating-point compression (Pelkonen et al., VLDB 2015):
// XOR each value with its predecessor and encode the meaningful bits with a
// leading/trailing-zero header.  HPC value streams -- and golden traces in
// particular -- are locally smooth (iterates of the same variables), so the
// XOR residuals carry few significant bits.
//
// This addresses the paper's "Overhead" discussion head-on: the analysis
// must hold the golden run's entire dynamic state, "which can result in
// substantial memory overhead for a large-scale application".  A compressed
// golden trace with a sequential cursor gives the error-propagation
// comparison everything it needs (it only ever reads forward) at a fraction
// of the footprint; bench/ablation_memory quantifies the ratio per kernel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ftb::util {

/// Bit-granular append-only writer (little-endian within bytes).
class BitWriter {
 public:
  /// Appends the low `bits` bits of `value`, most-significant first.
  void put(std::uint64_t value, int bits);

  /// Number of complete bytes after flush-padding.
  std::vector<std::uint8_t> finish();

  std::size_t bit_count() const noexcept { return bit_count_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::uint8_t current_ = 0;
  int used_ = 0;  // bits used in current_
  std::size_t bit_count_ = 0;
};

/// Matching sequential reader; throws std::runtime_error past the end.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint64_t get(int bits);
  bool get_bit() { return get(1) != 0; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;  // bit position
};

/// A compressed sequence of doubles with sequential decode.
class GorillaCodec {
 public:
  /// Compresses the full sequence.
  static std::vector<std::uint8_t> compress(std::span<const double> values);

  /// Streaming decoder over a compressed buffer.
  class Decoder {
   public:
    Decoder(std::span<const std::uint8_t> data, std::size_t count);

    /// True while values remain.
    bool has_next() const noexcept { return produced_ < count_; }

    /// Next value in sequence order.
    double next();

    std::size_t produced() const noexcept { return produced_; }

   private:
    BitReader reader_;
    std::size_t count_;
    std::size_t produced_ = 0;
    std::uint64_t previous_ = 0;
    int leading_ = 0;
    int meaningful_ = 0;
  };

  /// Decompresses everything (convenience / tests).
  static std::vector<double> decompress(std::span<const std::uint8_t> data,
                                        std::size_t count);
};

}  // namespace ftb::util
