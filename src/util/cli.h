// Tiny command-line flag parser shared by bench binaries and examples.
// Supports --name=value and --name value forms plus boolean switches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ftb::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = {}) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def = false) const;

  /// Positional (non --flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

  /// Registers help text for a flag; print_help() lists all registered flags.
  void describe(const std::string& name, const std::string& text);
  void print_help(const std::string& program_summary) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  std::vector<std::pair<std::string, std::string>> help_;
  std::string program_;
};

}  // namespace ftb::util
