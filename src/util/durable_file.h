// Crash-durable file publication and append logging.
//
// The repo's persistence sites (campaign journals, boundary artifacts, the
// result cache, the job ledger) all publish with write-tmp-then-rename so a
// reader never observes a half-written file.  Rename alone is not durable:
// after a power cut the filesystem may replay the rename but not the data,
// leaving a complete-looking file full of zeros -- exactly the torn-write
// class the CRC framing is supposed to catch before it ever happens.  This
// helper closes the gap with the full POSIX ritual:
//
//   write(tmp) -> fsync(tmp) -> rename(tmp, path) -> fsync(parent dir)
//
// All I/O goes through the chaos veneers (chaos/chaos.h), so fault-
// injection tests can prove that a failed fsync surfaces as a clean error
// with the previous file intact, instead of being silently swallowed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ftb::util {

/// Durably publishes `size` bytes at `path` (tmp + fsync + atomic rename +
/// parent-dir fsync).  On failure the previous `path` content, if any, is
/// untouched and the tmp file is removed.  False with a one-line diagnostic
/// in `error`.
bool write_file_durable(const std::string& path, const void* data,
                        std::size_t size, std::string* error = nullptr);

inline bool write_file_durable(const std::string& path,
                               const std::string& payload,
                               std::string* error = nullptr) {
  return write_file_durable(path, payload.data(), payload.size(), error);
}

inline bool write_file_durable(const std::string& path,
                               const std::vector<std::uint8_t>& payload,
                               std::string* error = nullptr) {
  return write_file_durable(path, payload.data(), payload.size(), error);
}

/// fsyncs the directory containing `path` so a freshly created or renamed
/// entry survives a crash.  Best-effort no-op on platforms without
/// directory fsync.
bool fsync_parent_dir(const std::string& path, std::string* error = nullptr);

/// Append-only log file with all-or-nothing records: append() writes the
/// whole record, fsyncs, and -- should the write or fsync fail partway --
/// truncates the file back to the last good record so a torn tail never
/// accumulates in front of later appends.  If even the truncate fails the
/// log poisons itself and rejects further appends (the caller's replay path
/// still detects the torn record by CRC).
class AppendLog {
 public:
  AppendLog() = default;
  ~AppendLog();
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Opens (creating if needed) `path` for appending and fsyncs the parent
  /// directory so the file's existence is durable.
  bool open(const std::string& path, std::string* error = nullptr);

  /// Appends `size` bytes and fsyncs before returning ("fsync-before-ack").
  bool append(const void* data, std::size_t size, std::string* error = nullptr);

  bool valid() const noexcept { return fd_ >= 0; }
  std::uint64_t size() const noexcept { return size_; }
  void close();

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t size_ = 0;
};

}  // namespace ftb::util
