// Aligned ASCII tables + CSV emission for the experiment harness.  Every
// bench binary prints its paper table both human-readable and as CSV so the
// rows can be diffed against EXPERIMENTS.md or post-processed.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ftb::util {

/// A simple row/column string table with alignment-aware rendering.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return header_.size(); }

  /// Renders with column padding, a header separator, and an optional title.
  std::string render(const std::string& title = {}) const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style convenience for building cells.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Formats a ratio as a percentage string, e.g. 0.0820 -> "8.20%".
std::string percent(double ratio, int decimals = 2);

}  // namespace ftb::util
