#include "util/gorilla.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace ftb::util {

namespace {

std::uint64_t to_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double from_bits(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void BitWriter::put(std::uint64_t value, int bits) {
  bit_count_ += static_cast<std::size_t>(bits);
  while (bits > 0) {
    const int room = 8 - used_;
    const int take = bits < room ? bits : room;
    const std::uint64_t chunk =
        (value >> (bits - take)) & ((std::uint64_t{1} << take) - 1);
    current_ = static_cast<std::uint8_t>((current_ << take) | chunk);
    used_ += take;
    bits -= take;
    if (used_ == 8) {
      bytes_.push_back(current_);
      current_ = 0;
      used_ = 0;
    }
  }
}

std::vector<std::uint8_t> BitWriter::finish() {
  if (used_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(current_ << (8 - used_)));
    current_ = 0;
    used_ = 0;
  }
  return std::move(bytes_);
}

std::uint64_t BitReader::get(int bits) {
  if (bits == 0) return 0;
  if (pos_ + static_cast<std::size_t>(bits) > bytes_.size() * 8) {
    throw std::runtime_error("BitReader: read past end");
  }
  std::uint64_t value = 0;
  while (bits > 0) {
    const std::size_t byte = pos_ >> 3;
    const int offset = static_cast<int>(pos_ & 7);
    const int available = 8 - offset;
    const int take = bits < available ? bits : available;
    const std::uint8_t chunk = static_cast<std::uint8_t>(
        (bytes_[byte] >> (available - take)) & ((1u << take) - 1u));
    value = (value << take) | chunk;
    pos_ += static_cast<std::size_t>(take);
    bits -= take;
  }
  return value;
}

std::vector<std::uint8_t> GorillaCodec::compress(
    std::span<const double> values) {
  BitWriter writer;
  if (values.empty()) return writer.finish();

  std::uint64_t previous = to_bits(values[0]);
  writer.put(previous, 64);

  int window_leading = -1;   // no window yet
  int window_meaningful = 0;

  for (std::size_t i = 1; i < values.size(); ++i) {
    const std::uint64_t bits = to_bits(values[i]);
    const std::uint64_t x = bits ^ previous;
    previous = bits;
    if (x == 0) {
      writer.put(0, 1);
      continue;
    }
    writer.put(1, 1);
    int leading = std::countl_zero(x);
    const int trailing = std::countr_zero(x);
    if (leading > 31) leading = 31;  // 5-bit header cap
    const int meaningful = 64 - leading - trailing;

    const bool window_fits =
        window_leading >= 0 && leading >= window_leading &&
        trailing >= 64 - window_leading - window_meaningful;
    if (window_fits) {
      writer.put(0, 1);
      writer.put(x >> (64 - window_leading - window_meaningful),
                 window_meaningful);
    } else {
      writer.put(1, 1);
      writer.put(static_cast<std::uint64_t>(leading), 5);
      // 6-bit length; 64 would overflow, encode meaningful-1 (1..64 -> 0..63).
      writer.put(static_cast<std::uint64_t>(meaningful - 1), 6);
      writer.put(x >> trailing, meaningful);
      window_leading = leading;
      window_meaningful = meaningful;
    }
  }
  return writer.finish();
}

GorillaCodec::Decoder::Decoder(std::span<const std::uint8_t> data,
                               std::size_t count)
    : reader_(data), count_(count), leading_(-1) {}

double GorillaCodec::Decoder::next() {
  if (!has_next()) {
    throw std::runtime_error("GorillaCodec::Decoder: exhausted");
  }
  if (produced_ == 0) {
    previous_ = reader_.get(64);
    ++produced_;
    return from_bits(previous_);
  }
  if (!reader_.get_bit()) {  // identical to previous
    ++produced_;
    return from_bits(previous_);
  }
  if (reader_.get_bit()) {  // new window
    leading_ = static_cast<int>(reader_.get(5));
    meaningful_ = static_cast<int>(reader_.get(6)) + 1;
    if (leading_ + meaningful_ > 64) {
      throw std::runtime_error("GorillaCodec::Decoder: corrupt window header");
    }
  }
  const std::uint64_t significant =
      reader_.get(meaningful_);
  const int trailing = 64 - leading_ - meaningful_;
  previous_ ^= significant << trailing;
  ++produced_;
  return from_bits(previous_);
}

std::vector<double> GorillaCodec::decompress(
    std::span<const std::uint8_t> data, std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  Decoder decoder(data, count);
  while (decoder.has_next()) out.push_back(decoder.next());
  return out;
}

}  // namespace ftb::util
