// Minimal terminal line plots for the figure-reproduction benches.  Each
// series is down-sampled to the plot width and drawn with its own glyph so
// "true vs predicted SDC ratio" overlays (Figure 4) are readable in a log.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ftb::util {

struct Series {
  std::string label;
  std::vector<double> values;
  char glyph = '*';
};

struct PlotOptions {
  std::size_t width = 100;   // columns in the plot body
  std::size_t height = 18;   // rows in the plot body
  double y_min = 0.0;        // used when fix_y_range is true
  double y_max = 1.0;
  bool fix_y_range = false;  // otherwise auto-scaled to the data
  std::string x_label = "index";
  std::string y_label = "value";
};

/// Renders one or more series on a shared axis; series may have different
/// lengths (each is stretched over the full x range).
std::string plot(std::span<const Series> series, const PlotOptions& options = {});

}  // namespace ftb::util
