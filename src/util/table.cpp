#include "util/table.h"

#include <cassert>
#include <cstdarg>
#include <cstdio>

namespace ftb::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 1, ' ');
      out += "| ";
    }
    out.pop_back();
    out += '\n';
  };

  std::string out;
  if (!title.empty()) {
    out += title;
    out += '\n';
  }
  emit_row(header_, out);
  out += '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += quote(row[c]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

std::string percent(double ratio, int decimals) {
  return format("%.*f%%", decimals, ratio * 100.0);
}

}  // namespace ftb::util
