#include "util/cache.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/durable_file.h"

namespace ftb::util {

namespace {

constexpr std::uint64_t kMagic = 0x4654422d43414348ull;  // "FTB-CACH"
constexpr std::uint64_t kVersion = 1;

}  // namespace

void BinaryWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void BinaryWriter::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void BinaryWriter::put_bytes(const std::vector<std::uint8_t>& v) {
  put_u64(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void BinaryWriter::put_f64_vec(const std::vector<double>& v) {
  put_u64(v.size());
  for (double x : v) put_f64(x);
}

void BinaryWriter::put_string(const std::string& s) {
  put_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void BinaryReader::need(std::size_t n) const {
  // Compare against the remaining span, not pos_ + n: a length prefix near
  // SIZE_MAX would wrap pos_ + n and sail past the bound.
  if (n > buf_.size() - pos_) {
    throw std::runtime_error("BinaryReader: truncated payload");
  }
}

std::uint64_t BinaryReader::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

double BinaryReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<std::uint8_t> BinaryReader::get_bytes() {
  const std::uint64_t n = get_u64();
  need(n);
  std::vector<std::uint8_t> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::vector<double> BinaryReader::get_f64_vec() {
  const std::uint64_t n = get_u64();
  if (n > remaining() / 8) {
    throw std::runtime_error("BinaryReader: truncated payload");
  }
  std::vector<double> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(get_f64());
  return out;
}

std::string BinaryReader::get_string() {
  const std::uint64_t n = get_u64();
  need(n);
  std::string out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::uint64_t fnv1a(const std::string& text) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char ch : text) {
    hash ^= ch;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept {
  // Nibble-wise table: 16 entries, computed once, no 1 KB static table.
  static constexpr std::uint32_t kTable[16] = {
      0x00000000u, 0x1db71064u, 0x3b6e20c8u, 0x26d930acu,
      0x76dc4190u, 0x6b6b51f4u, 0x4db26158u, 0x5005713cu,
      0xedb88320u, 0xf00f9344u, 0xd6d6a3e8u, 0xcb61b38cu,
      0x9b64c2b0u, 0x86d3d2d4u, 0xa00ae278u, 0xbdbdf21cu};
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    crc = (crc >> 4) ^ kTable[crc & 0x0f];
    crc = (crc >> 4) ^ kTable[crc & 0x0f];
  }
  return crc ^ 0xffffffffu;
}

std::string cache_dir() {
  const char* env = std::getenv("FTB_CACHE_DIR");
  std::string dir = env ? env : ".ftb_cache";
  if (dir == "off" || dir == "0" || dir.empty()) return {};
  return dir;
}

namespace {

std::string cache_path(const std::string& key) {
  const std::string dir = cache_dir();
  if (dir.empty()) return {};
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.bin",
                static_cast<unsigned long long>(fnv1a(key)));
  return dir + "/" + name;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> cache_load(const std::string& key) {
  const std::string path = cache_path(key);
  if (path.empty()) return std::nullopt;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> data{std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>()};
  try {
    BinaryReader reader(std::move(data));
    if (reader.get_u64() != kMagic) return std::nullopt;
    if (reader.get_u64() != kVersion) return std::nullopt;
    if (reader.get_string() != key) return std::nullopt;  // hash collision
    return reader.get_bytes();
  } catch (const std::runtime_error&) {
    return std::nullopt;  // corrupt or truncated file: treat as a miss
  }
}

void cache_store(const std::string& key,
                 const std::vector<std::uint8_t>& payload) {
  const std::string path = cache_path(key);
  if (path.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(cache_dir(), ec);
  if (ec) return;

  BinaryWriter writer;
  writer.put_u64(kMagic);
  writer.put_u64(kVersion);
  writer.put_string(key);
  writer.put_bytes(payload);

  // Best-effort durable publish; a failed write degrades to a cache miss.
  write_file_durable(path, writer.buffer());
}

}  // namespace ftb::util
