#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace ftb::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // A pathological all-zero state cannot occur: splitmix64 outputs are a
  // bijection of the counter and four consecutive zero outputs would need
  // four distinct preimages mapping to zero.
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() noexcept { return Rng(next_u64()); }

void Rng::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x360fd5f2cf8d5d99ull, 0x9c6e6877736c46e3ull,
      0xd2a98b26625eee7bull, 0xdddf9b1090aa7ac1ull};
  std::uint64_t t[4] = {0, 0, 0, 0};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      next_u64();
    }
  }
  s_[0] = t[0];
  s_[1] = t[1];
  s_[2] = t[2];
  s_[3] = t[3];
}

AliasTable::AliasTable(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (weights.empty() || !(total > 0.0) || !std::isfinite(total)) return;

  const std::size_t n = weights.size();
  prob_.resize(n);
  alias_.resize(n);

  // Scaled probabilities; buckets with scaled < 1 are "small".
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Residuals are 1 up to floating-point error.
  for (std::uint32_t l : large) {
    prob_[l] = 1.0;
    alias_[l] = l;
  }
  for (std::uint32_t s : small) {
    prob_[s] = 1.0;
    alias_[s] = s;
  }
}

std::size_t AliasTable::sample(Rng& rng) const noexcept {
  assert(!prob_.empty());
  const std::size_t bucket = rng.next_below(prob_.size());
  return rng.next_double() < prob_[bucket] ? bucket : alias_[bucket];
}

std::vector<std::uint64_t> sample_without_replacement(Rng& rng,
                                                      std::uint64_t n,
                                                      std::uint64_t k) {
  assert(k <= n);
  std::vector<std::uint64_t> picked;
  if (k == 0) return picked;
  picked.reserve(k);

  // Sparse draws: Floyd's algorithm touches only O(k) memory.
  if (k < n / 16) {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(k * 2);
    for (std::uint64_t j = n - k; j < n; ++j) {
      const std::uint64_t t = rng.next_below(j + 1);
      if (!seen.insert(t).second) {
        seen.insert(j);
        picked.push_back(j);
      } else {
        picked.push_back(t);
      }
    }
  } else {
    // Dense draws: partial Fisher-Yates over an explicit index array.
    std::vector<std::uint64_t> idx(n);
    for (std::uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t j = i + rng.next_below(n - i);
      std::swap(idx[i], idx[j]);
    }
    picked.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

void shuffle(Rng& rng, std::span<std::uint64_t> values) noexcept {
  if (values.size() < 2) return;
  for (std::size_t i = values.size() - 1; i > 0; --i) {
    const std::uint64_t j = rng.next_below(i + 1);
    std::swap(values[i], values[j]);
  }
}

}  // namespace ftb::util
