#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/rng.h"

namespace ftb::util {

bool retry_with_backoff(const RetryOptions& options,
                        const std::function<bool()>& attempt,
                        RetryStats* stats,
                        const std::function<void(std::uint32_t)>& sleeper) {
  RetryStats local;
  RetryStats& s = stats != nullptr ? *stats : local;
  s = RetryStats{};

  Rng jitter_rng(options.jitter_seed);
  double backoff_ms = static_cast<double>(options.initial_backoff_ms);

  for (int tries = 0;; ++tries) {
    ++s.attempts;
    if (attempt()) return true;
    if (tries >= options.max_retries) return false;

    double sleep_ms = backoff_ms;
    if (options.jitter > 0.0) {
      sleep_ms *= jitter_rng.next_double(1.0 - options.jitter,
                                         1.0 + options.jitter);
    }
    auto rounded = static_cast<std::uint32_t>(
        std::llround(std::max(sleep_ms, 0.0)));
    if (options.max_total_sleep_ms != 0) {
      const std::uint32_t budget_left =
          options.max_total_sleep_ms - std::min(options.max_total_sleep_ms,
                                                s.total_sleep_ms);
      if (budget_left == 0) {
        s.deadline_hit = true;
        return false;
      }
      rounded = std::min(rounded, budget_left);
    }
    if (rounded > 0) {
      if (sleeper) {
        sleeper(rounded);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(rounded));
      }
      s.total_sleep_ms += rounded;
    }
    backoff_ms *= options.multiplier;
  }
}

}  // namespace ftb::util
