// Fixed-size thread pool with a deterministic parallel_for.  Fault-injection
// campaigns are embarrassingly parallel (one experiment per task); work is
// pre-partitioned into contiguous index blocks so results land at fixed
// positions and campaigns are reproducible regardless of thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ftb::util {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task.  Tasks should not throw (campaigns report failures
  /// through their result records), but an exception that does escape is
  /// caught rather than terminating the process: the *first* one is captured
  /// and rethrown from the next wait_idle() call, later ones are dropped.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  If any task threw
  /// since the last wait_idle(), rethrows the first captured exception
  /// (after the queue has drained, so the pool stays usable).
  void wait_idle();

  /// Runs body(i) for i in [begin, end), split into `thread_count()*4`
  /// contiguous blocks, and blocks until done.  body must be thread-safe
  /// across distinct i.  Runs inline when the range is tiny or the pool has
  /// one thread (keeps single-core runs overhead-free).  A throwing body
  /// surfaces via the wait_idle() rethrow (or directly, when inline);
  /// remaining indices in other blocks may or may not have run.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_exception_;  // first task throw since wait_idle
  bool stop_ = false;
};

/// Process-wide default pool (constructed on first use, sized from
/// FTB_THREADS env var if set, else hardware concurrency).
ThreadPool& default_pool();

}  // namespace ftb::util
