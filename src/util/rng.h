// Deterministic pseudo-random number generation for fault-injection campaigns.
//
// Everything in the library that needs randomness goes through ftb::util::Rng
// (xoshiro256++), seeded explicitly so every campaign is reproducible
// bit-for-bit across runs and platforms.  On top of the raw generator we
// provide the sampling primitives the campaigns need:
//
//   * uniform integers in [0, n) without modulo bias (Lemire's method),
//   * uniform doubles in [0, 1),
//   * weighted discrete sampling via Walker's alias method (used by the
//     information-biased sampler of paper Section 3.4),
//   * uniform sampling of k distinct indices out of n (partial Fisher-Yates
//     for dense draws, Floyd's algorithm for sparse draws).
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace ftb::util {

/// SplitMix64: used only to expand a single 64-bit seed into a full
/// xoshiro256++ state.  Reference: Steele, Lea, Flood (2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna: fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full state from one 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept;

  /// UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }
  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound) without modulo bias (Lemire 2019).
  /// bound == 0 is undefined; callers must guard.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept;

  /// True with probability p (p clamped to [0, 1]).
  bool next_bernoulli(double p) noexcept;

  /// Derives an independent child generator (for per-thread streams).
  /// Children seeded from distinct draws of this generator are
  /// statistically independent for campaign purposes.
  Rng split() noexcept;

  /// 2^128 jump: advances the state as if 2^128 next_u64 calls were made.
  /// Used to partition one seed into long non-overlapping subsequences.
  void long_jump() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Walker alias method: O(n) construction, O(1) sampling from a fixed
/// discrete distribution.  Used for the 1/S_i information-bias sampling of
/// Section 3.4, where the weight table changes only between progressive
/// rounds but is sampled from many times within a round.
class AliasTable {
 public:
  /// Builds from non-negative weights; weights need not be normalised.
  /// All-zero (or empty) weights yield an empty table (size() == 0).
  explicit AliasTable(std::span<const double> weights);

  std::size_t size() const noexcept { return prob_.size(); }
  bool empty() const noexcept { return prob_.empty(); }

  /// Draws an index with probability proportional to its weight.
  /// Must not be called on an empty table.
  std::size_t sample(Rng& rng) const noexcept;

 private:
  std::vector<double> prob_;        // acceptance probability per bucket
  std::vector<std::uint32_t> alias_;  // alias target per bucket
};

/// Samples k distinct indices uniformly from [0, n), k <= n.
/// Picks partial Fisher-Yates when k is a large fraction of n and Floyd's
/// algorithm otherwise; the result is sorted ascending.
std::vector<std::uint64_t> sample_without_replacement(Rng& rng,
                                                      std::uint64_t n,
                                                      std::uint64_t k);

/// Fisher-Yates shuffle of an index span.
void shuffle(Rng& rng, std::span<std::uint64_t> values) noexcept;

}  // namespace ftb::util
