#include "util/cli.h"

#include <cstdio>
#include <cstdlib>

namespace ftb::util {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // boolean switch
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second != "false" && it->second != "0" && it->second != "off";
}

void Cli::describe(const std::string& name, const std::string& text) {
  help_.emplace_back(name, text);
}

void Cli::print_help(const std::string& program_summary) const {
  std::printf("%s\n\n%s\n\nFlags:\n", program_.c_str(), program_summary.c_str());
  for (const auto& [name, text] : help_) {
    std::printf("  --%-24s %s\n", name.c_str(), text.c_str());
  }
}

}  // namespace ftb::util
