// Binary result cache.  Exhaustive ground-truth campaigns are by far the
// most expensive step of the evaluation, and several bench binaries need the
// same table, so campaigns can persist results keyed by a configuration
// string.  The cache directory comes from FTB_CACHE_DIR (default
// ".ftb_cache"); set FTB_CACHE_DIR=off to disable caching entirely.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ftb::util {

/// Append-only little-endian binary encoder.
class BinaryWriter {
 public:
  void put_u64(std::uint64_t v);
  void put_f64(double v);
  void put_bytes(const std::vector<std::uint8_t>& v);
  void put_f64_vec(const std::vector<double>& v);
  void put_string(const std::string& s);

  const std::vector<std::uint8_t>& buffer() const noexcept { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Matching decoder; all getters throw std::runtime_error on truncation.
class BinaryReader {
 public:
  explicit BinaryReader(std::vector<std::uint8_t> data) : buf_(std::move(data)) {}

  std::uint64_t get_u64();
  double get_f64();
  std::vector<std::uint8_t> get_bytes();
  std::vector<double> get_f64_vec();
  std::string get_string();

  bool exhausted() const noexcept { return pos_ == buf_.size(); }

  /// Bytes left to read.  Decoders validate untrusted element counts
  /// against this before reserving (count <= remaining() / min bytes per
  /// element), so a forged length prefix cannot drive a huge allocation.
  std::size_t remaining() const noexcept { return buf_.size() - pos_; }

 private:
  void need(std::size_t n) const;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// FNV-1a of a string; used to derive cache file names from config keys.
std::uint64_t fnv1a(const std::string& text) noexcept;

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte range; used to
/// guard persistent journals (campaign logs) against torn or bit-rotted
/// writes.  crc32(...) of an empty range is 0.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept;

/// The active cache directory, or empty if caching is disabled.
std::string cache_dir();

/// Loads the payload cached under `key`, verifying that the stored key
/// matches (hash collisions fall back to a miss).  Returns nullopt on miss,
/// disabled cache, or corrupt file.
std::optional<std::vector<std::uint8_t>> cache_load(const std::string& key);

/// Stores payload under `key` (atomic rename); no-op if caching is disabled.
void cache_store(const std::string& key, const std::vector<std::uint8_t>& payload);

}  // namespace ftb::util
