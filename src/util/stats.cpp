#include "util/stats.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace ftb::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

MeanStd mean_std(std::span<const double> values) noexcept {
  RunningStats rs;
  for (double v : values) rs.add(v);
  return {rs.mean(), rs.stddev()};
}

std::string format_percent_pm(MeanStd ms, int decimals) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f%% +- %.*f%%", decimals,
                ms.mean * 100.0, decimals, ms.stddev * 100.0);
  return buf;
}

double Confusion::precision() const noexcept {
  const std::uint64_t pred = predicted_positive();
  if (pred == 0) return 1.0;
  return static_cast<double>(true_positive) / static_cast<double>(pred);
}

double Confusion::recall() const noexcept {
  const std::uint64_t actual = actual_positive();
  if (actual == 0) return 1.0;
  return static_cast<double>(true_positive) / static_cast<double>(actual);
}

Confusion& Confusion::operator+=(const Confusion& o) noexcept {
  true_positive += o.true_positive;
  false_positive += o.false_positive;
  false_negative += o.false_negative;
  true_negative += o.true_negative;
  return *this;
}

double pearson_correlation(std::span<const double> a,
                           std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  RunningStats sa, sb;
  for (double v : a) sa.add(v);
  for (double v : b) sb.add(v);
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
  }
  cov /= static_cast<double>(a.size() - 1);
  const double denom = sa.stddev() * sb.stddev();
  return denom > 0.0 ? cov / denom : 0.0;
}

double mean_absolute_error(std::span<const double> a,
                           std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

std::vector<double> group_means(std::span<const double> values,
                                std::size_t group) {
  assert(group > 0);
  std::vector<double> out;
  if (values.empty()) return out;
  out.reserve((values.size() + group - 1) / group);
  for (std::size_t start = 0; start < values.size(); start += group) {
    const std::size_t end = std::min(start + group, values.size());
    double sum = 0.0;
    for (std::size_t i = start; i < end; ++i) sum += values[i];
    out.push_back(sum / static_cast<double>(end - start));
  }
  return out;
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double z) noexcept {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

}  // namespace ftb::util
