#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ftb::util {

namespace {

/// Resamples a series to `width` points by averaging each destination cell's
/// source window (simple box filter; good enough for terminal resolution).
std::vector<double> resample(std::span<const double> values, std::size_t width) {
  std::vector<double> out(width, std::numeric_limits<double>::quiet_NaN());
  if (values.empty() || width == 0) return out;
  const double scale = static_cast<double>(values.size()) / static_cast<double>(width);
  for (std::size_t x = 0; x < width; ++x) {
    const auto begin = static_cast<std::size_t>(std::floor(static_cast<double>(x) * scale));
    auto end = static_cast<std::size_t>(std::ceil(static_cast<double>(x + 1) * scale));
    end = std::min(std::max(end, begin + 1), values.size());
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = begin; i < end && i < values.size(); ++i) {
      if (!std::isnan(values[i])) {
        sum += values[i];
        ++n;
      }
    }
    if (n) out[x] = sum / static_cast<double>(n);
  }
  return out;
}

}  // namespace

std::string plot(std::span<const Series> series, const PlotOptions& options) {
  const std::size_t width = std::max<std::size_t>(options.width, 8);
  const std::size_t height = std::max<std::size_t>(options.height, 4);

  double lo = options.y_min;
  double hi = options.y_max;
  if (!options.fix_y_range) {
    lo = std::numeric_limits<double>::infinity();
    hi = -std::numeric_limits<double>::infinity();
    for (const auto& s : series) {
      for (double v : s.values) {
        if (std::isnan(v)) continue;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (!std::isfinite(lo) || !std::isfinite(hi)) {
      lo = 0.0;
      hi = 1.0;
    }
    if (hi <= lo) hi = lo + 1.0;
    const double pad = 0.05 * (hi - lo);
    lo -= pad;
    hi += pad;
  }

  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (const auto& s : series) {
    const std::vector<double> r = resample(s.values, width);
    for (std::size_t x = 0; x < width; ++x) {
      if (std::isnan(r[x])) continue;
      double t = (r[x] - lo) / (hi - lo);
      t = std::clamp(t, 0.0, 1.0);
      const auto row = static_cast<std::size_t>(
          std::lround((1.0 - t) * static_cast<double>(height - 1)));
      canvas[row][x] = s.glyph;
    }
  }

  std::string out;
  char label[64];
  for (std::size_t row = 0; row < height; ++row) {
    const double y =
        hi - (hi - lo) * static_cast<double>(row) / static_cast<double>(height - 1);
    std::snprintf(label, sizeof(label), "%10.4f |", y);
    out += label;
    out += canvas[row];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(width, '-') + "> " +
         options.x_label + '\n';
  out += "  legend: ";
  for (const auto& s : series) {
    out += '[';
    out += s.glyph;
    out += "] ";
    out += s.label;
    out += "  ";
  }
  out += '\n';
  return out;
}

}  // namespace ftb::util
