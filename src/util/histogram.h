// Fixed-bin histogram used to summarise per-site DeltaSDC values (Figure 3).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ftb::util {

/// Uniform-bin histogram over [lo, hi].  Values outside the range land in
/// saturating underflow/overflow bins that are reported separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;
  void add_all(std::span<const double> values) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  double bin_lo(std::size_t bin) const noexcept;
  double bin_hi(std::size_t bin) const noexcept;
  /// Centre of a bin (x coordinate when plotting).
  double bin_center(std::size_t bin) const noexcept;

  /// Fraction of all added values in [lo, hi) of the given bin.
  double fraction(std::size_t bin) const noexcept;

  /// Renders a vertical ASCII bar chart (log-scaled bar lengths optional,
  /// since Figure 3 has a huge spike at zero next to small tails).
  std::string render(std::size_t width = 60, bool log_scale = true) const;

 private:
  double lo_;
  double hi_;
  double inv_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace ftb::util
