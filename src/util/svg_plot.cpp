#include "util/svg_plot.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

#include "util/table.h"

namespace ftb::util {

namespace {

// A small colour-blind-safe cycle (Okabe-Ito).
constexpr const char* kPalette[] = {"#0072b2", "#d55e00", "#009e73",
                                    "#cc79a7", "#e69f00", "#56b4e9"};
constexpr int kPaletteSize = 6;

constexpr int kMarginLeft = 64;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 34;
constexpr int kMarginBottom = 46;

struct Frame {
  double x0, y0, plot_w, plot_h;  // plot area in px
  double lo, hi;                  // y data range

  double y_px(double value) const {
    const double t = (value - lo) / (hi - lo);
    return y0 + plot_h * (1.0 - std::clamp(t, 0.0, 1.0));
  }
};

std::string escape_xml(const std::string& text) {
  std::string out;
  for (char ch : text) {
    switch (ch) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += ch;
    }
  }
  return out;
}

void open_svg(std::string& svg, const SvgOptions& options) {
  svg += format(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "viewBox=\"0 0 %d %d\" font-family=\"sans-serif\" font-size=\"12\">\n",
      options.width, options.height, options.width, options.height);
  svg += format("<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n",
                options.width, options.height);
  if (!options.title.empty()) {
    svg += format(
        "<text x=\"%d\" y=\"20\" text-anchor=\"middle\" font-size=\"14\" "
        "font-weight=\"bold\">%s</text>\n",
        options.width / 2, escape_xml(options.title).c_str());
  }
}

Frame draw_axes(std::string& svg, const SvgOptions& options, double lo,
                double hi) {
  Frame frame;
  frame.x0 = kMarginLeft;
  frame.y0 = kMarginTop;
  frame.plot_w = options.width - kMarginLeft - kMarginRight;
  frame.plot_h = options.height - kMarginTop - kMarginBottom;
  if (hi <= lo) hi = lo + 1.0;
  frame.lo = lo;
  frame.hi = hi;

  // Frame + horizontal gridlines with y tick labels.
  svg += format(
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
      "fill=\"none\" stroke=\"#999\"/>\n",
      frame.x0, frame.y0, frame.plot_w, frame.plot_h);
  constexpr int kTicks = 5;
  for (int i = 0; i <= kTicks; ++i) {
    const double value =
        lo + (hi - lo) * static_cast<double>(i) / kTicks;
    const double y = frame.y_px(value);
    if (i != 0 && i != kTicks) {
      svg += format(
          "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
          "stroke=\"#ddd\"/>\n",
          frame.x0, y, frame.x0 + frame.plot_w, y);
    }
    svg += format(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%.3g</text>\n",
        frame.x0 - 6.0, y + 4.0, value);
  }
  if (!options.x_label.empty()) {
    svg += format(
        "<text x=\"%.1f\" y=\"%d\" text-anchor=\"middle\">%s</text>\n",
        frame.x0 + frame.plot_w / 2.0, options.height - 10,
        escape_xml(options.x_label).c_str());
  }
  if (!options.y_label.empty()) {
    svg += format(
        "<text x=\"14\" y=\"%.1f\" text-anchor=\"middle\" "
        "transform=\"rotate(-90 14 %.1f)\">%s</text>\n",
        frame.y0 + frame.plot_h / 2.0, frame.y0 + frame.plot_h / 2.0,
        escape_xml(options.y_label).c_str());
  }
  return frame;
}

}  // namespace

std::string svg_chart(std::span<const Series> series,
                      const SvgOptions& options) {
  // Data range.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  std::size_t longest = 1;
  for (const Series& s : series) {
    longest = std::max(longest, s.values.size());
    for (double v : s.values) {
      if (std::isnan(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo)) {
    lo = 0.0;
    hi = 1.0;
  }
  if (options.y_from_zero) lo = std::min(lo, 0.0);
  const double pad = 0.05 * (hi - lo + 1e-300);
  if (!options.y_from_zero) lo -= pad;
  hi += pad;

  std::string svg;
  open_svg(svg, options);
  const Frame frame = draw_axes(svg, options, lo, hi);

  for (std::size_t index = 0; index < series.size(); ++index) {
    const Series& s = series[index];
    const char* colour = kPalette[index % kPaletteSize];
    const std::size_t n = s.values.size();
    if (n == 0) continue;

    const auto x_px = [&](std::size_t i) {
      return frame.x0 + frame.plot_w *
                            (n > 1 ? static_cast<double>(i) /
                                         static_cast<double>(n - 1)
                                   : 0.5);
    };

    if (options.scatter || n == 1) {
      for (std::size_t i = 0; i < n; ++i) {
        if (std::isnan(s.values[i])) continue;
        svg += format(
            "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.4\" fill=\"%s\"/>\n",
            x_px(i), frame.y_px(s.values[i]), colour);
      }
    } else {
      // Polyline segments broken at NaNs.
      std::string points;
      const auto flush = [&] {
        if (!points.empty()) {
          svg += format(
              "<polyline fill=\"none\" stroke=\"%s\" stroke-width=\"1.6\" "
              "points=\"%s\"/>\n",
              colour, points.c_str());
          points.clear();
        }
      };
      for (std::size_t i = 0; i < n; ++i) {
        if (std::isnan(s.values[i])) {
          flush();
          continue;
        }
        points += format("%.1f,%.1f ", x_px(i), frame.y_px(s.values[i]));
      }
      flush();
    }
    // Legend entry.
    const double legend_y = kMarginTop + 14.0 * static_cast<double>(index);
    svg += format(
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"10\" height=\"10\" "
        "fill=\"%s\"/>\n",
        frame.x0 + frame.plot_w - 170.0, legend_y, colour);
    svg += format("<text x=\"%.1f\" y=\"%.1f\">%s</text>\n",
                  frame.x0 + frame.plot_w - 156.0, legend_y + 9.0,
                  escape_xml(s.label).c_str());
  }
  svg += "</svg>\n";
  return svg;
}

std::string svg_histogram(const Histogram& histogram,
                          const SvgOptions& options) {
  double peak = 1.0;
  for (std::size_t b = 0; b < histogram.bin_count(); ++b) {
    peak = std::max(peak, static_cast<double>(histogram.count(b)));
  }

  std::string svg;
  open_svg(svg, options);
  const Frame frame = draw_axes(svg, options, 0.0, peak * 1.05);

  const double bar_w =
      frame.plot_w / static_cast<double>(histogram.bin_count());
  for (std::size_t b = 0; b < histogram.bin_count(); ++b) {
    const auto count = static_cast<double>(histogram.count(b));
    if (count == 0.0) continue;
    const double y = frame.y_px(count);
    svg += format(
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
        "fill=\"%s\" stroke=\"white\" stroke-width=\"0.5\"/>\n",
        frame.x0 + bar_w * static_cast<double>(b), y, bar_w,
        frame.y0 + frame.plot_h - y, kPalette[0]);
  }
  // x tick labels at the edges and centre.
  for (const std::size_t b :
       {std::size_t{0}, histogram.bin_count() / 2,
        histogram.bin_count() - 1}) {
    svg += format(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\">%.3g</text>\n",
        frame.x0 + bar_w * (static_cast<double>(b) + 0.5),
        frame.y0 + frame.plot_h + 16.0, histogram.bin_center(b));
  }
  svg += "</svg>\n";
  return svg;
}

bool write_svg_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace ftb::util
