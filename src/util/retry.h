// Retry with exponential backoff, jitter, and a deadline cap.
//
// Transient resource failures -- fork() returning EAGAIN, mmap() hitting a
// momentary ENOMEM, a filesystem briefly refusing a rename -- usually clear
// within milliseconds, so the cheap fix is to try again after a short sleep.
// This header centralises the policy every such site in the library shares:
//
//   * exponential backoff (initial_backoff_ms doubled -- or scaled by
//     `multiplier` -- per failed attempt),
//   * deterministic jitter (+/- `jitter` fraction of each sleep, driven by
//     util::Rng so campaigns stay reproducible) to de-synchronise retry
//     storms when many processes fail together,
//   * a deadline cap (`max_total_sleep_ms`): retrying stops once the summed
//     sleep budget is exhausted, even if attempts remain -- a caller waiting
//     on a respawn must not stall a campaign for seconds.
//
// The callable is attempted once before any sleeping, so `max_retries = 0`
// means "try exactly once".
#pragma once

#include <cstdint>
#include <functional>

namespace ftb::util {

struct RetryOptions {
  /// Additional attempts after the first failure.
  int max_retries = 3;
  /// Sleep before the first retry; scaled by `multiplier` per retry.
  std::uint32_t initial_backoff_ms = 5;
  /// Backoff growth factor (2.0 = classic exponential doubling).
  double multiplier = 2.0;
  /// Each sleep is perturbed by a uniform factor in [1-jitter, 1+jitter].
  /// 0 disables jitter entirely.
  double jitter = 0.25;
  /// Hard cap on the *summed* sleep time across all retries; when the next
  /// sleep would exceed the remaining budget it is clamped to it, and once
  /// the budget reaches zero no further retries happen.  0 disables the cap.
  std::uint32_t max_total_sleep_ms = 2000;
  /// Seed for the jitter stream (kept explicit for reproducibility).
  std::uint64_t jitter_seed = 0x5eedbeefu;
};

/// Observability for one retry_with_backoff call.
struct RetryStats {
  int attempts = 0;                 ///< total calls of the attempt functor
  std::uint32_t total_sleep_ms = 0; ///< summed (jittered, capped) sleeps
  bool deadline_hit = false;        ///< stopped early because of the cap
};

/// Calls `attempt` until it returns true or the policy is exhausted.
/// Returns the final attempt's verdict.  `sleeper` exists for tests; the
/// default really sleeps via std::this_thread::sleep_for.
bool retry_with_backoff(const RetryOptions& options,
                        const std::function<bool()>& attempt,
                        RetryStats* stats = nullptr,
                        const std::function<void(std::uint32_t)>& sleeper = {});

}  // namespace ftb::util
