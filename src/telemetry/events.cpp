#include "telemetry/events.h"

#include <chrono>

namespace ftb::telemetry {

std::uint64_t SteadyClock::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Telemetry::Telemetry(const Clock* clock)
    : clock_(clock != nullptr ? clock : &default_clock_) {}

void Telemetry::instant(std::string name, std::string category,
                        std::vector<std::pair<std::string, double>> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kInstant;
  event.name = std::move(name);
  event.category = std::move(category);
  event.start_ns = now_ns();
  event.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Telemetry::record_span(std::string name, std::string category,
                            std::uint64_t start_ns, std::uint64_t duration_ns,
                            std::vector<std::pair<std::string, double>> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = TraceEvent::Kind::kSpan;
  event.name = std::move(name);
  event.category = std::move(category);
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Telemetry::events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

}  // namespace ftb::telemetry
