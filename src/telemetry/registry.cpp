#include "telemetry/registry.h"

#include <algorithm>

namespace ftb::telemetry {

void LatencyHistogram::record(std::uint64_t value) {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::min() const {
  return min_.load(std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_[std::string(name)];
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[std::string(name)];
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return histograms_[std::string(name)];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter.value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge.value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = hist.count();
    h.sum = hist.sum();
    h.min = h.count == 0 ? 0 : hist.min();
    h.max = hist.max();
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      const std::uint64_t n = hist.bucket_count(b);
      if (n != 0) h.buckets.emplace_back(LatencyHistogram::bucket_floor(b), n);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

}  // namespace ftb::telemetry
