#pragma once

// Exporters for telemetry data:
//  - metrics_to_json: end-of-run metrics snapshot (schema "ftb.telemetry.metrics/1")
//  - events_to_jsonl: one JSON object per event, append-friendly
//  - events_to_chrome_trace: Chrome trace_event format ("traceEvents" array of
//    ph:"X" spans and ph:"i" instants, microsecond timestamps) that loads
//    directly in chrome://tracing and Perfetto.
//
// All exporters are deterministic given the same telemetry contents (metric
// names sorted, events in insertion order), so tests can compare against
// golden strings when driven by a ManualClock.

#include <string>

#include "telemetry/events.h"
#include "telemetry/registry.h"

namespace ftb::telemetry {

// Escape a string for embedding in a JSON document (no surrounding quotes).
std::string json_escape(std::string_view text);

std::string metrics_to_json(const MetricsSnapshot& snapshot);
std::string events_to_jsonl(const std::vector<TraceEvent>& events);
std::string events_to_chrome_trace(const std::vector<TraceEvent>& events);

// Convenience wrappers writing straight from a Telemetry sink.  Return false
// (and leave no partial file guarantees) when the file cannot be opened.
bool write_metrics_json(const Telemetry& telemetry, const std::string& path);
bool write_events_jsonl(const Telemetry& telemetry, const std::string& path);
bool write_chrome_trace(const Telemetry& telemetry, const std::string& path);

}  // namespace ftb::telemetry
