#pragma once

// Scoped-span event stream with a pluggable clock.
//
// A Telemetry instance owns a MetricsRegistry (counters / gauges / latency
// histograms, see registry.h) plus an append-only stream of TraceEvents
// (spans and instants).  Everything downstream takes a `Telemetry*` that is
// nullptr by default: with a null sink every call collapses to a pointer
// test, so instrumented code pays (almost) nothing when telemetry is off.
//
// Timestamps come from a Clock interface so tests can drive a ManualClock
// and compare exported traces against golden strings.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/registry.h"

namespace ftb::telemetry {

// Monotonic nanosecond clock.  SteadyClock wraps std::chrono::steady_clock;
// ManualClock is fully deterministic for tests and golden-file exports.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t now_ns() const = 0;
};

class SteadyClock final : public Clock {
 public:
  std::uint64_t now_ns() const override;
};

class ManualClock final : public Clock {
 public:
  std::uint64_t now_ns() const override { return now_.load(std::memory_order_relaxed); }
  void set_ns(std::uint64_t ns) { now_.store(ns, std::memory_order_relaxed); }
  void advance_ns(std::uint64_t ns) { now_.fetch_add(ns, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> now_{0};
};

struct TraceEvent {
  enum class Kind { kSpan, kInstant };

  Kind kind = Kind::kInstant;
  std::string name;
  std::string category;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;  // spans only
  std::uint64_t tid = 0;
  // Small numeric payload ("round": 3, "picked": 128, ...).  Doubles keep the
  // export simple; counts up to 2^53 round-trip exactly.
  std::vector<std::pair<std::string, double>> args;
};

// Event + metrics sink.  Thread-safe; all methods are no-ops while disabled.
class Telemetry {
 public:
  // `clock` may be nullptr, in which case an internal SteadyClock is used.
  explicit Telemetry(const Clock* clock = nullptr);

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  const Clock& clock() const { return *clock_; }
  std::uint64_t now_ns() const { return clock_->now_ns(); }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Record an instantaneous event at the current clock time.
  void instant(std::string name, std::string category,
               std::vector<std::pair<std::string, double>> args = {});

  // Record a completed span [start_ns, start_ns + duration_ns).
  void record_span(std::string name, std::string category, std::uint64_t start_ns,
                   std::uint64_t duration_ns,
                   std::vector<std::pair<std::string, double>> args = {});

  // Snapshot of all events recorded so far, in insertion order.
  std::vector<TraceEvent> events() const;

 private:
  SteadyClock default_clock_;
  const Clock* clock_;
  std::atomic<bool> enabled_{false};
  MetricsRegistry metrics_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

// True when `t` is non-null and enabled: gate for any instrumentation that
// has to do work (string building, clock reads) before calling into the sink.
inline bool active(const Telemetry* t) { return t != nullptr && t->enabled(); }

// RAII span.  Construction stamps the start time, destruction records the
// span.  Null/disabled telemetry makes the whole object a no-op.
class SpanScope {
 public:
  SpanScope(Telemetry* telemetry, std::string name, std::string category)
      : telemetry_(active(telemetry) ? telemetry : nullptr) {
    if (telemetry_ == nullptr) return;
    name_ = std::move(name);
    category_ = std::move(category);
    start_ns_ = telemetry_->now_ns();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  // Attach a numeric argument to the span (shown in trace viewers).
  void arg(std::string key, double value) {
    if (telemetry_ == nullptr) return;
    args_.emplace_back(std::move(key), value);
  }

  ~SpanScope() {
    if (telemetry_ == nullptr) return;
    const std::uint64_t end_ns = telemetry_->now_ns();
    telemetry_->record_span(std::move(name_), std::move(category_), start_ns_,
                            end_ns - start_ns_, std::move(args_));
  }

 private:
  Telemetry* telemetry_;
  std::string name_;
  std::string category_;
  std::uint64_t start_ns_ = 0;
  std::vector<std::pair<std::string, double>> args_;
};

}  // namespace ftb::telemetry
