#include "telemetry/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace ftb::telemetry {
namespace {

// Doubles in the export are almost always integral counts; print those
// exactly, and fall back to shortest-round-trip-ish %.17g otherwise.
std::string format_double(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(value));
    return buf;
  }
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void append_args(std::ostringstream& out,
                 const std::vector<std::pair<std::string, double>>& args) {
  out << "{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(key) << "\":" << format_double(value);
  }
  out << "}";
}

void append_event_json(std::ostringstream& out, const TraceEvent& event) {
  const bool span = event.kind == TraceEvent::Kind::kSpan;
  out << "{\"kind\":\"" << (span ? "span" : "instant") << "\",\"name\":\""
      << json_escape(event.name) << "\",\"cat\":\"" << json_escape(event.category)
      << "\",\"ts_ns\":" << event.start_ns;
  if (span) out << ",\"dur_ns\":" << event.duration_ns;
  out << ",\"tid\":" << event.tid << ",\"args\":";
  append_args(out, event.args);
  out << "}";
}

bool write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string metrics_to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"ftb.telemetry.metrics/1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << format_double(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& hist : snapshot.histograms) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(hist.name)
        << "\": {\"count\": " << hist.count << ", \"sum\": " << hist.sum
        << ", \"min\": " << hist.min << ", \"max\": " << hist.max
        << ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [floor, count] : hist.buckets) {
      out << (first_bucket ? "" : ", ") << "[" << floor << ", " << count << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string events_to_jsonl(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  for (const TraceEvent& event : events) {
    append_event_json(out, event);
    out << "\n";
  }
  return out.str();
}

std::string events_to_chrome_trace(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    const bool span = event.kind == TraceEvent::Kind::kSpan;
    out << (first ? "" : ",") << "\n{\"name\":\"" << json_escape(event.name)
        << "\",\"cat\":\"" << json_escape(event.category) << "\",\"ph\":\""
        << (span ? "X" : "i") << "\",\"pid\":1,\"tid\":" << event.tid
        << ",\"ts\":" << event.start_ns / 1000 << "."
        << (event.start_ns % 1000) / 100;
    if (span) {
      out << ",\"dur\":" << event.duration_ns / 1000 << "."
          << (event.duration_ns % 1000) / 100;
    } else {
      out << ",\"s\":\"g\"";
    }
    out << ",\"args\":";
    std::ostringstream args;
    append_args(args, event.args);
    out << args.str() << "}";
    first = false;
  }
  out << "\n]}\n";
  return out.str();
}

bool write_metrics_json(const Telemetry& telemetry, const std::string& path) {
  return write_text(path, metrics_to_json(telemetry.metrics().snapshot()));
}

bool write_events_jsonl(const Telemetry& telemetry, const std::string& path) {
  return write_text(path, events_to_jsonl(telemetry.events()));
}

bool write_chrome_trace(const Telemetry& telemetry, const std::string& path) {
  return write_text(path, events_to_chrome_trace(telemetry.events()));
}

}  // namespace ftb::telemetry
