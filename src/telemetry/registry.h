#pragma once

// Low-overhead metrics registry: counters, gauges, and log-scaled latency
// histograms.  All mutation paths are lock-free atomics; registration (name
// lookup) takes a mutex but callers are expected to resolve metrics once and
// keep the reference -- std::map nodes are stable, so references returned by
// the registry stay valid for its lifetime.

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftb::telemetry {

// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins scalar (queue depth, pool size, rate...).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket log2 histogram for non-negative integer samples (typically
// nanoseconds).  Bucket 0 holds the value 0; bucket b >= 1 holds values with
// bit_width b, i.e. the half-open range [2^(b-1), 2^b).  64-bit values fit in
// 65 buckets, so recording never allocates.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  // Bucket index for a sample: 0 -> 0, otherwise std::bit_width(value).
  static constexpr std::size_t bucket_of(std::uint64_t value) {
    return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  }

  // Smallest value that lands in `bucket` (inclusive lower edge): bucket 0
  // holds only the value 0, bucket b >= 1 starts at 2^(b-1).
  static constexpr std::uint64_t bucket_floor(std::size_t bucket) {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
  }

  void record(std::uint64_t value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const;  // UINT64_MAX when empty
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// Point-in-time copies used by the exporters.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when empty
  std::uint64_t max = 0;
  // Sparse (bucket_floor, count) pairs for non-empty buckets, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
};

// Name -> metric map.  Lookups are mutex-protected; the returned references
// are stable and their hot-path operations are atomic.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  // Deterministic (name-sorted) copy of every registered metric.
  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, LatencyHistogram, std::less<>> histograms_;
};

}  // namespace ftb::telemetry
