// chaos_served: crash-recovery harness for ftb_served.
//
// Repeatedly spawns the real daemon binary, submits campaign jobs, waits a
// random (seeded) delay, and SIGKILLs the process -- most rounds with the
// FTB_CHAOS syscall-fault layer armed so short reads/writes and EINTR hit
// the network and journal paths while the axe falls.  After every kill it
// audits the store directory:
//
//   * no acked job is lost: every CampaignAccepted job id, plus every job
//     that was pending before the incarnation started, appears in the job
//     ledger's replay (pending or terminal);
//   * no torn artifact is loadable as valid: every *.boundary and *.clog
//     present parses cleanly (the atomic tmp+rename discipline means a file
//     either exists whole or not at all);
//   * the ledger replay itself never fails catastrophically (a torn tail is
//     reported and dropped, never trusted).
//
// A final clean incarnation then proves recovery end-to-end: all interrupted
// jobs resume from their journals and finish, every acked key is published
// and queryable, a graceful drain leaves the ledger empty of pending work,
// and the seed-1 journal is byte-identical to an uninterrupted reference
// campaign -- the same convergence contract `ftb_analyze campaign --resume`
// makes.
//
// Exit 0 when every invariant held across all kills; exit 1 with a FAIL
// line otherwise.  Used by the service_chaos_smoke ctest (few kills) and
// the CI chaos job (50 kills, the acceptance bar).
#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "boundary/serialize.h"
#include "campaign/checkpoint.h"
#include "campaign/log.h"
#include "campaign/sampler.h"
#include "kernels/registry.h"
#include "net/client.h"
#include "net/socket.h"
#include "service/ledger.h"
#include "service/protocol.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

namespace fs = std::filesystem;
using namespace ftb;

struct Daemon {
  pid_t pid = -1;
  int stdout_fd = -1;
  std::uint16_t port = 0;
};

[[noreturn]] void fail(const Daemon* daemon, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "FAIL: ");
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
  if (daemon != nullptr && daemon->pid > 0) {
    ::kill(daemon->pid, SIGKILL);
    ::waitpid(daemon->pid, nullptr, 0);
  }
  std::exit(1);
}

/// Forks and execs the daemon, scraping the ephemeral port off its stdout.
/// `chaos_spec` non-empty arms FTB_CHAOS in the child's environment.
std::optional<Daemon> spawn_daemon(const std::string& served,
                                   const std::string& store_dir,
                                   const std::string& chaos_spec,
                                   const std::vector<std::string>& extra_args = {}) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return std::nullopt;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return std::nullopt;
  }
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    if (chaos_spec.empty()) {
      ::unsetenv("FTB_CHAOS");
    } else {
      ::setenv("FTB_CHAOS", chaos_spec.c_str(), 1);
    }
    std::vector<const char*> args;
    args.push_back(served.c_str());
    args.push_back("--port");
    args.push_back("0");
    args.push_back("--store-dir");
    args.push_back(store_dir.c_str());
    args.push_back("--queue");
    args.push_back("64");
    for (const std::string& arg : extra_args) args.push_back(arg.c_str());
    args.push_back(nullptr);
    ::execv(served.c_str(), const_cast<char* const*>(args.data()));
    std::fprintf(stderr, "exec %s failed: %s\n", served.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  ::close(pipe_fds[1]);

  // Scrape "listening on 127.0.0.1:<port>" with a startup deadline.
  Daemon daemon;
  daemon.pid = pid;
  daemon.stdout_fd = pipe_fds[0];
  std::string buffer;
  const char* needle = "listening on 127.0.0.1:";
  for (int waited_ms = 0; waited_ms < 30000;) {
    struct pollfd pfd{daemon.stdout_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    waited_ms += 100;
    if (ready <= 0) continue;
    char chunk[256];
    const ssize_t got = ::read(daemon.stdout_fd, chunk, sizeof(chunk));
    if (got <= 0) break;  // EOF: the child died before listening
    buffer.append(chunk, static_cast<std::size_t>(got));
    const auto pos = buffer.find(needle);
    if (pos != std::string::npos &&
        buffer.find('\n', pos) != std::string::npos) {
      daemon.port = static_cast<std::uint16_t>(
          std::strtoul(buffer.c_str() + pos + std::strlen(needle), nullptr,
                       10));
      return daemon;
    }
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  ::close(daemon.stdout_fd);
  return std::nullopt;
}

void kill_hard(Daemon& daemon) {
  ::kill(daemon.pid, SIGKILL);
  ::waitpid(daemon.pid, nullptr, 0);
  ::close(daemon.stdout_fd);
  daemon.pid = -1;
}

/// SIGTERM + bounded wait; true when the daemon drained and exited 0.
bool stop_graceful(Daemon& daemon) {
  ::kill(daemon.pid, SIGTERM);
  int status = 0;
  for (int waited_ms = 0; waited_ms < 120000; waited_ms += 50) {
    const pid_t done = ::waitpid(daemon.pid, &status, WNOHANG);
    if (done == daemon.pid) {
      ::close(daemon.stdout_fd);
      daemon.pid = -1;
      return WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }
    ::usleep(50 * 1000);
  }
  kill_hard(daemon);
  return false;
}

/// Crude counter extraction from the ftb.telemetry.metrics/1 JSON.
std::optional<std::uint64_t> json_counter(const std::string& json,
                                          const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

/// Validates that every artifact the store holds parses cleanly.  A crash
/// can leave *.tmp staging files behind (harmless, ignored); it must never
/// leave a torn *.boundary or *.clog, because those are published by
/// atomic rename only.
void audit_store_files(const std::string& store_dir, const Daemon* daemon) {
  for (const auto& entry : fs::directory_iterator(store_dir)) {
    const std::string path = entry.path().string();
    const std::string ext = entry.path().extension().string();
    std::string error;
    if (ext == ".boundary") {
      if (!boundary::load_artifact_from_file(path, {}, &error).has_value()) {
        fail(daemon, "torn boundary artifact survived a kill: %s (%s)",
             path.c_str(), error.c_str());
      }
    } else if (ext == ".clog") {
      if (!campaign::CampaignLog::load(path, &error).has_value()) {
        fail(daemon, "torn campaign journal survived a kill: %s (%s)",
             path.c_str(), error.c_str());
      }
    }
  }
}

std::string key_for_seed(std::uint64_t seed) {
  return "daxpy@tiny@" + std::to_string(seed);
}

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string bytes;
  char chunk[65536];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.append(chunk, got);
  }
  std::fclose(file);
  return bytes;
}

// ---------------------------------------------------------------------------
// Worker-plane chaos: the distributed dispatch path under random worker
// SIGKILL / SIGSTOP / net-fault incidents.
// ---------------------------------------------------------------------------

struct WorkerProc {
  pid_t pid = -1;
  int index = 0;
  bool chaotic = false;  // FTB_CHAOS armed on its sockets
};

/// Forks and execs one ftb_workerd aimed at `port`.  `chaos_spec` non-empty
/// arms the syscall-fault layer on the worker's network path, so its frames
/// arrive over short reads/EINTR storms.  Worker output is discarded: the
/// interesting signal is the dispatcher's audit, not worker chatter.
pid_t spawn_worker(const std::string& workerd, std::uint16_t port, int index,
                   const std::string& chaos_spec) {
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
      ::close(devnull);
    }
    if (chaos_spec.empty()) {
      ::unsetenv("FTB_CHAOS");
    } else {
      ::setenv("FTB_CHAOS", chaos_spec.c_str(), 1);
    }
    const std::string port_str = std::to_string(port);
    const std::string name = "chaos-w" + std::to_string(index);
    ::execl(workerd.c_str(), workerd.c_str(), "--port", port_str.c_str(),
            "--name", name.c_str(), "--capacity", "1", "--pool-workers", "2",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  return pid;
}

void kill_worker(WorkerProc& worker) {
  if (worker.pid <= 0) return;
  ::kill(worker.pid, SIGKILL);
  ::waitpid(worker.pid, nullptr, 0);
  worker.pid = -1;
}

/// Submits one daxpy@tiny campaign over a fresh connection (so the ack is
/// the first frame back, not buried in other jobs' progress stream) and
/// returns the acked job id.  The connection closing afterwards is fine:
/// jobs are ledger-tracked, not tied to their submitter's socket.
std::uint64_t submit_worker_job(const net::ClientOptions& copts,
                                std::uint64_t seed, std::uint64_t batch,
                                const Daemon* daemon) {
  net::Client client(copts);
  service::SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = seed;
  req.batch = batch;
  req.workers = 2;
  req.flush_every = 16;
  std::string error;
  if (!client.connect(&error) ||
      !client.send(service::make_submit_campaign(req), &error)) {
    fail(daemon, "worker phase: submit seed %llu failed: %s",
         static_cast<unsigned long long>(seed), error.c_str());
  }
  for (int hops = 0; hops < 64; ++hops) {
    const auto reply = client.recv(&error, 15000);
    if (!reply.has_value()) {
      fail(daemon, "worker phase: no ack for seed %llu: %s",
           static_cast<unsigned long long>(seed), error.c_str());
    }
    switch (static_cast<service::MsgType>(reply->type)) {
      case service::MsgType::kCampaignAccepted: {
        const auto accepted = service::parse_campaign_accepted(*reply);
        if (!accepted.has_value()) {
          fail(daemon, "worker phase: malformed CampaignAccepted");
        }
        return accepted->job;
      }
      case service::MsgType::kCampaignProgress:
      case service::MsgType::kCampaignDone:
        break;  // earlier job's stream traffic
      default:
        fail(daemon, "worker phase: unexpected reply type %u to submit",
             reply->type);
    }
  }
  fail(daemon, "worker phase: ack for seed %llu never arrived",
       static_cast<unsigned long long>(seed));
}

/// One long-lived daemon, `workers` remote ftb_workerd processes, and at
/// least `incidents` random SIGKILL / SIGSTOP+SIGCONT / net-fault strikes
/// against them while campaigns run.  Afterwards every acked job must be
/// terminal-done, every journal must hold exactly its batch of unique
/// records, and both the journal and the published boundary must be
/// byte-identical to a local-only run of the same seed.
void run_worker_chaos(const std::string& served, const std::string& workerd,
                      const std::string& store_dir, int workers, int incidents,
                      std::uint64_t batch, std::uint64_t seed) {
  fs::remove_all(store_dir);
  fs::create_directories(store_dir);
  std::mt19937_64 rng(seed * 7919 + 17);

  // Short lease so a SIGSTOPped worker forfeits its chunks within one
  // incident's dwell time; modest straggler timeout so degraded (net-fault)
  // workers get speculatively second-sourced.
  auto spawned = spawn_daemon(served, store_dir, /*chaos_spec=*/{},
                              {"--lease-timeout-ms", "700",
                               "--straggler-ms", "6000"});
  if (!spawned.has_value()) {
    fail(nullptr, "worker phase: daemon failed to start listening");
  }
  Daemon daemon = *spawned;

  const auto chaos_spec_for = [&](int index) {
    return "seed=" + std::to_string(seed + 100 + index) +
           ",short_io=0.08,eintr=0.05";
  };
  std::vector<WorkerProc> fleet;
  for (int i = 0; i < workers; ++i) {
    WorkerProc worker;
    worker.index = i;
    worker.chaotic = (i % 2) == 1;  // half the fleet starts degraded
    worker.pid = spawn_worker(workerd, daemon.port, i,
                              worker.chaotic ? chaos_spec_for(i) : "");
    if (worker.pid < 0) fail(&daemon, "worker phase: cannot spawn worker %d", i);
    fleet.push_back(worker);
  }

  net::ClientOptions copts;
  copts.port = daemon.port;
  copts.recv_timeout_ms = 15000;
  net::Client stats_client(copts);

  const auto completed_and_failed = [&]() -> std::pair<std::uint64_t, std::uint64_t> {
    std::string error;
    const auto stats = stats_client.call(service::make_stats(), &error);
    if (!stats.has_value()) return {0, 0};
    const auto ok = service::parse_stats_ok(*stats);
    if (!ok.has_value()) return {0, 0};
    return {json_counter(ok->metrics_json, "jobs.completed").value_or(0),
            json_counter(ok->metrics_json, "jobs.failed").value_or(0)};
  };

  std::vector<std::uint64_t> seeds;
  std::set<std::uint64_t> acked_jobs;
  std::uint64_t next_seed = 1;
  int struck = 0, kills = 0, stops = 0, net_faults = 0;
  while (struck < incidents) {
    // Keep a few campaigns in flight so every strike lands mid-job.
    const auto [completed, failed] = completed_and_failed();
    if (failed > 0) {
      fail(&daemon, "worker phase: %llu jobs failed under worker chaos",
           static_cast<unsigned long long>(failed));
    }
    while (seeds.size() < completed + 3) {
      acked_jobs.insert(submit_worker_job(copts, next_seed, batch, &daemon));
      seeds.push_back(next_seed);
      ++next_seed;
    }

    WorkerProc& victim = fleet[rng() % fleet.size()];
    switch (rng() % 3) {
      case 0: {  // SIGKILL mid-lease, clean respawn
        kill_worker(victim);
        victim.chaotic = false;
        victim.pid = spawn_worker(workerd, daemon.port, victim.index, "");
        ++kills;
        break;
      }
      case 1: {  // SIGSTOP past the lease TTL, then SIGCONT
        ::kill(victim.pid, SIGSTOP);
        ::usleep(1100 * 1000);  // > --lease-timeout-ms 700
        ::kill(victim.pid, SIGCONT);
        ++stops;
        break;
      }
      default: {  // sever the socket and come back with a degraded network
        kill_worker(victim);
        victim.chaotic = true;
        victim.pid =
            spawn_worker(workerd, daemon.port, victim.index,
                         chaos_spec_for(victim.index + struck * 100));
        ++net_faults;
        break;
      }
    }
    if (victim.pid < 0) {
      fail(&daemon, "worker phase: cannot respawn worker %d", victim.index);
    }
    ++struck;
    ::usleep(static_cast<useconds_t>((120 + rng() % 280) * 1000));
  }

  // Every submitted campaign must finish despite the strikes.
  bool drained = false;
  for (int waited_ms = 0; waited_ms < 300000; waited_ms += 250) {
    const auto [completed, failed] = completed_and_failed();
    if (failed > 0) {
      fail(&daemon, "worker phase: %llu jobs failed during drain",
           static_cast<unsigned long long>(failed));
    }
    if (completed >= seeds.size()) {
      drained = true;
      break;
    }
    ::usleep(250 * 1000);
  }
  if (!drained) {
    fail(&daemon, "worker phase: %zu jobs did not finish in time",
         seeds.size());
  }

  for (WorkerProc& worker : fleet) kill_worker(worker);
  if (!stop_graceful(daemon)) {
    fail(nullptr, "worker phase: daemon did not drain cleanly on SIGTERM");
  }

  // Audit 1: the ledger agrees nothing acked was lost.
  const auto replay =
      service::JobLedger::replay_file(store_dir + "/jobs.ledger");
  if (!replay.pending.empty()) {
    fail(nullptr, "worker phase: %zu jobs still pending after drain",
         replay.pending.size());
  }
  std::set<std::uint64_t> done_jobs;
  for (const auto& job : replay.terminal_jobs) {
    if (job.state != service::JobState::kDone) {
      fail(nullptr, "worker phase: job %llu ended %s (%s)",
           static_cast<unsigned long long>(job.id),
           service::to_string(job.state), job.note.c_str());
    }
    done_jobs.insert(job.id);
  }
  for (const std::uint64_t id : acked_jobs) {
    if (done_jobs.count(id) == 0) {
      fail(nullptr, "worker phase: acked job %llu lost",
           static_cast<unsigned long long>(id));
    }
  }
  audit_store_files(store_dir, nullptr);

  // Audit 2: every journal holds exactly its batch, once each, and both
  // journal and boundary bytes match a local-only run of the same seed.
  const fi::ProgramPtr program =
      kernels::make_program("daxpy", kernels::Preset::kTiny);
  const fi::GoldenRun golden = fi::run_golden(*program);
  for (const std::uint64_t job_seed : seeds) {
    const std::string key = key_for_seed(job_seed);
    const auto journal_bytes = read_file(store_dir + "/" + key + ".clog");
    if (!journal_bytes.has_value()) {
      fail(nullptr, "worker phase: journal for %s missing", key.c_str());
    }
    util::Rng sample_rng(job_seed);
    const auto ids =
        campaign::sample_uniform(sample_rng, golden.sample_space_size(), batch);
    campaign::CheckpointOptions local;
    local.path = store_dir + "/worker_reference.clog";
    local.flush_every = 16;
    const auto reference =
        campaign::run_campaign_checkpointed(*program, golden, ids, local);
    fs::remove(local.path);
    std::set<std::uint64_t> unique_ids;
    for (const auto& record : reference.log.records()) {
      unique_ids.insert(record.id);
    }
    const auto distributed =
        campaign::CampaignLog::load(store_dir + "/" + key + ".clog");
    if (!distributed.has_value()) {
      fail(nullptr, "worker phase: journal for %s unreadable", key.c_str());
    }
    std::set<std::uint64_t> seen;
    for (const auto& record : distributed->records()) {
      if (!seen.insert(record.id).second) {
        fail(nullptr, "worker phase: duplicate record %llu in %s",
             static_cast<unsigned long long>(record.id), key.c_str());
      }
    }
    if (seen != unique_ids) {
      fail(nullptr, "worker phase: %s record set diverged from local run",
           key.c_str());
    }
    if (*journal_bytes != reference.log.serialize()) {
      fail(nullptr, "worker phase: %s journal bytes diverged from local run",
           key.c_str());
    }
    const auto boundary_bytes = read_file(store_dir + "/" + key + ".boundary");
    if (!boundary_bytes.has_value()) {
      fail(nullptr, "worker phase: boundary for %s missing", key.c_str());
    }
    const boundary::FaultToleranceBoundary built = campaign::boundary_from_log(
        *program, golden, reference.log, {true, 32}, util::default_pool());
    if (*boundary_bytes !=
        boundary::serialize(built, program->config_key())) {
      fail(nullptr, "worker phase: %s boundary bytes diverged from local run",
           key.c_str());
    }
  }

  std::printf(
      "worker chaos: %d incidents (%d SIGKILL, %d SIGSTOP, %d net-fault) "
      "across %d workers; %zu jobs done, 0 lost, 0 duplicate records, "
      "journals and boundaries byte-identical to local runs\n",
      struck, kills, stops, net_faults, workers, seeds.size());
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("served", "path to the ftb_served binary (default ./ftb_served)");
  cli.describe("kills", "SIGKILL rounds to run (default 50)");
  cli.describe("seed", "harness RNG seed (default 1)");
  cli.describe("store-dir",
               "store directory, wiped at start (default chaos_store)");
  cli.describe("keys", "distinct campaign seeds to cycle through (default 6)");
  cli.describe("batch", "experiments per campaign job (default 400)");
  cli.describe("max-delay-ms",
               "max random delay between submit and SIGKILL (default 400)");
  cli.describe("workers",
               "remote ftb_workerd processes for the worker-chaos phase "
               "(default 0 = skip the phase)");
  cli.describe("workerd",
               "path to the ftb_workerd binary (default ./ftb_workerd)");
  cli.describe("worker-incidents",
               "random SIGKILL/SIGSTOP/net-fault strikes against workers "
               "(default 20)");
  cli.describe("worker-batch",
               "experiments per campaign in the worker phase (default 400)");
  if (cli.get_bool("help")) {
    cli.print_help("chaos_served: kill/recover harness for ftb_served");
    return 0;
  }
  if (!net::net_supported()) {
    std::fprintf(stderr, "skipped: this platform has no socket support\n");
    return 0;
  }

  const std::string served = cli.get("served", "./ftb_served");
  const int kills = static_cast<int>(cli.get_int("kills", 50));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string store_dir = cli.get("store-dir", "chaos_store");
  const std::uint64_t keys = static_cast<std::uint64_t>(cli.get_int("keys", 6));
  const std::uint64_t batch =
      static_cast<std::uint64_t>(cli.get_int("batch", 400));
  const std::uint64_t max_delay_ms =
      static_cast<std::uint64_t>(cli.get_int("max-delay-ms", 400));
  const int workers = static_cast<int>(cli.get_int("workers", 0));
  const std::string workerd = cli.get("workerd", "./ftb_workerd");
  const int worker_incidents =
      static_cast<int>(cli.get_int("worker-incidents", 20));
  const std::uint64_t worker_batch =
      static_cast<std::uint64_t>(cli.get_int("worker-batch", 400));

  std::signal(SIGPIPE, SIG_IGN);
  fs::remove_all(store_dir);
  fs::create_directories(store_dir);
  const std::string ledger_path = store_dir + "/jobs.ledger";

  std::mt19937_64 rng(seed);
  std::set<std::string> acked_keys;        // every key the server said yes to
  std::set<std::uint64_t> prev_pending;    // ledger backlog entering the round
  std::uint64_t submit_counter = 0;
  std::uint64_t total_acked = 0, total_busy = 0, total_lost_submits = 0;

  for (int round = 0; round < kills; ++round) {
    // Three in four rounds run with network faults injected; the rest are
    // clean so recovery also gets exercised without interference.
    std::string chaos_spec;
    if (round % 4 != 3) {
      chaos_spec = "seed=" + std::to_string(seed + round) +
                   ",short_io=0.25,eintr=0.15";
    }
    auto spawned = spawn_daemon(served, store_dir, chaos_spec);
    if (!spawned.has_value()) {
      fail(nullptr, "round %d: daemon failed to start listening", round);
    }
    Daemon daemon = *spawned;

    // Submit one or two jobs, recording only what the server actually acked.
    std::set<std::uint64_t> acked_this_round;
    const int submissions = 1 + static_cast<int>(rng() % 2);
    {
      net::ClientOptions copts;
      copts.port = daemon.port;
      copts.recv_timeout_ms = 15000;
      net::Client client(copts);
      for (int j = 0; j < submissions; ++j) {
        service::SubmitCampaignReq req;
        req.kernel = "daxpy";
        req.preset = "tiny";
        req.seed = 1 + (submit_counter % keys);
        req.batch = batch;
        req.workers = 1;
        req.flush_every = 16;
        ++submit_counter;
        std::string error;
        if (!client.connect(&error) ||
            !client.send(service::make_submit_campaign(req), &error)) {
          ++total_lost_submits;
          break;
        }
        // The campaign stream interleaves progress frames from earlier jobs
        // on this connection; skip them until this submit's verdict.
        bool answered = false;
        for (int hops = 0; hops < 64 && !answered; ++hops) {
          const auto reply = client.recv(&error, 15000);
          if (!reply.has_value()) {
            ++total_lost_submits;
            break;
          }
          switch (static_cast<service::MsgType>(reply->type)) {
            case service::MsgType::kCampaignAccepted: {
              const auto accepted = service::parse_campaign_accepted(*reply);
              if (!accepted.has_value()) {
                fail(&daemon, "round %d: malformed CampaignAccepted", round);
              }
              acked_this_round.insert(accepted->job);
              acked_keys.insert(key_for_seed(req.seed));
              ++total_acked;
              answered = true;
              break;
            }
            case service::MsgType::kBusy:
              ++total_busy;
              answered = true;
              break;
            case service::MsgType::kError: {
              const auto err = service::parse_error(*reply);
              fail(&daemon, "round %d: submission rejected: %s", round,
                   err.has_value() ? err->message.c_str() : "unparseable");
            }
            case service::MsgType::kCampaignProgress:
            case service::MsgType::kCampaignDone:
              break;  // stream traffic from a previous job; keep reading
            default:
              fail(&daemon, "round %d: unexpected reply type %u", round,
                   reply->type);
          }
        }
        if (!answered) break;
      }
    }

    if (max_delay_ms > 0) {
      ::usleep(static_cast<useconds_t>((rng() % max_delay_ms) * 1000));
    }
    kill_hard(daemon);

    // Post-mortem: nothing acked may be lost, nothing torn may parse.
    audit_store_files(store_dir, nullptr);
    const auto replay = service::JobLedger::replay_file(ledger_path);
    std::set<std::uint64_t> present;
    for (const auto& job : replay.pending) present.insert(job.id);
    for (const auto& job : replay.terminal_jobs) present.insert(job.id);
    for (const std::uint64_t id : acked_this_round) {
      if (present.count(id) == 0) {
        fail(nullptr, "round %d: acked job %llu missing from the ledger",
             round, static_cast<unsigned long long>(id));
      }
    }
    for (const std::uint64_t id : prev_pending) {
      if (present.count(id) == 0) {
        fail(nullptr,
             "round %d: previously pending job %llu vanished from the ledger",
             round, static_cast<unsigned long long>(id));
      }
    }
    prev_pending.clear();
    for (const auto& job : replay.pending) prev_pending.insert(job.id);
    std::fprintf(stderr,
                 "round %d/%d: %s, %zu acked, %zu pending after kill\n",
                 round + 1, kills, chaos_spec.empty() ? "clean" : "chaotic",
                 acked_this_round.size(), prev_pending.size());
  }

  // Final clean incarnation: every interrupted job resumes and finishes,
  // every acked key becomes queryable, and a graceful drain empties the
  // backlog.
  const std::size_t backlog = prev_pending.size();
  auto spawned = spawn_daemon(served, store_dir, /*chaos_spec=*/{});
  if (!spawned.has_value()) {
    fail(nullptr, "recovery daemon failed to start listening");
  }
  Daemon daemon = *spawned;
  {
    net::ClientOptions copts;
    copts.port = daemon.port;
    copts.recv_timeout_ms = 15000;
    net::Client client(copts);
    std::string error;
    bool recovered = false;
    for (int waited_ms = 0; waited_ms < 300000; waited_ms += 250) {
      const auto stats = client.call(service::make_stats(), &error);
      if (stats.has_value()) {
        if (const auto ok = service::parse_stats_ok(*stats)) {
          const std::uint64_t completed =
              json_counter(ok->metrics_json, "jobs.completed").value_or(0);
          const std::uint64_t failed =
              json_counter(ok->metrics_json, "jobs.failed").value_or(0);
          if (failed > 0) {
            fail(&daemon, "recovery: %llu resumed jobs failed",
                 static_cast<unsigned long long>(failed));
          }
          if (completed >= backlog) {
            recovered = true;
            break;
          }
        }
      }
      ::usleep(250 * 1000);
    }
    if (!recovered) {
      fail(&daemon, "recovery: %zu interrupted jobs did not finish in time",
           backlog);
    }
    const auto listing = client.call(service::make_list_boundaries(), &error);
    if (!listing.has_value()) {
      fail(&daemon, "recovery: list failed: %s", error.c_str());
    }
    const auto entries = service::parse_boundary_list_ok(*listing);
    if (!entries.has_value()) {
      fail(&daemon, "recovery: malformed boundary list");
    }
    std::set<std::string> published;
    for (const auto& info : entries->entries) published.insert(info.key);
    for (const std::string& key : acked_keys) {
      if (published.count(key) == 0) {
        fail(&daemon, "recovery: acked key %s was never published",
             key.c_str());
      }
    }
  }
  if (!stop_graceful(daemon)) {
    fail(nullptr, "recovery daemon did not drain cleanly on SIGTERM");
  }
  const auto final_replay = service::JobLedger::replay_file(ledger_path);
  if (!final_replay.pending.empty()) {
    fail(nullptr, "after the final drain, %zu jobs are still pending",
         final_replay.pending.size());
  }
  for (const auto& job : final_replay.terminal_jobs) {
    if (job.state != service::JobState::kDone) {
      fail(nullptr, "job %llu ended %s (%s)",
           static_cast<unsigned long long>(job.id),
           service::to_string(job.state), job.note.c_str());
    }
  }

  // Byte-identity: the seed-1 journal, finished across however many
  // kill/resume cycles it lived through, must equal an uninterrupted
  // reference campaign -- the same check the drain test makes in-process.
  const std::string journal = store_dir + "/" + key_for_seed(1) + ".clog";
  if (fs::exists(journal)) {
    const fi::ProgramPtr program =
        kernels::make_program("daxpy", kernels::Preset::kTiny);
    const fi::GoldenRun golden = fi::run_golden(*program);
    util::Rng sample_rng(1);
    const auto ids =
        campaign::sample_uniform(sample_rng, golden.sample_space_size(), batch);
    campaign::CheckpointOptions resume;
    resume.path = journal;
    resume.flush_every = 16;
    const auto resumed =
        campaign::run_campaign_checkpointed(*program, golden, ids, resume);
    campaign::CheckpointOptions fresh;
    fresh.path = store_dir + "/chaos_reference.clog";
    fresh.flush_every = 16;
    const auto reference =
        campaign::run_campaign_checkpointed(*program, golden, ids, fresh);
    if (resumed.log.serialize() != reference.log.serialize()) {
      fail(nullptr, "resumed journal %s diverged from the reference bytes",
           journal.c_str());
    }
    fs::remove(fresh.path);
  }

  std::printf(
      "chaos_served: %d kills survived; %llu acked (%llu busy, %llu lost "
      "submits), %zu keys published, backlog drained, journal byte-identical\n",
      kills, static_cast<unsigned long long>(total_acked),
      static_cast<unsigned long long>(total_busy),
      static_cast<unsigned long long>(total_lost_submits), acked_keys.size());

  // Distributed phase: the same invariants with the campaign plane fanned
  // out to remote workers under fire.
  if (workers > 0) {
    run_worker_chaos(served, workerd, store_dir + "/workers", workers,
                     worker_incidents, worker_batch, seed);
  }
  return 0;
}
