// chaos_served: crash-recovery harness for ftb_served.
//
// Repeatedly spawns the real daemon binary, submits campaign jobs, waits a
// random (seeded) delay, and SIGKILLs the process -- most rounds with the
// FTB_CHAOS syscall-fault layer armed so short reads/writes and EINTR hit
// the network and journal paths while the axe falls.  After every kill it
// audits the store directory:
//
//   * no acked job is lost: every CampaignAccepted job id, plus every job
//     that was pending before the incarnation started, appears in the job
//     ledger's replay (pending or terminal);
//   * no torn artifact is loadable as valid: every *.boundary and *.clog
//     present parses cleanly (the atomic tmp+rename discipline means a file
//     either exists whole or not at all);
//   * the ledger replay itself never fails catastrophically (a torn tail is
//     reported and dropped, never trusted).
//
// A final clean incarnation then proves recovery end-to-end: all interrupted
// jobs resume from their journals and finish, every acked key is published
// and queryable, a graceful drain leaves the ledger empty of pending work,
// and the seed-1 journal is byte-identical to an uninterrupted reference
// campaign -- the same convergence contract `ftb_analyze campaign --resume`
// makes.
//
// Exit 0 when every invariant held across all kills; exit 1 with a FAIL
// line otherwise.  Used by the service_chaos_smoke ctest (few kills) and
// the CI chaos job (50 kills, the acceptance bar).
#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "boundary/serialize.h"
#include "campaign/checkpoint.h"
#include "campaign/log.h"
#include "campaign/sampler.h"
#include "kernels/registry.h"
#include "net/client.h"
#include "net/socket.h"
#include "service/ledger.h"
#include "service/protocol.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

namespace fs = std::filesystem;
using namespace ftb;

struct Daemon {
  pid_t pid = -1;
  int stdout_fd = -1;
  std::uint16_t port = 0;
};

[[noreturn]] void fail(const Daemon* daemon, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "FAIL: ");
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
  if (daemon != nullptr && daemon->pid > 0) {
    ::kill(daemon->pid, SIGKILL);
    ::waitpid(daemon->pid, nullptr, 0);
  }
  std::exit(1);
}

/// Forks and execs the daemon, scraping the ephemeral port off its stdout.
/// `chaos_spec` non-empty arms FTB_CHAOS in the child's environment.
std::optional<Daemon> spawn_daemon(const std::string& served,
                                   const std::string& store_dir,
                                   const std::string& chaos_spec) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return std::nullopt;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return std::nullopt;
  }
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    if (chaos_spec.empty()) {
      ::unsetenv("FTB_CHAOS");
    } else {
      ::setenv("FTB_CHAOS", chaos_spec.c_str(), 1);
    }
    ::execl(served.c_str(), served.c_str(), "--port", "0", "--store-dir",
            store_dir.c_str(), "--queue", "64", static_cast<char*>(nullptr));
    std::fprintf(stderr, "exec %s failed: %s\n", served.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  ::close(pipe_fds[1]);

  // Scrape "listening on 127.0.0.1:<port>" with a startup deadline.
  Daemon daemon;
  daemon.pid = pid;
  daemon.stdout_fd = pipe_fds[0];
  std::string buffer;
  const char* needle = "listening on 127.0.0.1:";
  for (int waited_ms = 0; waited_ms < 30000;) {
    struct pollfd pfd{daemon.stdout_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    waited_ms += 100;
    if (ready <= 0) continue;
    char chunk[256];
    const ssize_t got = ::read(daemon.stdout_fd, chunk, sizeof(chunk));
    if (got <= 0) break;  // EOF: the child died before listening
    buffer.append(chunk, static_cast<std::size_t>(got));
    const auto pos = buffer.find(needle);
    if (pos != std::string::npos &&
        buffer.find('\n', pos) != std::string::npos) {
      daemon.port = static_cast<std::uint16_t>(
          std::strtoul(buffer.c_str() + pos + std::strlen(needle), nullptr,
                       10));
      return daemon;
    }
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  ::close(daemon.stdout_fd);
  return std::nullopt;
}

void kill_hard(Daemon& daemon) {
  ::kill(daemon.pid, SIGKILL);
  ::waitpid(daemon.pid, nullptr, 0);
  ::close(daemon.stdout_fd);
  daemon.pid = -1;
}

/// SIGTERM + bounded wait; true when the daemon drained and exited 0.
bool stop_graceful(Daemon& daemon) {
  ::kill(daemon.pid, SIGTERM);
  int status = 0;
  for (int waited_ms = 0; waited_ms < 120000; waited_ms += 50) {
    const pid_t done = ::waitpid(daemon.pid, &status, WNOHANG);
    if (done == daemon.pid) {
      ::close(daemon.stdout_fd);
      daemon.pid = -1;
      return WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }
    ::usleep(50 * 1000);
  }
  kill_hard(daemon);
  return false;
}

/// Crude counter extraction from the ftb.telemetry.metrics/1 JSON.
std::optional<std::uint64_t> json_counter(const std::string& json,
                                          const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

/// Validates that every artifact the store holds parses cleanly.  A crash
/// can leave *.tmp staging files behind (harmless, ignored); it must never
/// leave a torn *.boundary or *.clog, because those are published by
/// atomic rename only.
void audit_store_files(const std::string& store_dir, const Daemon* daemon) {
  for (const auto& entry : fs::directory_iterator(store_dir)) {
    const std::string path = entry.path().string();
    const std::string ext = entry.path().extension().string();
    std::string error;
    if (ext == ".boundary") {
      if (!boundary::load_artifact_from_file(path, {}, &error).has_value()) {
        fail(daemon, "torn boundary artifact survived a kill: %s (%s)",
             path.c_str(), error.c_str());
      }
    } else if (ext == ".clog") {
      if (!campaign::CampaignLog::load(path, &error).has_value()) {
        fail(daemon, "torn campaign journal survived a kill: %s (%s)",
             path.c_str(), error.c_str());
      }
    }
  }
}

std::string key_for_seed(std::uint64_t seed) {
  return "daxpy@tiny@" + std::to_string(seed);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  cli.describe("served", "path to the ftb_served binary (default ./ftb_served)");
  cli.describe("kills", "SIGKILL rounds to run (default 50)");
  cli.describe("seed", "harness RNG seed (default 1)");
  cli.describe("store-dir",
               "store directory, wiped at start (default chaos_store)");
  cli.describe("keys", "distinct campaign seeds to cycle through (default 6)");
  cli.describe("batch", "experiments per campaign job (default 400)");
  cli.describe("max-delay-ms",
               "max random delay between submit and SIGKILL (default 400)");
  if (cli.get_bool("help")) {
    cli.print_help("chaos_served: kill/recover harness for ftb_served");
    return 0;
  }
  if (!net::net_supported()) {
    std::fprintf(stderr, "skipped: this platform has no socket support\n");
    return 0;
  }

  const std::string served = cli.get("served", "./ftb_served");
  const int kills = static_cast<int>(cli.get_int("kills", 50));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string store_dir = cli.get("store-dir", "chaos_store");
  const std::uint64_t keys = static_cast<std::uint64_t>(cli.get_int("keys", 6));
  const std::uint64_t batch =
      static_cast<std::uint64_t>(cli.get_int("batch", 400));
  const std::uint64_t max_delay_ms =
      static_cast<std::uint64_t>(cli.get_int("max-delay-ms", 400));

  std::signal(SIGPIPE, SIG_IGN);
  fs::remove_all(store_dir);
  fs::create_directories(store_dir);
  const std::string ledger_path = store_dir + "/jobs.ledger";

  std::mt19937_64 rng(seed);
  std::set<std::string> acked_keys;        // every key the server said yes to
  std::set<std::uint64_t> prev_pending;    // ledger backlog entering the round
  std::uint64_t submit_counter = 0;
  std::uint64_t total_acked = 0, total_busy = 0, total_lost_submits = 0;

  for (int round = 0; round < kills; ++round) {
    // Three in four rounds run with network faults injected; the rest are
    // clean so recovery also gets exercised without interference.
    std::string chaos_spec;
    if (round % 4 != 3) {
      chaos_spec = "seed=" + std::to_string(seed + round) +
                   ",short_io=0.25,eintr=0.15";
    }
    auto spawned = spawn_daemon(served, store_dir, chaos_spec);
    if (!spawned.has_value()) {
      fail(nullptr, "round %d: daemon failed to start listening", round);
    }
    Daemon daemon = *spawned;

    // Submit one or two jobs, recording only what the server actually acked.
    std::set<std::uint64_t> acked_this_round;
    const int submissions = 1 + static_cast<int>(rng() % 2);
    {
      net::ClientOptions copts;
      copts.port = daemon.port;
      copts.recv_timeout_ms = 15000;
      net::Client client(copts);
      for (int j = 0; j < submissions; ++j) {
        service::SubmitCampaignReq req;
        req.kernel = "daxpy";
        req.preset = "tiny";
        req.seed = 1 + (submit_counter % keys);
        req.batch = batch;
        req.workers = 1;
        req.flush_every = 16;
        ++submit_counter;
        std::string error;
        if (!client.connect(&error) ||
            !client.send(service::make_submit_campaign(req), &error)) {
          ++total_lost_submits;
          break;
        }
        // The campaign stream interleaves progress frames from earlier jobs
        // on this connection; skip them until this submit's verdict.
        bool answered = false;
        for (int hops = 0; hops < 64 && !answered; ++hops) {
          const auto reply = client.recv(&error, 15000);
          if (!reply.has_value()) {
            ++total_lost_submits;
            break;
          }
          switch (static_cast<service::MsgType>(reply->type)) {
            case service::MsgType::kCampaignAccepted: {
              const auto accepted = service::parse_campaign_accepted(*reply);
              if (!accepted.has_value()) {
                fail(&daemon, "round %d: malformed CampaignAccepted", round);
              }
              acked_this_round.insert(accepted->job);
              acked_keys.insert(key_for_seed(req.seed));
              ++total_acked;
              answered = true;
              break;
            }
            case service::MsgType::kBusy:
              ++total_busy;
              answered = true;
              break;
            case service::MsgType::kError: {
              const auto err = service::parse_error(*reply);
              fail(&daemon, "round %d: submission rejected: %s", round,
                   err.has_value() ? err->message.c_str() : "unparseable");
            }
            case service::MsgType::kCampaignProgress:
            case service::MsgType::kCampaignDone:
              break;  // stream traffic from a previous job; keep reading
            default:
              fail(&daemon, "round %d: unexpected reply type %u", round,
                   reply->type);
          }
        }
        if (!answered) break;
      }
    }

    if (max_delay_ms > 0) {
      ::usleep(static_cast<useconds_t>((rng() % max_delay_ms) * 1000));
    }
    kill_hard(daemon);

    // Post-mortem: nothing acked may be lost, nothing torn may parse.
    audit_store_files(store_dir, nullptr);
    const auto replay = service::JobLedger::replay_file(ledger_path);
    std::set<std::uint64_t> present;
    for (const auto& job : replay.pending) present.insert(job.id);
    for (const auto& job : replay.terminal_jobs) present.insert(job.id);
    for (const std::uint64_t id : acked_this_round) {
      if (present.count(id) == 0) {
        fail(nullptr, "round %d: acked job %llu missing from the ledger",
             round, static_cast<unsigned long long>(id));
      }
    }
    for (const std::uint64_t id : prev_pending) {
      if (present.count(id) == 0) {
        fail(nullptr,
             "round %d: previously pending job %llu vanished from the ledger",
             round, static_cast<unsigned long long>(id));
      }
    }
    prev_pending.clear();
    for (const auto& job : replay.pending) prev_pending.insert(job.id);
    std::fprintf(stderr,
                 "round %d/%d: %s, %zu acked, %zu pending after kill\n",
                 round + 1, kills, chaos_spec.empty() ? "clean" : "chaotic",
                 acked_this_round.size(), prev_pending.size());
  }

  // Final clean incarnation: every interrupted job resumes and finishes,
  // every acked key becomes queryable, and a graceful drain empties the
  // backlog.
  const std::size_t backlog = prev_pending.size();
  auto spawned = spawn_daemon(served, store_dir, /*chaos_spec=*/{});
  if (!spawned.has_value()) {
    fail(nullptr, "recovery daemon failed to start listening");
  }
  Daemon daemon = *spawned;
  {
    net::ClientOptions copts;
    copts.port = daemon.port;
    copts.recv_timeout_ms = 15000;
    net::Client client(copts);
    std::string error;
    bool recovered = false;
    for (int waited_ms = 0; waited_ms < 300000; waited_ms += 250) {
      const auto stats = client.call(service::make_stats(), &error);
      if (stats.has_value()) {
        if (const auto ok = service::parse_stats_ok(*stats)) {
          const std::uint64_t completed =
              json_counter(ok->metrics_json, "jobs.completed").value_or(0);
          const std::uint64_t failed =
              json_counter(ok->metrics_json, "jobs.failed").value_or(0);
          if (failed > 0) {
            fail(&daemon, "recovery: %llu resumed jobs failed",
                 static_cast<unsigned long long>(failed));
          }
          if (completed >= backlog) {
            recovered = true;
            break;
          }
        }
      }
      ::usleep(250 * 1000);
    }
    if (!recovered) {
      fail(&daemon, "recovery: %zu interrupted jobs did not finish in time",
           backlog);
    }
    const auto listing = client.call(service::make_list_boundaries(), &error);
    if (!listing.has_value()) {
      fail(&daemon, "recovery: list failed: %s", error.c_str());
    }
    const auto entries = service::parse_boundary_list_ok(*listing);
    if (!entries.has_value()) {
      fail(&daemon, "recovery: malformed boundary list");
    }
    std::set<std::string> published;
    for (const auto& info : entries->entries) published.insert(info.key);
    for (const std::string& key : acked_keys) {
      if (published.count(key) == 0) {
        fail(&daemon, "recovery: acked key %s was never published",
             key.c_str());
      }
    }
  }
  if (!stop_graceful(daemon)) {
    fail(nullptr, "recovery daemon did not drain cleanly on SIGTERM");
  }
  const auto final_replay = service::JobLedger::replay_file(ledger_path);
  if (!final_replay.pending.empty()) {
    fail(nullptr, "after the final drain, %zu jobs are still pending",
         final_replay.pending.size());
  }
  for (const auto& job : final_replay.terminal_jobs) {
    if (job.state != service::JobState::kDone) {
      fail(nullptr, "job %llu ended %s (%s)",
           static_cast<unsigned long long>(job.id),
           service::to_string(job.state), job.note.c_str());
    }
  }

  // Byte-identity: the seed-1 journal, finished across however many
  // kill/resume cycles it lived through, must equal an uninterrupted
  // reference campaign -- the same check the drain test makes in-process.
  const std::string journal = store_dir + "/" + key_for_seed(1) + ".clog";
  if (fs::exists(journal)) {
    const fi::ProgramPtr program =
        kernels::make_program("daxpy", kernels::Preset::kTiny);
    const fi::GoldenRun golden = fi::run_golden(*program);
    util::Rng sample_rng(1);
    const auto ids =
        campaign::sample_uniform(sample_rng, golden.sample_space_size(), batch);
    campaign::CheckpointOptions resume;
    resume.path = journal;
    resume.flush_every = 16;
    const auto resumed =
        campaign::run_campaign_checkpointed(*program, golden, ids, resume);
    campaign::CheckpointOptions fresh;
    fresh.path = store_dir + "/chaos_reference.clog";
    fresh.flush_every = 16;
    const auto reference =
        campaign::run_campaign_checkpointed(*program, golden, ids, fresh);
    if (resumed.log.serialize() != reference.log.serialize()) {
      fail(nullptr, "resumed journal %s diverged from the reference bytes",
           journal.c_str());
    }
    fs::remove(fresh.path);
  }

  std::printf(
      "chaos_served: %d kills survived; %llu acked (%llu busy, %llu lost "
      "submits), %zu keys published, backlog drained, journal byte-identical\n",
      kills, static_cast<unsigned long long>(total_acked),
      static_cast<unsigned long long>(total_busy),
      static_cast<unsigned long long>(total_lost_submits), acked_keys.size());
  return 0;
}
