// ftb_client: command-line client for ftb_served.
//
// Query plane:
//   ftb_client ping      --port N
//   ftb_client list      --port N
//   ftb_client predict   --port N --key cg@tiny@1 --site 120 --bit 52
//   ftb_client site      --port N --key cg@tiny@1 --site 120
//   ftb_client report    --port N --key cg@tiny@1
//   ftb_client stats     --port N            (prints the metrics JSON)
//   ftb_client shutdown  --port N            (asks the server to drain)
//
// Campaign plane:
//   ftb_client submit --port N --kernel daxpy --preset tiny --seed 1 \
//                     --batch 500 [--workers 2] [--no-wait]
//
// submit streams CampaignProgress lines until CampaignDone unless
// --no-wait, in which case it returns after CampaignAccepted (the job
// still runs; its boundary is published server-side).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "fi/outcome.h"
#include "net/client.h"
#include "service/protocol.h"
#include "util/cli.h"
#include "util/retry.h"

namespace {

using namespace ftb;

/// Backoff policy for Busy replies; --busy-retries sets max_retries.
util::RetryOptions g_busy_retry;

int fail(const std::string& what) {
  std::fprintf(stderr, "error: %s\n", what.c_str());
  return 1;
}

/// Prints the server's reply when it is not the expected success type.
/// Busy (load shed; retries already exhausted) exits 3 so scripts can tell
/// "try later" from a real error's exit 1.
int fail_reply(const net::Frame& frame) {
  if (const auto busy = service::parse_busy(frame)) {
    std::fprintf(stderr, "server busy: %s (retry after %llu ms)\n",
                 busy->message.c_str(),
                 static_cast<unsigned long long>(busy->retry_after_ms));
    return 3;
  }
  if (const auto error = service::parse_error(frame)) {
    return fail(error->message);
  }
  return fail("unexpected reply type " + std::to_string(frame.type));
}

/// call() with jittered backoff on Busy replies, honouring the server's
/// retry-after hint.  Returns the final reply (possibly still Busy).
std::optional<net::Frame> call_retry(net::Client& client,
                                     const net::Frame& request,
                                     std::string* error) {
  return client.call_backoff(
      request,
      [](const net::Frame& reply) -> std::optional<std::uint64_t> {
        if (const auto busy = service::parse_busy(reply)) {
          return busy->retry_after_ms;
        }
        return std::nullopt;
      },
      g_busy_retry, error);
}

const char* outcome_name(std::uint32_t outcome) {
  switch (static_cast<fi::Outcome>(outcome)) {
    case fi::Outcome::kMasked: return "Masked";
    case fi::Outcome::kSdc: return "SDC";
    case fi::Outcome::kCrash: return "Crash";
    case fi::Outcome::kHang: return "Hang";
    case fi::Outcome::kDetected: return "Detected";
  }
  return "?";
}

int cmd_ping(net::Client& client) {
  std::string error;
  const auto reply = call_retry(client, service::make_ping(), &error);
  if (!reply.has_value()) return fail(error);
  if (reply->type != static_cast<std::uint32_t>(service::MsgType::kPong)) {
    return fail_reply(*reply);
  }
  std::printf("pong\n");
  return 0;
}

int cmd_list(net::Client& client) {
  std::string error;
  const auto reply = call_retry(client, service::make_list_boundaries(), &error);
  if (!reply.has_value()) return fail(error);
  const auto list = service::parse_boundary_list_ok(*reply, &error);
  if (!list.has_value()) return fail_reply(*reply);
  for (const service::BoundaryInfo& info : list->entries) {
    std::printf("%-24s %8llu sites %8llu informed  %s\n", info.key.c_str(),
                static_cast<unsigned long long>(info.sites),
                static_cast<unsigned long long>(info.informed_sites),
                info.config_key.c_str());
  }
  std::printf("%zu boundaries\n", list->entries.size());
  return 0;
}

int cmd_predict(net::Client& client, const util::Cli& cli) {
  service::PredictFlipReq req;
  req.key = cli.get("key");
  req.site = static_cast<std::uint64_t>(cli.get_int("site", 0));
  req.bit = static_cast<std::uint32_t>(cli.get_int("bit", 0));
  if (req.key.empty()) return fail("--key is required");
  std::string error;
  const auto reply = call_retry(client, service::make_predict_flip(req), &error);
  if (!reply.has_value()) return fail(error);
  const auto ok = service::parse_predict_flip_ok(*reply, &error);
  if (!ok.has_value()) return fail_reply(*reply);
  std::printf("site %llu bit %u -> %s (threshold %.17g, injected error %.17g)\n",
              static_cast<unsigned long long>(req.site), req.bit,
              outcome_name(ok->outcome), ok->threshold, ok->injected_error);
  return 0;
}

int cmd_site(net::Client& client, const util::Cli& cli) {
  service::PredictSiteReq req;
  req.key = cli.get("key");
  req.site = static_cast<std::uint64_t>(cli.get_int("site", 0));
  if (req.key.empty()) return fail("--key is required");
  std::string error;
  const auto reply = call_retry(client, service::make_predict_site(req), &error);
  if (!reply.has_value()) return fail(error);
  const auto ok = service::parse_predict_site_ok(*reply, &error);
  if (!ok.has_value()) return fail_reply(*reply);
  std::printf("site %llu: masked %u / sdc %u / crash %u of 64 flips "
              "(sdc ratio %.4f, threshold %.17g, golden %.17g)\n",
              static_cast<unsigned long long>(req.site), ok->masked, ok->sdc,
              ok->crash, ok->sdc_ratio, ok->threshold, ok->golden_value);
  return 0;
}

int cmd_report(net::Client& client, const util::Cli& cli) {
  service::PhaseReportReq req;
  req.key = cli.get("key");
  if (req.key.empty()) return fail("--key is required");
  std::string error;
  const auto reply = call_retry(client, service::make_phase_report(req), &error);
  if (!reply.has_value()) return fail(error);
  const auto ok = service::parse_phase_report_ok(*reply, &error);
  if (!ok.has_value()) return fail_reply(*reply);
  for (const boundary::PhaseReport& row : ok->rows) {
    std::printf("%-20s [%8llu, %8llu)  pred-sdc %.4f  median-thr %.6g  "
                "informed %.4f",
                row.name.c_str(), static_cast<unsigned long long>(row.begin),
                static_cast<unsigned long long>(row.end),
                row.mean_predicted_sdc, row.median_threshold,
                row.informed_fraction);
    if (row.mean_detected_coverage.has_value()) {
      std::printf("  det-coverage %.4f", *row.mean_detected_coverage);
    }
    std::printf("\n");
  }
  std::printf("%zu phases\n", ok->rows.size());
  return 0;
}

int cmd_stats(net::Client& client) {
  std::string error;
  const auto reply = call_retry(client, service::make_stats(), &error);
  if (!reply.has_value()) return fail(error);
  const auto ok = service::parse_stats_ok(*reply, &error);
  if (!ok.has_value()) return fail_reply(*reply);
  std::printf("%s\n", ok->metrics_json.c_str());
  return 0;
}

int cmd_shutdown(net::Client& client) {
  std::string error;
  const auto reply = client.call(service::make_shutdown(), &error);
  if (!reply.has_value()) return fail(error);
  if (reply->type !=
      static_cast<std::uint32_t>(service::MsgType::kShutdownOk)) {
    return fail_reply(*reply);
  }
  std::printf("server draining\n");
  return 0;
}

int cmd_submit(net::Client& client, const util::Cli& cli) {
  service::SubmitCampaignReq req;
  req.kernel = cli.get("kernel");
  req.preset = cli.get("preset", "tiny");
  req.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  req.batch = static_cast<std::uint64_t>(cli.get_int("batch", 1000));
  req.workers = static_cast<std::uint32_t>(cli.get_int("workers", 2));
  req.flush_every =
      static_cast<std::uint32_t>(cli.get_int("flush-every", 512));
  req.timeout_ms =
      static_cast<std::uint32_t>(cli.get_int("timeout-ms", 2000));
  req.quarantine_after =
      static_cast<std::uint32_t>(cli.get_int("quarantine-after", 3));
  if (req.kernel.empty()) return fail("--kernel is required");

  std::string error;
  if (!client.connect(&error)) return fail(error);
  // Submit with retry-on-Busy: a full job queue answers Busy, and it drains
  // as jobs finish, so waiting out the server's hint usually succeeds.
  std::optional<net::Frame> accepted_frame;
  std::uint32_t backoff_ms = g_busy_retry.initial_backoff_ms;
  for (int attempt = 0;; ++attempt) {
    if (!client.send(service::make_submit_campaign(req), &error)) {
      return fail(error);
    }
    accepted_frame = client.recv(&error);
    if (!accepted_frame.has_value()) return fail(error);
    const auto busy = service::parse_busy(*accepted_frame);
    if (!busy.has_value()) break;
    if (attempt >= g_busy_retry.max_retries) {
      return fail_reply(*accepted_frame);  // still busy; exit 3
    }
    const std::uint64_t sleep_ms =
        std::max<std::uint64_t>(busy->retry_after_ms, backoff_ms);
    std::fprintf(stderr, "busy: %s; retrying in %llu ms\n",
                 busy->message.c_str(),
                 static_cast<unsigned long long>(sleep_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(std::uint64_t{backoff_ms} * 2, 60'000));
  }
  const auto accepted = service::parse_campaign_accepted(*accepted_frame);
  if (!accepted.has_value()) return fail_reply(*accepted_frame);
  std::printf("accepted: job %llu (%u ahead in queue)\n",
              static_cast<unsigned long long>(accepted->job),
              accepted->queue_depth);
  if (cli.get_bool("no-wait")) return 0;

  // Stream progress until CampaignDone.  A tiny-preset campaign checkpoint
  // can take a while behind other queued jobs, so wait generously.
  const auto wait_ms =
      static_cast<std::uint32_t>(cli.get_int("wait-ms", 600000));
  for (;;) {
    const auto frame = client.recv(&error, wait_ms);
    if (!frame.has_value()) return fail(error);
    if (const auto progress = service::parse_campaign_progress(*frame)) {
      std::printf("progress: %llu/%llu executed, %llu logged "
                  "(masked %llu sdc %llu detected %llu crash %llu hang %llu; "
                  "deaths %llu hangs %llu requeued %llu quarantined %llu)\n",
                  static_cast<unsigned long long>(progress->done),
                  static_cast<unsigned long long>(progress->total),
                  static_cast<unsigned long long>(progress->logged),
                  static_cast<unsigned long long>(progress->masked),
                  static_cast<unsigned long long>(progress->sdc),
                  static_cast<unsigned long long>(progress->detected),
                  static_cast<unsigned long long>(progress->crash),
                  static_cast<unsigned long long>(progress->hang),
                  static_cast<unsigned long long>(progress->worker_deaths),
                  static_cast<unsigned long long>(progress->worker_hangs),
                  static_cast<unsigned long long>(progress->requeued),
                  static_cast<unsigned long long>(progress->quarantined));
      continue;
    }
    if (const auto done = service::parse_campaign_done(*frame)) {
      if (done->ok) {
        std::printf("done: job %llu ok; %llu executed, %llu skipped, "
                    "%llu flushes; boundary published as %s\n",
                    static_cast<unsigned long long>(done->job),
                    static_cast<unsigned long long>(done->executed),
                    static_cast<unsigned long long>(done->skipped),
                    static_cast<unsigned long long>(done->flushes),
                    done->store_key.c_str());
        if (done->detected + done->sdc > 0) {
          std::printf("detector: %llu detected vs %llu sdc "
                      "(coverage %.4f)\n",
                      static_cast<unsigned long long>(done->detected),
                      static_cast<unsigned long long>(done->sdc),
                      static_cast<double>(done->detected) /
                          static_cast<double>(done->detected + done->sdc));
        }
        return 0;
      }
      if (done->stopped) {
        std::printf("stopped: job %llu drained; %s\n",
                    static_cast<unsigned long long>(done->job),
                    done->error.c_str());
        return 2;
      }
      return fail("job " + std::to_string(done->job) +
                  " failed: " + done->error);
    }
    return fail_reply(*frame);
  }
}

/// Streams one accepted job's CampaignProgress frames and the terminal
/// RecomputeDone.  Shares the submit command's Busy retry discipline.
int cmd_recompute(net::Client& client, const util::Cli& cli) {
  service::SubmitRecomputeReq req;
  req.kernel = cli.get("kernel");
  req.preset = cli.get("preset", "tiny");
  req.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  req.section_batch =
      static_cast<std::uint64_t>(cli.get_int("section-batch", 256));
  req.section_batches = cli.get("section-batches");
  req.force = cli.get_bool("force");
  req.workers = static_cast<std::uint32_t>(cli.get_int("workers", 2));
  req.flush_every =
      static_cast<std::uint32_t>(cli.get_int("flush-every", 256));
  req.timeout_ms =
      static_cast<std::uint32_t>(cli.get_int("timeout-ms", 2000));
  req.quarantine_after =
      static_cast<std::uint32_t>(cli.get_int("quarantine-after", 3));
  if (req.kernel.empty()) return fail("--kernel is required");

  std::string error;
  if (!client.connect(&error)) return fail(error);
  std::optional<net::Frame> accepted_frame;
  std::uint32_t backoff_ms = g_busy_retry.initial_backoff_ms;
  for (int attempt = 0;; ++attempt) {
    if (!client.send(service::make_submit_recompute(req), &error)) {
      return fail(error);
    }
    accepted_frame = client.recv(&error);
    if (!accepted_frame.has_value()) return fail(error);
    const auto busy = service::parse_busy(*accepted_frame);
    if (!busy.has_value()) break;
    if (attempt >= g_busy_retry.max_retries) {
      return fail_reply(*accepted_frame);
    }
    const std::uint64_t sleep_ms =
        std::max<std::uint64_t>(busy->retry_after_ms, backoff_ms);
    std::fprintf(stderr, "busy: %s; retrying in %llu ms\n",
                 busy->message.c_str(),
                 static_cast<unsigned long long>(sleep_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(std::uint64_t{backoff_ms} * 2, 60'000));
  }
  const auto accepted = service::parse_campaign_accepted(*accepted_frame);
  if (!accepted.has_value()) return fail_reply(*accepted_frame);
  std::printf("accepted: recompute job %llu (%u ahead in queue)\n",
              static_cast<unsigned long long>(accepted->job),
              accepted->queue_depth);
  if (cli.get_bool("no-wait")) return 0;

  const auto wait_ms =
      static_cast<std::uint32_t>(cli.get_int("wait-ms", 600000));
  for (;;) {
    const auto frame = client.recv(&error, wait_ms);
    if (!frame.has_value()) return fail(error);
    if (const auto progress = service::parse_campaign_progress(*frame)) {
      std::printf("progress: %llu/%llu executed, %llu logged "
                  "(masked %llu sdc %llu detected %llu crash %llu hang "
                  "%llu)\n",
                  static_cast<unsigned long long>(progress->done),
                  static_cast<unsigned long long>(progress->total),
                  static_cast<unsigned long long>(progress->logged),
                  static_cast<unsigned long long>(progress->masked),
                  static_cast<unsigned long long>(progress->sdc),
                  static_cast<unsigned long long>(progress->detected),
                  static_cast<unsigned long long>(progress->crash),
                  static_cast<unsigned long long>(progress->hang));
      continue;
    }
    if (const auto done = service::parse_recompute_done(*frame)) {
      if (done->ok) {
        std::printf("done: recompute job %llu ok; %llu experiments, "
                    "%llu sections (%zu dirty, %zu reused); boundary "
                    "published as %s\n",
                    static_cast<unsigned long long>(done->job),
                    static_cast<unsigned long long>(done->executed),
                    static_cast<unsigned long long>(done->sections),
                    done->dirty.size(), done->reused.size(),
                    done->store_key.c_str());
        for (const std::string& name : done->dirty) {
          std::printf("  dirty : %s\n", name.c_str());
        }
        for (const std::string& name : done->reused) {
          std::printf("  reused: %s\n", name.c_str());
        }
        return 0;
      }
      if (done->stopped) {
        std::printf("stopped: recompute job %llu drained; %s\n",
                    static_cast<unsigned long long>(done->job),
                    done->error.c_str());
        return 2;
      }
      return fail("recompute job " + std::to_string(done->job) +
                  " failed: " + done->error);
    }
    return fail_reply(*frame);
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string command =
      cli.positional().empty() ? "" : cli.positional().front();

  net::ClientOptions options;
  options.host = cli.get("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  options.recv_timeout_ms =
      static_cast<std::uint32_t>(cli.get_int("timeout", 30000));
  options.deadline_ms =
      static_cast<std::uint32_t>(cli.get_int("deadline-ms", 0));
  g_busy_retry.max_retries =
      static_cast<int>(cli.get_int("busy-retries", 4));
  if (options.port == 0 && !command.empty() && command != "help") {
    return fail("--port is required");
  }
  net::Client client(options);

  if (command == "ping") return cmd_ping(client);
  if (command == "list") return cmd_list(client);
  if (command == "predict") return cmd_predict(client, cli);
  if (command == "site") return cmd_site(client, cli);
  if (command == "report") return cmd_report(client, cli);
  if (command == "stats") return cmd_stats(client);
  if (command == "shutdown") return cmd_shutdown(client);
  if (command == "submit") return cmd_submit(client, cli);
  if (command == "recompute") return cmd_recompute(client, cli);

  if (!command.empty() && command != "help") {
    std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
  }
  std::fprintf(stderr,
               "usage: ftb_client <ping|list|predict|site|report|stats|"
               "submit|recompute|shutdown> --port N [options]\n"
               "  predict: --key K --site S --bit B\n"
               "  site:    --key K --site S\n"
               "  report:  --key K\n"
               "  submit:  --kernel NAME [--preset tiny] [--seed 1] "
               "[--batch 1000]\n"
               "           [--workers 2] [--flush-every 512] [--no-wait]\n"
               "  recompute: --kernel NAME [--preset tiny] [--seed 1]\n"
               "           [--section-batch 256] [--section-batches n=N,...]\n"
               "           [--force] (per-section campaigns; only "
               "fingerprint-dirty\n"
               "           sections re-run against the server's stored "
               "composed artifact)\n"
               "  common:  [--deadline-ms 0] (server sheds overdue queries)\n"
               "           [--busy-retries 4] (backoff on Busy; exit 3 when "
               "still busy)\n");
  return command == "help" ? 0 : 1;
}
