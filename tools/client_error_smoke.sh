#!/usr/bin/env bash
# CLI error-path smoke for ftb_client against a live ftb_served:
#   * a query for an unknown boundary key must exit non-zero (1) and print
#     the server's error detail on stderr;
#   * a submission to a daemon with a zero-length job queue must surface the
#     Busy frame as exit code 3 once the retries are exhausted;
#   * a healthy ping must still exit 0.
# Usage: client_error_smoke.sh <ftb_served> <ftb_client>
set -u

SERVED="$1"
CLIENT="$2"
STORE="client_error_smoke_store"
rm -rf "$STORE"
mkdir -p "$STORE"

DAEMON_PID=""
cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -TERM "$DAEMON_PID" 2>/dev/null
    wait "$DAEMON_PID" 2>/dev/null
  fi
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# --queue 0 so every submission is answered with Busy (queue full).
"$SERVED" --port 0 --store-dir "$STORE" --queue 0 > served_stdout.txt 2> served_stderr.txt &
DAEMON_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' served_stdout.txt 2>/dev/null)
  [ -n "$PORT" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup: $(cat served_stderr.txt)"
  sleep 0.1
done
[ -n "$PORT" ] && [ "$PORT" != "0" ] || fail "could not scrape the daemon port"

# Healthy ping: exit 0.
"$CLIENT" ping --port "$PORT" || fail "ping against a healthy daemon exited $?"

# Unknown key: server Error frame -> exit 1 with the detail on stderr.
DETAIL=$("$CLIENT" predict --port "$PORT" --key no-such-kernel@tiny@1 --site 0 --bit 0 2>&1 >/dev/null)
RC=$?
[ "$RC" -eq 1 ] || fail "unknown-key predict exited $RC (want 1)"
echo "$DETAIL" | grep -qi "no-such-kernel" || fail "error detail missing the key: $DETAIL"

# Zero-length queue: Busy survives the retries -> exit 3.
BUSY=$("$CLIENT" submit --port "$PORT" --kernel daxpy --preset tiny --batch 50 --busy-retries 1 2>&1 >/dev/null)
RC=$?
[ "$RC" -eq 3 ] || fail "submit against a full queue exited $RC (want 3): $BUSY"
echo "$BUSY" | grep -qi "busy" || fail "busy detail missing: $BUSY"

echo "client_error_smoke: ping=0, unknown key=1 with detail, busy submit=3"
exit 0
