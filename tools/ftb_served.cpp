// ftb_served: boundary-query and campaign-dispatch daemon.
//
// Serves the CRC-framed binary protocol (src/service/protocol.h) over
// loopback TCP.  The query plane answers boundary predictions out of an
// in-memory store loaded from --store-dir; the campaign plane runs
// submitted fault-injection campaigns through the resilient supervisor,
// journalling to the same directory and publishing finished boundaries
// back into the store.
//
// SIGTERM/SIGINT starts a graceful drain: no new connections, no new jobs,
// the running campaign stops at its next checkpoint (journal resumable by
// `ftb_analyze campaign --resume`), buffered replies are flushed, and the
// process exits 0.  SIGUSR1 dumps metrics to --metrics-out.
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "net/server.h"
#include "net/socket.h"
#include "service/service.h"
#include "telemetry/events.h"
#include "telemetry/export.h"
#include "util/cli.h"

namespace {

ftb::service::Service* g_service = nullptr;
volatile std::sig_atomic_t g_dump_metrics = 0;

void handle_terminate(int) {
  if (g_service != nullptr) g_service->request_shutdown();
}

void handle_usr1(int) {
  // Consumed by the loop's tick hook; the loop ticks at least every 500ms,
  // so no wake is needed from signal context.
  g_dump_metrics = 1;
}

/// Parses a CPU list like "1,2,4-7" into sorted CPU numbers.  Returns
/// false on anything it cannot read; an empty string is a valid empty list.
bool parse_cpu_list(const std::string& text, std::vector<int>* cpus) {
  cpus->clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) return false;
    const std::size_t dash = token.find('-');
    try {
      if (dash == std::string::npos) {
        cpus->push_back(std::stoi(token));
      } else {
        const int lo = std::stoi(token.substr(0, dash));
        const int hi = std::stoi(token.substr(dash + 1));
        if (lo > hi || hi - lo > 1024) return false;
        for (int cpu = lo; cpu <= hi; ++cpu) cpus->push_back(cpu);
      }
    } catch (const std::exception&) {
      return false;
    }
  }
  for (const int cpu : *cpus) {
    if (cpu < 0) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftb;

  util::Cli cli(argc, argv);
  cli.describe("port", "TCP port to listen on (default 0 = ephemeral)");
  cli.describe("store-dir",
               "directory of *.boundary artifacts and campaign journals "
               "(default '.')");
  cli.describe("queue", "max queued campaign jobs (default 8)");
  cli.describe("admission-queue",
               "max queued query-plane requests before Busy (default 1024)");
  cli.describe("busy-retry-ms",
               "retry-after hint in Busy replies (default 50)");
  cli.describe("idle-timeout-ms",
               "close connections idle this long (default 30000, 0 = never)");
  cli.describe("max-connections", "accept backstop (default 1024)");
  cli.describe("metrics-out",
               "write a metrics JSON snapshot here on SIGUSR1 and at exit");
  cli.describe("campaign-cpus",
               "pin the campaign plane (runner thread + sandbox workers) to "
               "these CPUs, e.g. 1,2,4-7; keeps query p99 flat under load "
               "(default: unpinned)");
  cli.describe("lease-timeout-ms",
               "remote worker lease TTL; a worker whose heartbeat counter "
               "stalls this long forfeits its chunks (default 3000)");
  cli.describe("straggler-ms",
               "speculatively re-dispatch a remote chunk leased longer than "
               "this (default 20000)");
  cli.describe("worker-token",
               "shared secret ftb_workerd must present to register; without "
               "it the worker plane trusts the network (default: none)");
  cli.describe("snapshot",
               "serve local campaign experiments from copy-on-write "
               "fork-server snapshots (fi/snapshot.h); journals stay "
               "byte-identical (default off)");
  cli.describe("snapshot-every",
               "snapshot checkpoint cadence in dynamic instructions "
               "(default 4096; implies --snapshot)");
  if (cli.get_bool("help")) {
    cli.print_help("ftb_served: boundary-query / campaign-dispatch daemon");
    return 0;
  }
  if (!net::net_supported()) {
    std::fprintf(stderr, "error: this platform has no socket support\n");
    return 1;
  }

  telemetry::Telemetry telemetry;
  telemetry.set_enabled(true);

  // Fault injection for the chaos harness: FTB_CHAOS=seed=7,short_io=0.2,...
  // arms the seeded syscall-fault layer; unset/off leaves it dormant.
  {
    std::string chaos_summary;
    if (chaos::configure_from_env(&chaos_summary)) {
      std::fprintf(stderr, "chaos: %s\n", chaos_summary.c_str());
    }
  }

  service::ServiceOptions service_options;
  service_options.store_dir = cli.get("store-dir", ".");
  service_options.max_queue =
      static_cast<std::size_t>(cli.get_int("queue", 8));
  service_options.admission_queue_max =
      static_cast<std::size_t>(cli.get_int("admission-queue", 1024));
  service_options.busy_retry_ms =
      static_cast<std::uint64_t>(cli.get_int("busy-retry-ms", 50));
  service_options.dispatch.lease_timeout_ms =
      static_cast<std::uint32_t>(cli.get_int("lease-timeout-ms", 3000));
  service_options.dispatch.straggler_timeout_ms =
      static_cast<std::uint32_t>(cli.get_int("straggler-ms", 20000));
  service_options.dispatch.worker_token = cli.get("worker-token");
  service_options.snapshot_campaigns =
      cli.get_bool("snapshot", cli.has("snapshot-every"));
  service_options.snapshot_interval =
      static_cast<std::uint64_t>(cli.get_int("snapshot-every", 4096));
  if (const std::string cpus = cli.get("campaign-cpus"); !cpus.empty()) {
    if (!parse_cpu_list(cpus, &service_options.campaign_cpus)) {
      std::fprintf(stderr, "error: cannot parse --campaign-cpus '%s'\n",
                   cpus.c_str());
      return 1;
    }
    std::fprintf(stderr, "campaign plane pinned to CPUs %s\n", cpus.c_str());
  }
  service_options.telemetry = &telemetry;
  service::Service service(service_options);

  // Report what the write-ahead job ledger found: jobs acked by a previous
  // incarnation that never finished resume now, from their journals.
  const auto& replay = service.jobs().replay();
  for (const std::string& line : replay.diagnostics) {
    std::fprintf(stderr, "ledger: %s\n", line.c_str());
  }
  if (!service.jobs().ledger_ok()) {
    std::fprintf(stderr,
                 "ledger: UNAVAILABLE; submissions will be refused until "
                 "%s/jobs.ledger is writable\n",
                 service_options.store_dir.c_str());
  } else if (replay.records > 0 || replay.torn_records > 0) {
    std::fprintf(stderr,
                 "ledger: replayed %llu records (%llu terminal, %llu torn); "
                 "%zu interrupted jobs resume\n",
                 static_cast<unsigned long long>(replay.records),
                 static_cast<unsigned long long>(replay.terminal),
                 static_cast<unsigned long long>(replay.torn_records),
                 replay.pending.size());
  }

  std::vector<std::string> diagnostics;
  const std::size_t loaded = service.load_store(&diagnostics);
  for (const std::string& line : diagnostics) {
    std::fprintf(stderr, "store: %s\n", line.c_str());
  }
  std::fprintf(stderr, "store: %zu boundaries loaded from %s\n", loaded,
               service_options.store_dir.c_str());

  net::ServerOptions server_options;
  server_options.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
  server_options.idle_timeout_ms =
      static_cast<std::uint32_t>(cli.get_int("idle-timeout-ms", 30000));
  server_options.max_connections =
      static_cast<std::size_t>(cli.get_int("max-connections", 1024));
  server_options.telemetry = &telemetry;

  const std::string metrics_out = cli.get("metrics-out");

  try {
    net::Server server(service, server_options);
    service.attach(&server);
    g_service = &service;
    std::signal(SIGTERM, handle_terminate);
    std::signal(SIGINT, handle_terminate);
    std::signal(SIGUSR1, handle_usr1);
    std::signal(SIGPIPE, SIG_IGN);

    // The smoke tests and the load generator scrape this line for the port.
    std::printf("listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    // SIGUSR1 metrics dump, consumed on the loop thread via the tick hook.
    service.set_tick_hook([&] {
      if (g_dump_metrics == 0) return;
      g_dump_metrics = 0;
      if (!metrics_out.empty() &&
          telemetry::write_metrics_json(telemetry, metrics_out)) {
        std::fprintf(stderr, "metrics -> %s\n", metrics_out.c_str());
      }
    });

    server.run();
    g_service = nullptr;

    if (!metrics_out.empty()) {
      telemetry::write_metrics_json(telemetry, metrics_out);
    }
    std::fprintf(stderr, "drained; %zu boundaries in store\n",
                 service.store().size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
