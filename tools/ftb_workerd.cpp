// ftb_workerd: remote campaign worker daemon.
//
// Connects to an ftb_served instance, registers on the worker plane
// (WorkerHello), and executes the experiment chunks the dispatcher leases
// to it through a sandboxed fi::WorkerPool -- the same isolation the
// service's own campaign plane uses, one process boundary further out.  A
// background thread streams monotonically-numbered heartbeats so the
// server can tell a busy worker from a SIGSTOPped one.
//
// The daemon reconnects with jittered exponential backoff whenever the
// server goes away (restart, drain, network fault) and keeps serving until
// SIGTERM/SIGINT, which stop it after the current chunk.  Being killed
// -9 instead is routine: the dispatcher expires the lease and requeues the
// chunk elsewhere, exactly-once.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "net/socket.h"
#include "service/worker.h"
#include "telemetry/events.h"
#include "util/cli.h"
#include "util/retry.h"
#include "util/rng.h"

namespace {

ftb::service::WorkerAgent* g_agent = nullptr;
std::atomic<bool> g_stop{false};

void handle_terminate(int) {
  g_stop.store(true, std::memory_order_relaxed);
  if (g_agent != nullptr) g_agent->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ftb;

  util::Cli cli(argc, argv);
  cli.describe("host", "ftb_served host (default 127.0.0.1)");
  cli.describe("port", "ftb_served port (required)");
  cli.describe("name", "worker name reported to the server (default pid)");
  cli.describe("capacity", "chunk leases held at once (default 1)");
  cli.describe("pool-workers",
               "sandbox pool size per chunk when the lease does not specify "
               "one (default 2)");
  cli.describe("token",
               "shared secret matching the server's --worker-token "
               "(default: none)");
  cli.describe("snapshot",
               "serve experiments from copy-on-write fork-server snapshots "
               "(fi/snapshot.h); results stay byte-identical (default off)");
  cli.describe("snapshot-every",
               "snapshot checkpoint cadence in dynamic instructions "
               "(default 4096; implies --snapshot)");
  cli.describe("once",
               "serve one connection and exit instead of reconnecting "
               "(for tests)");
  if (cli.get_bool("help")) {
    cli.print_help("ftb_workerd: remote campaign worker for ftb_served");
    return 0;
  }
  if (!net::net_supported()) {
    std::fprintf(stderr, "error: this platform has no socket support\n");
    return 1;
  }
  const int port = static_cast<int>(cli.get_int("port", 0));
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: --port is required (1..65535)\n");
    return 1;
  }

  service::WorkerAgentOptions options;
  options.host = cli.get("host", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(port);
  options.name = cli.get("name");
  if (options.name.empty()) {
    options.name = "workerd-" + std::to_string(::getpid());
  }
  options.capacity =
      static_cast<std::uint32_t>(std::max<std::int64_t>(1, cli.get_int("capacity", 1)));
  options.pool_workers = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, cli.get_int("pool-workers", 2)));
  options.token = cli.get("token");
  options.use_snapshots = cli.get_bool("snapshot", cli.has("snapshot-every"));
  options.snapshot_interval =
      static_cast<std::uint64_t>(cli.get_int("snapshot-every", 4096));
  options.connect_retry.max_retries = 6;
  options.connect_retry.initial_backoff_ms = 50;
  const bool once = cli.get_bool("once");

  service::WorkerAgent agent(options);
  g_agent = &agent;
  std::signal(SIGTERM, handle_terminate);
  std::signal(SIGINT, handle_terminate);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("worker %s -> %s:%d\n", options.name.c_str(),
              options.host.c_str(), port);
  std::fflush(stdout);

  // Session-level reconnect loop: each serve() is one connection's
  // lifetime; backoff between attempts is jittered so a fleet of workers
  // does not stampede a restarting server.
  util::Rng jitter(static_cast<std::uint64_t>(::getpid()));
  std::uint32_t backoff_ms = 100;
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::string error;
    const bool clean = agent.serve(&error);
    if (g_stop.load(std::memory_order_relaxed)) break;
    if (clean) break;  // request_stop without a signal (not used today)
    std::fprintf(stderr, "disconnected: %s\n", error.c_str());
    if (once) {
      g_agent = nullptr;
      return 1;
    }
    const auto sleep_ms = static_cast<std::uint32_t>(
        static_cast<double>(backoff_ms) * jitter.next_double(0.75, 1.25));
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    backoff_ms = std::min(backoff_ms * 2, 5000u);
  }
  g_agent = nullptr;

  const service::WorkerAgentStats stats = agent.stats();
  std::fprintf(stderr,
               "worker exiting: %llu chunks (%llu failed), %llu records, "
               "%llu heartbeats\n",
               static_cast<unsigned long long>(stats.chunks_run),
               static_cast<unsigned long long>(stats.chunks_failed),
               static_cast<unsigned long long>(stats.records_sent),
               static_cast<unsigned long long>(stats.heartbeats_sent));
  return 0;
}
