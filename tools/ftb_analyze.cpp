// ftb_analyze: the command-line driver for the whole library -- run
// campaigns, build/save/load boundaries, print reports and protection
// plans without writing C++.
//
// Subcommands (first positional argument):
//   list                          known kernels and presets
//   golden   --kernel K           golden-run statistics and phase table
//   infer    --kernel K           build a boundary (uniform or adaptive
//            [--strategy uniform|adaptive] [--fraction F] [--filter 0|1]
//            [--save FILE]        sampling) and report self-verified stats
//   exhaustive --kernel K         ground-truth campaign + exact boundary
//            [--save FILE]        (slow; honours FTB_CACHE_DIR)
//   report   --kernel K --load FILE   per-phase vulnerability report
//   protect  --kernel K --load FILE   selective-protection plan
//            [--budget F | --target R]
//
// Common flags: --preset tiny|default|paper, --seed S.
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>

#include "boundary/exhaustive.h"
#include "boundary/predictor.h"
#include "boundary/protection.h"
#include "boundary/report.h"
#include "boundary/serialize.h"
#include "campaign/adaptive.h"
#include "campaign/checkpoint.h"
#include "campaign/ground_truth.h"
#include "campaign/inference.h"
#include "campaign/log.h"
#include "campaign/sampler.h"
#include "campaign/supervisor.h"
#include "sections/compose.h"
#include "sections/driver.h"
#include "sections/section.h"
#include "telemetry/events.h"
#include "telemetry/export.h"
#include "util/rng.h"
#include "fi/executor.h"
#include "fi/phase_map.h"
#include "kernels/registry.h"
#include "util/cli.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace ftb;

int cmd_list() {
  std::printf("kernels:\n");
  for (const std::string& name : kernels::program_names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("presets: tiny, default, paper\n");
  return 0;
}

struct Loaded {
  fi::ProgramPtr program;
  fi::GoldenRun golden;
};

// One process-wide telemetry sink, enabled only when an export flag asks
// for it (off = null sink, zero work in the instrumented layers).
telemetry::Telemetry& global_telemetry() {
  static telemetry::Telemetry instance;
  return instance;
}

/// Enables telemetry iff --metrics-out / --trace-out / --events-out was
/// passed; returns the sink to thread through options, or nullptr.
telemetry::Telemetry* setup_telemetry(const util::Cli& cli) {
  if (!cli.has("metrics-out") && !cli.has("trace-out") &&
      !cli.has("events-out")) {
    return nullptr;
  }
  telemetry::Telemetry& telemetry = global_telemetry();
  telemetry.set_enabled(true);
  return &telemetry;
}

/// Writes whichever exports were requested.  Returns nonzero on I/O error.
int export_telemetry(const util::Cli& cli) {
  const telemetry::Telemetry& telemetry = global_telemetry();
  if (!telemetry.enabled()) return 0;
  struct Export {
    const char* flag;
    bool (*write)(const telemetry::Telemetry&, const std::string&);
  };
  static constexpr Export kExports[] = {
      {"metrics-out", &telemetry::write_metrics_json},
      {"trace-out", &telemetry::write_chrome_trace},
      {"events-out", &telemetry::write_events_jsonl},
  };
  for (const Export& exp : kExports) {
    const std::string path = cli.get(exp.flag);
    if (path.empty()) continue;
    if (!exp.write(telemetry, path)) {
      std::fprintf(stderr, "error: could not write --%s %s\n", exp.flag,
                   path.c_str());
      return 1;
    }
    std::printf("telemetry         : --%s -> %s\n", exp.flag, path.c_str());
  }
  return 0;
}

Loaded load_kernel(const util::Cli& cli,
                   telemetry::Telemetry* telemetry = nullptr) {
  const std::string name = cli.get("kernel", "cg");
  const kernels::Preset preset =
      kernels::preset_from_string(cli.get("preset", "default"));
  Loaded loaded;
  loaded.program = kernels::make_program(name, preset);
  {
    telemetry::SpanScope span(telemetry, "golden_run", "campaign");
    loaded.golden = fi::run_golden(*loaded.program);
    span.arg("dynamic_instructions",
             static_cast<double>(loaded.golden.dynamic_instructions()));
  }
  return loaded;
}

int cmd_golden(const util::Cli& cli) {
  const Loaded k = load_kernel(cli);
  std::printf("kernel        : %s\n", k.program->name().c_str());
  std::printf("config        : %s\n", k.program->config_key().c_str());
  std::printf("dyn. instrs   : %llu\n",
              static_cast<unsigned long long>(k.golden.dynamic_instructions()));
  std::printf("sample space  : %llu experiments\n",
              static_cast<unsigned long long>(k.golden.sample_space_size()));
  std::printf("output size   : %zu values, tolerance %.3g\n",
              k.golden.output.size(), k.golden.tolerance);
  const fi::PhaseMap phases(k.golden.phases, k.golden.trace.size());
  util::Table table({"phase", "instructions", "share"});
  for (const auto& segment : phases.segments()) {
    table.add_row(
        {segment.name,
         util::format("[%llu, %llu)",
                      static_cast<unsigned long long>(segment.begin),
                      static_cast<unsigned long long>(segment.end)),
         util::percent(static_cast<double>(segment.size()) /
                       static_cast<double>(k.golden.trace.size()))});
  }
  std::fputs(table.render("\nphases").c_str(), stdout);
  return 0;
}

void describe_boundary(const boundary::FaultToleranceBoundary& built,
                       const Loaded& k) {
  std::printf("informed sites    : %zu of %zu\n", built.informed_sites(),
              built.sites());
  std::printf("predicted SDC     : %s\n",
              util::percent(
                  boundary::predicted_overall_sdc(built, k.golden.trace))
                  .c_str());
}

int save_if_requested(const util::Cli& cli,
                      const boundary::FaultToleranceBoundary& built,
                      const Loaded& k) {
  const std::string path = cli.get("save");
  if (path.empty()) return 0;
  if (!boundary::save_to_file(built, k.program->config_key(), path)) {
    std::fprintf(stderr, "error: could not write %s\n", path.c_str());
    return 1;
  }
  std::printf("boundary saved to %s\n", path.c_str());
  return 0;
}

int cmd_infer(const util::Cli& cli) {
  telemetry::Telemetry* const tele = setup_telemetry(cli);
  const Loaded k = load_kernel(cli, tele);
  const std::string strategy = cli.get("strategy", "uniform");
  util::ThreadPool& pool = util::default_pool();

  boundary::FaultToleranceBoundary built;
  if (strategy == "adaptive") {
    campaign::AdaptiveOptions options;
    options.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    options.filter = cli.get_bool("filter", true);
    // --workers N routes every round through the persistent worker-pool
    // supervisor -- the only safe way to run adaptive inference on the
    // hazard kernels, whose lethal flips would kill this process.
    options.use_supervisor =
        cli.has("workers") || cli.has("quarantine-after");
    options.supervisor.pool.workers = cli.get_int("workers", 4);
    options.supervisor.quarantine_after = cli.get_int("quarantine-after", 3);
    // --snapshot serves each refinement round from the copy-on-write
    // fork-server inside the pool workers (fi/snapshot.h), so late-site
    // rounds stop replaying the whole prefix.  It needs the supervisor, so
    // it forces one on; the records and boundary stay byte-identical to
    // the classic supervisor path (tests/test_adaptive.cpp pins this).
    if (cli.get_bool("snapshot", cli.has("snapshot-every"))) {
      options.use_supervisor = true;
      options.supervisor.pool.use_snapshots = true;
      options.supervisor.pool.snapshot.interval =
          static_cast<std::uint64_t>(cli.get_int("snapshot-every", 4096));
    }
    options.telemetry = tele;
    const campaign::AdaptiveResult result =
        campaign::infer_adaptive(*k.program, k.golden, options, pool);
    std::printf("adaptive sampling : %zu experiments (%.2f%% of space), "
                "%zu rounds\n",
                result.sampled_ids.size(), 100.0 * result.sample_fraction(),
                result.rounds.size());
    if (options.use_supervisor) {
      std::printf("supervisor        : %llu workers spawned, %llu deaths, "
                  "%llu hangs, %llu quarantined\n",
                  static_cast<unsigned long long>(
                      result.supervisor_stats.pool.workers_spawned),
                  static_cast<unsigned long long>(
                      result.supervisor_stats.worker_deaths),
                  static_cast<unsigned long long>(
                      result.supervisor_stats.worker_hangs),
                  static_cast<unsigned long long>(
                      result.supervisor_stats.quarantined));
    }
    std::fputs(boundary::render_build_health(result.nonfinite_skipped).c_str(),
               stdout);
    built = result.boundary;
  } else if (strategy == "uniform") {
    campaign::InferenceOptions options;
    options.sample_fraction = cli.get_double("fraction", 0.01);
    options.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    options.filter = cli.get_bool("filter", true);
    options.telemetry = tele;
    const campaign::InferenceResult result =
        campaign::infer_uniform(*k.program, k.golden, options, pool);
    const util::Confusion self = campaign::confusion_on_records(
        result.boundary, k.golden.trace, result.records);
    std::printf("uniform sampling  : %zu experiments (%.2f%% of space)\n",
                result.sampled_ids.size(), 100.0 * options.sample_fraction);
    std::printf("outcomes          : masked %llu / sdc %llu / detected %llu / "
                "crash %llu / hang %llu\n",
                static_cast<unsigned long long>(result.counts.masked),
                static_cast<unsigned long long>(result.counts.sdc),
                static_cast<unsigned long long>(result.counts.detected),
                static_cast<unsigned long long>(result.counts.crash),
                static_cast<unsigned long long>(result.counts.hang));
    std::printf("uncertainty       : %s (self-verified precision)\n",
                util::percent(self.precision()).c_str());
    std::fputs(boundary::render_build_health(result.nonfinite_skipped).c_str(),
               stdout);
    built = result.boundary;
  } else {
    std::fprintf(stderr, "error: unknown --strategy %s\n", strategy.c_str());
    return 1;
  }
  describe_boundary(built, k);
  const int saved = save_if_requested(cli, built, k);
  const int exported = export_telemetry(cli);
  return saved != 0 ? saved : exported;
}

void print_outcomes(std::span<const campaign::ExperimentRecord> records) {
  const campaign::OutcomeCounts counts = campaign::count_outcomes(records);
  std::printf("outcomes          : masked %llu / sdc %llu / detected %llu / "
              "crash %llu / hang %llu\n",
              static_cast<unsigned long long>(counts.masked),
              static_cast<unsigned long long>(counts.sdc),
              static_cast<unsigned long long>(counts.detected),
              static_cast<unsigned long long>(counts.crash),
              static_cast<unsigned long long>(counts.hang));
  if (counts.detected > 0) {
    std::printf("detector coverage : %s (%llu of %llu corruptions caught)\n",
                util::percent(counts.detected_coverage()).c_str(),
                static_cast<unsigned long long>(counts.detected),
                static_cast<unsigned long long>(counts.detected +
                                                counts.sdc));
  }
  const std::string reasons =
      campaign::describe_crash_reasons(campaign::count_crash_reasons(records));
  if (!reasons.empty()) {
    std::printf("crash reasons     : %s\n", reasons.c_str());
  }
}

/// Samples --batch experiment ids in the fault model selected by --fault
/// bitflip|burst|mem|memburst (default bitflip, the paper's single-bit
/// trace flip).  Burst models flip --burst-width contiguous bits (default
/// 2); memory-resident models draw from the live-state spans the kernel
/// announces via Tracer::touch().  The id set is a pure function of
/// (--seed + seed_offset, --fault, --burst-width), so resumed invocations
/// re-aim at the interrupted experiment set.
std::vector<campaign::ExperimentId> sample_fault_ids(
    const util::Cli& cli, const Loaded& k, std::uint64_t seed_offset) {
  const auto batch = static_cast<std::uint64_t>(cli.get_int("batch", 1000));
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 1)) +
                seed_offset);
  const std::string fault = cli.get("fault", "bitflip");
  const int width = static_cast<int>(cli.get_int("burst-width", 2));
  if (fault == "bitflip") {
    return campaign::sample_uniform(rng, k.golden.sample_space_size(), batch);
  }
  if (fault == "burst") {
    // Same (site, start_bit) space as bitflip; re-tag each id with the
    // burst width.  encode_burst is monotonic in (site, bit), so the
    // sorted-distinct property of sample_uniform survives.
    std::vector<campaign::ExperimentId> ids = campaign::sample_uniform(
        rng, k.golden.sample_space_size(), batch);
    for (campaign::ExperimentId& id : ids) {
      id = campaign::encode_burst(campaign::site_of(id), campaign::bit_of(id),
                                  width);
    }
    return ids;
  }
  if (fault == "mem" || fault == "memburst") {
    const std::uint64_t space = fi::mem_sample_space(k.golden.touch_sizes);
    if (space == 0) {
      throw std::invalid_argument(
          "kernel '" + k.program->name() +
          "' announces no live spans (Tracer::touch), so it has no "
          "memory-resident fault space");
    }
    const int mem_width = fault == "mem" ? 1 : width;
    std::vector<campaign::ExperimentId> ids;
    ids.reserve(batch);
    for (const std::uint64_t flat :
         campaign::sample_uniform(rng, space, batch)) {
      ids.push_back(campaign::encode_mem(
          fi::mem_fault_at(k.golden.touch_sizes, flat, mem_width)));
    }
    return ids;
  }
  throw std::invalid_argument("unknown --fault '" + fault +
                              "' (expected bitflip, burst, mem or memburst)");
}

/// Checkpointed campaign: run the sampled experiment set through the
/// journalled runner, flushing every --flush-every experiments so an
/// interrupted invocation resumes from the last flush.  --timeout-ms (or
/// --sandbox 1) routes experiments through the fork-based isolation layer;
/// --workers N upgrades that to the persistent worker-pool supervisor
/// (heartbeats, respawn with backoff, --quarantine-after K site
/// quarantine), which is the cheapest way to campaign hazard kernels.
int cmd_campaign_resume(const util::Cli& cli, const Loaded& k,
                        const std::string& path,
                        telemetry::Telemetry* tele) {
  campaign::CheckpointOptions options;
  options.telemetry = tele;
  options.path = path;
  options.flush_every =
      static_cast<std::size_t>(cli.get_int("flush-every", 512));
  options.use_sandbox = cli.get_bool("sandbox", cli.has("timeout-ms"));
  options.sandbox.timeout_ms =
      static_cast<std::uint32_t>(cli.get_int("timeout-ms", 2000));
  options.use_supervisor = cli.has("workers") || cli.has("quarantine-after");
  options.supervisor.pool.workers = cli.get_int("workers", 4);
  options.supervisor.pool.heartbeat_timeout_ms = options.sandbox.timeout_ms;
  options.supervisor.quarantine_after = cli.get_int("quarantine-after", 3);
  // --snapshot serves experiments from the copy-on-write fork-server
  // (fi/snapshot.h) instead of replaying each one from instruction 0.  It
  // lives inside the pool workers, so it forces the supervisor on; journals
  // stay byte-identical to the classic path either way.
  if (cli.get_bool("snapshot", cli.has("snapshot-every"))) {
    options.use_supervisor = true;
    options.supervisor.pool.use_snapshots = true;
    options.supervisor.pool.snapshot.interval =
        static_cast<std::uint64_t>(cli.get_int("snapshot-every", 4096));
    options.supervisor.pool.snapshot.timeout_ms = options.sandbox.timeout_ms;
  }

  // The id set must be a pure function of the seed (and fault flags): a
  // resumed invocation has to aim at the same experiments as the
  // interrupted one.
  const std::vector<campaign::ExperimentId> ids = sample_fault_ids(cli, k, 0);

  const campaign::CheckpointRunResult run =
      campaign::run_campaign_checkpointed(*k.program, k.golden, ids, options);
  if (run.resumed) {
    std::printf("resumed           : %llu of %llu experiments from %s\n",
                static_cast<unsigned long long>(run.skipped),
                static_cast<unsigned long long>(ids.size()), path.c_str());
  }
  std::printf("executed          : %llu experiments, %llu journal flushes\n",
              static_cast<unsigned long long>(run.executed),
              static_cast<unsigned long long>(run.flushes));
  if (options.use_supervisor) {
    const campaign::SupervisorStats& sup = run.supervisor_stats;
    std::printf("supervisor        : %llu workers spawned, %llu deaths, "
                "%llu hangs, %llu respawns\n",
                static_cast<unsigned long long>(sup.pool.workers_spawned),
                static_cast<unsigned long long>(sup.worker_deaths),
                static_cast<unsigned long long>(sup.worker_hangs),
                static_cast<unsigned long long>(sup.pool.respawns));
    std::printf("work accounting   : %llu chunks, %llu requeued, "
                "%llu quarantined, %llu fallback\n",
                static_cast<unsigned long long>(sup.chunks_dispatched),
                static_cast<unsigned long long>(sup.experiments_requeued),
                static_cast<unsigned long long>(sup.quarantined),
                static_cast<unsigned long long>(sup.fallback_experiments));
  } else if (options.use_sandbox) {
    std::printf("sandbox           : %llu children, %llu signal deaths, "
                "%llu watchdog kills, %llu fallback\n",
                static_cast<unsigned long long>(run.sandbox_stats.children_spawned),
                static_cast<unsigned long long>(run.sandbox_stats.signal_deaths),
                static_cast<unsigned long long>(run.sandbox_stats.watchdog_kills),
                static_cast<unsigned long long>(
                    run.sandbox_stats.fallback_experiments));
  }
  std::printf("logged %zu distinct experiments -> %s\n", run.log.size(),
              path.c_str());
  print_outcomes(run.log.records());
  return export_telemetry(cli);
}

/// Journal-less one-shot campaign: sample --batch experiments and classify
/// them in chunks, through the persistent worker-pool supervisor
/// (--workers N), the per-batch sandbox (--sandbox / --timeout-ms), or
/// in-process.  Nothing is written except the telemetry exports -- this is
/// the quickest way to profile a campaign configuration.
int cmd_campaign_oneshot(const util::Cli& cli, const Loaded& k,
                         telemetry::Telemetry* tele) {
  util::ThreadPool& pool = util::default_pool();
  const std::vector<campaign::ExperimentId> ids = sample_fault_ids(cli, k, 0);

  const auto chunk_size = static_cast<std::size_t>(cli.get_int("chunk", 256));
  const auto timeout_ms =
      static_cast<std::uint32_t>(cli.get_int("timeout-ms", 2000));
  const bool use_sandbox = cli.get_bool("sandbox", cli.has("timeout-ms"));

  // --snapshot requires the worker-pool supervisor (the fork-server lives
  // inside its workers), so it forces one on even without --workers.
  const bool use_snapshots =
      cli.get_bool("snapshot", cli.has("snapshot-every"));
  std::optional<campaign::CampaignSupervisor> supervisor;
  if (cli.has("workers") || use_snapshots) {
    campaign::SupervisorOptions options;
    options.pool.workers = static_cast<int>(cli.get_int("workers", 4));
    options.pool.heartbeat_timeout_ms = timeout_ms;
    options.pool.use_snapshots = use_snapshots;
    options.pool.snapshot.interval =
        static_cast<std::uint64_t>(cli.get_int("snapshot-every", 4096));
    options.pool.snapshot.timeout_ms = timeout_ms;
    options.quarantine_after =
        static_cast<int>(cli.get_int("quarantine-after", 3));
    options.telemetry = tele;
    supervisor.emplace(*k.program, k.golden, options);
  }
  fi::SandboxOptions sandbox_options;
  sandbox_options.timeout_ms = timeout_ms;

  std::vector<campaign::ExperimentRecord> records;
  records.reserve(ids.size());
  std::size_t chunks = 0;
  for (std::size_t begin = 0; begin < ids.size(); begin += chunk_size) {
    const std::size_t end = std::min(begin + chunk_size, ids.size());
    const std::span<const campaign::ExperimentId> chunk(ids.data() + begin,
                                                        end - begin);
    telemetry::SpanScope span(tele, "campaign.chunk", "campaign");
    span.arg("experiments", static_cast<double>(chunk.size()));
    std::vector<campaign::ExperimentRecord> chunk_records;
    if (supervisor) {
      chunk_records = supervisor->run(chunk);
    } else if (use_sandbox) {
      chunk_records = campaign::run_experiments_sandboxed(
          *k.program, k.golden, chunk, sandbox_options);
    } else {
      chunk_records =
          campaign::run_experiments(*k.program, k.golden, chunk, pool);
    }
    records.insert(records.end(), chunk_records.begin(), chunk_records.end());
    ++chunks;
  }

  std::printf("executed          : %zu experiments in %zu chunks\n",
              records.size(), chunks);
  if (supervisor) {
    const campaign::SupervisorStats sup = supervisor->stats();
    std::printf("supervisor        : %llu workers spawned, %llu deaths, "
                "%llu hangs, %llu quarantined\n",
                static_cast<unsigned long long>(sup.pool.workers_spawned),
                static_cast<unsigned long long>(sup.worker_deaths),
                static_cast<unsigned long long>(sup.worker_hangs),
                static_cast<unsigned long long>(sup.quarantined));
  }
  print_outcomes(records);
  return export_telemetry(cli);
}

/// Runs (or extends) a persistent campaign log, then rebuilds the boundary
/// from everything logged so far -- the resumable-campaign workflow.
int cmd_campaign(const util::Cli& cli) {
  telemetry::Telemetry* const tele = setup_telemetry(cli);
  const Loaded k = load_kernel(cli, tele);
  const std::string resume = cli.get("resume");
  if (!resume.empty()) return cmd_campaign_resume(cli, k, resume, tele);

  const std::string path = cli.get("log");
  if (path.empty()) {
    // No journal requested: run the one-shot (ephemeral) campaign.
    return cmd_campaign_oneshot(cli, k, tele);
  }
  util::ThreadPool& pool = util::default_pool();

  campaign::CampaignLog log(k.program->config_key());
  std::string load_error;
  if (auto existing = campaign::CampaignLog::load(path, &load_error)) {
    if (existing->config_key() != k.program->config_key()) {
      std::fprintf(stderr, "error: %s holds a different configuration\n",
                   path.c_str());
      return 1;
    }
    log = std::move(*existing);
    std::printf("resuming: %zu experiments already logged\n", log.size());
  } else if (load_error.find("cannot open") == std::string::npos) {
    // Missing file = fresh campaign; anything else is real corruption.
    std::fprintf(stderr, "error: %s\n", load_error.c_str());
    return 1;
  }

  const std::vector<campaign::ExperimentId> ids =
      sample_fault_ids(cli, k, log.size());
  log.append(campaign::run_experiments(*k.program, k.golden, ids, pool));
  log.dedupe();
  if (!log.save(path)) {
    std::fprintf(stderr, "error: could not write %s\n", path.c_str());
    return 1;
  }
  std::printf("logged %zu distinct experiments -> %s\n", log.size(),
              path.c_str());
  print_outcomes(log.records());

  const boundary::FaultToleranceBoundary built = campaign::boundary_from_log(
      *k.program, k.golden, log,
      {cli.get_bool("filter", true), 32}, pool);
  describe_boundary(built, k);
  const int saved = save_if_requested(cli, built, k);
  const int exported = export_telemetry(cli);
  return saved != 0 ? saved : exported;
}

sections::CarveOptions carve_options(const util::Cli& cli) {
  sections::CarveOptions carve;
  carve.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  carve.batch_per_section =
      static_cast<std::uint64_t>(cli.get_int("section-batch", 256));
  carve.batch_overrides = cli.get("section-batches");
  return carve;
}

/// Journal/artifact stem for a compositional campaign: pure function of
/// (kernel, preset, seed), so a re-invocation resumes the same files.
std::string compose_stem(const util::Cli& cli) {
  return sections::sanitize_section_name(cli.get("kernel", "cg")) + "-" +
         cli.get("preset", "default") + "-s" +
         std::to_string(cli.get_int("seed", 1));
}

/// Shows the section carve: ranges, signatures, fingerprints, budgets --
/// and, against an existing composed artifact (--artifact FILE), which
/// sections an incremental recompute would treat as dirty.
int cmd_sections(const util::Cli& cli) {
  const Loaded k = load_kernel(cli);
  const sections::SectionPlan plan = sections::carve_sections(
      k.program->config_key(), k.golden, carve_options(cli));

  std::optional<sections::ComposedArtifact> previous;
  const std::string artifact_path = cli.get("artifact");
  if (!artifact_path.empty()) {
    std::string error;
    previous = sections::load_composed(artifact_path, "", &error);
    if (!previous) {
      std::printf("previous artifact : none usable (%s)\n", error.c_str());
    }
  }

  std::printf("kernel            : %s (%s)\n", k.program->name().c_str(),
              k.program->config_key().c_str());
  std::printf("sections          : %zu over %llu dynamic instructions\n",
              plan.sections.size(),
              static_cast<unsigned long long>(plan.total_sites));
  util::Table table({"section", "range", "batch", "fingerprint", "status"});
  for (const sections::SectionSpec& spec : plan.sections) {
    std::string status = "new";
    if (previous) {
      const sections::SectionRecord* record = previous->find(spec.name);
      if (record == nullptr) {
        status = "new";
      } else if (record->spec.fingerprint == spec.fingerprint) {
        status = "clean";
      } else {
        status = "dirty";
      }
    }
    table.add_row({spec.name,
                   util::format("[%llu, %llu)",
                                static_cast<unsigned long long>(spec.begin),
                                static_cast<unsigned long long>(spec.end)),
                   std::to_string(spec.batch),
                   util::format("%016llx",
                                static_cast<unsigned long long>(
                                    spec.fingerprint)),
                   status});
  }
  std::fputs(table.render("section plan").c_str(), stdout);
  return 0;
}

volatile std::sig_atomic_t g_compose_stop = 0;
void compose_stop_handler(int) { g_compose_stop = 1; }

/// Compositional campaign: per-section checkpointed campaigns, error-bound
/// composition, incremental recompute against --artifact.  SIGTERM/SIGINT
/// drain between chunks, leaving every per-section journal resumable.
int cmd_compose(const util::Cli& cli) {
  telemetry::Telemetry* const tele = setup_telemetry(cli);
  const Loaded k = load_kernel(cli, tele);
  const std::string artifact_path = cli.get("artifact");
  if (artifact_path.empty()) {
    std::fprintf(stderr, "error: compose requires --artifact FILE\n");
    return 1;
  }

  sections::SectionCampaignOptions options;
  options.store_dir = cli.get("store-dir", ".");
  {
    std::error_code ec;
    std::filesystem::create_directories(options.store_dir, ec);
    if (ec) {
      std::fprintf(stderr, "error: cannot create store dir %s: %s\n",
                   options.store_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }
  options.stem = compose_stem(cli);
  options.kernel = cli.get("kernel", "cg");
  options.preset = cli.get("preset", "default");
  options.carve = carve_options(cli);
  options.flush_every =
      static_cast<std::size_t>(cli.get_int("flush-every", 256));
  options.force = cli.get_bool("force", false);
  options.filter = cli.get_bool("filter", true);
  options.edge_window =
      static_cast<std::uint64_t>(cli.get_int("edge-window", 16));
  options.telemetry = tele;
  options.use_supervisor = cli.has("workers") || cli.has("quarantine-after");
  options.supervisor.pool.workers = cli.get_int("workers", 4);
  options.supervisor.quarantine_after = cli.get_int("quarantine-after", 3);
  if (cli.get_bool("snapshot", cli.has("snapshot-every"))) {
    options.use_supervisor = true;
    options.supervisor.pool.use_snapshots = true;
    options.supervisor.pool.snapshot.interval =
        static_cast<std::uint64_t>(cli.get_int("snapshot-every", 4096));
  }

  g_compose_stop = 0;
  std::signal(SIGTERM, compose_stop_handler);
  std::signal(SIGINT, compose_stop_handler);
  options.should_stop = [] { return g_compose_stop != 0; };
  options.on_progress = [](const std::string& section,
                           const campaign::CheckpointProgress& progress) {
    if (progress.chunk.empty()) return;
    std::printf("  [%s] %llu/%llu experiments journaled\n", section.c_str(),
                static_cast<unsigned long long>(progress.executed),
                static_cast<unsigned long long>(progress.total));
  };

  // Incremental by default: a previous artifact at --artifact seeds the
  // fingerprint diff.  A file that exists but does not parse for this
  // config is an error (--force recomputes everything from scratch).
  std::optional<sections::ComposedArtifact> previous;
  {
    std::string error;
    previous =
        sections::load_composed(artifact_path, k.program->config_key(), &error);
    if (!previous && error.find("cannot open") == std::string::npos &&
        !options.force) {
      std::fprintf(stderr,
                   "error: %s (pass --force to rebuild from scratch)\n",
                   error.c_str());
      return 1;
    }
  }

  const sections::SectionCampaignResult result = sections::run_section_campaigns(
      *k.program, k.golden, previous ? &*previous : nullptr, options);
  if (result.stopped) {
    std::printf("drained           : %llu experiments journaled; re-run to "
                "resume\n",
                static_cast<unsigned long long>(result.executed));
    return 2;
  }

  if (!sections::save_composed(result.artifact, artifact_path)) {
    std::fprintf(stderr, "error: could not write %s\n", artifact_path.c_str());
    return 1;
  }
  std::printf("sections          : %zu recomputed, %zu reused, %llu "
              "experiments run\n",
              result.dirty.size(), result.reused.size(),
              static_cast<unsigned long long>(result.executed));

  util::Table table(
      {"section", "range", "exit bound", "entry tol", "scale", "outcomes"});
  for (std::size_t i = 0; i < result.artifact.sections.size(); ++i) {
    const sections::SectionRecord& record = result.artifact.sections[i];
    table.add_row(
        {record.spec.name,
         util::format("[%llu, %llu)",
                      static_cast<unsigned long long>(record.spec.begin),
                      static_cast<unsigned long long>(record.spec.end)),
         util::format("%.3g", record.exit_bound),
         util::format("%.3g", record.entry_tolerance),
         util::format("%.3g", result.artifact.edge_scale(i)),
         util::format("m%llu/s%llu/c%llu/h%llu/d%llu",
                      static_cast<unsigned long long>(record.masked),
                      static_cast<unsigned long long>(record.sdc),
                      static_cast<unsigned long long>(record.crash),
                      static_cast<unsigned long long>(record.hang),
                      static_cast<unsigned long long>(record.detected))});
  }
  std::fputs(table.render("composed sections").c_str(), stdout);

  const boundary::FaultToleranceBoundary composed = result.artifact.compose();
  describe_boundary(composed, k);
  std::printf("artifact saved to %s\n", artifact_path.c_str());

  // --verify: one monolithic campaign over the union of the per-section id
  // sets -- same experiments, one accumulator -- then the agreement
  // statistics EXPERIMENTS.md's recipe reads.  Per-section accumulators see
  // a subset of the monolithic evidence, so the composed boundary must be
  // pointwise conservative: `optimistic sites` is 0 on a correct splice.
  if (cli.get_bool("verify", false)) {
    util::ThreadPool& pool = util::default_pool();
    const sections::SectionPlan plan = sections::carve_sections(
        k.program->config_key(), k.golden, options.carve);
    std::vector<campaign::ExperimentId> ids;
    for (const sections::SectionSpec& spec : plan.sections) {
      const auto batch = sections::section_sample_ids(spec, plan.seed);
      ids.insert(ids.end(), batch.begin(), batch.end());
    }
    campaign::CampaignLog log(k.program->config_key());
    log.append(campaign::run_experiments(*k.program, k.golden, ids, pool));
    log.dedupe();
    const boundary::FaultToleranceBoundary monolithic =
        campaign::boundary_from_log(*k.program, k.golden, log,
                                    {options.filter, 32}, pool);
    const sections::CompositionCheck check =
        sections::compare_boundaries(composed, monolithic, log.records());
    std::printf("verify            : %llu probes, %s prediction agreement\n",
                static_cast<unsigned long long>(check.probes),
                util::percent(check.agreement()).c_str());
    std::printf("informed overlap  : %llu common, %llu composed-only, %llu "
                "monolithic-only\n",
                static_cast<unsigned long long>(check.common_informed),
                static_cast<unsigned long long>(check.composed_only),
                static_cast<unsigned long long>(check.monolithic_only));
    std::printf("threshold deltas  : mean %.3g, max %.3g (relative, common "
                "informed sites); %llu optimistic sites (must be 0)\n",
                check.mean_rel_delta, check.max_rel_delta,
                static_cast<unsigned long long>(check.composed_optimistic));
    print_outcomes(log.records());
  }

  const int saved = save_if_requested(cli, composed, k);
  const int exported = export_telemetry(cli);
  return saved != 0 ? saved : exported;
}

int cmd_exhaustive(const util::Cli& cli) {
  const Loaded k = load_kernel(cli);
  util::ThreadPool& pool = util::default_pool();
  const campaign::GroundTruth truth = campaign::GroundTruth::compute(
      *k.program, k.golden, pool, !cli.get_bool("no-cache", false));
  const boundary::FaultToleranceBoundary built =
      boundary::exhaustive_boundary(truth.outcomes(), k.golden.trace);
  std::printf("experiments       : %llu\n",
              static_cast<unsigned long long>(truth.experiments()));
  std::printf("golden SDC ratio  : %s\n",
              util::percent(truth.overall_sdc_ratio()).c_str());
  describe_boundary(built, k);
  return save_if_requested(cli, built, k);
}

boundary::FaultToleranceBoundary load_boundary(const util::Cli& cli,
                                               const Loaded& k, int& status) {
  const std::string path = cli.get("load");
  status = 0;
  if (path.empty()) {
    std::fprintf(stderr, "error: --load FILE is required\n");
    status = 1;
    return {};
  }
  auto loaded = boundary::load_from_file(path, k.program->config_key());
  if (!loaded) {
    std::fprintf(stderr,
                 "error: %s does not hold a boundary for config '%s'\n",
                 path.c_str(), k.program->config_key().c_str());
    status = 1;
    return {};
  }
  return std::move(*loaded);
}

int cmd_report(const util::Cli& cli) {
  const Loaded k = load_kernel(cli);
  int status = 0;
  const boundary::FaultToleranceBoundary built = load_boundary(cli, k, status);
  if (status != 0) return status;
  const fi::PhaseMap phases(k.golden.phases, k.golden.trace.size());
  const auto rows = boundary::phase_report(phases, built, k.golden.trace);
  std::fputs(boundary::render_phase_report(rows).c_str(), stdout);
  describe_boundary(built, k);
  return 0;
}

int cmd_protect(const util::Cli& cli) {
  const Loaded k = load_kernel(cli);
  int status = 0;
  const boundary::FaultToleranceBoundary built = load_boundary(cli, k, status);
  if (status != 0) return status;

  boundary::ProtectionPlan plan;
  if (cli.has("target")) {
    plan = boundary::plan_to_target(built, k.golden.trace,
                                    cli.get_double("target", 0.01));
  } else {
    plan = boundary::plan_with_budget(built, k.golden.trace,
                                      cli.get_double("budget", 0.05));
  }
  std::printf("predicted SDC     : %s -> %s\n",
              util::percent(plan.sdc_before).c_str(),
              util::percent(plan.sdc_after).c_str());
  std::printf("coverage          : %s of predicted SDC removed\n",
              util::percent(plan.coverage()).c_str());
  std::printf("cost              : protect %zu of %zu dynamic instructions "
              "(%s)\n",
              plan.sites.size(), built.sites(),
              util::percent(plan.cost_fraction).c_str());
  const fi::PhaseMap phases(k.golden.phases, k.golden.trace.size());
  std::printf("first sites to protect:");
  for (std::size_t i = 0; i < plan.sites.size() && i < 10; ++i) {
    std::printf(" %llu(%.*s)",
                static_cast<unsigned long long>(plan.sites[i]), 24,
                std::string(phases.phase_of(plan.sites[i])).c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string command =
      cli.positional().empty() ? "help" : cli.positional().front();
  try {
    if (command == "list") return cmd_list();
    if (command == "golden") return cmd_golden(cli);
    if (command == "infer") return cmd_infer(cli);
    if (command == "exhaustive") return cmd_exhaustive(cli);
    if (command == "campaign") return cmd_campaign(cli);
    if (command == "sections") return cmd_sections(cli);
    if (command == "compose") return cmd_compose(cli);
    if (command == "report") return cmd_report(cli);
    if (command == "protect") return cmd_protect(cli);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  if (command != "help") {
    std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
  }
  std::printf(
      "ftb_analyze -- fault tolerance boundary toolbox\n\n"
      "usage: ftb_analyze <command> [flags]\n\n"
      "commands:\n"
      "  list        known kernels and presets\n"
      "  golden      golden-run statistics and phase table\n"
      "  infer       build a boundary by sampling (--strategy uniform|adaptive,\n"
      "              --fraction F, --filter 0|1, --save FILE; with adaptive,\n"
      "              --workers N / --quarantine-after K run rounds through the\n"
      "              crash-safe supervisor -- required for hazard kernels)\n"
      "  exhaustive  ground-truth campaign and exact boundary (--save FILE)\n"
      "  campaign    resumable logged campaign: run --batch more experiments,\n"
      "              append to --log FILE, rebuild the boundary; or\n"
      "              --resume FILE for the checkpointed runner (--flush-every N,\n"
      "              --sandbox 0|1, --timeout-ms MS watchdog; sandboxing is\n"
      "              required for hazard kernels).  --workers N runs the\n"
      "              persistent worker-pool supervisor instead (heartbeats,\n"
      "              respawn, --quarantine-after K site quarantine).\n"
      "              --snapshot serves experiments from copy-on-write\n"
      "              fork-server checkpoints (--snapshot-every I dynamic\n"
      "              instructions, default 4096); implies the supervisor.\n"
      "              Without --log/--resume: one-shot campaign, nothing\n"
      "              persisted (--batch N, --chunk N, same isolation flags).\n"
      "              --fault bitflip|burst|mem|memburst picks the fault\n"
      "              model (--burst-width K, default 2): burst = K\n"
      "              contiguous bits of a traced value, mem/memburst =\n"
      "              bits of live matrix/vector state between phases\n"
      "  sections    show the section carve (ranges, signatures,\n"
      "              fingerprints, --section-batch N budgets,\n"
      "              --section-batches name=N,... overrides); with\n"
      "              --artifact FILE, mark which sections an incremental\n"
      "              recompute would treat as dirty\n"
      "  compose     compositional campaign: per-section checkpointed\n"
      "              campaigns -> error-bound composition -> whole-program\n"
      "              boundary.  Incremental against --artifact FILE\n"
      "              (fingerprint diff; only dirty sections re-run, --force\n"
      "              recomputes all).  --store-dir DIR holds per-section\n"
      "              journals; SIGTERM/SIGINT drains to resumable journals.\n"
      "              Same isolation flags as campaign (--workers,\n"
      "              --quarantine-after, --snapshot, --snapshot-every);\n"
      "              --verify re-runs the union of the section id sets as\n"
      "              one monolithic campaign and reports agreement (the\n"
      "              composed boundary must be pointwise conservative);\n"
      "              --save FILE writes the composed boundary artifact\n"
      "  report      per-phase vulnerability report (--load FILE)\n"
      "  protect     selective-protection plan (--load FILE, --budget F or\n"
      "              --target R)\n\n"
      "common flags: --kernel K  --preset tiny|default|paper  --seed S\n"
      "              kernel names accept decorations K[+tN][+det]: \"+tN\"\n"
      "              = deterministic N-thread variant (cg, spmv,\n"
      "              stencil2d), \"+det\" = ABFT detector (cg, spmv,\n"
      "              stencil2d, gemm), e.g. --kernel spmv+t2+det\n"
      "telemetry   : --metrics-out FILE (metrics JSON)  --trace-out FILE\n"
      "              (Chrome trace_event JSON for chrome://tracing/Perfetto)\n"
      "              --events-out FILE (JSONL event log); any of these flags\n"
      "              enables the otherwise-null telemetry sink on infer and\n"
      "              campaign runs\n");
  return command == "help" ? 0 : 1;
}
