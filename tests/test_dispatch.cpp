// Distributed campaign plane tests: worker-protocol round-trips, then an
// in-process Server + Service + WorkerAgent cluster on loopback covering
// the lease/requeue/quarantine discipline end to end -- remote execution
// with a byte-identical journal, a worker dying mid-chunk, a SIGSTOP-style
// silent worker losing its lease, a chunk-killing worker being quarantined,
// and duplicate results being dropped exactly-once.
#include "service/dispatch.h"

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/checkpoint.h"
#include "campaign/log.h"
#include "campaign/sampler.h"
#include "kernels/registry.h"
#include "net/client.h"
#include "net/socket.h"
#include "service/service.h"
#include "service/worker.h"
#include "util/cache.h"
#include "util/rng.h"

namespace ftb::service {
namespace {

namespace fs = std::filesystem;

TEST(WorkerProtocol, RoundTripsAllWorkerPlaneMessages) {
  WorkerHello hello;
  hello.name = "w-test";
  hello.capacity = 3;
  hello.pool_workers = 4;
  hello.token = "s3kr1t";
  std::string error;
  const auto hello2 = parse_worker_hello(make_worker_hello(hello), &error);
  ASSERT_TRUE(hello2.has_value()) << error;
  EXPECT_EQ(hello2->name, "w-test");
  EXPECT_EQ(hello2->capacity, 3u);
  EXPECT_EQ(hello2->pool_workers, 4u);
  EXPECT_EQ(hello2->token, "s3kr1t");

  WorkerHelloOk ok;
  ok.worker = 42;
  ok.heartbeat_interval_ms = 125;
  ok.lease_timeout_ms = 999;
  const auto ok2 = parse_worker_hello_ok(make_worker_hello_ok(ok), &error);
  ASSERT_TRUE(ok2.has_value()) << error;
  EXPECT_EQ(ok2->worker, 42u);
  EXPECT_EQ(ok2->heartbeat_interval_ms, 125u);
  EXPECT_EQ(ok2->lease_timeout_ms, 999u);

  WorkerHeartbeat beat;
  beat.worker = 42;
  beat.seq = 7;
  const auto beat2 =
      parse_worker_heartbeat(make_worker_heartbeat(beat), &error);
  ASSERT_TRUE(beat2.has_value()) << error;
  EXPECT_EQ(beat2->worker, 42u);
  EXPECT_EQ(beat2->seq, 7u);

  WorkerChunk chunk;
  chunk.job = 5;
  chunk.chunk = 2;
  chunk.kernel = "cg";
  chunk.preset = "tiny";
  chunk.pool_workers = 2;
  chunk.timeout_ms = 1500;
  chunk.quarantine_after = 4;
  chunk.ids = {1, 99, (std::uint64_t{1} << 60) + 17};
  const auto chunk2 = parse_worker_chunk(make_worker_chunk(chunk), &error);
  ASSERT_TRUE(chunk2.has_value()) << error;
  EXPECT_EQ(chunk2->kernel, "cg");
  EXPECT_EQ(chunk2->preset, "tiny");
  EXPECT_EQ(chunk2->timeout_ms, 1500u);
  EXPECT_EQ(chunk2->quarantine_after, 4u);
  EXPECT_EQ(chunk2->ids, chunk.ids);

  WorkerChunkResult result;
  result.job = 5;
  result.chunk = 2;
  result.ok = true;
  result.worker_deaths = 1;
  result.worker_hangs = 2;
  result.requeued = 3;
  result.quarantined = 4;
  campaign::ExperimentRecord record;
  record.id = 99;
  record.result.outcome = fi::Outcome::kSdc;
  record.result.crash_reason = fi::CrashReason::kNone;
  record.result.injected_error = 0.1;  // not exactly representable: must
  record.result.output_error = 1e-17;  // round-trip bit-exactly anyway
  record.result.crash_site = 12;
  record.result.detector_fired = true;
  result.records.push_back(record);
  const auto result2 =
      parse_worker_chunk_result(make_worker_chunk_result(result), &error);
  ASSERT_TRUE(result2.has_value()) << error;
  EXPECT_TRUE(result2->ok);
  ASSERT_EQ(result2->records.size(), 1u);
  EXPECT_EQ(result2->records[0].id, 99u);
  EXPECT_EQ(result2->records[0].result.outcome, fi::Outcome::kSdc);
  EXPECT_EQ(result2->records[0].result.injected_error,
            record.result.injected_error);
  EXPECT_EQ(result2->records[0].result.output_error,
            record.result.output_error);
  EXPECT_TRUE(result2->records[0].result.detector_fired);
  EXPECT_EQ(result2->worker_deaths, 1u);
  EXPECT_EQ(result2->quarantined, 4u);

  WorkerChunkResult failed;
  failed.job = 5;
  failed.chunk = 3;
  failed.ok = false;
  failed.error = "pool died";
  const auto failed2 =
      parse_worker_chunk_result(make_worker_chunk_result(failed), &error);
  ASSERT_TRUE(failed2.has_value()) << error;
  EXPECT_FALSE(failed2->ok);
  EXPECT_EQ(failed2->error, "pool died");
  EXPECT_TRUE(failed2->records.empty());
}

TEST(WorkerProtocol, RejectsTruncationTrailingGarbageAndBadEnums) {
  WorkerChunk chunk;
  chunk.kernel = "cg";
  chunk.preset = "tiny";
  chunk.ids = {1, 2, 3};
  net::Frame frame = make_worker_chunk(chunk);
  std::string error;

  net::Frame truncated = frame;
  truncated.payload.resize(truncated.payload.size() / 2);
  EXPECT_FALSE(parse_worker_chunk(truncated, &error).has_value());
  EXPECT_FALSE(error.empty());

  net::Frame padded = frame;
  padded.payload.push_back(0);
  EXPECT_FALSE(parse_worker_chunk(padded, &error).has_value());

  // An out-of-range outcome enum must not survive deserialisation into the
  // journal: it would poison the CampaignLog's own validation downstream.
  WorkerChunkResult result;
  result.ok = true;
  campaign::ExperimentRecord record;
  record.id = 1;
  result.records.push_back(record);
  net::Frame result_frame = make_worker_chunk_result(result);
  // Corrupt the outcome word (first u64 after job, chunk, ok, error-len,
  // record-count, id): flip it to a huge value by rebuilding the payload.
  WorkerChunkResult bad = result;
  bad.records[0].result.outcome = static_cast<fi::Outcome>(200);
  EXPECT_FALSE(
      parse_worker_chunk_result(make_worker_chunk_result(bad), &error)
          .has_value());
  EXPECT_NE(error.find("outcome"), std::string::npos) << error;

  // Zero-capacity workers are useless and rejected at parse time.
  WorkerHello hello;
  hello.capacity = 0;
  EXPECT_FALSE(
      parse_worker_hello(make_worker_hello(hello), &error).has_value());
}

// A forged frame can claim any element count it likes; the decoder must
// bound the count against the payload actually present instead of handing
// it to vector::reserve (length_error/bad_alloc used to escape the parse
// helper and kill the daemon's event loop -- one frame, one crash).
TEST(WorkerProtocol, RejectsHostileElementCountsWithoutAllocating) {
  std::string error;

  util::BinaryWriter result_writer;
  result_writer.put_u64(1);                     // job
  result_writer.put_u64(0);                     // chunk
  result_writer.put_u64(1);                     // ok
  result_writer.put_u64(0);                     // error (empty string)
  result_writer.put_u64(std::uint64_t{1} << 60);  // record count
  net::Frame result_frame;
  result_frame.type = static_cast<std::uint32_t>(MsgType::kWorkerChunkResult);
  result_frame.payload = result_writer.buffer();
  EXPECT_FALSE(parse_worker_chunk_result(result_frame, &error).has_value());
  EXPECT_NE(error.find("count"), std::string::npos) << error;

  util::BinaryWriter chunk_writer;
  chunk_writer.put_u64(1);  // job
  chunk_writer.put_u64(0);  // chunk
  chunk_writer.put_string("cg");
  chunk_writer.put_string("tiny");
  chunk_writer.put_u64(2);     // pool_workers
  chunk_writer.put_u64(1000);  // timeout_ms
  chunk_writer.put_u64(3);     // quarantine_after
  chunk_writer.put_u64(~std::uint64_t{0});  // id count
  net::Frame chunk_frame;
  chunk_frame.type = static_cast<std::uint32_t>(MsgType::kWorkerChunk);
  chunk_frame.payload = chunk_writer.buffer();
  EXPECT_FALSE(parse_worker_chunk(chunk_frame, &error).has_value());
  EXPECT_NE(error.find("count"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// In-process cluster fixture: Server + Service with fast lease timeouts,
// plus helpers to run real WorkerAgents and scripted fake workers.

class DispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!net::net_supported()) GTEST_SKIP() << "no socket support";
    dir_ = fs::temp_directory_path() /
           ("ftb_dispatch_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    stop();
    fs::remove_all(dir_);
  }

  void start(std::uint32_t lease_timeout_ms = 600,
             std::uint32_t straggler_ms = 1000,
             const std::string& worker_token = "") {
    ServiceOptions options;
    options.store_dir = dir_.string();
    options.telemetry = &telemetry_;
    options.dispatch.heartbeat_interval_ms = 100;
    options.dispatch.lease_timeout_ms = lease_timeout_ms;
    options.dispatch.straggler_timeout_ms = straggler_ms;
    options.dispatch.quarantine_backoff_ms = 200;
    options.dispatch.worker_token = worker_token;
    telemetry_.set_enabled(true);
    service_ = std::make_unique<Service>(options);
    net::ServerOptions server_options;
    server_options.telemetry = &telemetry_;
    server_ = std::make_unique<net::Server>(*service_, server_options);
    service_->attach(server_.get());
    loop_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (server_ == nullptr) return;
    service_->request_shutdown();
    if (loop_.joinable()) loop_.join();
    server_.reset();
    service_.reset();
  }

  /// Waits until the dispatcher counts `n` live workers (registration is
  /// asynchronous: hello travels through the event loop).
  bool wait_for_workers(std::size_t n, int timeout_ms = 5000) {
    for (int waited = 0; waited < timeout_ms; waited += 10) {
      if (service_->dispatcher().live_workers() >= n) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return service_->dispatcher().live_workers() >= n;
  }

  struct SubmitOutcome {
    std::optional<CampaignAccepted> accepted;
    std::optional<CampaignDone> done;
    std::string error;
  };

  SubmitOutcome submit_and_wait(const SubmitCampaignReq& req) {
    SubmitOutcome outcome;
    net::ClientOptions copts;
    copts.port = server_->port();
    net::Client client(copts);
    if (!client.connect(&outcome.error)) return outcome;
    if (!client.send(make_submit_campaign(req), &outcome.error)) {
      return outcome;
    }
    const auto accepted = client.recv(&outcome.error, 60000);
    if (!accepted.has_value()) return outcome;
    outcome.accepted = parse_campaign_accepted(*accepted);
    if (!outcome.accepted.has_value()) return outcome;
    for (;;) {
      const auto frame = client.recv(&outcome.error, 120000);
      if (!frame.has_value()) return outcome;
      if (parse_campaign_progress(*frame).has_value()) continue;
      outcome.done = parse_campaign_done(*frame);
      return outcome;
    }
  }

  /// The journal bytes an uninterrupted local-only run of `req` produces.
  std::string reference_journal(const SubmitCampaignReq& req) {
    const fi::ProgramPtr program = kernels::make_program(
        req.kernel, kernels::preset_from_string(req.preset));
    const fi::GoldenRun golden = fi::run_golden(*program);
    util::Rng rng(req.seed);
    const auto ids =
        campaign::sample_uniform(rng, golden.sample_space_size(), req.batch);
    campaign::CheckpointOptions options;
    options.path = (dir_ / "reference.clog").string();
    options.flush_every = req.flush_every;
    const auto run =
        campaign::run_campaign_checkpointed(*program, golden, ids, options);
    return run.log.serialize();
  }

  std::string journal_bytes(const std::string& key) {
    std::string error;
    const auto log =
        campaign::CampaignLog::load((dir_ / (key + ".clog")).string(), &error);
    EXPECT_TRUE(log.has_value()) << error;
    return log.has_value() ? log->serialize() : std::string();
  }

  std::uint64_t counter(const char* name) {
    return telemetry_.metrics().counter(name).value();
  }

  telemetry::Telemetry telemetry_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<net::Server> server_;
  std::thread loop_;
  fs::path dir_;
};

/// A scripted worker speaking the wire protocol by hand, for failure-mode
/// tests the real WorkerAgent would never exhibit voluntarily.
class FakeWorker {
 public:
  explicit FakeWorker(std::uint16_t port) {
    net::ClientOptions options;
    options.port = port;
    client_ = std::make_unique<net::Client>(std::move(options));
  }

  bool hello(std::uint32_t capacity = 1, const std::string& token = "") {
    std::string error;
    if (!client_->connect(&error)) return false;
    WorkerHello hello;
    hello.name = "fake";
    hello.capacity = capacity;
    hello.token = token;
    if (!client_->send(make_worker_hello(hello), &error)) return false;
    const auto reply = client_->recv(&error, 5000);
    if (!reply.has_value()) return false;
    const auto ok = parse_worker_hello_ok(*reply, &error);
    if (!ok.has_value()) return false;
    worker_ = ok->worker;
    return true;
  }

  void heartbeat() {
    WorkerHeartbeat beat;
    beat.worker = worker_;
    beat.seq = ++seq_;
    client_->send(make_worker_heartbeat(beat));
  }

  std::optional<WorkerChunk> recv_chunk(std::uint32_t timeout_ms = 10000) {
    std::string error;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      const auto frame = client_->recv(&error, 250);
      if (!frame.has_value()) {
        if (!client_->connected()) return std::nullopt;
        heartbeat();  // stay live while waiting
        continue;
      }
      if (frame->type == static_cast<std::uint32_t>(MsgType::kWorkerChunk)) {
        return parse_worker_chunk(*frame);
      }
    }
    return std::nullopt;
  }

  bool send_result(const WorkerChunkResult& result) {
    return client_->send(make_worker_chunk_result(result));
  }

  void disconnect() { client_->close(); }

  std::uint64_t worker_id() const { return worker_; }

 private:
  std::unique_ptr<net::Client> client_;
  std::uint64_t worker_ = 0;
  std::uint64_t seq_ = 0;
};

// Two real WorkerAgents execute a campaign's chunks remotely; the journal
// and every record in it must be byte-identical to a local-only run.
TEST_F(DispatchTest, RemoteExecutionLeavesByteIdenticalJournal) {
  start();
  WorkerAgentOptions agent_options;
  agent_options.port = server_->port();
  agent_options.name = "agent-a";
  agent_options.capacity = 2;
  WorkerAgent agent_a(agent_options);
  agent_options.name = "agent-b";
  WorkerAgent agent_b(agent_options);
  std::thread thread_a([&] { agent_a.serve(); });
  std::thread thread_b([&] { agent_b.serve(); });
  ASSERT_TRUE(wait_for_workers(2));

  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 11;
  req.batch = 400;
  req.flush_every = 50;
  const SubmitOutcome outcome = submit_and_wait(req);
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_TRUE(outcome.done->ok) << outcome.done->error;
  EXPECT_EQ(outcome.done->executed, 400u);

  agent_a.request_stop();
  agent_b.request_stop();
  thread_a.join();
  thread_b.join();

  EXPECT_GT(counter("dispatch.chunks_remote"), 0u)
      << "no chunk actually ran remotely";
  EXPECT_EQ(journal_bytes("daxpy@tiny@11"), reference_journal(req));
}

// A worker that takes a lease and dies (connection drop, as after SIGKILL)
// must not lose its chunk: the lease expires with the connection and the
// chunk re-runs elsewhere, leaving the exact local-only bytes.
TEST_F(DispatchTest, WorkerDyingMidChunkRequeuesWithoutLossOrDuplication) {
  start();
  FakeWorker fake(server_->port());
  ASSERT_TRUE(fake.hello());
  ASSERT_TRUE(wait_for_workers(1));

  std::atomic<bool> died{false};
  std::thread killer([&] {
    const auto chunk = fake.recv_chunk();
    if (chunk.has_value()) died.store(true);
    fake.disconnect();  // SIGKILL from the dispatcher's point of view
  });

  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 21;
  req.batch = 300;
  req.flush_every = 30;
  const SubmitOutcome outcome = submit_and_wait(req);
  killer.join();
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_TRUE(outcome.done->ok) << outcome.done->error;
  EXPECT_EQ(outcome.done->executed, 300u);
  EXPECT_TRUE(died.load()) << "fake worker never got a lease";
  EXPECT_GT(counter("dispatch.workers_lost"), 0u);
  EXPECT_EQ(journal_bytes("daxpy@tiny@21"), reference_journal(req));
}

// A SIGSTOPped worker keeps its socket open but its heartbeat counter
// stops advancing; the dispatcher must expire the lease, re-run the chunk,
// and drop the straggler's late answer instead of duplicating records.
TEST_F(DispatchTest, SilentWorkerLosesLeaseAndLateResultIsDropped) {
  start(/*lease_timeout_ms=*/400, /*straggler_ms=*/600);
  FakeWorker fake(server_->port());
  ASSERT_TRUE(fake.hello());
  ASSERT_TRUE(wait_for_workers(1));

  std::optional<WorkerChunk> held;
  std::thread holder([&] {
    // Take one lease, then go silent (no heartbeat, no answer) -- recv
    // without heartbeats, mimicking SIGSTOP.
    std::string error;
    held = fake.recv_chunk(8000);
  });

  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 31;
  req.batch = 200;
  req.flush_every = 25;
  const SubmitOutcome outcome = submit_and_wait(req);
  holder.join();
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_TRUE(outcome.done->ok) << outcome.done->error;
  EXPECT_EQ(outcome.done->executed, 200u);

  if (held.has_value()) {
    // The job is finished; a late (fabricated) answer for the stolen chunk
    // must be discarded as stale, not merged.
    WorkerChunkResult late;
    late.job = held->job;
    late.chunk = held->chunk;
    late.ok = true;
    for (const campaign::ExperimentId id : held->ids) {
      campaign::ExperimentRecord record;
      record.id = id;
      record.result.outcome = fi::Outcome::kMasked;
      late.records.push_back(record);
    }
    fake.send_result(late);
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  EXPECT_EQ(journal_bytes("daxpy@tiny@31"), reference_journal(req));
}

// recv_chunk() heartbeats while idle, so the fake worker above only goes
// silent once it holds a lease.  This one instead answers every lease with
// ok=false: the dispatcher must charge the kills, quarantine the worker,
// and still finish the job with clean bytes.
TEST_F(DispatchTest, ChunkKillingWorkerIsQuarantinedAndJobStillFinishes) {
  start();
  FakeWorker fake(server_->port());
  ASSERT_TRUE(fake.hello());
  ASSERT_TRUE(wait_for_workers(1));

  std::atomic<bool> stop{false};
  std::thread saboteur([&] {
    while (!stop.load()) {
      const auto chunk = fake.recv_chunk(500);
      if (!chunk.has_value()) continue;
      WorkerChunkResult result;
      result.job = chunk->job;
      result.chunk = chunk->chunk;
      result.ok = false;
      result.error = "synthetic kill";
      if (!fake.send_result(result)) return;
    }
  });

  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 41;
  req.batch = 300;
  req.flush_every = 30;
  const SubmitOutcome outcome = submit_and_wait(req);
  stop.store(true);
  saboteur.join();
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_TRUE(outcome.done->ok) << outcome.done->error;
  EXPECT_EQ(outcome.done->executed, 300u);
  EXPECT_GT(counter("dispatch.chunk_failures"), 0u);
  EXPECT_EQ(journal_bytes("daxpy@tiny@41"), reference_journal(req));
}

// First-writer-wins: a worker that answers the same lease twice gets its
// second copy dropped, and the journal holds each experiment exactly once.
TEST_F(DispatchTest, DuplicateChunkResultIsDroppedExactlyOnce) {
  start();
  FakeWorker fake(server_->port());
  ASSERT_TRUE(fake.hello());
  ASSERT_TRUE(wait_for_workers(1));

  std::atomic<bool> stop{false};
  std::atomic<int> doubled{0};
  std::thread echoer([&] {
    while (!stop.load()) {
      const auto chunk = fake.recv_chunk(500);
      if (!chunk.has_value()) continue;
      WorkerChunkResult result;
      result.job = chunk->job;
      result.chunk = chunk->chunk;
      result.ok = true;
      for (const campaign::ExperimentId id : chunk->ids) {
        campaign::ExperimentRecord record;
        record.id = id;
        record.result.outcome = fi::Outcome::kMasked;
        result.records.push_back(record);
      }
      if (!fake.send_result(result)) return;
      if (!fake.send_result(result)) return;  // duplicate on purpose
      doubled.fetch_add(1);
    }
  });

  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 51;
  req.batch = 200;
  req.flush_every = 20;
  const SubmitOutcome outcome = submit_and_wait(req);
  stop.store(true);
  echoer.join();
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_TRUE(outcome.done->ok) << outcome.done->error;
  EXPECT_EQ(outcome.done->executed, 200u);
  EXPECT_GT(doubled.load(), 0);
  EXPECT_GT(counter("dispatch.duplicate_results"), 0u);

  // Exactly-once at the journal: every sampled id appears exactly once.
  std::string error;
  const auto log = campaign::CampaignLog::load(
      (dir_ / "daxpy@tiny@51.clog").string(), &error);
  ASSERT_TRUE(log.has_value()) << error;
  std::unordered_set<campaign::ExperimentId> seen;
  for (const campaign::ExperimentRecord& record : log->records()) {
    EXPECT_TRUE(seen.insert(record.id).second)
        << "duplicate id " << record.id << " in journal";
  }
  EXPECT_EQ(log->size(), outcome.done->executed);
}

// A connection that never registered cannot inject anything into the
// worker plane: its forged chunk results (which used to be processed under
// the local runner's holder id, letting an ok=false erase the runner's own
// claim) are dropped before they touch the job.
TEST_F(DispatchTest, ForgedResultFromUnregisteredConnIsDropped) {
  start();
  WorkerAgentOptions agent_options;
  agent_options.port = server_->port();
  agent_options.name = "honest";
  WorkerAgent agent(agent_options);
  std::thread agent_thread([&] { agent.serve(); });
  ASSERT_TRUE(wait_for_workers(1));

  net::ClientOptions copts;
  copts.port = server_->port();
  net::Client forger(copts);
  std::string connect_error;
  ASSERT_TRUE(forger.connect(&connect_error)) << connect_error;
  std::atomic<bool> stop{false};
  std::thread spammer([&] {
    while (!stop.load()) {
      for (std::uint64_t job = 1; job <= 3 && !stop.load(); ++job) {
        for (std::uint64_t chunk = 0; chunk < 4; ++chunk) {
          WorkerChunkResult forged;
          forged.job = job;
          forged.chunk = chunk;
          forged.ok = false;
          forged.error = "forged kill";
          if (!forger.send(make_worker_chunk_result(forged))) return;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 71;
  req.batch = 200;
  req.flush_every = 50;
  const SubmitOutcome outcome = submit_and_wait(req);
  stop.store(true);
  spammer.join();
  agent.request_stop();
  agent_thread.join();

  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_TRUE(outcome.done->ok) << outcome.done->error;
  EXPECT_EQ(outcome.done->executed, 200u);
  EXPECT_GT(counter("dispatch.unregistered_results"), 0u)
      << "forged results never reached the dispatcher";
  EXPECT_EQ(journal_bytes("daxpy@tiny@71"), reference_journal(req));
}

// With --worker-token set, a hello carrying the wrong (or no) token is
// refused with an Error frame and the connection never becomes a worker;
// the right token registers and executes chunks as usual.
TEST_F(DispatchTest, WorkerTokenGatesRegistration) {
  start(/*lease_timeout_ms=*/600, /*straggler_ms=*/1000,
        /*worker_token=*/"sekrit");
  FakeWorker intruder(server_->port());
  EXPECT_FALSE(intruder.hello(/*capacity=*/1, /*token=*/"wrong"));
  EXPECT_EQ(service_->dispatcher().live_workers(), 0u);
  EXPECT_GT(counter("dispatch.workers_rejected"), 0u);

  WorkerAgentOptions agent_options;
  agent_options.port = server_->port();
  agent_options.name = "tokened";
  agent_options.token = "sekrit";
  WorkerAgent agent(agent_options);
  std::thread agent_thread([&] { agent.serve(); });
  ASSERT_TRUE(wait_for_workers(1));

  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 81;
  req.batch = 150;
  req.flush_every = 50;
  const SubmitOutcome outcome = submit_and_wait(req);
  agent.request_stop();
  agent_thread.join();
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_TRUE(outcome.done->ok) << outcome.done->error;
  EXPECT_EQ(journal_bytes("daxpy@tiny@81"), reference_journal(req));
}

// A second job for the same kernel@preset but different pool settings must
// not run under the first job's cached supervisor: the agent tears the
// supervisor down and reforks with the lease's settings.
TEST_F(DispatchTest, LeaseSettingsChangeRebuildsWorkerSupervisor) {
  start();
  WorkerAgentOptions agent_options;
  agent_options.port = server_->port();
  agent_options.name = "rebuilder";
  agent_options.capacity = 4;  // take every chunk so both jobs run remotely
  WorkerAgent agent(agent_options);
  std::thread agent_thread([&] { agent.serve(); });
  ASSERT_TRUE(wait_for_workers(1));

  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 91;
  req.batch = 120;
  req.flush_every = 30;
  req.workers = 2;
  const SubmitOutcome first = submit_and_wait(req);
  ASSERT_TRUE(first.done.has_value()) << first.error;
  EXPECT_TRUE(first.done->ok) << first.done->error;

  req.seed = 92;
  req.workers = 3;  // same kernel@preset, different pool size
  const SubmitOutcome second = submit_and_wait(req);
  ASSERT_TRUE(second.done.has_value()) << second.error;
  EXPECT_TRUE(second.done->ok) << second.done->error;

  agent.request_stop();
  agent_thread.join();
  // Each job has exactly 4 chunks, so > 4 chunks run means the agent ran
  // leases from both jobs -- only then is a rebuild guaranteed observable.
  if (agent.stats().chunks_run > 4) {
    EXPECT_GE(agent.stats().sessions_rebuilt, 1u)
        << "second job's leases ran under the first job's pool settings";
  }
  EXPECT_EQ(journal_bytes("daxpy@tiny@92"), reference_journal(req));
}

// Zero live workers at job start: the distributed branch is not taken at
// all and the plain local path runs (this is the degradation guarantee).
TEST_F(DispatchTest, ZeroWorkersDegradesToLocalPath) {
  start();
  ASSERT_EQ(service_->dispatcher().live_workers(), 0u);
  SubmitCampaignReq req;
  req.kernel = "daxpy";
  req.preset = "tiny";
  req.seed = 61;
  req.batch = 150;
  req.flush_every = 50;
  const SubmitOutcome outcome = submit_and_wait(req);
  ASSERT_TRUE(outcome.done.has_value()) << outcome.error;
  EXPECT_TRUE(outcome.done->ok) << outcome.done->error;
  EXPECT_EQ(counter("jobs.distributed"), 0u);
  EXPECT_EQ(counter("dispatch.chunks_remote"), 0u);
  EXPECT_EQ(journal_bytes("daxpy@tiny@61"), reference_journal(req));
}

}  // namespace
}  // namespace ftb::service
